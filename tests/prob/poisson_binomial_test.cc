#include "prob/poisson_binomial.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/normal.h"
#include "prob/poisson.h"

namespace ufim {
namespace {

// Exhaustive possible-world oracle: enumerate all 2^n outcomes.
double TailByEnumeration(const std::vector<double>& probs, std::size_t k) {
  const std::size_t n = probs.size();
  double tail = 0.0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    double p = 1.0;
    std::size_t successes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        p *= probs[i];
        ++successes;
      } else {
        p *= 1.0 - probs[i];
      }
    }
    if (successes >= k) tail += p;
  }
  return tail;
}

TEST(SupportMomentsTest, MeanAndVariance) {
  SupportMoments m = ComputeSupportMoments({0.5, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.5);
  SupportMoments empty = ComputeSupportMoments({});
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.variance, 0.0);
}

TEST(PoissonBinomialDPTest, MatchesEnumerationOracle) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(0, 11);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    for (std::size_t k = 0; k <= n + 1; ++k) {
      EXPECT_NEAR(PoissonBinomialTailDP(probs, k), TailByEnumeration(probs, k),
                  1e-10)
          << "trial=" << trial << " n=" << n << " k=" << k;
    }
  }
}

TEST(PoissonBinomialDCTest, MatchesDP) {
  Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(0, 200);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    const std::size_t k = rng.UniformInt(0, n);
    EXPECT_NEAR(PoissonBinomialTailDC(probs, k),
                PoissonBinomialTailDP(probs, k), 1e-9)
        << "trial=" << trial << " n=" << n << " k=" << k;
  }
}

TEST(PoissonBinomialDCTest, FftAndNaiveConquerAgree) {
  Rng rng(7);
  std::vector<double> probs(300);
  for (double& p : probs) p = rng.Uniform01();
  const std::size_t k = 120;
  EXPECT_NEAR(PoissonBinomialTailDC(probs, k, /*fft_threshold=*/8),
              PoissonBinomialTailDC(probs, k, /*fft_threshold=*/1 << 20), 1e-9);
}

// Regression pin for the fft_threshold boundary: operand sizes exactly
// at, one below, and one above the threshold must all agree with the DP
// (the conquer step switches implementation at `fft_threshold` operand
// coefficients, and an off-by-one there would silently corrupt tails for
// vectors near the switch point).
TEST(PoissonBinomialDCTest, FftThresholdBoundaryPinned) {
  Rng rng(12);
  constexpr std::size_t kThreshold = 16;
  for (std::size_t n : {kThreshold - 1, kThreshold, kThreshold + 1,
                        2 * kThreshold - 1, 2 * kThreshold,
                        2 * kThreshold + 1}) {
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    for (std::size_t k : {std::size_t{1}, n / 2, n}) {
      EXPECT_NEAR(PoissonBinomialTailDC(probs, k, kThreshold),
                  PoissonBinomialTailDP(probs, k), 1e-10)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PoissonBinomialPmfTest, CappedPmfSumsToOne) {
  Rng rng(8);
  std::vector<double> probs(50);
  for (double& p : probs) p = rng.Uniform01();
  for (std::size_t cap : {0u, 1u, 10u, 25u, 50u, 60u}) {
    auto pmf = PoissonBinomialCappedPmfDP(probs, cap);
    double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "cap=" << cap;
    EXPECT_LE(pmf.size(), std::min<std::size_t>(cap, probs.size()) + 1);
  }
}

TEST(PoissonBinomialPmfTest, DPAndDCPmfsAgree) {
  Rng rng(9);
  std::vector<double> probs(80);
  for (double& p : probs) p = rng.Uniform01();
  const std::size_t cap = 30;
  auto dp = PoissonBinomialCappedPmfDP(probs, cap);
  auto dc = PoissonBinomialCappedPmfDC(probs, cap);
  ASSERT_EQ(dp.size(), dc.size());
  for (std::size_t i = 0; i < dp.size(); ++i) {
    EXPECT_NEAR(dp[i], dc[i], 1e-9) << "i=" << i;
  }
}

TEST(PoissonBinomialTest, EdgeCases) {
  EXPECT_EQ(PoissonBinomialTailDP({}, 0), 1.0);
  EXPECT_EQ(PoissonBinomialTailDP({}, 1), 0.0);
  EXPECT_EQ(PoissonBinomialTailDP({0.5}, 2), 0.0);  // k > n
  EXPECT_NEAR(PoissonBinomialTailDP({1.0, 1.0}, 2), 1.0, 1e-12);
  EXPECT_EQ(PoissonBinomialTailDC({}, 3), 0.0);
  EXPECT_EQ(PoissonBinomialTailDC({0.7}, 0), 1.0);
}

TEST(PoissonBinomialTest, DegenerateAllOnes) {
  std::vector<double> probs(10, 1.0);
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_NEAR(PoissonBinomialTailDP(probs, k), 1.0, 1e-12);
  }
  EXPECT_EQ(PoissonBinomialTailDP(probs, 11), 0.0);
}

// The paper's Example 2 / Table 2: sup(A) over the Table 1 database,
// where A's containment probabilities are {0.8, 0.8, 0.5}. The printed
// Table 2 values (0.1, 0.18, 0.4, 0.32) are internally inconsistent with
// Table 1 — the correct distribution is (0.02, 0.18, 0.48, 0.32), which
// still sums to 1 and still makes {A} probabilistic frequent at
// min_sup=0.5, pft=0.7 (Pr(sup>=2) = 0.8 > 0.7). Documented in DESIGN.md.
TEST(PoissonBinomialTest, PaperTable2Example) {
  const std::vector<double> a = {0.8, 0.8, 0.5};
  auto pmf = PoissonBinomialCappedPmfDP(a, 3);
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_NEAR(pmf[0], 0.02, 1e-12);
  EXPECT_NEAR(pmf[1], 0.18, 1e-12);
  EXPECT_NEAR(pmf[2], 0.48, 1e-12);
  EXPECT_NEAR(pmf[3], 0.32, 1e-12);
  EXPECT_NEAR(PoissonBinomialTailDP(a, 2), 0.8, 1e-12);
}

// CLT regime: for large n the Normal approximation with continuity
// correction lands close to the exact DP tail.
TEST(PoissonBinomialApproximationTest, NormalApproxConvergesForLargeN) {
  Rng rng(10);
  std::vector<double> probs(2000);
  for (double& p : probs) p = rng.Uniform(0.2, 0.9);
  SupportMoments m = ComputeSupportMoments(probs);
  for (double frac : {0.45, 0.5, 0.55, 0.6}) {
    const std::size_t k = static_cast<std::size_t>(m.mean * frac / 0.5);
    const double exact = PoissonBinomialTailDP(probs, k);
    const double approx = NormalApproxFrequentProbability(m.mean, m.variance, k);
    EXPECT_NEAR(approx, exact, 0.01) << "k=" << k;
  }
}

// Poisson approximation: good when probabilities are small (Le Cam).
TEST(PoissonBinomialApproximationTest, PoissonApproxGoodForSmallProbs) {
  Rng rng(11);
  std::vector<double> probs(3000);
  for (double& p : probs) p = rng.Uniform(0.0, 0.05);
  SupportMoments m = ComputeSupportMoments(probs);
  const std::size_t k = static_cast<std::size_t>(m.mean);
  const double exact = PoissonBinomialTailDP(probs, k);
  const double approx = PoissonTail(k, m.mean);
  EXPECT_NEAR(approx, exact, 0.02);
}

}  // namespace
}  // namespace ufim
