#include "prob/distance.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

TEST(TotalVariationTest, IdenticalIsZero) {
  std::vector<double> p = {0.25, 0.5, 0.25};
  EXPECT_EQ(TotalVariationDistance(p, p), 0.0);
}

TEST(TotalVariationTest, DisjointIsOne) {
  EXPECT_NEAR(TotalVariationDistance({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
}

TEST(TotalVariationTest, PadsShorterOperand) {
  EXPECT_NEAR(TotalVariationDistance({1.0}, {0.5, 0.5}), 0.5, 1e-12);
  EXPECT_NEAR(TotalVariationDistance({0.5, 0.5}, {1.0}), 0.5, 1e-12);
}

TEST(KolmogorovTest, BoundedByTotalVariation) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(10), b(10);
    double sa = 0.0, sb = 0.0;
    for (double& x : a) sa += (x = rng.Uniform01());
    for (double& x : b) sb += (x = rng.Uniform01());
    for (double& x : a) x /= sa;
    for (double& x : b) x /= sb;
    EXPECT_LE(KolmogorovDistance(a, b), TotalVariationDistance(a, b) + 1e-12);
  }
}

TEST(KolmogorovTest, KnownShift) {
  // Point mass at 0 vs point mass at 2: sup-CDF gap is 1.
  EXPECT_NEAR(KolmogorovDistance({1, 0, 0}, {0, 0, 1}), 1.0, 1e-12);
}

TEST(DiscretizedNormalPmfTest, SumsToOneAndCentersOnMean) {
  auto pmf = DiscretizedNormalPmf(10.0, 4.0, 30);
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9);
  auto peak = std::max_element(pmf.begin(), pmf.end()) - pmf.begin();
  EXPECT_EQ(peak, 10);
}

TEST(DiscretizedNormalPmfTest, DegenerateVariance) {
  auto pmf = DiscretizedNormalPmf(3.0, 0.0, 6);
  EXPECT_EQ(pmf[3], 1.0);
}

TEST(PoissonPmfTest, MatchesClosedFormHead) {
  auto pmf = PoissonPmf(2.0, 40);
  EXPECT_NEAR(pmf[0], std::exp(-2.0), 1e-12);
  EXPECT_NEAR(pmf[1], 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(pmf[2], 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9);
}

// The quantitative backbone of §4.4: on large Poisson-binomial
// instances, the Normal surrogate is much closer (in TV distance) to
// the true support distribution than the Poisson surrogate when unit
// probabilities are not small.
TEST(ApproximationQualityTest, NormalBeatsPoissonAtModerateProbs) {
  Rng rng(9);
  std::vector<double> probs(800);
  for (double& p : probs) p = rng.Uniform(0.3, 0.9);
  SupportMoments m = ComputeSupportMoments(probs);
  const std::size_t len = probs.size() + 1;
  auto exact = PoissonBinomialCappedPmfDP(probs, probs.size());
  exact.resize(len, 0.0);
  const double tv_normal =
      TotalVariationDistance(exact, DiscretizedNormalPmf(m.mean, m.variance, len));
  const double tv_poisson = TotalVariationDistance(exact, PoissonPmf(m.mean, len));
  EXPECT_LT(tv_normal, 0.02);
  EXPECT_GT(tv_poisson, 5.0 * tv_normal);
}

TEST(ApproximationQualityTest, PoissonCompetitiveAtSmallProbs) {
  Rng rng(10);
  std::vector<double> probs(3000);
  for (double& p : probs) p = rng.Uniform(0.0, 0.04);
  SupportMoments m = ComputeSupportMoments(probs);
  const std::size_t len = 200;
  auto exact = PoissonBinomialCappedPmfDP(probs, len - 1);
  exact.resize(len, 0.0);
  const double tv_poisson = TotalVariationDistance(exact, PoissonPmf(m.mean, len));
  EXPECT_LT(tv_poisson, 0.02);  // Le Cam regime: Poisson is accurate
}

}  // namespace
}  // namespace ufim
