// Soundness of the bound cascade: every certified interval must bracket
// the exact Poisson-binomial tail, for any probability vector. This is
// the contract that lets the prefilter skip exact evaluations without
// ever changing a mining result.
#include "prob/bound_cascade.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "prob/chernoff.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

void ExpectBrackets(const std::vector<double>& probs, std::size_t msc) {
  const SupportMoments m = ComputeSupportMoments(probs);
  const TailInterval interval =
      CertifiedTailInterval(m.mean, m.variance, msc);
  const double exact = PoissonBinomialTailDP(probs, msc);
  EXPECT_LE(interval.lower, exact + 1e-12)
      << "n=" << probs.size() << " msc=" << msc << " mean=" << m.mean
      << " var=" << m.variance;
  EXPECT_GE(interval.upper, exact - 1e-12)
      << "n=" << probs.size() << " msc=" << msc << " mean=" << m.mean
      << " var=" << m.variance;
  EXPECT_LE(interval.lower, interval.upper);
  EXPECT_GE(interval.lower, 0.0);
  EXPECT_LE(interval.upper, 1.0);
}

void SweepThresholds(const std::vector<double>& probs) {
  const std::size_t n = probs.size();
  const std::size_t step = std::max<std::size_t>(1, n / 23);
  for (std::size_t msc = 0; msc <= n + 2; msc += step) {
    ExpectBrackets(probs, msc);
  }
}

TEST(BoundCascadeTest, RandomUniformVectors) {
  Rng rng(101);
  for (std::size_t n : {1u, 2u, 5u, 17u, 64u, 200u, 1000u}) {
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    SweepThresholds(probs);
  }
}

TEST(BoundCascadeTest, RandomExtremeVectors) {
  // Mixtures of near-0 and near-1 probabilities: small variance relative
  // to the mean, the regime where the normal envelope is tightest and a
  // sloppy Berry-Esseen constant would be caught.
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 5 + rng.UniformInt(0, 395);
    std::vector<double> probs(n);
    for (double& p : probs) {
      const double u = rng.Uniform01();
      p = u < 0.5 ? rng.Uniform01() * 0.05 : 1.0 - rng.Uniform01() * 0.05;
    }
    SweepThresholds(probs);
  }
}

TEST(BoundCascadeTest, DegenerateAllZero) {
  SweepThresholds(std::vector<double>(40, 0.0));
}

TEST(BoundCascadeTest, DegenerateAllOne) {
  // Zero variance with maximal mean: the exact tail is a step function
  // and Cantelli must reproduce it exactly (the normal envelope is
  // skipped at sigma == 0).
  SweepThresholds(std::vector<double>(40, 1.0));
  const std::vector<double> probs(40, 1.0);
  const SupportMoments m = ComputeSupportMoments(probs);
  EXPECT_GT(CertifiedTailInterval(m.mean, m.variance, 40).lower, 0.99);
  EXPECT_LT(CertifiedTailInterval(m.mean, m.variance, 41).upper, 0.01);
}

TEST(BoundCascadeTest, DegenerateSingleElement) {
  for (double p : {0.0, 0.3, 0.5, 0.999, 1.0}) {
    SweepThresholds({p});
  }
}

TEST(BoundCascadeTest, LargeNBeyondSmallSampleCutoff) {
  // Length far above any Berry-Esseen small-n regime: the 0.56/sigma
  // envelope is ~0.02 here, so the interval is genuinely informative and
  // still must bracket the exact tail at every threshold.
  Rng rng(303);
  std::vector<double> probs(5000);
  for (double& p : probs) p = rng.Uniform01();
  const SupportMoments m = ComputeSupportMoments(probs);
  for (std::size_t msc : {1u, 2000u, 2400u, 2500u, 2600u, 3000u, 5000u}) {
    ExpectBrackets(probs, msc);
  }
  // Far from the mean the cascade must be decisive.
  EXPECT_LT(CertifiedTailInterval(m.mean, m.variance, 3000).upper, 0.5);
  EXPECT_GT(CertifiedTailInterval(m.mean, m.variance, 2000).lower, 0.5);
}

TEST(BoundCascadeTest, ChernoffLowerNeverExceedsExactTail) {
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(0, 199);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    const SupportMoments m = ComputeSupportMoments(probs);
    for (std::size_t msc = 0; msc <= n; msc += std::max<std::size_t>(1, n / 11)) {
      EXPECT_LE(ChernoffLowerBound(m.mean, msc),
                PoissonBinomialTailDP(probs, msc) + 1e-12)
          << "n=" << n << " msc=" << msc;
    }
  }
}

TEST(ClassifyTailTest, ThresholdPlacement) {
  const TailInterval interval{0.3, 0.6};
  EXPECT_EQ(ClassifyTail(interval, 0.7), BoundDecision::kReject);
  EXPECT_EQ(ClassifyTail(interval, 0.6), BoundDecision::kReject);  // <= upper
  EXPECT_EQ(ClassifyTail(interval, 0.45), BoundDecision::kUndecided);
  EXPECT_EQ(ClassifyTail(interval, 0.3), BoundDecision::kUndecided);  // not >
  EXPECT_EQ(ClassifyTail(interval, 0.2), BoundDecision::kAccept);
}

TEST(BoundCascadeTest, DecisionsNeverContradictExactTail) {
  // The end-to-end property the miner relies on: whenever the cascade
  // decides, the exact tail agrees with the decision.
  Rng rng(505);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(0, 149);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    const SupportMoments m = ComputeSupportMoments(probs);
    const std::size_t msc = rng.UniformInt(0, n);
    const double pft = rng.Uniform01() * 0.99;
    const double exact = PoissonBinomialTailDP(probs, msc);
    switch (ClassifyTail(CertifiedTailInterval(m.mean, m.variance, msc), pft)) {
      case BoundDecision::kReject:
        EXPECT_LE(exact, pft + 1e-12) << "n=" << n << " msc=" << msc;
        break;
      case BoundDecision::kAccept:
        EXPECT_GT(exact, pft - 1e-12) << "n=" << n << " msc=" << msc;
        break;
      case BoundDecision::kUndecided:
        break;
    }
  }
}

TEST(BoundedTailDpTest, CompletedRunsBitIdenticalAbortedRunsStayUnderThreshold) {
  // The certified mid-DP early exit: either the scratch overload returns
  // the bitwise-identical exact tail, or it aborted — in which case both
  // the returned bound and the exact tail must sit at or below the
  // threshold, so a threshold comparison cannot tell the two apart.
  Rng rng(606);
  DpScratch scratch;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(0, 499);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    const std::size_t msc = rng.UniformInt(0, n + 1);
    const double pft = rng.Uniform01();
    const double exact = PoissonBinomialTailDP(probs, msc);
    const double bounded = PoissonBinomialTailDP(probs, msc, pft, scratch);
    if (bounded != exact) {
      EXPECT_LE(bounded, pft) << "n=" << n << " msc=" << msc;
      EXPECT_LE(exact, pft) << "n=" << n << " msc=" << msc;
    }
    // Early exit disabled: always bit-identical.
    EXPECT_EQ(PoissonBinomialTailDP(probs, msc, -1.0, scratch), exact);
  }
}

}  // namespace
}  // namespace ufim
