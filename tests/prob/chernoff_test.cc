#include "prob/chernoff.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

TEST(ChernoffTest, InapplicableWhenThresholdBelowMean) {
  // msc <= mu + 1: delta <= 0, bound must be the vacuous 1.
  EXPECT_EQ(ChernoffUpperBound(10.0, 5), 1.0);
  EXPECT_EQ(ChernoffUpperBound(10.0, 11), 1.0);
}

TEST(ChernoffTest, ZeroMeanEdge) {
  EXPECT_EQ(ChernoffUpperBound(0.0, 0), 1.0);
  EXPECT_EQ(ChernoffUpperBound(0.0, 3), 0.0);
}

TEST(ChernoffTest, BoundShrinksWithThresholdWithinEachBranch) {
  // The lemma's piecewise bound is monotone within each branch but jumps
  // at the seam delta = 2e-1 (both pieces are valid upper bounds; the
  // 2^{-delta*mu} piece is looser near the seam). Test each branch.
  const double mu = 20.0;
  constexpr double kSeamDelta = 2.0 * 2.71828182845904523536 - 1.0;
  const std::size_t seam_msc = static_cast<std::size_t>(kSeamDelta * mu + mu + 1.0);
  double prev = 2.0;
  for (std::size_t msc = 25; msc < seam_msc; msc += 5) {
    const double b = ChernoffUpperBound(mu, msc);
    EXPECT_LE(b, prev) << "sub-exponential branch, msc=" << msc;
    EXPECT_LE(b, 1.0);
    prev = b;
  }
  prev = 2.0;
  for (std::size_t msc = seam_msc + 5; msc <= 400; msc += 25) {
    const double b = ChernoffUpperBound(mu, msc);
    EXPECT_LE(b, prev) << "exponential branch, msc=" << msc;
    prev = b;
  }
  EXPECT_LT(prev, 1e-6);
}

// Soundness: the bound must never fall below the exact tail, otherwise
// Chernoff pruning would drop truly frequent itemsets. Property-swept
// over random Poisson-binomial instances.
struct ChernoffSoundnessCase {
  unsigned seed;
  std::size_t n;
};

class ChernoffSoundnessTest
    : public ::testing::TestWithParam<ChernoffSoundnessCase> {};

TEST_P(ChernoffSoundnessTest, BoundDominatesExactTail) {
  const ChernoffSoundnessCase c = GetParam();
  Rng rng(c.seed);
  std::vector<double> probs(c.n);
  for (double& p : probs) p = rng.Uniform01();
  SupportMoments m = ComputeSupportMoments(probs);
  for (std::size_t msc = 1; msc <= c.n; msc += std::max<std::size_t>(1, c.n / 17)) {
    const double exact = PoissonBinomialTailDP(probs, msc);
    const double bound = ChernoffUpperBound(m.mean, msc);
    EXPECT_GE(bound, exact - 1e-12)
        << "n=" << c.n << " msc=" << msc << " mean=" << m.mean;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, ChernoffSoundnessTest,
    ::testing::Values(ChernoffSoundnessCase{1, 5}, ChernoffSoundnessCase{2, 10},
                      ChernoffSoundnessCase{3, 25}, ChernoffSoundnessCase{4, 50},
                      ChernoffSoundnessCase{5, 100},
                      ChernoffSoundnessCase{6, 250},
                      ChernoffSoundnessCase{7, 500},
                      ChernoffSoundnessCase{8, 1000}));

TEST(ChernoffCertifiesInfrequentTest, ConsistentWithBound) {
  // If certification fires, the exact tail is really <= pft.
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 10 + rng.UniformInt(0, 90);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform01();
    SupportMoments m = ComputeSupportMoments(probs);
    const std::size_t msc = 1 + rng.UniformInt(0, n - 1);
    const double pft = rng.Uniform01() * 0.98;
    if (ChernoffCertifiesInfrequent(m.mean, msc, pft)) {
      EXPECT_LE(PoissonBinomialTailDP(probs, msc), pft + 1e-12)
          << "n=" << n << " msc=" << msc << " pft=" << pft;
    }
  }
}

}  // namespace
}  // namespace ufim
