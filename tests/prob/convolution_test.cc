#include "prob/convolution.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(NaiveConvolveTest, KnownProduct) {
  // (1 + x + x^2)(2 + x) = 2 + 3x + 3x^2 + x^3.
  auto c = NaiveConvolve({1, 1, 1}, {2, 1});
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_DOUBLE_EQ(c[3], 1.0);
}

TEST(NaiveConvolveTest, EmptyYieldsEmpty) {
  EXPECT_TRUE(NaiveConvolve({}, {1.0}).empty());
}

TEST(CapPmfTest, NoOpWhenShort) {
  std::vector<double> pmf = {0.5, 0.5};
  EXPECT_EQ(CapPmf(pmf, 5), pmf);
  EXPECT_EQ(CapPmf(pmf, 1), pmf);  // length == cap+1 already
}

TEST(CapPmfTest, FoldsTailMass) {
  std::vector<double> pmf = {0.1, 0.2, 0.3, 0.25, 0.15};
  auto capped = CapPmf(pmf, 2);
  ASSERT_EQ(capped.size(), 3u);
  EXPECT_DOUBLE_EQ(capped[0], 0.1);
  EXPECT_DOUBLE_EQ(capped[1], 0.2);
  EXPECT_NEAR(capped[2], 0.7, 1e-12);
}

TEST(CapPmfTest, CapZeroFoldsEverything) {
  auto capped = CapPmf({0.4, 0.6}, 0);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_NEAR(capped[0], 1.0, 1e-12);
}

TEST(CappedConvolveTest, ExactTailPreservedUnderCapping) {
  // Two Bernoulli(0.5) trials, cap at 1: Pr(S >= 1) must be 0.75.
  std::vector<double> bern = {0.5, 0.5};
  auto c = CappedConvolve(bern, bern, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 0.25, 1e-12);
  EXPECT_NEAR(c[1], 0.75, 1e-12);
}

TEST(CappedConvolveTest, OverflowBinAbsorbsCrossTerms) {
  // Capped operands with overflow bins: {P(0)=0.5, P(>=1)=0.5} squared
  // capped at 1 gives P(0)=0.25, P(>=1)=0.75 regardless of path.
  std::vector<double> capped = {0.5, 0.5};
  auto c = CappedConvolve(capped, capped, 1, /*fft_threshold=*/1);  // force FFT
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 0.25, 1e-9);
  EXPECT_NEAR(c[1], 0.75, 1e-9);
}

TEST(CappedConvolveTest, FftAndNaivePathsAgree) {
  std::vector<double> a = {0.2, 0.3, 0.5};
  std::vector<double> b = {0.6, 0.4};
  auto naive_path = CappedConvolve(a, b, 2, /*fft_threshold=*/100);
  auto fft_path = CappedConvolve(a, b, 2, /*fft_threshold=*/1);
  ASSERT_EQ(naive_path.size(), fft_path.size());
  for (std::size_t i = 0; i < naive_path.size(); ++i) {
    EXPECT_NEAR(naive_path[i], fft_path[i], 1e-9);
  }
}

}  // namespace
}  // namespace ufim
