#include "prob/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(StdNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(StdNormalCdf(-1.0), 0.15865525393145707, 1e-10);
  EXPECT_NEAR(StdNormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(StdNormalCdf(-3.0), 0.0013498980316300933, 1e-12);
}

TEST(StdNormalCdfTest, MonotoneAndSymmetric) {
  double prev = -1.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    double v = StdNormalCdf(x);
    EXPECT_GT(v, prev);
    EXPECT_NEAR(StdNormalCdf(-x), 1.0 - v, 1e-12);
    prev = v;
  }
}

TEST(StdNormalQuantileTest, InvertsCdf) {
  for (double p = 0.001; p < 0.999; p += 0.017) {
    const double x = StdNormalQuantile(p);
    EXPECT_NEAR(StdNormalCdf(x), p, 1e-10) << "p=" << p;
  }
}

TEST(StdNormalQuantileTest, KnownValues) {
  EXPECT_NEAR(StdNormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(StdNormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(StdNormalQuantile(0.9), 1.2815515655446004, 1e-8);
}

TEST(StdNormalQuantileTest, EdgesAreInfinite) {
  EXPECT_EQ(StdNormalQuantile(0.0), -HUGE_VAL);
  EXPECT_EQ(StdNormalQuantile(1.0), HUGE_VAL);
}

TEST(NormalApproxFrequentProbabilityTest, CenteredCaseIsHalf) {
  // esup exactly at the continuity-corrected threshold: probability 1/2.
  EXPECT_NEAR(NormalApproxFrequentProbability(9.5, 4.0, 10), 0.5, 1e-12);
}

TEST(NormalApproxFrequentProbabilityTest, OrientationIsFrequent) {
  // esup far above threshold -> probability near 1 (this pins down the
  // fixed orientation of the paper's Φ formula; see DESIGN.md).
  EXPECT_GT(NormalApproxFrequentProbability(100.0, 25.0, 10), 0.999999);
  // esup far below threshold -> near 0.
  EXPECT_LT(NormalApproxFrequentProbability(1.0, 25.0, 100), 1e-6);
}

TEST(NormalApproxFrequentProbabilityTest, DegenerateVarianceIsStep) {
  EXPECT_EQ(NormalApproxFrequentProbability(10.0, 0.0, 10), 1.0);
  EXPECT_EQ(NormalApproxFrequentProbability(9.0, 0.0, 10), 0.0);
  EXPECT_EQ(NormalApproxFrequentProbability(9.5, 0.0, 10), 1.0);
}

TEST(NormalApproxFrequentProbabilityTest, MonotoneInEsup) {
  double prev = 0.0;
  for (double esup = 0.0; esup <= 20.0; esup += 0.5) {
    double v = NormalApproxFrequentProbability(esup, 5.0, 10);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace ufim
