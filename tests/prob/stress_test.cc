// Numerical stress: the distribution machinery under extreme inputs —
// probability vectors at the edges of the unit interval, large trial
// counts, and far-tail evaluations. Failures here would surface as
// subtly wrong mining results rather than crashes, so the bounds are
// checked directly.
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/chernoff.h"
#include "prob/normal.h"
#include "prob/poisson.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

TEST(PoissonBinomialStressTest, AllProbabilitiesTiny) {
  std::vector<double> probs(5000, 1e-9);
  // Mean 5e-6: Pr(S >= 1) ~ 5e-6, Pr(S >= 2) negligible.
  const double t1 = PoissonBinomialTailDP(probs, 1);
  EXPECT_NEAR(t1, 5e-6, 1e-8);
  EXPECT_LT(PoissonBinomialTailDP(probs, 2), 1e-9);
  EXPECT_NEAR(PoissonBinomialTailDC(probs, 1), t1, 1e-12);
}

TEST(PoissonBinomialStressTest, AllProbabilitiesNearOne) {
  std::vector<double> probs(2000, 1.0 - 1e-9);
  EXPECT_NEAR(PoissonBinomialTailDP(probs, 2000), 1.0, 1e-5);
  EXPECT_NEAR(PoissonBinomialTailDP(probs, 1000), 1.0, 1e-12);
  EXPECT_NEAR(PoissonBinomialTailDC(probs, 1999), 1.0, 1e-5);
}

TEST(PoissonBinomialStressTest, MixedExtremes) {
  // Half certain, half impossible-ish: S ≈ 1000 deterministic.
  std::vector<double> probs;
  for (int i = 0; i < 1000; ++i) probs.push_back(1.0 - 1e-12);
  for (int i = 0; i < 1000; ++i) probs.push_back(1e-12);
  EXPECT_NEAR(PoissonBinomialTailDP(probs, 1000), 1.0, 1e-8);
  EXPECT_LT(PoissonBinomialTailDP(probs, 1002), 1e-8);
  EXPECT_NEAR(PoissonBinomialTailDC(probs, 1000), 1.0, 1e-8);
}

TEST(PoissonBinomialStressTest, PmfStaysNormalizedAtScale) {
  Rng rng(77);
  std::vector<double> probs(20000);
  for (double& p : probs) p = rng.Uniform01();
  auto pmf = PoissonBinomialCappedPmfDP(probs, 12000);
  const double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
  for (double v : pmf) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(PoissonBinomialStressTest, DpAndDcAgreeOnAdversarialShapes) {
  // Bimodal probability vectors are the hardest for capped convolution.
  Rng rng(78);
  std::vector<double> probs;
  for (int i = 0; i < 500; ++i) probs.push_back(rng.Uniform(0.9, 1.0));
  for (int i = 0; i < 500; ++i) probs.push_back(rng.Uniform(0.0, 0.1));
  for (std::size_t k : {400u, 500u, 550u, 600u}) {
    EXPECT_NEAR(PoissonBinomialTailDP(probs, k), PoissonBinomialTailDC(probs, k),
                1e-8)
        << "k=" << k;
  }
}

TEST(NormalStressTest, QuantileFarTails) {
  for (double p : {1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9}) {
    const double x = StdNormalQuantile(p);
    EXPECT_NEAR(StdNormalCdf(x), p, p * 1e-3 + 1e-13) << "p=" << p;
  }
}

TEST(NormalStressTest, CdfExtremeArguments) {
  EXPECT_EQ(StdNormalCdf(-40.0), 0.0);
  EXPECT_EQ(StdNormalCdf(40.0), 1.0);
  EXPECT_GT(StdNormalCdf(-8.0), 0.0);
  EXPECT_LT(StdNormalCdf(-8.0), 1e-14);
}

TEST(PoissonStressTest, LargeLambdaLargeK) {
  // Around the mean of Poisson(1e5) the CDF is ~0.5.
  EXPECT_NEAR(PoissonCdf(100000, 1e5), 0.5, 0.01);
  EXPECT_NEAR(PoissonTail(100000, 1e5), 0.5, 0.01);
  // Ten sigma out: essentially 0 / 1.
  EXPECT_LT(PoissonTail(103200, 1e5), 1e-10);
  EXPECT_GT(PoissonTail(96800, 1e5), 1.0 - 1e-10);
}

TEST(PoissonStressTest, LambdaForTailExtremePft) {
  for (double pft : {1e-6, 1.0 - 1e-6}) {
    const double lambda = PoissonLambdaForTail(100, pft);
    EXPECT_GT(PoissonTail(100, lambda + 1e-6), pft);
  }
}

TEST(ChernoffStressTest, SoundOnExtremeVectors) {
  std::vector<double> probs(3000, 0.999);
  SupportMoments m = ComputeSupportMoments(probs);
  for (std::size_t msc : {2997u, 2999u, 3000u}) {
    EXPECT_GE(ChernoffUpperBound(m.mean, msc),
              PoissonBinomialTailDP(probs, msc) - 1e-12);
  }
}

TEST(MomentsStressTest, KahanKeepsPrecisionOverMillions) {
  // 4M tiny probabilities: naive summation drifts, Kahan must not.
  std::vector<double> probs(4'000'000, 1e-7);
  SupportMoments m = ComputeSupportMoments(probs);
  EXPECT_NEAR(m.mean, 0.4, 1e-9);
  EXPECT_NEAR(m.variance, 0.4 * (1.0 - 1e-7), 1e-9);
}

}  // namespace
}  // namespace ufim
