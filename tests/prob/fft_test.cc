#include "prob/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/convolution.h"

namespace ufim {
namespace {

TEST(FftTest, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data = {
      {1, 0}, {2, 0}, {3, 0}, {4, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}};
  auto original = data;
  Fft(data, false);
  Fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real() / 8.0, original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag() / 8.0, original[i].imag(), 1e-12);
  }
}

TEST(FftTest, TransformOfImpulseIsFlat) {
  std::vector<std::complex<double>> data(8, {0, 0});
  data[0] = {1, 0};
  Fft(data, false);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleElementIsIdentity) {
  std::vector<std::complex<double>> data = {{3.5, -1.0}};
  Fft(data, false);
  EXPECT_EQ(data[0], std::complex<double>(3.5, -1.0));
}

TEST(FftConvolveTest, MatchesKnownProduct) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2.
  auto c = FftConvolve({1, 2}, {3, 4});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 3.0, 1e-9);
  EXPECT_NEAR(c[1], 10.0, 1e-9);
  EXPECT_NEAR(c[2], 8.0, 1e-9);
}

TEST(FftConvolveTest, EmptyOperandYieldsEmpty) {
  EXPECT_TRUE(FftConvolve({}, {1.0}).empty());
  EXPECT_TRUE(FftConvolve({1.0}, {}).empty());
}

TEST(FftConvolveTest, MatchesNaiveOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t la = 1 + rng.UniformInt(0, 60);
    const std::size_t lb = 1 + rng.UniformInt(0, 60);
    std::vector<double> a(la), b(lb);
    for (double& x : a) x = rng.Uniform01();
    for (double& x : b) x = rng.Uniform01();
    auto fast = FftConvolve(a, b);
    auto slow = NaiveConvolve(a, b);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-9) << "trial " << trial << " i " << i;
    }
  }
}

TEST(FftConvolveTest, ProbabilityMassPreserved) {
  // Convolving two pmfs yields a pmf: mass sums to 1.
  std::vector<double> a = {0.25, 0.5, 0.25};
  std::vector<double> b = {0.1, 0.9};
  auto c = FftConvolve(a, b);
  double sum = 0.0;
  for (double x : c) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace ufim
