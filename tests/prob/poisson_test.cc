#include "prob/poisson.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace ufim {
namespace {

// Direct Poisson pmf summation in log space, as an independent oracle.
double PoissonCdfBySummation(std::size_t k, double lambda) {
  double sum = 0.0;
  for (std::size_t i = 0; i <= k; ++i) {
    sum += std::exp(-lambda + static_cast<double>(i) * std::log(lambda) -
                    LogFactorial(static_cast<unsigned>(i)));
  }
  return sum;
}

TEST(RegularizedGammaTest, ComplementaryPair) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, 0) = 0.
  EXPECT_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedGammaQ(3.0, 0.0), 1.0);
}

TEST(PoissonCdfTest, MatchesDirectSummation) {
  for (double lambda : {0.5, 2.0, 7.5, 30.0}) {
    for (std::size_t k : {0u, 1u, 3u, 10u, 40u}) {
      EXPECT_NEAR(PoissonCdf(k, lambda), PoissonCdfBySummation(k, lambda), 1e-10)
          << "lambda=" << lambda << " k=" << k;
    }
  }
}

TEST(PoissonTailTest, ComplementsCdf) {
  for (double lambda : {1.0, 5.0, 20.0}) {
    for (std::size_t k = 1; k <= 30; k += 3) {
      EXPECT_NEAR(PoissonTail(k, lambda), 1.0 - PoissonCdf(k - 1, lambda), 1e-10);
    }
  }
}

TEST(PoissonTailTest, EdgeCases) {
  EXPECT_EQ(PoissonTail(0, 5.0), 1.0);
  EXPECT_EQ(PoissonTail(3, 0.0), 0.0);
  EXPECT_EQ(PoissonCdf(3, 0.0), 1.0);
}

TEST(PoissonTailTest, MonotoneIncreasingInLambda) {
  double prev = 0.0;
  for (double lambda = 0.5; lambda <= 40.0; lambda += 0.5) {
    const double t = PoissonTail(10, lambda);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(PoissonLambdaForTailTest, AchievesRequestedTail) {
  for (std::size_t msc : {1u, 5u, 50u, 500u}) {
    for (double pft : {0.1, 0.5, 0.9, 0.99}) {
      const double lambda = PoissonLambdaForTail(msc, pft);
      // Just above lambda* the tail exceeds pft; just below it does not.
      EXPECT_GT(PoissonTail(msc, lambda + 1e-6), pft)
          << "msc=" << msc << " pft=" << pft;
      EXPECT_LE(PoissonTail(msc, lambda - 1e-6), pft + 1e-9)
          << "msc=" << msc << " pft=" << pft;
    }
  }
}

TEST(PoissonLambdaForTailTest, LambdaGrowsWithPft) {
  const std::size_t msc = 20;
  double prev = 0.0;
  for (double pft : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double lambda = PoissonLambdaForTail(msc, pft);
    EXPECT_GT(lambda, prev);
    prev = lambda;
  }
}

}  // namespace
}  // namespace ufim
