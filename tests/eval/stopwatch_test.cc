#include "eval/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = w.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.Reset();
  EXPECT_LT(w.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, SecondsConsistentWithMillis) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double ms = w.ElapsedMillis();
  const double s = w.ElapsedSeconds();
  EXPECT_NEAR(s * 1000.0, ms, 5.0);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch w;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = w.ElapsedMillis();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace ufim
