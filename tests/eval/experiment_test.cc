#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

TEST(ExperimentTest, RunsExpectedMinerAndFillsMeasurement) {
  UncertainDatabase db = MakePaperTable1();
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori);
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto m = RunExpectedExperiment(*miner, db, params);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->algorithm, "UApriori");
  EXPECT_EQ(m->num_frequent, 2u);  // {A}, {C} per paper Example 1
  EXPECT_GE(m->millis, 0.0);
  EXPECT_GT(m->counters.candidates_generated, 0u);
  EXPECT_EQ(m->result.size(), m->num_frequent);
}

TEST(ExperimentTest, RunsProbabilisticMinerAndFillsMeasurement) {
  UncertainDatabase db = MakePaperTable1();
  auto miner = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDPB);
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  auto m = RunProbabilisticExperiment(*miner, db, params);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->algorithm, "DPB");
  EXPECT_GT(m->num_frequent, 0u);
}

TEST(ExperimentTest, PropagatesParameterErrors) {
  UncertainDatabase db = MakePaperTable1();
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori);
  ExpectedSupportParams bad;
  bad.min_esup = 0.0;
  auto m = RunExpectedExperiment(*miner, db, bad);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExperimentTest, PeakBytesZeroWithoutHooks) {
  // This test binary does NOT link ufim_alloc_hooks.
  UncertainDatabase db = MakePaperTable1();
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine);
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto m = RunExpectedExperiment(*miner, db, params);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->peak_bytes, 0u);
}

}  // namespace
}  // namespace ufim
