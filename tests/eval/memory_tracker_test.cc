// Linked against ufim_alloc_hooks, so the counters are live here.
#include "eval/memory_tracker.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(MemoryTrackerTest, HooksAreInstalledInThisBinary) {
  EXPECT_TRUE(memory_tracker::HooksInstalled());
}

TEST(MemoryTrackerTest, AllocationMovesCurrentAndPeak) {
  memory_tracker::ResetPeak();
  const std::size_t before = memory_tracker::CurrentBytes();
  {
    auto block = std::make_unique<std::vector<char>>(1 << 20);
    EXPECT_GE(memory_tracker::CurrentBytes(), before + (1 << 20));
    EXPECT_GE(memory_tracker::PeakBytes(), before + (1 << 20));
  }
  // Freed: current returns near the baseline, peak stays high.
  EXPECT_LT(memory_tracker::CurrentBytes(), before + (1 << 16));
  EXPECT_GE(memory_tracker::PeakBytes(), before + (1 << 20));
}

TEST(MemoryTrackerTest, ResetPeakDropsToCurrent) {
  {
    std::vector<char> big(1 << 20);
    (void)big;
  }
  memory_tracker::ResetPeak();
  EXPECT_EQ(memory_tracker::PeakBytes(), memory_tracker::CurrentBytes());
}

TEST(MemoryTrackerTest, AllocationCountIncreases) {
  const std::uint64_t before = memory_tracker::AllocationCount();
  auto p = std::make_unique<int>(5);
  EXPECT_GT(memory_tracker::AllocationCount(), before);
}

TEST(ScopedPeakMemoryTest, ReportsDeltaAboveBaseline) {
  ScopedPeakMemory scope;
  EXPECT_EQ(scope.PeakDeltaBytes(), 0u);
  {
    std::vector<char> big(512 * 1024);
    (void)big;
  }
  EXPECT_GE(scope.PeakDeltaBytes(), 512u * 1024u);
  EXPECT_LT(scope.PeakDeltaBytes(), 8u * 1024u * 1024u);
}

TEST(ScopedPeakMemoryTest, NestedScopesSeeOwnDeltas) {
  ScopedPeakMemory outer;
  {
    std::vector<char> a(256 * 1024);
    (void)a;
  }
  ScopedPeakMemory inner;  // resets the peak
  EXPECT_EQ(inner.PeakDeltaBytes(), 0u);
  {
    std::vector<char> b(64 * 1024);
    (void)b;
  }
  EXPECT_GE(inner.PeakDeltaBytes(), 64u * 1024u);
  EXPECT_LT(inner.PeakDeltaBytes(), 256u * 1024u);
}

TEST(MemoryTrackerTest, AlignedAllocationsTracked) {
  memory_tracker::ResetPeak();
  const std::size_t before = memory_tracker::CurrentBytes();
  struct alignas(64) Wide {
    char data[256];
  };
  auto w = std::make_unique<Wide>();
  EXPECT_GE(memory_tracker::CurrentBytes(), before + sizeof(Wide));
}

}  // namespace
}  // namespace ufim
