#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

MiningResult ResultOf(std::initializer_list<Itemset> itemsets) {
  MiningResult r;
  for (const Itemset& s : itemsets) {
    FrequentItemset fi;
    fi.itemset = s;
    r.Add(fi);
  }
  return r;
}

TEST(MetricsTest, PerfectAgreement) {
  MiningResult a = ResultOf({Itemset({1}), Itemset({1, 2})});
  PrecisionRecall pr = ComputePrecisionRecall(a, a);
  EXPECT_EQ(pr.precision, 1.0);
  EXPECT_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.intersection, 2u);
}

TEST(MetricsTest, FalsePositivesLowerPrecisionOnly) {
  MiningResult approx = ResultOf({Itemset({1}), Itemset({2}), Itemset({3})});
  MiningResult exact = ResultOf({Itemset({1}), Itemset({2})});
  PrecisionRecall pr = ComputePrecisionRecall(approx, exact);
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(pr.recall, 1.0);
}

TEST(MetricsTest, FalseNegativesLowerRecallOnly) {
  MiningResult approx = ResultOf({Itemset({1})});
  MiningResult exact = ResultOf({Itemset({1}), Itemset({2})});
  PrecisionRecall pr = ComputePrecisionRecall(approx, exact);
  EXPECT_EQ(pr.precision, 1.0);
  EXPECT_NEAR(pr.recall, 0.5, 1e-12);
}

TEST(MetricsTest, DisjointResults) {
  MiningResult approx = ResultOf({Itemset({1})});
  MiningResult exact = ResultOf({Itemset({2})});
  PrecisionRecall pr = ComputePrecisionRecall(approx, exact);
  EXPECT_EQ(pr.precision, 0.0);
  EXPECT_EQ(pr.recall, 0.0);
  EXPECT_EQ(pr.intersection, 0u);
}

TEST(MetricsTest, EmptyDenominatorsDefaultToOne) {
  MiningResult empty;
  MiningResult nonempty = ResultOf({Itemset({1})});
  PrecisionRecall both_empty = ComputePrecisionRecall(empty, empty);
  EXPECT_EQ(both_empty.precision, 1.0);
  EXPECT_EQ(both_empty.recall, 1.0);
  PrecisionRecall empty_approx = ComputePrecisionRecall(empty, nonempty);
  EXPECT_EQ(empty_approx.precision, 1.0);
  EXPECT_EQ(empty_approx.recall, 0.0);
}

TEST(MetricsTest, ItemsetOrderIrrelevant) {
  MiningResult a = ResultOf({Itemset({2, 1}), Itemset({3})});
  MiningResult b = ResultOf({Itemset({3}), Itemset({1, 2})});
  PrecisionRecall pr = ComputePrecisionRecall(a, b);
  EXPECT_EQ(pr.precision, 1.0);
  EXPECT_EQ(pr.recall, 1.0);
}

}  // namespace
}  // namespace ufim
