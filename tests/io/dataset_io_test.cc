#include "io/dataset_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(DatasetIoTest, FormatAndParseRoundTrip) {
  Transaction t({{0, 0.8}, {5, 0.25}, {17, 1.0}});
  std::string line = FormatTransactionLine(t);
  Result<Transaction> parsed = ParseTransactionLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST_F(DatasetIoTest, ParseRejectsMalformedUnits) {
  EXPECT_FALSE(ParseTransactionLine("abc").ok());
  EXPECT_FALSE(ParseTransactionLine("1:").ok());
  EXPECT_FALSE(ParseTransactionLine(":0.5").ok());
  EXPECT_FALSE(ParseTransactionLine("1:0.5x").ok());
  EXPECT_FALSE(ParseTransactionLine("x:0.5").ok());
  EXPECT_FALSE(ParseTransactionLine("1:1.5").ok());
  EXPECT_FALSE(ParseTransactionLine("1:-0.2").ok());
}

TEST_F(DatasetIoTest, ParseAcceptsEmptyLineAsEmptyTransaction) {
  Result<Transaction> parsed = ParseTransactionLine("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST_F(DatasetIoTest, WriteReadRoundTripPreservesDatabase) {
  UncertainDatabase db = MakePaperTable1();
  const std::string path = TempPath("table1.udb");
  ASSERT_TRUE(WriteDataset(db, path).ok());
  Result<UncertainDatabase> loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ((*loaded)[i], db[i]) << "transaction " << i;
  }
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, ReadSkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.udb");
  {
    std::ofstream out(path);
    out << "# header comment\n\n0:0.5 1:0.25\n\n# trailing\n2:1\n";
  }
  Result<UncertainDatabase> loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)[0].ProbabilityOf(1), 0.25);
  EXPECT_DOUBLE_EQ((*loaded)[1].ProbabilityOf(2), 1.0);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, ReadReportsLineNumberOnError) {
  const std::string path = TempPath("broken.udb");
  {
    std::ofstream out(path);
    out << "0:0.5\n1:bad\n";
  }
  Result<UncertainDatabase> loaded = ReadDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, ReadMissingFileIsIOError) {
  Result<UncertainDatabase> loaded = ReadDataset("/nonexistent/nowhere.udb");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(DatasetIoTest, WriteToUnwritablePathIsIOError) {
  EXPECT_EQ(WriteDataset(MakePaperTable1(), "/nonexistent/dir/file.udb").code(),
            StatusCode::kIOError);
}

TEST_F(DatasetIoTest, ProbabilityPrecisionSurvivesRoundTrip) {
  // %.17g must reproduce doubles bit-exactly.
  Transaction t({{1, 0.1 + 0.2}, {2, 1.0 / 3.0}});
  Result<Transaction> parsed = ParseTransactionLine(FormatTransactionLine(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].prob, 0.1 + 0.2);
  EXPECT_EQ((*parsed)[1].prob, 1.0 / 3.0);
}

}  // namespace
}  // namespace ufim
