// Exercises the ufim_lint rule engine against the pass/fail fixture
// corpus in tests/lint/fixtures (one violating + one conforming snippet
// per rule), plus the machinery the rules stand on: comment/string
// stripping, the waiver syntax, path scoping, and the cross-file
// unordered-container symbol table.
//
// The engine is linked directly (ufim_lint_core) so the assertions see
// structured Diagnostics; CI additionally runs the ufim_lint binary
// over the real tree via the ufim_lint_tree CTest target.
#include "ufim_lint_lib.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ufim::lint {
namespace {

#ifndef UFIM_LINT_FIXTURE_DIR
#error "UFIM_LINT_FIXTURE_DIR must point at tests/lint/fixtures"
#endif

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(UFIM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

std::vector<Diagnostic> LintOne(const std::string& path,
                                const std::string& content) {
  return Lint({SourceFile{path, content}});
}

/// True when every diagnostic carries `rule` and there is at least one.
bool AllAre(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return !diags.empty() &&
         std::all_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

struct RuleFixture {
  const char* rule;
  const char* bad;
  const char* good;
  const char* lint_path;  // synthetic repo-relative path for scoping
};

const RuleFixture kRuleFixtures[] = {
    {"catch-run-aborted", "catch_run_aborted.bad.cc",
     "catch_run_aborted.good.cc", "src/core/example.cc"},
    {"no-nondeterminism", "no_nondeterminism.bad.cc",
     "no_nondeterminism.good.cc", "src/core/example.cc"},
    {"unordered-iteration", "unordered_iteration.bad.cc",
     "unordered_iteration.good.cc", "src/core/example.cc"},
    {"missing-poll", "missing_poll.bad.cc", "missing_poll.good.cc",
     "src/algo/example.cc"},
    {"no-iostream", "no_iostream.bad.cc", "no_iostream.good.cc",
     "src/core/example.cc"},
    {"raw-mutex", "raw_mutex.bad.cc", "raw_mutex.good.cc",
     "src/core/example.cc"},
    {"raw-view", "raw_view.bad.cc", "raw_view.good.cc",
     "src/core/example.cc"},
};

TEST(UfimLintFixtures, ViolatingFixtureTripsExactlyItsRule) {
  for (const RuleFixture& f : kRuleFixtures) {
    const std::vector<Diagnostic> diags =
        LintOne(f.lint_path, ReadFixture(f.bad));
    EXPECT_TRUE(AllAre(diags, f.rule))
        << f.bad << ": expected only [" << f.rule << "], got "
        << diags.size() << " diagnostics"
        << (diags.empty() ? "" : ", first: " + FormatDiagnostic(diags[0]));
  }
}

TEST(UfimLintFixtures, ConformingFixtureIsClean) {
  for (const RuleFixture& f : kRuleFixtures) {
    const std::vector<Diagnostic> diags =
        LintOne(f.lint_path, ReadFixture(f.good));
    EXPECT_TRUE(diags.empty())
        << f.good << ": " << (diags.empty() ? "" : FormatDiagnostic(diags[0]));
  }
}

TEST(UfimLintFixtures, RulesAreScopedToLibraryPaths) {
  // The same violating content is fine outside the rule's scope: tests
  // may use unseeded randomness, catch what they like, print freely.
  for (const RuleFixture& f : kRuleFixtures) {
    const std::vector<Diagnostic> diags =
        LintOne("tests/core/example_test.cc", ReadFixture(f.bad));
    EXPECT_TRUE(diags.empty())
        << f.bad << " under tests/: " << FormatDiagnostic(diags[0]);
  }
}

TEST(UfimLint, MissingPollScopedToAlgoOnly) {
  // ParallelFor without a poll is only a violation for mining code in
  // src/algo — the execution layer itself (src/common) hosts the
  // primitives and would self-flag.
  const std::string content = ReadFixture("missing_poll.bad.cc");
  EXPECT_TRUE(LintOne("src/common/thread_pool.cc", content).empty());
  EXPECT_TRUE(AllAre(LintOne("src/algo/example.cc", content), "missing-poll"));
}

TEST(UfimLint, WaiverOnSameLineSuppresses) {
  const std::string content =
      "#include <cstdlib>\n"
      "int f() { return std::rand(); }  // ufim-lint: allow(no-nondeterminism) test-only helper\n";
  EXPECT_TRUE(LintOne("src/core/example.cc", content).empty());
}

TEST(UfimLint, WaiverOnLineAboveSuppresses) {
  const std::string content =
      "#include <cstdlib>\n"
      "// ufim-lint: allow(no-nondeterminism)  justified: fixture\n"
      "int f() { return std::rand(); }\n";
  EXPECT_TRUE(LintOne("src/core/example.cc", content).empty());
}

TEST(UfimLint, WaiverForADifferentRuleDoesNotSuppress) {
  const std::string content =
      "#include <cstdlib>\n"
      "// ufim-lint: allow(no-iostream)\n"
      "int f() { return std::rand(); }\n";
  EXPECT_TRUE(AllAre(LintOne("src/core/example.cc", content),
                     "no-nondeterminism"));
}

TEST(UfimLint, CommentsAndStringsNeverTrip) {
  const std::string content =
      "// discussing rand() and std::mutex in prose is fine\n"
      "/* even time(nullptr) in a block comment */\n"
      "const char* kDoc = \"catch (RunAbortedError&) in a string\";\n"
      "const char* kRaw = R\"(std::random_device in a raw string)\";\n";
  EXPECT_TRUE(LintOne("src/core/example.cc", content).empty());
}

TEST(UfimLint, StrippingPreservesLineStructure) {
  const std::string content =
      "int a; // comment\n"
      "const char* s = \"str\\\"ing\";\n"
      "/* multi\nline */ int b;\n";
  const std::string stripped = StripCommentsAndStrings(content);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  EXPECT_EQ(stripped.find("comment"), std::string::npos);
  EXPECT_EQ(stripped.find("str"), std::string::npos);
  EXPECT_EQ(stripped.find("multi"), std::string::npos);
}

TEST(UfimLint, UnorderedSymbolTableCrossesFiles) {
  // The member is declared unordered in the header; the iteration sits
  // in the .cc — the project-wide symbol table connects them.
  const SourceFile header{
      "src/core/widget.h",
      "#include <unordered_set>\n"
      "class Widget {\n"
      "  std::unordered_set<int> pool_;\n"
      "};\n"};
  const SourceFile impl{
      "src/core/widget.cc",
      "void Widget::Emit() {\n"
      "  for (int v : pool_) {\n"
      "    Observe(v);\n"
      "  }\n"
      "}\n"};
  const std::vector<Diagnostic> diags = Lint({header, impl});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iteration");
  EXPECT_EQ(diags[0].file, "src/core/widget.cc");
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(UfimLint, DiagnosticsAreSortedAndStable) {
  const SourceFile multi{
      "src/core/example.cc",
      "#include <iostream>\n"
      "#include <cstdlib>\n"
      "int f() { return std::rand(); }\n"};
  const std::vector<Diagnostic> a = Lint({multi});
  const std::vector<Diagnostic> b = Lint({multi});
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].rule, "no-iostream");
  EXPECT_EQ(a[0].line, 1u);
  EXPECT_EQ(a[1].rule, "no-nondeterminism");
  EXPECT_EQ(a[1].line, 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(FormatDiagnostic(a[i]), FormatDiagnostic(b[i]));
  }
}

TEST(UfimLint, FormatIsClickable) {
  const Diagnostic d{"src/core/x.cc", 12, "no-iostream", "msg"};
  EXPECT_EQ(FormatDiagnostic(d), "src/core/x.cc:12: [no-iostream] msg");
}

}  // namespace
}  // namespace ufim::lint
