#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ufim {
namespace {

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ThreadPoolTest, SubmitRunsTasksAndFuturesObserveCompletion) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task; the pool is still usable.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  // A task that submits more tasks into its own pool: the queue accepts
  // them and nothing in the pool waits on another task, so this cannot
  // deadlock even with every worker busy.
  std::vector<std::future<void>> inner;
  std::mutex mu;
  pool.Submit([&] {
      for (int i = 0; i < 8; ++i) {
        std::lock_guard<std::mutex> lock(mu);
        inner.push_back(pool.Submit([&inner_runs] { ++inner_runs; }));
      }
    }).get();
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& f : inner) f.get();
  }
  EXPECT_EQ(inner_runs.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool must not abandon queued tasks
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u, 16u}) {
    constexpr std::size_t kN = 997;  // prime: uneven chunk boundaries
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, threads, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEdgeSizes) {
  int runs = 0;
  ParallelFor(0, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelFor(1, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
  // num_threads = 0 means hardware concurrency.
  std::atomic<int> par_runs{0};
  ParallelFor(10, 0, [&par_runs](std::size_t) { ++par_runs; });
  EXPECT_EQ(par_runs.load(), 10);
}

TEST(ParallelForTest, ReusableAcrossManyRounds) {
  // Exercises pool reuse: repeated fork-joins over the shared global
  // pool must neither leak tasks nor lose indices.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    ParallelFor(100, 4, [&sum](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ParallelForTest, ExceptionPropagatesAfterAllChunksFinish) {
  std::vector<std::atomic<int>> ran(100);
  auto run = [&ran] {
    ParallelFor(100, 4, [&ran](std::size_t i) {
      ++ran[i];
      if (i == 37) throw std::invalid_argument("bad index");
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
  // The throwing chunk stops at the bad index; every *other* chunk runs
  // to completion (the caller blocks until all chunks finished, so no
  // worker can touch the shared state after the rethrow). Chunk c of 4
  // covers [c*100/4, (c+1)*100/4): index 37 lives in [25, 50).
  for (std::size_t i = 0; i < 100; ++i) {
    if (i < 25 || i >= 50) {
      EXPECT_EQ(ran[i].load(), 1) << i;
    } else if (i <= 37) {
      EXPECT_EQ(ran[i].load(), 1) << i;
    } else {
      EXPECT_EQ(ran[i].load(), 0) << i;
    }
  }
  // The global pool survives for later calls.
  std::atomic<int> after{0};
  ParallelFor(10, 4, [&after](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForTest, NestedParallelForRunsSerialAndCompletes) {
  // A body that itself calls ParallelFor: the inner call detects it is
  // on a pool worker and degrades to the serial loop instead of
  // deadlocking on a saturated pool.
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(8, 4, [&hits](std::size_t outer) {
    ParallelFor(8, 4, [&hits, outer](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForDynamicTest, CoversEveryIndexExactlyOnceWithValidWorkerIds) {
  for (std::size_t threads : {1u, 2u, 5u, 16u}) {
    constexpr std::size_t kN = 509;  // prime, larger than any worker count
    const std::size_t workers = ParallelWorkerCount(kN, threads);
    EXPECT_EQ(workers, std::min<std::size_t>(threads, kN));
    std::vector<std::atomic<int>> hits(kN);
    std::vector<std::atomic<int>> by_worker(workers);
    ParallelForDynamic(kN, threads,
                       [&](std::size_t i, std::size_t worker) {
                         ASSERT_LT(worker, workers);
                         ++hits[i];
                         ++by_worker[worker];
                       });
    int total = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
    for (std::size_t w = 0; w < workers; ++w) total += by_worker[w].load();
    EXPECT_EQ(total, static_cast<int>(kN));
  }
}

TEST(ParallelForDynamicTest, HandlesEdgeSizes) {
  int runs = 0;
  ParallelForDynamic(0, 4, [&runs](std::size_t, std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelForDynamic(1, 4, [&runs](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);  // serial fallback
    ++runs;
  });
  EXPECT_EQ(runs, 1);
  std::atomic<int> par_runs{0};
  ParallelForDynamic(10, 0, [&par_runs](std::size_t, std::size_t) { ++par_runs; });
  EXPECT_EQ(par_runs.load(), 10);
}

TEST(ParallelForDynamicTest, SkewedWorkloadsStillCoverEverything) {
  // One index is ~100x heavier than the rest — the shape the dynamic
  // scheduler exists for. All indices must still run exactly once.
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::size_t> heavy_work{0};
  ParallelForDynamic(kN, 4, [&](std::size_t i, std::size_t) {
    ++hits[i];
    const std::size_t spins = i == 0 ? 100000 : 1000;
    std::size_t acc = 0;
    for (std::size_t s = 0; s < spins; ++s) acc += s;
    heavy_work += acc > 0 ? 1 : 0;
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForDynamicTest, LowestFailingIndexExceptionWinsAndAllRun) {
  std::vector<std::atomic<int>> ran(100);
  auto run = [&ran] {
    ParallelForDynamic(100, 4, [&ran](std::size_t i, std::size_t) {
      ++ran[i];
      if (i == 37) throw std::invalid_argument("37 failed");
      if (i == 73) throw std::out_of_range("73 failed");
    });
  };
  // Unlike ParallelFor's chunked semantics, every index is attempted;
  // the exception of the lowest failing index is the one rethrown.
  EXPECT_THROW(run(), std::invalid_argument);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
  }
  std::atomic<int> after{0};
  ParallelForDynamic(10, 4, [&after](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForDynamicTest, NestedCallRunsSerialAndCompletes) {
  std::vector<std::atomic<int>> hits(64);
  ParallelForDynamic(8, 4, [&hits](std::size_t outer, std::size_t) {
    ParallelForDynamic(8, 4, [&hits, outer](std::size_t inner,
                                            std::size_t worker) {
      EXPECT_EQ(worker, 0u);  // nested: serial fallback on the worker
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ChunkingIsContiguous) {
  // Each index is executed by exactly one thread and chunks are
  // contiguous: record the executing thread per index and check that
  // equal-thread runs form intervals.
  constexpr std::size_t kN = 256;
  std::vector<std::thread::id> owner(kN);
  ParallelFor(kN, 4, [&owner](std::size_t i) {
    owner[i] = std::this_thread::get_id();
  });
  std::size_t switches = 0;
  for (std::size_t i = 1; i < kN; ++i) {
    if (owner[i] != owner[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 3u);  // at most num_chunks - 1 boundaries
}

}  // namespace
}  // namespace ufim
