#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ufim {
namespace {

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ThreadPoolTest, SubmitRunsTasksAndFuturesObserveCompletion) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task; the pool is still usable.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  // A task that submits more tasks into its own pool: the queue accepts
  // them and nothing in the pool waits on another task, so this cannot
  // deadlock even with every worker busy.
  std::vector<std::future<void>> inner;
  std::mutex mu;
  pool.Submit([&] {
      for (int i = 0; i < 8; ++i) {
        std::lock_guard<std::mutex> lock(mu);
        inner.push_back(pool.Submit([&inner_runs] { ++inner_runs; }));
      }
    }).get();
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& f : inner) f.get();
  }
  EXPECT_EQ(inner_runs.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool must not abandon queued tasks
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u, 16u}) {
    constexpr std::size_t kN = 997;  // prime: uneven chunk boundaries
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, threads, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEdgeSizes) {
  int runs = 0;
  ParallelFor(0, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelFor(1, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
  // num_threads = 0 means hardware concurrency.
  std::atomic<int> par_runs{0};
  ParallelFor(10, 0, [&par_runs](std::size_t) { ++par_runs; });
  EXPECT_EQ(par_runs.load(), 10);
}

TEST(ParallelForTest, ReusableAcrossManyRounds) {
  // Exercises pool reuse: repeated fork-joins over the shared global
  // pool must neither leak tasks nor lose indices.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    ParallelFor(100, 4, [&sum](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ParallelForTest, ExceptionPropagatesAfterAllChunksFinish) {
  std::vector<std::atomic<int>> ran(100);
  auto run = [&ran] {
    ParallelFor(100, 4, [&ran](std::size_t i) {
      ++ran[i];
      if (i == 37) throw std::invalid_argument("bad index");
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
  // The throwing chunk stops at the bad index; every *other* chunk runs
  // to completion (the caller blocks until all chunks finished, so no
  // worker can touch the shared state after the rethrow). Chunk c of 4
  // covers [c*100/4, (c+1)*100/4): index 37 lives in [25, 50).
  for (std::size_t i = 0; i < 100; ++i) {
    if (i < 25 || i >= 50) {
      EXPECT_EQ(ran[i].load(), 1) << i;
    } else if (i <= 37) {
      EXPECT_EQ(ran[i].load(), 1) << i;
    } else {
      EXPECT_EQ(ran[i].load(), 0) << i;
    }
  }
  // The global pool survives for later calls.
  std::atomic<int> after{0};
  ParallelFor(10, 4, [&after](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForTest, NestedParallelForRunsParallelAndCompletes) {
  // A body that itself calls ParallelFor: the inner call forks a real
  // nested task group (work-stealing scheduler; nothing in the pool
  // sleeps waiting on another task) instead of deadlocking on a
  // saturated pool or degrading to serial.
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(8, 4, [&hits](std::size_t outer) {
    ParallelFor(8, 4, [&hits, outer](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForDynamicTest, CoversEveryIndexExactlyOnceWithValidWorkerIds) {
  for (std::size_t threads : {1u, 2u, 5u, 16u}) {
    constexpr std::size_t kN = 509;  // prime, larger than any worker count
    const std::size_t workers = ParallelWorkerCount(kN, threads);
    EXPECT_EQ(workers, std::min<std::size_t>(threads, kN));
    std::vector<std::atomic<int>> hits(kN);
    std::vector<std::atomic<int>> by_worker(workers);
    ParallelForDynamic(kN, threads,
                       [&](std::size_t i, std::size_t worker) {
                         ASSERT_LT(worker, workers);
                         ++hits[i];
                         ++by_worker[worker];
                       });
    int total = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
    for (std::size_t w = 0; w < workers; ++w) total += by_worker[w].load();
    EXPECT_EQ(total, static_cast<int>(kN));
  }
}

TEST(ParallelForDynamicTest, HandlesEdgeSizes) {
  int runs = 0;
  ParallelForDynamic(0, 4, [&runs](std::size_t, std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelForDynamic(1, 4, [&runs](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);  // serial fallback
    ++runs;
  });
  EXPECT_EQ(runs, 1);
  std::atomic<int> par_runs{0};
  ParallelForDynamic(10, 0, [&par_runs](std::size_t, std::size_t) { ++par_runs; });
  EXPECT_EQ(par_runs.load(), 10);
}

TEST(ParallelForDynamicTest, SkewedWorkloadsStillCoverEverything) {
  // One index is ~100x heavier than the rest — the shape the dynamic
  // scheduler exists for. All indices must still run exactly once.
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::size_t> heavy_work{0};
  ParallelForDynamic(kN, 4, [&](std::size_t i, std::size_t) {
    ++hits[i];
    const std::size_t spins = i == 0 ? 100000 : 1000;
    std::size_t acc = 0;
    for (std::size_t s = 0; s < spins; ++s) acc += s;
    heavy_work += acc > 0 ? 1 : 0;
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForDynamicTest, LowestFailingIndexExceptionWinsAndAllRun) {
  std::vector<std::atomic<int>> ran(100);
  auto run = [&ran] {
    ParallelForDynamic(100, 4, [&ran](std::size_t i, std::size_t) {
      ++ran[i];
      if (i == 37) throw std::invalid_argument("37 failed");
      if (i == 73) throw std::out_of_range("73 failed");
    });
  };
  // Unlike ParallelFor's chunked semantics, every index is attempted;
  // the exception of the lowest failing index is the one rethrown.
  EXPECT_THROW(run(), std::invalid_argument);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
  }
  std::atomic<int> after{0};
  ParallelForDynamic(10, 4, [&after](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForDynamicTest, NestedCallRunsParallelAndCompletes) {
  // Each nested call forks its own group with a private worker-id space:
  // ids stay below the nested call's ParallelWorkerCount regardless of
  // which pool threads end up helping.
  const std::size_t nested_workers = ParallelWorkerCount(8, 4);
  std::vector<std::atomic<int>> hits(64);
  ParallelForDynamic(8, 4, [&](std::size_t outer, std::size_t) {
    ParallelForDynamic(8, 4, [&hits, nested_workers, outer](
                                 std::size_t inner, std::size_t worker) {
      EXPECT_LT(worker, nested_workers);
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(TaskGroupTest, SpawnedTasksAllRunAndStealsCoverEveryIndex) {
  // Many more tasks than participants: whatever mix of local pops and
  // steals the scheduler picks, every task must run exactly once.
  constexpr std::size_t kTasks = 512;
  std::vector<std::atomic<int>> hits(kTasks);
  TaskGroup group(8);
  for (std::size_t i = 0; i < kTasks; ++i) {
    const std::size_t index = group.Spawn([&hits, i] { ++hits[i]; });
    EXPECT_EQ(index, i);  // spawn indices are sequential
  }
  group.Wait();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(TaskGroupTest, TasksSpawnIntoTheirOwnGroup) {
  // Tasks fan out by spawning more tasks into the same group; Wait must
  // cover work spawned after it started draining.
  std::atomic<int> runs{0};
  TaskGroup group(4);
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&group, &runs] {
      ++runs;
      for (int j = 0; j < 8; ++j) {
        group.Spawn([&runs] { ++runs; });
      }
    });
  }
  group.Wait();
  EXPECT_EQ(runs.load(), 4 + 4 * 8);
}

namespace {

// Recursive fork-join over nested groups: sums [lo, hi) by splitting in
// half until small. Exercises nested TaskGroup spawn from inside a
// running task — the shape the miners' recursive splitting uses.
std::size_t NestedTreeSum(std::size_t lo, std::size_t hi) {
  if (hi - lo <= 4) {
    std::size_t acc = 0;
    for (std::size_t i = lo; i < hi; ++i) acc += i;
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  std::size_t left = 0, right = 0;
  TaskGroup group(4);
  group.Spawn([&left, lo, mid] { left = NestedTreeSum(lo, mid); });
  group.Spawn([&right, mid, hi] { right = NestedTreeSum(mid, hi); });
  group.Wait();
  return left + right;
}

}  // namespace

TEST(TaskGroupTest, NestedGroupsComputeDeterministicValue) {
  constexpr std::size_t kN = 1000;
  EXPECT_EQ(NestedTreeSum(0, kN), kN * (kN - 1) / 2);
}

TEST(TaskGroupTest, LowestSpawnIndexExceptionWinsAndAllTasksRun) {
  std::vector<std::atomic<int>> ran(10);
  TaskGroup group(4);
  for (std::size_t i = 0; i < 10; ++i) {
    group.Spawn([&ran, i] {
      ++ran[i];
      if (i == 3) throw std::out_of_range("index 3");
      if (i == 7) throw std::runtime_error("index 7");
    });
  }
  // A throwing task never cancels the others; the exception of the
  // lowest spawn index is the one rethrown, regardless of which task
  // happened to fail first in real time.
  EXPECT_THROW(group.Wait(), std::out_of_range);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
  }
}

TEST(TaskGroupTest, ReusableAcrossSpawnWaitPhases) {
  std::atomic<int> runs{0};
  TaskGroup group(4);
  for (int phase = 0; phase < 5; ++phase) {
    for (int i = 0; i < 16; ++i) {
      group.Spawn([&runs] { ++runs; });
    }
    group.Wait();
    EXPECT_EQ(runs.load(), (phase + 1) * 16);
  }
}

TEST(TaskGroupTest, DestructorWaitsWithoutRethrow) {
  std::atomic<int> runs{0};
  {
    TaskGroup group(4);
    group.Spawn([&runs] { ++runs; });
    group.Spawn([] { throw std::runtime_error("never observed"); });
    group.Spawn([&runs] { ++runs; });
    // No Wait: the destructor must run every task to completion and
    // swallow the stored exception.
  }
  EXPECT_EQ(runs.load(), 2);
}

TEST(TaskGroupTest, StressNestedSpawnAndSteal) {
  // TSan-exercised stress loop: repeated fork-joins with same-group
  // fan-out and nested child groups, racing local pops against steals.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    TaskGroup group(8);
    for (std::size_t i = 0; i < 32; ++i) {
      group.Spawn([&group, &sum, i] {
        sum += i;
        if (i % 4 == 0) {
          TaskGroup child(2);
          for (std::size_t j = 0; j < 4; ++j) {
            child.Spawn([&sum] { sum += 1; });
          }
          child.Wait();
        } else {
          group.Spawn([&sum] { sum += 1000; });
        }
      });
    }
    group.Wait();
    // 32 tasks summing 0..31, 8 of them spawn 4 nested (+1 each), the
    // other 24 spawn one same-group task (+1000 each).
    EXPECT_EQ(sum.load(), 496u + 8 * 4 + 24 * 1000) << "round " << round;
  }
}

TEST(ParallelForTest, ChunkingIsContiguous) {
  // Each index is executed by exactly one thread and chunks are
  // contiguous: record the executing thread per index and check that
  // equal-thread runs form intervals.
  constexpr std::size_t kN = 256;
  std::vector<std::thread::id> owner(kN);
  ParallelFor(kN, 4, [&owner](std::size_t i) {
    owner[i] = std::this_thread::get_id();
  });
  std::size_t switches = 0;
  for (std::size_t i = 1; i < kN; ++i) {
    if (owner[i] != owner[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 3u);  // at most num_chunks - 1 boundaries
}

}  // namespace
}  // namespace ufim
