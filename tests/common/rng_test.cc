#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform01() == b.Uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(2.0, 0.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(29);
  for (double skew : {0.0, 0.8, 1.0, 1.6, 2.5}) {
    for (int i = 0; i < 2000; ++i) {
      std::uint64_t k = rng.Zipf(11, skew);
      EXPECT_GE(k, 1u);
      EXPECT_LE(k, 11u);
    }
  }
}

TEST(RngTest, ZipfPmfMatchesTheory) {
  // Empirical frequencies vs k^-s over a small support.
  Rng rng(31);
  const double s = 1.2;
  const std::uint64_t n = 5;
  const int draws = 200000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < draws; ++i) ++counts[rng.Zipf(n, s)];
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += std::pow(double(k), -s);
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double expected = std::pow(double(k), -s) / norm;
    const double actual = counts[k] / double(draws);
    EXPECT_NEAR(actual, expected, 0.01) << "k=" << k;
  }
}

TEST(RngTest, ZipfHigherSkewConcentratesOnRankOne) {
  Rng rng(37);
  auto rank1_rate = [&](double skew) {
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (rng.Zipf(11, skew) == 1) ++hits;
    }
    return hits / 20000.0;
  };
  const double low = rank1_rate(0.8);
  const double high = rank1_rate(2.0);
  EXPECT_GT(high, low + 0.15);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = SampleWithoutReplacement(rng, 20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (auto v : sample) EXPECT_LT(v, 20u);
  }
  // k == n returns a permutation of everything.
  auto all = SampleWithoutReplacement(rng, 6, 6);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(all[i], i);
}

}  // namespace
}  // namespace ufim
