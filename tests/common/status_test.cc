#include "common/status.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, CodeFromStringRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIOError, StatusCode::kInternal,
        StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
        StatusCode::kResourceExhausted}) {
    StatusCode parsed = StatusCode::kInternal;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &parsed))
        << StatusCodeToString(code);
    EXPECT_EQ(parsed, code);
  }
}

TEST(StatusTest, CodeFromStringRejectsUnknownNames) {
  StatusCode parsed = StatusCode::kOk;
  EXPECT_FALSE(StatusCodeFromString("Unknown", &parsed));
  EXPECT_FALSE(StatusCodeFromString("", &parsed));
  EXPECT_FALSE(StatusCodeFromString("cancelled", &parsed));  // case-sensitive
  EXPECT_EQ(parsed, StatusCode::kOk);  // untouched on failure
}

Status FailsThenPropagates(bool fail) {
  UFIM_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ufim
