// RunContext unit coverage: the cancellation token, soft deadline and
// memory budget (this binary links the alloc hooks), the deterministic
// checkpoint-fault trigger, Reset-based retry, and the execution-layer
// contract (TaskGroup / ParallelFor observe a tripped token and the pool
// stays reusable afterwards). The cross-miner cancellation sweeps live
// in tests/integration/fault_injection_test.cc.
#include "common/run_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "eval/memory_tracker.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define UFIM_TEST_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define UFIM_TEST_SANITIZED 1
#endif

namespace ufim {
namespace {

constexpr std::uint64_t kCountOnly =
    std::numeric_limits<std::uint64_t>::max();

TEST(RunContextTest, DefaultIsLiveAndUnconstrained) {
  RunContext ctx;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ctx.CheckPoint().ok());
  EXPECT_FALSE(ctx.aborted());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(RunContextTest, CancelTripsAndCopiesShareTheToken) {
  RunContext ctx;
  RunContext copy = ctx;
  copy.Cancel();
  EXPECT_TRUE(ctx.aborted());
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
  // Idempotent, and the first trip wins over later causes.
  copy.Cancel();
  ctx.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kCancelled);
}

TEST(RunContextTest, DeadlineTripsWithinThePollWindow) {
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(0);
  // The amortized fast path reads the clock only ~every 32nd poll per
  // thread, so the trip lands within one window of polls.
  Status s = Status::OK();
  for (int i = 0; i < 64 && s.ok(); ++i) s = ctx.CheckPoint();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, DeadlineCheckedEveryPollInCountingMode) {
  RunContext ctx;
  ctx.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(kCountOnly, StatusCode::kInternal);
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, MemoryBudgetTripsOnTrackedGrowth) {
  ASSERT_TRUE(memory_tracker::HooksInstalled())
      << "this test binary must link ufim_alloc_hooks";
  RunContext ctx;
  ctx.SetMemoryBudgetBytes(1024);
  // Allocate well past the budget and keep it live across the poll.
  auto ballast = std::make_unique<std::vector<char>>(std::size_t{1} << 20);
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(kCountOnly, StatusCode::kInternal);
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kResourceExhausted);
  ASSERT_FALSE(ballast->empty());
}

TEST(RunContextTest, MemoryBudgetIsRelativeToTheArmTimeBaseline) {
  ASSERT_TRUE(memory_tracker::HooksInstalled());
  // Pre-existing allocations do not count: the budget measures growth
  // from the moment it is armed.
  auto preexisting = std::make_unique<std::vector<char>>(std::size_t{1} << 20);
  RunContext ctx;
  ctx.SetMemoryBudgetBytes(std::size_t{8} << 20);
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(kCountOnly, StatusCode::kInternal);
  EXPECT_TRUE(ctx.CheckPoint().ok());
  ASSERT_FALSE(preexisting->empty());
}

TEST(RunContextTest, ArmedFaultFiresAtTheExactCheckpoint) {
  RunContext ctx;
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(3, StatusCode::kCancelled);
  EXPECT_TRUE(ctx.CheckPoint().ok());
  EXPECT_TRUE(ctx.CheckPoint().ok());
  EXPECT_EQ(ctx.CheckPoint().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.checkpoints(), 3u);
  // Sticky once tripped.
  EXPECT_FALSE(ctx.CheckPoint().ok());
}

TEST(RunContextTest, CountOnlyArmingCountsWithoutFaulting) {
  RunContext ctx;
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(kCountOnly, StatusCode::kCancelled);
  for (int i = 0; i < 17; ++i) EXPECT_TRUE(ctx.CheckPoint().ok());
  EXPECT_EQ(ctx.checkpoints(), 17u);
}

TEST(RunContextTest, ResetRestoresAFreshContext) {
  RunContext ctx;
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.ArmFaultAtCheckpoint(1, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ctx.CheckPoint().ok());
  ctx.Reset();
  EXPECT_FALSE(ctx.aborted());
  EXPECT_EQ(ctx.checkpoints(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ctx.CheckPoint().ok());
}

TEST(RunContextTest, PollOrThrowCarriesTheStatus) {
  RunContext ctx;
  ctx.Cancel();
  try {
    ctx.PollOrThrow();
    FAIL() << "expected RunAbortedError";
  } catch (const RunAbortedError& aborted) {
    EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  }
  PollRunContext(nullptr);  // nullptr form is a no-op, never throws
}

TEST(RunContextTest, TaskGroupSkipsTasksOnceTripped) {
  RunContext ctx;
  ctx.Cancel();
  std::atomic<int> ran{0};
  TaskGroup group(2, &ctx);
  for (int i = 0; i < 8; ++i) group.Spawn([&] { ran.fetch_add(1); });
  group.Wait();
  // Skipped work must not be mistaken for completed work: callers poll
  // after Wait and unwind.
  EXPECT_EQ(ran.load(), 0);
  EXPECT_THROW(PollRunContext(&ctx), RunAbortedError);
}

TEST(RunContextTest, ParallelForUnwindsAndThePoolStaysReusable) {
  RunContext ctx;
  ctx.Cancel();
  std::atomic<int> ran{0};
  auto body = [&](std::size_t) { ran.fetch_add(1); };
  EXPECT_THROW(ParallelFor(1000, 4, body, &ctx), RunAbortedError);
  EXPECT_EQ(ran.load(), 0);
  // Same objects, fresh token: the pool and the loop run normally — the
  // cancelled run left nothing behind.
  ctx.AssertQuiescent();  // single-threaded test body: between runs
  ctx.Reset();
  ParallelFor(1000, 4, body, &ctx);
  EXPECT_EQ(ran.load(), 1000);
}

TEST(RunContextTest, CheckPointFastPathStaysCheap) {
  RunContext ctx;
  constexpr int kIters = 1 << 20;
  int ok = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) ok += ctx.CheckPoint().ok() ? 1 : 0;
  const double ns_per_call =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      kIters;
  EXPECT_EQ(ok, kIters);
  // Loose absolute ceiling: the fast path is a relaxed load plus a
  // thread-local tick. If it regresses to locking or reading the clock
  // every call, this trips long before the <1% mining budget would.
#if defined(UFIM_TEST_SANITIZED)
  constexpr double kMaxNsPerCall = 4000.0;
#else
  constexpr double kMaxNsPerCall = 250.0;
#endif
  EXPECT_LT(ns_per_call, kMaxNsPerCall);
}

}  // namespace
}  // namespace ufim
