#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0005, 1e-3));
}

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(MathUtilTest, LogFactorialMatchesDirectProduct) {
  double log_fact = 0.0;
  for (unsigned n = 1; n <= 20; ++n) {
    log_fact += std::log(static_cast<double>(n));
    EXPECT_NEAR(LogFactorial(n), log_fact, 1e-9) << "n=" << n;
  }
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
}

TEST(MathUtilTest, KahanSumBeatsNaiveAccumulation) {
  // Summing many tiny values onto a large one: naive accumulation loses
  // them entirely in double precision; Kahan keeps them.
  KahanSum kahan;
  kahan.Add(1e16);
  double naive = 1e16;
  for (int i = 0; i < 10000; ++i) {
    kahan.Add(0.25);
    naive += 0.25;
  }
  EXPECT_NEAR(kahan.value() - 1e16, 2500.0, 1e-6);
  // Demonstrate the naive path actually drifts (guards the test itself).
  EXPECT_GT(std::fabs((naive - 1e16) - 2500.0), 100.0);
}

TEST(MathUtilTest, KahanSumZeroByDefault) {
  KahanSum s;
  EXPECT_EQ(s.value(), 0.0);
}

}  // namespace
}  // namespace ufim
