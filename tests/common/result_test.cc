#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<std::string> ok = std::string("hit");
  Result<std::string> err = Status::Internal("boom");
  EXPECT_EQ(ok.value_or("fallback"), "hit");
  EXPECT_EQ(err.value_or("fallback"), "fallback");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  UFIM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ufim
