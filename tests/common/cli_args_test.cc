// Regression tests for the two CLI parsing bug classes the strict parser
// closes: full-token numeric validation (--threads abc silently became 0
// via atoll; --shards -1 wrapped to ~1.8e19) and unknown-flag rejection
// (--thread 4 used to absorb both tokens and mine with the default).
#include "common/cli_args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ufim::cli {
namespace {

Args ParseOk(const std::vector<const char*>& argv_tail,
             const std::vector<std::string_view>& switches = {"closed",
                                                              "maximal"}) {
  std::vector<const char*> argv = {"ufim_cli"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  std::string error;
  auto args =
      Args::Parse(static_cast<int>(argv.size()), argv.data(), switches, &error);
  EXPECT_TRUE(args.has_value()) << error;
  return args.value_or(Args{});
}

TEST(CliArgsTest, ParsesPositionalsFlagsAndSwitches) {
  Args args = ParseOk({"mine", "data.udb", "--algorithm", "UApriori",
                       "--closed", "--min-esup", "0.01"});
  ASSERT_EQ(args.positional.size(), 2u);
  EXPECT_EQ(args.positional[0], "mine");
  EXPECT_EQ(args.positional[1], "data.udb");
  EXPECT_STREQ(args.Get("algorithm"), "UApriori");
  EXPECT_STREQ(args.Get("closed"), "1");  // switch: no value consumed
  EXPECT_STREQ(args.Get("min-esup"), "0.01");
  EXPECT_EQ(args.Get("absent"), nullptr);
}

TEST(CliArgsTest, ValueFlagAtEndOfLineFails) {
  const char* argv[] = {"ufim_cli", "mine", "--threads"};
  std::string error;
  EXPECT_FALSE(Args::Parse(3, argv, {}, &error).has_value());
  EXPECT_NE(error.find("--threads"), std::string::npos);
}

TEST(CliArgsTest, GetSizeParsesAndFallsBack) {
  Args args = ParseOk({"--threads", "8"});
  std::size_t value = 0;
  std::string error;
  EXPECT_TRUE(args.GetSize("threads", 1, &value, &error));
  EXPECT_EQ(value, 8u);
  EXPECT_TRUE(args.GetSize("shards", 7, &value, &error));
  EXPECT_EQ(value, 7u);  // absent -> fallback
}

TEST(CliArgsTest, GetSizeRejectsGarbage) {
  // The old atoll path silently returned 0 here.
  Args args = ParseOk({"--threads", "abc"});
  std::size_t value = 123;
  std::string error;
  EXPECT_FALSE(args.GetSize("threads", 1, &value, &error));
  EXPECT_NE(error.find("abc"), std::string::npos);
  EXPECT_EQ(value, 123u);  // untouched on failure
}

TEST(CliArgsTest, GetSizeRejectsNegative) {
  // The old static_cast<size_t>(atoll("-1")) wrapped to ~1.8e19 shards.
  Args args = ParseOk({"--shards", "-1"});
  std::size_t value = 0;
  std::string error;
  EXPECT_FALSE(args.GetSize("shards", 1, &value, &error));
  EXPECT_NE(error.find("-1"), std::string::npos);
}

TEST(CliArgsTest, GetSizeRejectsPartialTokensAndOverflow) {
  std::size_t value = 0;
  std::string error;
  EXPECT_FALSE(ParseOk({"--n", "12x"}).GetSize("n", 1, &value, &error));
  EXPECT_FALSE(ParseOk({"--n", "+3"}).GetSize("n", 1, &value, &error));
  EXPECT_FALSE(ParseOk({"--n", ""}).GetSize("n", 1, &value, &error));
  EXPECT_FALSE(ParseOk({"--n", "99999999999999999999999999"})
                   .GetSize("n", 1, &value, &error));
  EXPECT_TRUE(ParseOk({"--n", "042"}).GetSize("n", 1, &value, &error));
  EXPECT_EQ(value, 42u);
}

TEST(CliArgsTest, GetDoubleParsesFullTokensOnly) {
  double value = 0.0;
  std::string error;
  EXPECT_TRUE(ParseOk({"--pft", "0.9"}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_EQ(value, 0.9);
  EXPECT_TRUE(
      ParseOk({"--pft", "1e-3"}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_EQ(value, 1e-3);
  // atof accepted all of these silently (as 0.5, 0.0, 0.0).
  EXPECT_FALSE(
      ParseOk({"--pft", "0.5x"}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_FALSE(
      ParseOk({"--pft", "zero"}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_FALSE(ParseOk({"--pft", ""}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_FALSE(
      ParseOk({"--pft", "nan"}).GetDouble("pft", 0.5, &value, &error));
  // Absent -> fallback.
  EXPECT_TRUE(ParseOk({}).GetDouble("pft", 0.5, &value, &error));
  EXPECT_EQ(value, 0.5);
}

TEST(CliArgsTest, ValidateRejectsUnknownFlags) {
  // The old parser dropped `--thread 4` (flag and value) on the floor.
  Args args = ParseOk({"mine", "data.udb", "--thread", "4"});
  const FlagSpec mine_spec{
      .value_flags = {"algorithm", "min-esup", "threads"},
      .switches = {"closed"}};
  std::string error;
  EXPECT_FALSE(args.Validate(mine_spec, &error));
  EXPECT_NE(error.find("--thread"), std::string::npos);

  Args good = ParseOk({"mine", "data.udb", "--threads", "4", "--closed"});
  EXPECT_TRUE(good.Validate(mine_spec, &error)) << error;
}

}  // namespace
}  // namespace ufim::cli
