// Conforming fixture: reading through a frozen Snapshot() handle stays
// valid across any later Append/Compact on the source stream.
#include "core/streaming_flat_view.h"

double FrozenRead(const ufim::StreamingFlatView& stream) {
  stream.AssertSoleWriter();
  const ufim::StreamingSnapshot snap = stream.Snapshot();
  return snap.view().ItemExpectedSupport(0);
}
