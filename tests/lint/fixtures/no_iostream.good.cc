// Conforming fixture: library code reports through Status, never by
// printing.
#include "common/status.h"

ufim::Status Report(int n) {
  if (n < 0) return ufim::Status::InvalidArgument("n must be >= 0");
  return ufim::Status::OK();
}
