// Violating fixture: a raw live View() held with no lifetime argument —
// the view dies at the stream's next Append/Compact (lint path:
// src/core/example.cc).
#include "core/streaming_flat_view.h"

double StaleRead(const ufim::StreamingFlatView& stream) {
  const ufim::FlatView view = stream.View();
  return view.ItemExpectedSupport(0);
}
