// Conforming fixture: lets RunAbortedError unwind to the GuardMine
// boundary; only std::bad_alloc is handled locally.
#include <new>

#include "common/run_context.h"

void MayThrow();

void LetsCancellationUnwind() {
  try {
    MayThrow();
  } catch (const std::bad_alloc&) {
  }
}
