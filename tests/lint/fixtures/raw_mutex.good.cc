// Conforming fixture: locking through the annotated wrappers, visible
// to the -Wthread-safety build.
#include "common/mutex.h"

void Locked() {
  static ufim::Mutex mu;
  ufim::MutexLock lock(mu);
}
