// Conforming fixture: the fan-out file has a RunContext poll site, so
// the cooperative-cancellation contract reaches it.
#include <cstddef>

#include "common/run_context.h"
#include "common/thread_pool.h"

void CountAll(const ufim::RunContext* ctx, std::size_t n) {
  ufim::PollRunContext(ctx);
  ufim::ParallelFor(n, 4, [](std::size_t) {});
}
