// Violating fixture: unseeded randomness and a wall-clock read in
// library code (lint path: src/core/example.cc).
#include <cstdlib>
#include <ctime>

unsigned PickUnseeded() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return static_cast<unsigned>(std::rand());
}
