// Violating fixture: emits straight out of an unordered container, so
// the output order depends on hash seeding.
#include <unordered_set>

void EmitValue(int v);

void EmitAll() {
  std::unordered_set<int> pending = {3, 1, 2};
  for (int v : pending) {
    EmitValue(v);
  }
}
