// Conforming fixture: randomness flows through the seeded Rng, timing
// through eval/stopwatch — the result is a pure function of the seed.
#include <cstdint>

#include "testing/random_db.h"

std::uint64_t PickSeeded(ufim::Rng& rng) { return rng.Next(); }
