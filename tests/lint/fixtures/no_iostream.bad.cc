// Violating fixture: <iostream> in library code (lint path:
// src/core/example.cc).
#include <iostream>

void Report(int n) { std::cout << n << "\n"; }
