// Violating fixture: a raw std::mutex the thread-safety analysis cannot
// see (lint path: src/core/example.cc).
#include <mutex>

void Locked() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
}
