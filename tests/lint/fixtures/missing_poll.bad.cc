// Violating fixture: fans work out through ParallelFor but never polls
// a RunContext (lint path: src/algo/example.cc) — cancellation and
// deadlines cannot stop this miner.
#include <cstddef>

#include "common/thread_pool.h"

void CountAll(std::size_t n) {
  ufim::ParallelFor(n, 4, [](std::size_t) {});
}
