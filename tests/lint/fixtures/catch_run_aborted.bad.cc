// Violating fixture: catches the internal abort unwind outside the
// GuardMine facade (lint path: src/core/example.cc).
#include "common/run_context.h"

void MayThrow();

void SwallowsCancellation() {
  try {
    MayThrow();
  } catch (const RunAbortedError& aborted) {
    // A cancelled run silently "succeeds" here: the token never reaches
    // the caller as a Status.
  }
}
