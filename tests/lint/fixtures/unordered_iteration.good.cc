// Conforming fixture: the unordered container is drained into a vector
// and sorted before anything observes the order.
#include <algorithm>
#include <unordered_set>
#include <vector>

void EmitValue(int v);

void EmitAll() {
  std::unordered_set<int> pending = {3, 1, 2};
  std::vector<int> ordered(pending.begin(), pending.end());
  std::sort(ordered.begin(), ordered.end());
  for (int v : ordered) {
    EmitValue(v);
  }
}
