#include "gen/quest_generator.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(QuestGeneratorTest, RejectsDegenerateConfigs) {
  QuestConfig cfg;
  cfg.num_items = 0;
  EXPECT_FALSE(GenerateQuest(cfg, 1).ok());
  cfg = QuestConfig{};
  cfg.avg_transaction_len = 0.0;
  EXPECT_FALSE(GenerateQuest(cfg, 1).ok());
  cfg = QuestConfig{};
  cfg.avg_pattern_len = 5000.0;  // > num_items
  EXPECT_FALSE(GenerateQuest(cfg, 1).ok());
  cfg = QuestConfig{};
  cfg.num_patterns = 0;
  EXPECT_FALSE(GenerateQuest(cfg, 1).ok());
}

TEST(QuestGeneratorTest, ProducesRequestedTransactionCount) {
  QuestConfig cfg;
  cfg.num_transactions = 500;
  auto db = GenerateQuest(cfg, 7);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 500u);
}

TEST(QuestGeneratorTest, TransactionsAreSortedDistinctAndInRange) {
  QuestConfig cfg;
  cfg.num_transactions = 300;
  auto db = GenerateQuest(cfg, 8);
  ASSERT_TRUE(db.ok());
  for (const auto& txn : *db) {
    ASSERT_FALSE(txn.empty());
    for (std::size_t i = 0; i < txn.size(); ++i) {
      EXPECT_LT(txn[i], cfg.num_items);
      if (i > 0) {
        EXPECT_LT(txn[i - 1], txn[i]);
      }
    }
  }
}

TEST(QuestGeneratorTest, AverageLengthNearT) {
  QuestConfig cfg;
  cfg.num_transactions = 2000;
  cfg.avg_transaction_len = 25.0;
  auto db = GenerateQuest(cfg, 9);
  ASSERT_TRUE(db.ok());
  std::size_t total = 0;
  for (const auto& txn : *db) total += txn.size();
  const double avg = static_cast<double>(total) / db->size();
  // The pattern-based fill overshoots/undershoots a bit; the paper's own
  // T25 datasets also deviate (T25I15 has avg 25).
  EXPECT_GT(avg, 15.0);
  EXPECT_LT(avg, 40.0);
}

TEST(QuestGeneratorTest, DeterministicInSeed) {
  QuestConfig cfg;
  cfg.num_transactions = 100;
  auto a = GenerateQuest(cfg, 33);
  auto b = GenerateQuest(cfg, 33);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  auto c = GenerateQuest(cfg, 34);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST(QuestGeneratorTest, PatternsInduceCooccurrence) {
  // Transactions built from shared patterns must show item co-occurrence
  // far above the independence baseline — that is the generator's point.
  QuestConfig cfg;
  cfg.num_transactions = 2000;
  cfg.num_items = 200;
  cfg.num_patterns = 20;
  cfg.avg_pattern_len = 8.0;
  cfg.avg_transaction_len = 12.0;
  auto db = GenerateQuest(cfg, 10);
  ASSERT_TRUE(db.ok());
  // Count the most frequent pair among items 0..199 via a coarse scan of
  // pairs inside the first pattern-heavy transactions.
  std::vector<std::vector<int>> pair_count(cfg.num_items,
                                           std::vector<int>(cfg.num_items, 0));
  std::vector<int> item_count(cfg.num_items, 0);
  for (const auto& txn : *db) {
    for (std::size_t i = 0; i < txn.size(); ++i) {
      ++item_count[txn[i]];
      for (std::size_t j = i + 1; j < txn.size(); ++j) {
        ++pair_count[txn[i]][txn[j]];
      }
    }
  }
  double max_lift = 0.0;
  const double n = static_cast<double>(db->size());
  for (ItemId a = 0; a < cfg.num_items; ++a) {
    for (ItemId b = a + 1; b < cfg.num_items; ++b) {
      if (item_count[a] < 20 || item_count[b] < 20) continue;
      const double p_ab = pair_count[a][b] / n;
      const double lift = p_ab / ((item_count[a] / n) * (item_count[b] / n));
      max_lift = std::max(max_lift, lift);
    }
  }
  EXPECT_GT(max_lift, 3.0);
}

}  // namespace
}  // namespace ufim
