#include "gen/benchmark_datasets.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

double AvgLen(const DeterministicDatabase& db) {
  std::size_t total = 0;
  for (const auto& t : db) total += t.size();
  return static_cast<double>(total) / static_cast<double>(db.size());
}

ItemId MaxItem(const DeterministicDatabase& db) {
  ItemId m = 0;
  for (const auto& t : db) {
    for (ItemId id : t) m = std::max(m, id);
  }
  return m;
}

TEST(BenchmarkDatasetsTest, ConnectLikeShape) {
  auto db = MakeConnectLike(400, 1);
  ASSERT_EQ(db.size(), 400u);
  for (const auto& t : db) EXPECT_EQ(t.size(), 43u);  // fixed length
  EXPECT_LT(MaxItem(db), 129u);
  // Density = 43/129 = 0.33, dense by construction.
}

TEST(BenchmarkDatasetsTest, AccidentLikeShape) {
  auto db = MakeAccidentLike(1000, 2);
  ASSERT_EQ(db.size(), 1000u);
  EXPECT_NEAR(AvgLen(db), 33.8, 2.0);
  EXPECT_LT(MaxItem(db), 468u);
}

TEST(BenchmarkDatasetsTest, KosarakLikeShape) {
  auto db = MakeKosarakLike(1000, 3);
  ASSERT_EQ(db.size(), 1000u);
  EXPECT_NEAR(AvgLen(db), 8.1, 1.5);
  EXPECT_LT(MaxItem(db), 4096u);
  // Sparse: density well below 1%.
  EXPECT_LT(AvgLen(db) / 4096.0, 0.01);
}

TEST(BenchmarkDatasetsTest, GazelleLikeShape) {
  auto db = MakeGazelleLike(1000, 4);
  ASSERT_EQ(db.size(), 1000u);
  EXPECT_NEAR(AvgLen(db), 2.5, 0.8);
  EXPECT_LT(MaxItem(db), 498u);
}

TEST(BenchmarkDatasetsTest, QuestT25I15Shape) {
  auto db = MakeQuestT25I15(500, 5);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 500u);
  EXPECT_LT(MaxItem(*db), 994u);
}

TEST(BenchmarkDatasetsTest, DenseVsSparsePopularitySkew) {
  // In the Connect-like family the most popular item must appear in
  // nearly every transaction; in the Kosarak-like family it must not.
  auto dense = MakeConnectLike(500, 6);
  auto sparse = MakeKosarakLike(500, 6);
  auto top_frequency = [](const DeterministicDatabase& db, std::size_t n_items) {
    std::vector<int> count(n_items, 0);
    for (const auto& t : db) {
      for (ItemId id : t) ++count[id];
    }
    return *std::max_element(count.begin(), count.end()) /
           static_cast<double>(db.size());
  };
  EXPECT_GT(top_frequency(dense, 129), 0.8);
  EXPECT_LT(top_frequency(sparse, 4096), 0.7);
}

TEST(BenchmarkDatasetsTest, DeterministicInSeed) {
  EXPECT_EQ(MakeConnectLike(50, 9), MakeConnectLike(50, 9));
  EXPECT_NE(MakeConnectLike(50, 9), MakeConnectLike(50, 10));
}

TEST(BenchmarkDatasetsTest, PaperTable1MatchesPaper) {
  UncertainDatabase db = MakePaperTable1();
  ASSERT_EQ(db.size(), 4u);
  EXPECT_EQ(db[0].size(), 5u);
  EXPECT_EQ(db[1].size(), 4u);
  EXPECT_EQ(db[2].size(), 4u);
  EXPECT_EQ(db[3].size(), 3u);
  EXPECT_DOUBLE_EQ(db[0].ProbabilityOf(kItemA), 0.8);
  EXPECT_DOUBLE_EQ(db[3].ProbabilityOf(kItemF), 0.7);
  EXPECT_EQ(db[3].ProbabilityOf(kItemA), 0.0);
}

}  // namespace
}  // namespace ufim
