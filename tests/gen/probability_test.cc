#include "gen/probability.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ufim {
namespace {

DeterministicDatabase SmallDet() {
  return {{0, 1, 2}, {1, 2, 3}, {0, 3}, {2}};
}

TEST(GaussianAssignerTest, PreservesStructure) {
  UncertainDatabase db = AssignGaussianProbabilities(SmallDet(), 0.8, 0.05, 1);
  ASSERT_EQ(db.size(), 4u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db[3].size(), 1u);
  EXPECT_EQ(db[0][0].item, 0u);
  EXPECT_EQ(db[0][2].item, 2u);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(GaussianAssignerTest, ProbabilitiesInRange) {
  // Extreme variance forces the resample/clamp path.
  UncertainDatabase db = AssignGaussianProbabilities(SmallDet(), 0.5, 0.5, 2);
  for (const Transaction& t : db) {
    for (const ProbItem& u : t) {
      EXPECT_GT(u.prob, 0.0);
      EXPECT_LE(u.prob, 1.0);
    }
  }
}

TEST(GaussianAssignerTest, MeanApproximatelyRespected) {
  DeterministicDatabase det(2000, std::vector<ItemId>{0, 1, 2, 3, 4});
  UncertainDatabase db = AssignGaussianProbabilities(det, 0.7, 0.01, 3);
  DatabaseStats stats = db.ComputeStats();
  EXPECT_NEAR(stats.mean_probability, 0.7, 0.02);
}

TEST(GaussianAssignerTest, DeterministicInSeed) {
  UncertainDatabase a = AssignGaussianProbabilities(SmallDet(), 0.5, 0.2, 77);
  UncertainDatabase b = AssignGaussianProbabilities(SmallDet(), 0.5, 0.2, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ZipfAssignerTest, ProbabilitiesOnLevelGrid) {
  DeterministicDatabase det(200, std::vector<ItemId>{0, 1, 2, 3});
  UncertainDatabase db = AssignZipfProbabilities(det, 1.0, 4);
  for (const Transaction& t : db) {
    for (const ProbItem& u : t) {
      const double scaled = u.prob * 10.0;
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
      EXPECT_GE(u.prob, 0.1 - 1e-12);
      EXPECT_LE(u.prob, 1.0 + 1e-12);
    }
  }
}

TEST(ZipfAssignerTest, HigherSkewDropsMoreUnits) {
  DeterministicDatabase det(500, std::vector<ItemId>{0, 1, 2, 3, 4, 5});
  const std::size_t total = 500 * 6;
  auto units_kept = [&](double skew) {
    UncertainDatabase db = AssignZipfProbabilities(det, skew, 5);
    std::size_t kept = 0;
    for (const Transaction& t : db) kept += t.size();
    return kept;
  };
  const std::size_t low = units_kept(0.8);
  const std::size_t high = units_kept(2.0);
  EXPECT_LT(high, low);
  EXPECT_LT(low, total);  // even low skew drops some units
}

}  // namespace
}  // namespace ufim
