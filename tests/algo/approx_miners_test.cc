#include <gtest/gtest.h>

#include "algo/exact_dc.h"
#include "algo/ndu_apriori.h"
#include "algo/nduh_mine.h"
#include "algo/pdu_apriori.h"
#include "eval/metrics.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

// A mid-size database in the CLT regime (N large enough for the Normal /
// Poisson approximations to be accurate, small enough for exact DC).
UncertainDatabase CltDatabase(std::uint64_t seed) {
  DeterministicDatabase det = MakeGazelleLike(3000, seed);
  return AssignGaussianProbabilities(det, 0.8, 0.05, seed + 1);
}

TEST(NDUAprioriTest, AnnotatesFrequentProbability) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.5;
  auto result = NDUApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& fi : result->itemsets()) {
    ASSERT_TRUE(fi.frequent_probability.has_value());
    EXPECT_GT(*fi.frequent_probability, params.pft);
  }
}

TEST(PDUAprioriTest, DoesNotAnnotateFrequentProbability) {
  // Faithful to §3.3.1: PDUApriori "cannot return the frequent
  // probability values".
  UncertainDatabase db = CltDatabase(7);
  ProbabilisticParams params;
  params.min_sup = 0.02;
  params.pft = 0.9;
  auto result = PDUApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->size(), 0u);
  for (const FrequentItemset& fi : result->itemsets()) {
    EXPECT_FALSE(fi.frequent_probability.has_value());
  }
}

struct AccuracyCase {
  std::uint64_t seed;
  double min_sup;
  double pft;
};

class ApproxAccuracyTest : public ::testing::TestWithParam<AccuracyCase> {};

// Tables 8/9 in miniature: in the CLT regime every approximate miner must
// reach precision and recall near 1 against exact DC.
TEST_P(ApproxAccuracyTest, HighPrecisionAndRecallAgainstExact) {
  const AccuracyCase c = GetParam();
  UncertainDatabase db = CltDatabase(c.seed);
  ProbabilisticParams params;
  params.min_sup = c.min_sup;
  params.pft = c.pft;
  auto exact = ExactDC(true).Mine(db, params);
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact->size(), 0u) << "exact result empty: weak test";

  auto ndu = NDUApriori().Mine(db, params);
  auto nduh = NDUHMine().Mine(db, params);
  auto pdu = PDUApriori().Mine(db, params);
  ASSERT_TRUE(ndu.ok());
  ASSERT_TRUE(nduh.ok());
  ASSERT_TRUE(pdu.ok());

  PrecisionRecall pr_ndu = ComputePrecisionRecall(*ndu, *exact);
  PrecisionRecall pr_nduh = ComputePrecisionRecall(*nduh, *exact);
  PrecisionRecall pr_pdu = ComputePrecisionRecall(*pdu, *exact);
  EXPECT_GE(pr_ndu.precision, 0.95);
  EXPECT_GE(pr_ndu.recall, 0.95);
  EXPECT_GE(pr_nduh.precision, 0.95);
  EXPECT_GE(pr_nduh.recall, 0.95);
  // The Poisson approximation is cruder: with high unit probabilities
  // (mean 0.8) the Le Cam small-p assumption is violated and Poisson
  // overstates the variance, so borderline itemsets are missed — exactly
  // the effect behind the paper's "Normal beats Poisson" conclusion.
  EXPECT_GE(pr_pdu.precision, 0.75);
  EXPECT_GE(pr_pdu.recall, 0.75);
}

INSTANTIATE_TEST_SUITE_P(CltSweep, ApproxAccuracyTest,
                         ::testing::Values(AccuracyCase{1, 0.02, 0.9},
                                           AccuracyCase{2, 0.03, 0.9},
                                           AccuracyCase{3, 0.02, 0.5},
                                           AccuracyCase{4, 0.025, 0.7}));

TEST(NDUAprioriVsNDUHMineTest, SameResultsDifferentFrameworks) {
  // Both use the identical Normal test; the breadth-first and
  // depth-first frameworks must therefore return identical sets.
  UncertainDatabase db = CltDatabase(11);
  ProbabilisticParams params;
  params.min_sup = 0.02;
  params.pft = 0.9;
  auto ndu = NDUApriori().Mine(db, params);
  auto nduh = NDUHMine().Mine(db, params);
  ASSERT_TRUE(ndu.ok());
  ASSERT_TRUE(nduh.ok());
  ASSERT_EQ(ndu->size(), nduh->size());
  for (const FrequentItemset& fi : ndu->itemsets()) {
    const FrequentItemset* hit = nduh->Find(fi.itemset);
    ASSERT_NE(hit, nullptr) << "missing " << fi.itemset.ToString();
    EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-6);
    ASSERT_TRUE(hit->frequent_probability.has_value());
    EXPECT_NEAR(*hit->frequent_probability, *fi.frequent_probability, 1e-9);
  }
}

TEST(ApproxMinersTest, MetadataFlags) {
  EXPECT_FALSE(PDUApriori().is_exact());
  EXPECT_FALSE(NDUApriori().is_exact());
  EXPECT_FALSE(NDUHMine().is_exact());
  EXPECT_EQ(PDUApriori().name(), "PDUApriori");
  EXPECT_EQ(NDUApriori().name(), "NDUApriori");
  EXPECT_EQ(NDUHMine().name(), "NDUH-Mine");
}

TEST(ApproxMinersTest, EmptyDatabase) {
  UncertainDatabase db;
  ProbabilisticParams params;
  for (auto* miner :
       std::initializer_list<ProbabilisticMiner*>{new PDUApriori(), new NDUApriori(),
                                                  new NDUHMine()}) {
    auto result = miner->Mine(db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty());
    delete miner;
  }
}

TEST(ApproxMinersTest, RejectInvalidParams) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams bad;
  bad.pft = -1.0;
  EXPECT_FALSE(PDUApriori().Mine(db, bad).ok());
  EXPECT_FALSE(NDUApriori().Mine(db, bad).ok());
  EXPECT_FALSE(NDUHMine().Mine(db, bad).ok());
}

}  // namespace
}  // namespace ufim
