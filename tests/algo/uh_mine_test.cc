#include "algo/uh_mine.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/uh_struct.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(UHMineTest, PaperExample1) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UHMine().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_NE(result->Find(Itemset({kItemA})), nullptr);
  EXPECT_NE(result->Find(Itemset({kItemC})), nullptr);
}

struct SweepCase {
  std::uint64_t seed;
  double min_esup;
  double presence;
};

class UHMinePropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UHMinePropertyTest, MatchesBruteForce) {
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 14, .num_items = 7,
       .item_presence = c.presence});
  ExpectedSupportParams params;
  params.min_esup = c.min_esup;
  auto fast = UHMine().Mine(db, params);
  auto oracle = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(fast->size(), oracle->size());
  for (const FrequentItemset& fi : oracle->itemsets()) {
    const FrequentItemset* hit = fast->Find(fi.itemset);
    ASSERT_NE(hit, nullptr) << "missing " << fi.itemset.ToString();
    EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-9);
    EXPECT_NEAR(hit->variance, fi.variance, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndThresholdSweep, UHMinePropertyTest,
    ::testing::Values(SweepCase{11, 0.1, 0.5}, SweepCase{12, 0.2, 0.5},
                      SweepCase{13, 0.3, 0.7}, SweepCase{14, 0.05, 0.3},
                      SweepCase{15, 0.5, 0.9}, SweepCase{16, 0.15, 0.6},
                      SweepCase{17, 0.25, 0.4}, SweepCase{18, 0.4, 0.8},
                      SweepCase{19, 0.08, 0.5}, SweepCase{20, 0.35, 0.95}));

TEST(UHStructEngineTest, KeepsOnlyPredicateAcceptedItems) {
  UncertainDatabase db = MakePaperTable1();
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [](double esup, double) { return esup >= 2.0; };
  UHStructEngine engine(db, std::move(hooks));
  EXPECT_EQ(engine.num_frequent_items(), 2u);  // A (2.1) and C (2.6)
}

TEST(UHStructEngineTest, EmptyWhenNothingQualifies) {
  UncertainDatabase db = MakePaperTable1();
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [](double esup, double) { return esup >= 100.0; };
  UHStructEngine engine(db, std::move(hooks));
  EXPECT_EQ(engine.num_frequent_items(), 0u);
  EXPECT_TRUE(engine.Mine(nullptr).empty());
}

TEST(UHMineTest, EmptyDatabase) {
  UncertainDatabase db;
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UHMine().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(UHMineTest, SingleTransactionChain) {
  // One transaction, three certain items: every subset is frequent at
  // min_esup = 1.0 and must be enumerated exactly once.
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 1.0}, {2, 1.0}});
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 1.0;
  auto result = UHMine().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 7u);  // 2^3 - 1
}

}  // namespace
}  // namespace ufim
