#include "algo/apriori_framework.h"

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"
#include "prob/poisson_binomial.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(CollectItemStatsTest, MatchesPaperTable1) {
  UncertainDatabase db = MakePaperTable1();
  auto stats = CollectItemStats(db);
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_EQ(stats[0].item, kItemA);
  EXPECT_NEAR(stats[0].esup, 2.1, 1e-12);
  // Σp² for A: 0.64 + 0.64 + 0.25 = 1.53 → var = 2.1 - 1.53 = 0.57.
  EXPECT_NEAR(stats[0].sq_sum, 1.53, 1e-12);
}

TEST(GenerateCandidatesTest, JoinsSharedPrefixes) {
  std::vector<Itemset> freq = {Itemset({1, 2}), Itemset({1, 3}), Itemset({2, 3})};
  std::uint64_t pruned = 0;
  auto cands = GenerateCandidates(freq, &pruned);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], Itemset({1, 2, 3}));
  EXPECT_EQ(pruned, 0u);
}

TEST(GenerateCandidatesTest, PrunesWhenSubsetMissing) {
  // {2,3} missing: the join {1,2}+{1,3} must be subset-pruned.
  std::vector<Itemset> freq = {Itemset({1, 2}), Itemset({1, 3})};
  std::uint64_t pruned = 0;
  auto cands = GenerateCandidates(freq, &pruned);
  EXPECT_TRUE(cands.empty());
  EXPECT_EQ(pruned, 1u);
}

TEST(GenerateCandidatesTest, SingletonsJoinFreely) {
  std::vector<Itemset> freq = {Itemset({1}), Itemset({2}), Itemset({4})};
  auto cands = GenerateCandidates(freq, nullptr);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0], Itemset({1, 2}));
  EXPECT_EQ(cands[1], Itemset({1, 4}));
  EXPECT_EQ(cands[2], Itemset({2, 4}));
}

TEST(GenerateCandidatesTest, EmptyInput) {
  EXPECT_TRUE(GenerateCandidates({}, nullptr).empty());
}

TEST(EvaluateCandidatesTest, MatchesDirectExpectedSupport) {
  UncertainDatabase db = testing_util::MakeRandomDatabase({.seed = 3});
  std::vector<Itemset> cands = {Itemset({0, 1}), Itemset({2, 5}),
                                Itemset({0, 3, 6})};
  auto stats = EvaluateCandidates(db, cands, /*collect_probs=*/false);
  ASSERT_EQ(stats.size(), cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    EXPECT_NEAR(stats[c].esup, db.ExpectedSupport(cands[c]), 1e-9)
        << cands[c].ToString();
  }
}

TEST(EvaluateCandidatesTest, CollectsProbsMatchingDatabase) {
  UncertainDatabase db = testing_util::MakeRandomDatabase({.seed = 4});
  std::vector<Itemset> cands = {Itemset({1, 2})};
  auto stats = EvaluateCandidates(db, cands, /*collect_probs=*/true);
  auto expected = db.ContainmentProbabilities(cands[0]);
  ASSERT_EQ(stats[0].probs.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(stats[0].probs[i], expected[i], 1e-12);
  }
}

TEST(EvaluateCandidatesTest, DecrementalPruningNeverAffectsFrequentOnes) {
  // With pruning on, candidates that actually reach the threshold must
  // report their exact esup (deactivation only hits hopeless ones).
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 5, .num_transactions = 2000, .num_items = 6});
  std::vector<Itemset> cands = {Itemset({0, 1}), Itemset({4, 5})};
  const double threshold = 100.0;
  auto pruned = EvaluateCandidates(db, cands, false, threshold);
  auto full = EvaluateCandidates(db, cands, false);
  for (std::size_t c = 0; c < cands.size(); ++c) {
    if (full[c].esup >= threshold) {
      EXPECT_NEAR(pruned[c].esup, full[c].esup, 1e-9);
    } else {
      // Deactivated or not, it must still be classified infrequent.
      EXPECT_LT(pruned[c].esup, threshold);
    }
  }
}

TEST(MineAprioriGenericTest, ThresholdPredicateFindsPaperExample) {
  UncertainDatabase db = MakePaperTable1();
  AprioriCallbacks cb;
  cb.is_frequent = [&db](double esup, double) { return esup >= 0.5 * db.size(); };
  MiningCounters counters;
  auto found = MineAprioriGeneric(db, cb, -1.0, &counters);
  ASSERT_EQ(found.size(), 2u);  // {A}, {C}
  EXPECT_GT(counters.database_scans, 0u);
}

TEST(MineProbabilisticAprioriTest, ChernoffCountersMove) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 6, .num_transactions = 60, .num_items = 6});
  MiningCounters with_bound, without_bound;
  // A vacuous tail function suffices: this test only checks the Chernoff
  // counter plumbing (exactness is covered by exact_miners_test.cc).
  auto zero_tail = [](const std::vector<double>&, std::size_t, std::size_t) {
    return 1.0;
  };
  ProbabilisticLoopOptions loop;
  MineProbabilisticApriori(db, 30, 0.9, zero_tail, loop, &without_bound);
  EXPECT_EQ(without_bound.candidates_rejected_bound, 0u);
  loop.use_chernoff = true;
  MineProbabilisticApriori(db, 30, 0.9, zero_tail, loop, &with_bound);
  EXPECT_GT(with_bound.candidates_rejected_bound, 0u);
}

TEST(MineProbabilisticAprioriTest, CascadeRejectsSkipTailEvaluations) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 7, .num_transactions = 120, .num_items = 6});
  // Exact tail so certified decisions are honest; pft = 0.9 leaves an
  // undecided band only around the threshold.
  auto exact_tail = [](const std::vector<double>& probs, std::size_t k,
                       std::size_t) { return PoissonBinomialTailDP(probs, k); };
  MiningCounters off, bounds;
  ProbabilisticLoopOptions loop;
  auto baseline = MineProbabilisticApriori(db, 60, 0.9, exact_tail, loop, &off);
  loop.prefilter = PrefilterMode::kBounds;
  auto screened =
      MineProbabilisticApriori(db, 60, 0.9, exact_tail, loop, &bounds);

  // Identical results, fewer exact tails, and the reject/eval split still
  // partitions the candidate count.
  ASSERT_EQ(screened.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(screened[i].itemset, baseline[i].itemset);
    EXPECT_EQ(*screened[i].frequent_probability,
              *baseline[i].frequent_probability);
  }
  EXPECT_EQ(off.candidates_rejected_bound, 0u);
  EXPECT_EQ(off.exact_tail_evals, off.candidates_generated);
  EXPECT_GT(bounds.candidates_rejected_bound, 0u);
  EXPECT_LT(bounds.exact_tail_evals, off.exact_tail_evals);
  EXPECT_EQ(bounds.candidates_rejected_bound + bounds.exact_tail_evals,
            bounds.candidates_generated);
}

}  // namespace
}  // namespace ufim
