#include "algo/ufp_tree.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(UFPTreeTest, EmptyTree) {
  UFPTree tree(4);
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.num_ranks(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(tree.header(r).empty());
  }
}

TEST(UFPTreeTest, SharesNodeOnlyWhenItemAndProbEqual) {
  UFPTree tree(3);
  // Same (rank, prob) path twice: one chain of nodes, weights summed.
  tree.InsertPath({{0, 0.8}, {1, 0.5}}, 1.0, 1.0);
  tree.InsertPath({{0, 0.8}, {1, 0.5}}, 1.0, 1.0);
  EXPECT_EQ(tree.num_nodes(), 2u);
  // Same item, different probability: a new node must appear (the paper's
  // limited-sharing rule).
  tree.InsertPath({{0, 0.7}, {1, 0.5}}, 1.0, 1.0);
  EXPECT_EQ(tree.num_nodes(), 4u);  // (0,0.7) and its own (1,0.5) child
  EXPECT_EQ(tree.header(0).size(), 2u);
  EXPECT_EQ(tree.header(1).size(), 2u);
}

TEST(UFPTreeTest, WeightsAccumulate) {
  UFPTree tree(2);
  tree.InsertPath({{0, 0.5}}, 2.0, 1.5);
  tree.InsertPath({{0, 0.5}}, 3.0, 2.5);
  ASSERT_EQ(tree.header(0).size(), 1u);
  const UFPTree::Node& n = tree.nodes()[tree.header(0)[0]];
  EXPECT_DOUBLE_EQ(n.w_sum, 5.0);
  EXPECT_DOUBLE_EQ(n.w2_sum, 4.0);
}

TEST(UFPTreeTest, AncestorPathReconstructsInsertionOrder) {
  UFPTree tree(4);
  tree.InsertPath({{0, 0.9}, {2, 0.4}, {3, 0.6}}, 1.0, 1.0);
  ASSERT_EQ(tree.header(3).size(), 1u);
  auto path = tree.AncestorPath(tree.header(3)[0]);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].rank, 0u);
  EXPECT_DOUBLE_EQ(path[0].prob, 0.9);
  EXPECT_EQ(path[1].rank, 2u);
  EXPECT_DOUBLE_EQ(path[1].prob, 0.4);
}

TEST(UFPTreeTest, AncestorPathOfTopLevelNodeIsEmpty) {
  UFPTree tree(2);
  tree.InsertPath({{1, 0.3}}, 1.0, 1.0);
  EXPECT_TRUE(tree.AncestorPath(tree.header(1)[0]).empty());
}

TEST(UFPTreeTest, EmptyPathIgnored) {
  UFPTree tree(2);
  tree.InsertPath({}, 1.0, 1.0);
  EXPECT_EQ(tree.num_nodes(), 0u);
}

TEST(UFPTreeTest, PrefixSharingSplitsAtDivergence) {
  UFPTree tree(4);
  tree.InsertPath({{0, 0.5}, {1, 0.5}}, 1.0, 1.0);
  tree.InsertPath({{0, 0.5}, {2, 0.5}}, 1.0, 1.0);
  // Shared (0,0.5) root child, two distinct leaves.
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.header(0).size(), 1u);
  EXPECT_DOUBLE_EQ(tree.nodes()[tree.header(0)[0]].w_sum, 2.0);
}

}  // namespace
}  // namespace ufim
