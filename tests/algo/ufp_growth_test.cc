#include "algo/ufp_growth.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(UFPGrowthTest, PaperExample1) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UFPGrowth().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(a->expected_support, 2.1, 1e-12);
}

TEST(UFPGrowthTest, PaperFigure1Threshold) {
  // min_esup = 0.25 (the Figure 1 UFP-tree setting): all six items are
  // frequent (absolute threshold 1.0; min item esup is D at 1.2).
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.25;
  auto result = UFPGrowth().Mine(db, params);
  ASSERT_TRUE(result.ok());
  for (ItemId item : {kItemA, kItemB, kItemC, kItemD, kItemE, kItemF}) {
    EXPECT_NE(result->Find(Itemset({item})), nullptr) << "item " << item;
  }
  // And it agrees with brute force in full.
  auto oracle = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(result->size(), oracle->size());
}

struct SweepCase {
  std::uint64_t seed;
  double min_esup;
  double presence;
  double min_prob;
};

class UFPGrowthPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UFPGrowthPropertyTest, MatchesBruteForce) {
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 14, .num_items = 7,
       .item_presence = c.presence, .min_prob = c.min_prob});
  ExpectedSupportParams params;
  params.min_esup = c.min_esup;
  auto fast = UFPGrowth().Mine(db, params);
  auto oracle = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(fast->size(), oracle->size());
  for (const FrequentItemset& fi : oracle->itemsets()) {
    const FrequentItemset* hit = fast->Find(fi.itemset);
    ASSERT_NE(hit, nullptr) << "missing " << fi.itemset.ToString();
    EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-9);
    EXPECT_NEAR(hit->variance, fi.variance, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndThresholdSweep, UFPGrowthPropertyTest,
    ::testing::Values(SweepCase{21, 0.1, 0.5, 0.05},
                      SweepCase{22, 0.2, 0.5, 0.05},
                      SweepCase{23, 0.3, 0.7, 0.05},
                      SweepCase{24, 0.05, 0.3, 0.05},
                      SweepCase{25, 0.5, 0.9, 0.05},
                      SweepCase{26, 0.15, 0.6, 0.5},
                      SweepCase{27, 0.25, 0.4, 0.5},
                      SweepCase{28, 0.4, 0.8, 0.9},
                      SweepCase{29, 0.08, 0.5, 0.05},
                      SweepCase{30, 0.35, 0.95, 0.3}));

// Discretized probabilities produce shared nodes: the tree must stay
// exact when sharing actually happens (w2 bookkeeping).
TEST(UFPGrowthTest, SharedNodesRemainExact) {
  Rng rng(31);
  std::vector<Transaction> txns;
  for (int t = 0; t < 16; ++t) {
    std::vector<ProbItem> units;
    for (ItemId i = 0; i < 5; ++i) {
      if (rng.Bernoulli(0.7)) {
        // Probabilities on a coarse grid {0.25, 0.5, 0.75, 1.0}.
        units.push_back(ProbItem{i, 0.25 * double(rng.UniformInt(1, 4))});
      }
    }
    txns.emplace_back(std::move(units));
  }
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 0.2;
  auto fast = UFPGrowth().Mine(db, params);
  auto oracle = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(fast->size(), oracle->size());
  for (const FrequentItemset& fi : oracle->itemsets()) {
    const FrequentItemset* hit = fast->Find(fi.itemset);
    ASSERT_NE(hit, nullptr);
    EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-9);
    EXPECT_NEAR(hit->variance, fi.variance, 1e-9);
  }
}

TEST(UFPGrowthTest, EmptyDatabase) {
  UncertainDatabase db;
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UFPGrowth().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace ufim
