#include "algo/brute_force.h"

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(BruteForceExpectedTest, PaperExample1) {
  // min_esup = 0.5 over Table 1: exactly {A} (2.1) and {C} (2.6).
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  const FrequentItemset* c = result->Find(Itemset({kItemC}));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NEAR(a->expected_support, 2.1, 1e-12);
  EXPECT_NEAR(c->expected_support, 2.6, 1e-12);
}

TEST(BruteForceExpectedTest, LowerThresholdAdmitsPairs) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.25;  // absolute threshold 1.0
  auto result = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(result.ok());
  // {A,C} has esup 1.84 >= 1.0 and must appear.
  const FrequentItemset* ac = result->Find(Itemset({kItemA, kItemC}));
  ASSERT_NE(ac, nullptr);
  EXPECT_NEAR(ac->expected_support, 1.84, 1e-12);
  // Every reported itemset respects the threshold.
  for (const FrequentItemset& fi : result->itemsets()) {
    EXPECT_GE(fi.expected_support, 1.0 - 1e-12);
  }
}

TEST(BruteForceExpectedTest, VarianceIsSumOfBernoulliVariances) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(result.ok());
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  ASSERT_NE(a, nullptr);
  // Var = 0.8*0.2 + 0.8*0.2 + 0.5*0.5 = 0.57.
  EXPECT_NEAR(a->variance, 0.57, 1e-12);
}

TEST(BruteForceProbabilisticTest, PaperExample2) {
  // min_sup = 0.5, pft = 0.7: {A} is probabilistic frequent
  // (Pr(sup >= 2) = 0.8 with the corrected Table 2 numbers).
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  auto result = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(result.ok());
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->frequent_probability.has_value());
  EXPECT_NEAR(*a->frequent_probability, 0.8, 1e-12);
}

TEST(BruteForceProbabilisticTest, ThresholdIsStrict) {
  // An itemset whose frequent probability equals pft exactly must be
  // excluded (Definition 4 uses strict >).
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 0.5}});
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}});
  UncertainDatabase db(std::move(txns));
  ProbabilisticParams params;
  params.min_sup = 1.0;  // msc = 2
  params.pft = 0.5;      // Pr(sup >= 2) = 0.5 exactly
  auto result = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find(Itemset({0})), nullptr);
  params.pft = 0.49;
  result = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->Find(Itemset({0})), nullptr);
}

TEST(BruteForceTest, EmptyDatabaseYieldsNothing) {
  UncertainDatabase db;
  ExpectedSupportParams ep;
  ep.min_esup = 0.5;
  auto er = BruteForceExpected().Mine(db, ep);
  ASSERT_TRUE(er.ok());
  EXPECT_TRUE(er->empty());
  ProbabilisticParams pp;
  auto pr = BruteForceProbabilistic().Mine(db, pp);
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->empty());
}

TEST(BruteForceTest, RejectsInvalidParams) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams bad;
  bad.min_esup = -1.0;
  EXPECT_FALSE(BruteForceExpected().Mine(db, bad).ok());
  ProbabilisticParams badp;
  badp.pft = 1.5;
  EXPECT_FALSE(BruteForceProbabilistic().Mine(db, badp).ok());
}

TEST(BruteForceProbabilisticTest, ResultsRespectDownwardClosure) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 21, .num_transactions = 10, .num_items = 6});
  ProbabilisticParams params;
  params.min_sup = 0.3;
  params.pft = 0.5;
  auto result = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& fi : result->itemsets()) {
    for (const Itemset& sub : fi.itemset.AllSubsetsMissingOne()) {
      if (sub.empty()) continue;
      EXPECT_NE(result->Find(sub), nullptr)
          << fi.itemset.ToString() << " present but subset " << sub.ToString()
          << " missing";
    }
  }
}

}  // namespace
}  // namespace ufim
