#include "algo/top_k.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "core/postprocess.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(TopKMinerTest, RejectsZeroK) {
  EXPECT_FALSE(MineTopKExpected(MakePaperTable1(), 0).ok());
}

TEST(TopKMinerTest, PaperTable1TopTwoAreCAndA) {
  auto result = MineTopKExpected(MakePaperTable1(), 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].itemset, Itemset({kItemC}));  // esup 2.6
  EXPECT_NEAR((*result)[0].expected_support, 2.6, 1e-12);
  EXPECT_EQ((*result)[1].itemset, Itemset({kItemA}));  // esup 2.1
}

TEST(TopKMinerTest, KLargerThanLatticeReturnsEverything) {
  // 2 items with nonzero probs -> 3 possible itemsets.
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 0.5}, {1, 0.5}});
  UncertainDatabase db(std::move(txns));
  auto result = MineTopKExpected(db, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

struct TopKCase {
  std::uint64_t seed;
  std::size_t k;
};

class TopKPropertyTest : public ::testing::TestWithParam<TopKCase> {};

// Oracle: mine everything at a tiny threshold with brute force, rank,
// truncate — the top-k esup values must match (itemsets may differ on
// exact ties, so compare the support multiset).
TEST_P(TopKPropertyTest, MatchesRankedBruteForce) {
  const TopKCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 15, .num_items = 6});
  auto top = MineTopKExpected(db, c.k);
  ASSERT_TRUE(top.ok());

  ExpectedSupportParams params;
  params.min_esup = 1e-9;  // everything
  auto all = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(all.ok());
  MiningResult oracle = TopK(*all, c.k);

  ASSERT_EQ(top->size(), oracle.size());
  for (std::size_t i = 0; i < top->size(); ++i) {
    EXPECT_NEAR((*top)[i].expected_support, oracle[i].expected_support, 1e-9)
        << "rank " << i;
  }
  // Descending order.
  for (std::size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].expected_support,
              (*top)[i].expected_support - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedAndKSweep, TopKPropertyTest,
                         ::testing::Values(TopKCase{1, 1}, TopKCase{2, 3},
                                           TopKCase{3, 5}, TopKCase{4, 10},
                                           TopKCase{5, 25}, TopKCase{6, 50},
                                           TopKCase{7, 7}, TopKCase{8, 2}));

TEST(TopKMinerTest, PrunesAgainstExhaustiveSearch) {
  // The dynamic bound must explore far fewer candidates than the full
  // lattice on a database with many items.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 9, .num_transactions = 100, .num_items = 14,
       .item_presence = 0.4});
  auto top = MineTopKExpected(db, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 5u);
  // Full lattice over 14 items is 2^14-1 = 16383; the bound should keep
  // the search well under it.
  EXPECT_LT(top->counters().candidates_generated, 4000u);
}

TEST(TopKMinerTest, EmptyDatabase) {
  auto result = MineTopKExpected(UncertainDatabase(), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace ufim
