// Pathological databases through every production miner: certain
// probabilities (the deterministic degeneration), single-item universes,
// duplicated transactions, and thresholds at exact boundaries. These are
// the inputs where an off-by-one in msc handling or a strict-vs-weak
// inequality slip would hide.
#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

/// A certain database: all probabilities 1 — uncertain mining must
/// degenerate to classic deterministic frequent itemset mining.
UncertainDatabase CertainDb() {
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 1.0}, {2, 1.0}});
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 1.0}});
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}});
  txns.emplace_back(std::vector<ProbItem>{{3, 1.0}});
  return UncertainDatabase(std::move(txns));
}

TEST(PathologicalTest, CertainDatabaseExpectedMinersMatchCounts) {
  // Deterministic supports: {0}:3 {1}:2 {2}:1 {3}:1 {0,1}:2 {0,2}:1
  // {1,2}:1 {0,1,2}:1. min_esup=0.5 (abs 2) keeps {0},{1},{0,1}.
  UncertainDatabase db = CertainDb();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok()) << ToString(algo);
    ASSERT_EQ(result->size(), 3u) << ToString(algo);
    EXPECT_NE(result->Find(Itemset({0})), nullptr);
    EXPECT_NE(result->Find(Itemset({1})), nullptr);
    EXPECT_NE(result->Find(Itemset({0, 1})), nullptr);
    for (const FrequentItemset& fi : result->itemsets()) {
      EXPECT_EQ(fi.variance, 0.0) << ToString(algo) << fi.itemset.ToString();
    }
  }
}

TEST(PathologicalTest, CertainDatabaseProbabilisticMinersAreStepFunctions) {
  // With certain data Pr(sup >= msc) is 0 or 1: at any pft in [0,1)
  // exactly the deterministically frequent itemsets qualify.
  UncertainDatabase db = CertainDb();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  for (double pft : {0.0, 0.5, 0.99}) {
    params.pft = pft;
    for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
      auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
      ASSERT_TRUE(result.ok()) << ToString(algo);
      EXPECT_EQ(result->size(), 3u) << ToString(algo) << " pft=" << pft;
      for (const FrequentItemset& fi : result->itemsets()) {
        EXPECT_EQ(*fi.frequent_probability, 1.0);
      }
    }
    // The Normal-based approximations handle the var = 0 degeneration as
    // an exact step function; the Poisson-based one cannot represent a
    // degenerate distribution at all (its variance is forced to equal
    // its mean), so it is exempt here — the price §4.4 quantifies.
    for (ProbabilisticAlgorithm algo : {ProbabilisticAlgorithm::kNDUApriori,
                                        ProbabilisticAlgorithm::kNDUHMine}) {
      auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
      ASSERT_TRUE(result.ok()) << ToString(algo);
      EXPECT_EQ(result->size(), 3u) << ToString(algo) << " pft=" << pft;
    }
  }
}

TEST(PathologicalTest, SingleItemUniverse) {
  // 0.5 is exactly representable, so the threshold comparison at the
  // boundary is deterministic (Definition 2 uses >=).
  std::vector<Transaction> txns;
  for (int i = 0; i < 10; ++i) {
    txns.emplace_back(std::vector<ProbItem>{{0, 0.5}});
  }
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 0.5;  // abs 5.0 == esup exactly: >= keeps it
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u) << ToString(algo);
    EXPECT_EQ((*result)[0].expected_support, 5.0);
  }
  params.min_esup = 0.5000001;  // just above: must drop it
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty()) << ToString(algo);
  }
}

TEST(PathologicalTest, DuplicateTransactionsShareUFPNodes) {
  // Identical transactions exercise the (item, prob) node-sharing path
  // of the UFP-tree; results must still agree across miners.
  std::vector<Transaction> txns;
  for (int i = 0; i < 8; ++i) {
    txns.emplace_back(std::vector<ProbItem>{{0, 0.5}, {1, 0.25}, {2, 0.75}});
  }
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 0.1;
  MiningResult reference;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = std::move(result).value();
      continue;
    }
    ASSERT_EQ(result->size(), reference.size()) << ToString(algo);
    for (const FrequentItemset& fi : reference.itemsets()) {
      const FrequentItemset* hit = result->Find(fi.itemset);
      ASSERT_NE(hit, nullptr) << ToString(algo) << fi.itemset.ToString();
      EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-9);
      EXPECT_NEAR(hit->variance, fi.variance, 1e-9);
    }
  }
}

TEST(PathologicalTest, MinSupOneRequiresSupportInEveryTransaction) {
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}});
  txns.emplace_back(std::vector<ProbItem>{{0, 0.9}});
  UncertainDatabase db(std::move(txns));
  ProbabilisticParams params;
  params.min_sup = 1.0;  // msc = 2
  params.pft = 0.89;     // Pr(sup=2) = 0.9 > 0.89: frequent
  for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u) << ToString(algo);
    EXPECT_NEAR(*(*result)[0].frequent_probability, 0.9, 1e-12);
  }
  params.pft = 0.91;  // 0.9 < 0.91: not frequent
  for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty()) << ToString(algo);
  }
}

TEST(PathologicalTest, WideTransactionSingleRow) {
  // One transaction with many items: depth-first miners recurse along a
  // single chain; breadth-first ones generate one candidate per level.
  std::vector<ProbItem> units;
  for (ItemId i = 0; i < 12; ++i) units.push_back({i, 1.0});
  std::vector<Transaction> txns;
  txns.emplace_back(std::move(units));
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 1.0;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), (1u << 12) - 1) << ToString(algo);
  }
}

}  // namespace
}  // namespace ufim
