#include "algo/uapriori.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

void ExpectSameResults(const MiningResult& got, const MiningResult& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const FrequentItemset& fi : want.itemsets()) {
    const FrequentItemset* hit = got.Find(fi.itemset);
    ASSERT_NE(hit, nullptr) << "missing " << fi.itemset.ToString();
    EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-9);
    EXPECT_NEAR(hit->variance, fi.variance, 1e-9);
  }
}

TEST(UAprioriTest, PaperExample1) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_NE(result->Find(Itemset({kItemA})), nullptr);
  EXPECT_NE(result->Find(Itemset({kItemC})), nullptr);
}

struct SweepCase {
  std::uint64_t seed;
  double min_esup;
  double presence;
};

class UAprioriPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UAprioriPropertyTest, MatchesBruteForce) {
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 14, .num_items = 7,
       .item_presence = c.presence});
  ExpectedSupportParams params;
  params.min_esup = c.min_esup;
  auto fast = UApriori().Mine(db, params);
  auto oracle = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ExpectSameResults(*fast, *oracle);
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndThresholdSweep, UAprioriPropertyTest,
    ::testing::Values(SweepCase{1, 0.1, 0.5}, SweepCase{2, 0.2, 0.5},
                      SweepCase{3, 0.3, 0.7}, SweepCase{4, 0.05, 0.3},
                      SweepCase{5, 0.5, 0.9}, SweepCase{6, 0.15, 0.6},
                      SweepCase{7, 0.25, 0.4}, SweepCase{8, 0.4, 0.8},
                      SweepCase{9, 0.08, 0.5}, SweepCase{10, 0.35, 0.95}));

TEST(UAprioriTest, DecrementalPruningPreservesResults) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 77, .num_transactions = 1500, .num_items = 10,
       .item_presence = 0.4});
  ExpectedSupportParams params;
  params.min_esup = 0.15;
  auto with = UApriori(/*decremental_pruning=*/true).Mine(db, params);
  auto without = UApriori(/*decremental_pruning=*/false).Mine(db, params);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  ExpectSameResults(*with, *without);
}

TEST(UAprioriTest, CountsDatabaseScansPerLevel) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.25;
  auto result = UApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  // At least the item scan plus one candidate level.
  EXPECT_GE(result->counters().database_scans, 2u);
}

TEST(UAprioriTest, EmptyDatabase) {
  UncertainDatabase db;
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = UApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(UAprioriTest, ThresholdOneRequiresCertainUnits) {
  // min_esup = 1.0: only items present in every transaction with
  // probability 1 qualify.
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 0.99}});
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 1.0}});
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 1.0;
  auto result = UApriori().Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].itemset, Itemset({0}));
}

}  // namespace
}  // namespace ufim
