#include "algo/mc_sampling.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "eval/metrics.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(MCSamplingTest, Metadata) {
  MCSampling miner;
  EXPECT_EQ(miner.name(), "MCSampling");
  EXPECT_FALSE(miner.is_exact());
}

TEST(MCSamplingTest, RejectsZeroSamples) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  EXPECT_FALSE(MCSampling(0).Mine(db, params).ok());
}

TEST(MCSamplingTest, DeterministicInSeed) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 71, .num_transactions = 30, .num_items = 6});
  ProbabilisticParams params;
  params.min_sup = 0.3;
  params.pft = 0.6;
  auto a = MCSampling(256, 5).Mine(db, params);
  auto b = MCSampling(256, 5).Mine(db, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ItemsetsOnly(), b->ItemsetsOnly());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(*(*a)[i].frequent_probability, *(*b)[i].frequent_probability);
  }
}

TEST(MCSamplingTest, PaperExample2WithManySamples) {
  // Pr(sup(A) >= 2) = 0.8 exactly; 20k samples put the estimate within
  // a tight interval with overwhelming probability.
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  auto result = MCSampling(20000, 1).Mine(db, params);
  ASSERT_TRUE(result.ok());
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(*a->frequent_probability, 0.8, 0.02);
}

struct AgreementCase {
  std::uint64_t seed;
  double min_sup;
  double pft;
};

class MCSamplingAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

// Against the exact oracle, sampling with a healthy budget must reach
// high precision/recall: only itemsets whose true frequent probability
// lies within the sampling noise band of pft can flip.
TEST_P(MCSamplingAgreementTest, HighAgreementWithExact) {
  const AgreementCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 40, .num_items = 7});
  ProbabilisticParams params;
  params.min_sup = c.min_sup;
  params.pft = c.pft;
  auto exact = BruteForceProbabilistic().Mine(db, params);
  auto sampled = MCSampling(4096, c.seed).Mine(db, params);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  PrecisionRecall pr = ComputePrecisionRecall(*sampled, *exact);
  EXPECT_GE(pr.precision, 0.9) << "seed=" << c.seed;
  EXPECT_GE(pr.recall, 0.9) << "seed=" << c.seed;
  // Estimated probabilities are close to the exact ones.
  for (const FrequentItemset& fi : sampled->itemsets()) {
    const FrequentItemset* truth = exact->Find(fi.itemset);
    if (truth == nullptr) continue;  // borderline false positive
    EXPECT_NEAR(*fi.frequent_probability, *truth->frequent_probability, 0.05)
        << fi.itemset.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, MCSamplingAgreementTest,
    ::testing::Values(AgreementCase{1, 0.25, 0.5}, AgreementCase{2, 0.3, 0.9},
                      AgreementCase{3, 0.2, 0.7}, AgreementCase{4, 0.35, 0.3},
                      AgreementCase{5, 0.15, 0.8}, AgreementCase{6, 0.4, 0.6}));

TEST(MCSamplingTest, ChernoffPruningStillSound) {
  // MCSampling runs with Chernoff pruning on; pruned candidates are
  // certainly infrequent, so enabling it cannot cost recall vs exact.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 81, .num_transactions = 60, .num_items = 6});
  ProbabilisticParams params;
  params.min_sup = 0.4;
  params.pft = 0.9;
  auto exact = BruteForceProbabilistic().Mine(db, params);
  auto sampled = MCSampling(8192, 2).Mine(db, params);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  PrecisionRecall pr = ComputePrecisionRecall(*sampled, *exact);
  EXPECT_GE(pr.recall, 0.99);
}

TEST(MCSamplingTest, ParallelTailsBitIdenticalAcrossThreadCounts) {
  // Each candidate samples from a private RNG stream derived from
  // (seed, stable candidate ordinal), so the estimates cannot depend on
  // which thread evaluates which candidate — results must match the
  // single-thread run exactly, probabilities included.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 91, .num_transactions = 50, .num_items = 8});
  ProbabilisticParams params;
  params.min_sup = 0.2;
  params.pft = 0.5;
  auto baseline = MCSampling(512, 9, /*num_threads=*/1).Mine(db, params);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->empty());
  for (std::size_t threads : {2u, 8u}) {
    auto run = MCSampling(512, 9, threads).Mine(db, params);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->size(), baseline->size()) << threads << " threads";
    for (std::size_t i = 0; i < baseline->size(); ++i) {
      EXPECT_EQ((*run)[i].itemset, (*baseline)[i].itemset);
      EXPECT_EQ(*(*run)[i].frequent_probability,
                *(*baseline)[i].frequent_probability)
          << (*baseline)[i].itemset.ToString() << " @" << threads;
    }
    EXPECT_EQ(run->counters().exact_tail_evals,
              baseline->counters().exact_tail_evals);
    EXPECT_EQ(run->counters().candidates_rejected_bound,
              baseline->counters().candidates_rejected_bound);
  }
}

TEST(MCSamplingTest, EmptyDatabase) {
  UncertainDatabase db;
  ProbabilisticParams params;
  auto result = MCSampling().Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace ufim
