#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/exact_dc.h"
#include "algo/exact_dp.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

void ExpectSameProbabilisticResults(const MiningResult& got,
                                    const MiningResult& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const FrequentItemset& fi : want.itemsets()) {
    const FrequentItemset* hit = got.Find(fi.itemset);
    ASSERT_NE(hit, nullptr) << "missing " << fi.itemset.ToString();
    ASSERT_TRUE(hit->frequent_probability.has_value());
    ASSERT_TRUE(fi.frequent_probability.has_value());
    EXPECT_NEAR(*hit->frequent_probability, *fi.frequent_probability, 1e-9);
  }
}

TEST(ExactDPTest, PaperExample2) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  auto result = ExactDP(/*use_chernoff_pruning=*/false).Mine(db, params);
  ASSERT_TRUE(result.ok());
  const FrequentItemset* a = result->Find(Itemset({kItemA}));
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(*a->frequent_probability, 0.8, 1e-12);
}

struct SweepCase {
  std::uint64_t seed;
  double min_sup;
  double pft;
  double presence;
};

class ExactMinerPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExactMinerPropertyTest, DPNBMatchesBruteForce) {
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 12, .num_items = 6,
       .item_presence = c.presence});
  ProbabilisticParams params;
  params.min_sup = c.min_sup;
  params.pft = c.pft;
  auto fast = ExactDP(false).Mine(db, params);
  auto oracle = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ExpectSameProbabilisticResults(*fast, *oracle);
}

TEST_P(ExactMinerPropertyTest, DCNBMatchesBruteForce) {
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = 12, .num_items = 6,
       .item_presence = c.presence});
  ProbabilisticParams params;
  params.min_sup = c.min_sup;
  params.pft = c.pft;
  auto fast = ExactDC(false).Mine(db, params);
  auto oracle = BruteForceProbabilistic().Mine(db, params);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ExpectSameProbabilisticResults(*fast, *oracle);
}

TEST_P(ExactMinerPropertyTest, ChernoffVariantsReturnIdenticalSets) {
  // The Chernoff bound is only allowed to skip *infrequent* itemsets:
  // DPB == DPNB and DCB == DCNB as result sets, probabilities included.
  const SweepCase c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed + 1000, .num_transactions = 16, .num_items = 6,
       .item_presence = c.presence});
  ProbabilisticParams params;
  params.min_sup = c.min_sup;
  params.pft = c.pft;
  auto dpb = ExactDP(true).Mine(db, params);
  auto dpnb = ExactDP(false).Mine(db, params);
  auto dcb = ExactDC(true).Mine(db, params);
  auto dcnb = ExactDC(false).Mine(db, params);
  ASSERT_TRUE(dpb.ok());
  ASSERT_TRUE(dpnb.ok());
  ASSERT_TRUE(dcb.ok());
  ASSERT_TRUE(dcnb.ok());
  ExpectSameProbabilisticResults(*dpb, *dpnb);
  ExpectSameProbabilisticResults(*dcb, *dcnb);
  ExpectSameProbabilisticResults(*dpb, *dcb);
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndThresholdSweep, ExactMinerPropertyTest,
    ::testing::Values(SweepCase{41, 0.2, 0.5, 0.5},
                      SweepCase{42, 0.3, 0.9, 0.5},
                      SweepCase{43, 0.5, 0.7, 0.7},
                      SweepCase{44, 0.1, 0.3, 0.3},
                      SweepCase{45, 0.4, 0.95, 0.8},
                      SweepCase{46, 0.25, 0.1, 0.6},
                      SweepCase{47, 0.6, 0.5, 0.9},
                      SweepCase{48, 0.15, 0.8, 0.4}));

TEST(ExactMinersTest, ChernoffPruningReducesExactEvaluations) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 99, .num_transactions = 200, .num_items = 10,
       .item_presence = 0.3});
  ProbabilisticParams params;
  params.min_sup = 0.6;  // far above typical esup: plenty to prune
  params.pft = 0.9;
  auto with = ExactDP(true).Mine(db, params);
  auto without = ExactDP(false).Mine(db, params);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with->counters().exact_tail_evals,
            without->counters().exact_tail_evals);
  EXPECT_GT(with->counters().candidates_rejected_bound, 0u);
}

TEST(ExactMinersTest, NamesReflectChernoffFlag) {
  EXPECT_EQ(ExactDP(true).name(), "DPB");
  EXPECT_EQ(ExactDP(false).name(), "DPNB");
  EXPECT_EQ(ExactDC(true).name(), "DCB");
  EXPECT_EQ(ExactDC(false).name(), "DCNB");
  EXPECT_TRUE(ExactDP(true).is_exact());
  EXPECT_TRUE(ExactDC(false).is_exact());
}

TEST(ExactMinersTest, EmptyDatabase) {
  UncertainDatabase db;
  ProbabilisticParams params;
  auto dp = ExactDP(true).Mine(db, params);
  auto dc = ExactDC(true).Mine(db, params);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(dp->empty());
  EXPECT_TRUE(dc->empty());
}

TEST(ExactMinersTest, RejectsInvalidParams) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams bad;
  bad.min_sup = 0.0;
  EXPECT_FALSE(ExactDP(true).Mine(db, bad).ok());
  EXPECT_FALSE(ExactDC(true).Mine(db, bad).ok());
}

}  // namespace
}  // namespace ufim
