#include "core/uncertain_database.h"

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

TEST(UncertainDatabaseTest, EmptyDatabase) {
  UncertainDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.num_items(), 0u);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(UncertainDatabaseTest, NumItemsTracksMaxId) {
  UncertainDatabase db;
  db.Add(Transaction({{2, 0.5}}));
  EXPECT_EQ(db.num_items(), 3u);
  db.Add(Transaction({{7, 0.5}}));
  EXPECT_EQ(db.num_items(), 8u);
}

TEST(UncertainDatabaseTest, AppendMaintainsNumItemsEagerly) {
  // The append-path cache contract: num_items() is consistent with the
  // transactions immediately after every Append — updated as part of
  // the call, never invalidated for a later lazy fill.
  UncertainDatabase db;
  const std::vector<Transaction> first = {Transaction({{2, 0.5}}),
                                          Transaction({{5, 0.9}, {6, 0.1}})};
  db.Append(first);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.num_items(), 7u);

  // A batch whose largest item is below the current maximum leaves the
  // universe unchanged (it never shrinks)...
  db.Append(std::vector<Transaction>{Transaction({{0, 0.3}})});
  EXPECT_EQ(db.num_items(), 7u);

  // ...a batch with a new largest item (or empty transactions mixed in)
  // grows it within the same call.
  db.Append(std::vector<Transaction>{Transaction(std::vector<ProbItem>{}),
                                     Transaction({{9, 0.4}})});
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.num_items(), 10u);

  // Batch append is equivalent to per-transaction Add.
  UncertainDatabase one_by_one;
  for (const Transaction& t : db.transactions()) one_by_one.Add(t);
  EXPECT_EQ(one_by_one.num_items(), db.num_items());
  EXPECT_EQ(one_by_one.size(), db.size());

  // An empty batch is a no-op.
  db.Append({});
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.num_items(), 10u);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(UncertainDatabaseTest, PaperTable1Stats) {
  UncertainDatabase db = MakePaperTable1();
  DatabaseStats stats = db.ComputeStats();
  EXPECT_EQ(stats.num_transactions, 4u);
  EXPECT_EQ(stats.num_items, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 16.0 / 4.0);
  EXPECT_NEAR(stats.density, 4.0 / 6.0, 1e-12);
}

TEST(UncertainDatabaseTest, ItemExpectedSupportMatchesPaperExample1) {
  // Paper Example 1: esup(A) = 2.1, esup(C) = 2.6.
  UncertainDatabase db = MakePaperTable1();
  EXPECT_NEAR(db.ItemExpectedSupport(kItemA), 2.1, 1e-12);
  EXPECT_NEAR(db.ItemExpectedSupport(kItemC), 2.6, 1e-12);
  EXPECT_NEAR(db.ItemExpectedSupport(kItemB), 1.4, 1e-12);
  EXPECT_NEAR(db.ItemExpectedSupport(kItemD), 1.2, 1e-12);
  EXPECT_NEAR(db.ItemExpectedSupport(kItemE), 1.3, 1e-12);
  EXPECT_NEAR(db.ItemExpectedSupport(kItemF), 1.8, 1e-12);
}

TEST(UncertainDatabaseTest, ItemsetExpectedSupport) {
  UncertainDatabase db = MakePaperTable1();
  // {A, C}: T1 0.8*0.9 + T2 0.8*0.9 + T3 0.5*0.8 = 0.72+0.72+0.40 = 1.84.
  EXPECT_NEAR(db.ExpectedSupport(Itemset({kItemA, kItemC})), 1.84, 1e-12);
}

TEST(UncertainDatabaseTest, ContainmentProbabilitiesSkipZeros) {
  UncertainDatabase db = MakePaperTable1();
  auto probs = db.ContainmentProbabilities(Itemset({kItemA, kItemC}));
  ASSERT_EQ(probs.size(), 3u);  // A and C co-occur in T1, T2, T3 only
  EXPECT_NEAR(probs[0], 0.72, 1e-12);
  EXPECT_NEAR(probs[1], 0.72, 1e-12);
  EXPECT_NEAR(probs[2], 0.40, 1e-12);
}

TEST(UncertainDatabaseTest, PrefixTakesFirstN) {
  UncertainDatabase db = MakePaperTable1();
  UncertainDatabase two = db.Prefix(2);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], db[0]);
  EXPECT_EQ(two[1], db[1]);
  EXPECT_EQ(db.Prefix(99).size(), 4u);
  EXPECT_EQ(db.Prefix(0).size(), 0u);
}

TEST(UncertainDatabaseTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakePaperTable1().Validate().ok());
}

}  // namespace
}  // namespace ufim
