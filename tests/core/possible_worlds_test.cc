#include "core/possible_worlds.h"

#include <numeric>

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"
#include "prob/poisson_binomial.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

UncertainDatabase TinyDb() {
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 0.8}, {1, 0.5}});
  txns.emplace_back(std::vector<ProbItem>{{0, 0.4}});
  return UncertainDatabase(std::move(txns));
}

TEST(EnumerateWorldsTest, ProbabilitiesSumToOne) {
  double total = 0.0;
  std::size_t worlds = 0;
  ASSERT_TRUE(EnumerateWorlds(TinyDb(),
                              [&](const World&, double p) {
                                total += p;
                                ++worlds;
                              })
                  .ok());
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(worlds, 8u);  // 3 units -> 2^3 worlds (all probs in (0,1))
}

TEST(EnumerateWorldsTest, RefusesOversizedDatabases) {
  UncertainDatabase big = testing_util::MakeRandomDatabase(
      {.seed = 1, .num_transactions = 10, .num_items = 10});
  Status s = EnumerateWorlds(big, [](const World&, double) {}, /*max_units=*/8);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WorldSupportTest, CountsTransactionsContainingAll) {
  World world = {{0, 1, 2}, {0, 2}, {1}};
  EXPECT_EQ(WorldSupport(world, Itemset({0})), 2u);
  EXPECT_EQ(WorldSupport(world, Itemset({0, 2})), 2u);
  EXPECT_EQ(WorldSupport(world, Itemset({0, 1})), 1u);
  EXPECT_EQ(WorldSupport(world, Itemset({3})), 0u);
  EXPECT_EQ(WorldSupport(world, Itemset()), 0u);
}

TEST(SupportDistributionTest, MatchesHandComputation) {
  // sup({0}) over TinyDb: Bernoulli(0.8) + Bernoulli(0.4).
  auto pmf = SupportDistributionByEnumeration(TinyDb(), Itemset({0}));
  ASSERT_TRUE(pmf.ok());
  ASSERT_EQ(pmf->size(), 3u);
  EXPECT_NEAR((*pmf)[0], 0.2 * 0.6, 1e-12);
  EXPECT_NEAR((*pmf)[1], 0.8 * 0.6 + 0.2 * 0.4, 1e-12);
  EXPECT_NEAR((*pmf)[2], 0.8 * 0.4, 1e-12);
}

// The semantic keystone: the possible-world support distribution equals
// the Poisson-binomial over the containment probabilities — the identity
// every algorithm in the paper (and this library) rests on. The two
// sides share no code.
TEST(SupportDistributionTest, EqualsPoissonBinomialOfContainments) {
  for (std::uint64_t seed : {2u, 3u, 4u, 5u}) {
    UncertainDatabase db = testing_util::MakeRandomDatabase(
        {.seed = seed, .num_transactions = 4, .num_items = 4,
         .item_presence = 0.6});
    for (const Itemset& itemset :
         {Itemset({0}), Itemset({1, 2}), Itemset({0, 3}), Itemset({1, 2, 3})}) {
      auto by_worlds = SupportDistributionByEnumeration(db, itemset);
      ASSERT_TRUE(by_worlds.ok());
      auto probs = db.ContainmentProbabilities(itemset);
      auto by_pb = PoissonBinomialCappedPmfDP(probs, db.size());
      by_pb.resize(db.size() + 1, 0.0);
      for (std::size_t k = 0; k <= db.size(); ++k) {
        EXPECT_NEAR((*by_worlds)[k], by_pb[k], 1e-10)
            << "seed=" << seed << " itemset=" << itemset.ToString()
            << " k=" << k;
      }
    }
  }
}

TEST(SampleWorldTest, RespectsCertainAndImpossibleUnits) {
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, 0.5}});
  UncertainDatabase db(std::move(txns));
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    World w = SampleWorld(db, rng);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_TRUE(std::binary_search(w[0].begin(), w[0].end(), ItemId{0}));
  }
}

TEST(EstimateFrequentProbabilityTest, ConvergesToExact) {
  UncertainDatabase db = MakePaperTable1();
  Rng rng(11);
  // Pr(sup({A}) >= 2) = 0.8 (corrected Table 2).
  const double estimate =
      EstimateFrequentProbability(db, Itemset({kItemA}), 2, 20000, rng);
  EXPECT_NEAR(estimate, 0.8, 0.02);
}

TEST(EstimateFrequentProbabilityTest, ZeroSamplesIsZero) {
  UncertainDatabase db = MakePaperTable1();
  Rng rng(1);
  EXPECT_EQ(EstimateFrequentProbability(db, Itemset({kItemA}), 1, 0, rng), 0.0);
}

}  // namespace
}  // namespace ufim
