#include "core/postprocess.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

MiningResult MakeResult(
    std::initializer_list<std::pair<Itemset, double>> entries) {
  MiningResult r;
  for (const auto& [itemset, esup] : entries) {
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = esup;
    r.Add(std::move(fi));
  }
  return r;
}

TEST(FilterClosedTest, DropsItemsetsWithEqualSupportSuperset) {
  // {1} has the same esup as {1,2}: not closed. {2} is closed.
  MiningResult r = MakeResult(
      {{Itemset({1}), 2.0}, {Itemset({2}), 3.0}, {Itemset({1, 2}), 2.0}});
  MiningResult closed = FilterClosed(r);
  EXPECT_EQ(closed.Find(Itemset({1})), nullptr);
  EXPECT_NE(closed.Find(Itemset({2})), nullptr);
  EXPECT_NE(closed.Find(Itemset({1, 2})), nullptr);
}

TEST(FilterClosedTest, KeepsAllWhenSupportsDiffer) {
  MiningResult r = MakeResult(
      {{Itemset({1}), 3.0}, {Itemset({2}), 2.5}, {Itemset({1, 2}), 2.0}});
  EXPECT_EQ(FilterClosed(r).size(), 3u);
}

TEST(FilterMaximalTest, KeepsOnlyTopsOfTheLattice) {
  MiningResult r = MakeResult({{Itemset({1}), 3.0},
                               {Itemset({2}), 2.5},
                               {Itemset({3}), 2.0},
                               {Itemset({1, 2}), 2.0}});
  MiningResult maximal = FilterMaximal(r);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_NE(maximal.Find(Itemset({1, 2})), nullptr);
  EXPECT_NE(maximal.Find(Itemset({3})), nullptr);
}

TEST(PostprocessLatticeTest, MaximalSubsetOfClosedSubsetOfAll) {
  // On a real mining result: |maximal| <= |closed| <= |all|, and both
  // condensations are subsets.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 61, .num_transactions = 20, .num_items = 7});
  ExpectedSupportParams params;
  params.min_esup = 0.1;
  auto all = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(all.ok());
  MiningResult closed = FilterClosed(*all);
  MiningResult maximal = FilterMaximal(*all);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), all->size());
  for (const FrequentItemset& fi : maximal.itemsets()) {
    EXPECT_NE(closed.Find(fi.itemset), nullptr)
        << "maximal itemset not closed: " << fi.itemset.ToString();
  }
  for (const FrequentItemset& fi : closed.itemsets()) {
    EXPECT_NE(all->Find(fi.itemset), nullptr);
  }
}

TEST(TopKTest, RanksByExpectedSupport) {
  MiningResult r = MakeResult(
      {{Itemset({1}), 1.0}, {Itemset({2}), 3.0}, {Itemset({3}), 2.0}});
  MiningResult top2 = TopK(r, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].itemset, Itemset({2}));
  EXPECT_EQ(top2[1].itemset, Itemset({3}));
}

TEST(TopKTest, KLargerThanResultKeepsAll) {
  MiningResult r = MakeResult({{Itemset({1}), 1.0}});
  EXPECT_EQ(TopK(r, 10).size(), 1u);
}

TEST(TopKTest, RanksByFrequentProbabilityWhenAsked) {
  MiningResult r;
  FrequentItemset a;
  a.itemset = Itemset({1});
  a.expected_support = 9.0;
  a.frequent_probability = 0.5;
  FrequentItemset b;
  b.itemset = Itemset({2});
  b.expected_support = 1.0;
  b.frequent_probability = 0.99;
  r.Add(a);
  r.Add(b);
  MiningResult top = TopK(r, 1, RankBy::kFrequentProbability);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].itemset, Itemset({2}));
}

TEST(GenerateRulesTest, ComputesExpectedConfidence) {
  // esup({1,2}) / esup({1}) = 2.0/4.0 = 0.5; the reverse rule has 2/2.5.
  MiningResult r = MakeResult(
      {{Itemset({1}), 4.0}, {Itemset({2}), 2.5}, {Itemset({1, 2}), 2.0}});
  auto rules = GenerateRules(r, 0.0);
  ASSERT_EQ(rules.size(), 2u);
  // Sorted by confidence descending: {2}=>{1} (0.8) first.
  EXPECT_EQ(rules[0].antecedent, Itemset({2}));
  EXPECT_NEAR(rules[0].expected_confidence, 0.8, 1e-12);
  EXPECT_EQ(rules[1].antecedent, Itemset({1}));
  EXPECT_NEAR(rules[1].expected_confidence, 0.5, 1e-12);
}

TEST(GenerateRulesTest, MinConfidenceFilters) {
  MiningResult r = MakeResult(
      {{Itemset({1}), 4.0}, {Itemset({2}), 2.5}, {Itemset({1, 2}), 2.0}});
  auto rules = GenerateRules(r, 0.75);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, Itemset({2}));
}

TEST(GenerateRulesTest, MultiItemAntecedentsAndConsequents) {
  MiningResult r = MakeResult({{Itemset({1}), 4.0},
                               {Itemset({2}), 4.0},
                               {Itemset({3}), 4.0},
                               {Itemset({1, 2}), 3.0},
                               {Itemset({1, 3}), 3.0},
                               {Itemset({2, 3}), 3.0},
                               {Itemset({1, 2, 3}), 2.0}});
  auto rules = GenerateRules(r, 0.0);
  // 3-itemset contributes 2^3-2 = 6 rules; each pair contributes 2.
  EXPECT_EQ(rules.size(), 6u + 3u * 2u);
  for (const AssociationRule& rule : rules) {
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    EXPECT_GT(rule.expected_confidence, 0.0);
    EXPECT_LE(rule.expected_confidence, 1.0 + 1e-12);
  }
}

TEST(GenerateRulesTest, ConfidenceNeverExceedsOneOnRealResults) {
  // esup is anti-monotone, so confidence = esup(X)/esup(A) <= 1 always.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 62, .num_transactions = 20, .num_items = 6});
  ExpectedSupportParams params;
  params.min_esup = 0.1;
  auto all = BruteForceExpected().Mine(db, params);
  ASSERT_TRUE(all.ok());
  for (const AssociationRule& rule : GenerateRules(*all, 0.0)) {
    EXPECT_LE(rule.expected_confidence, 1.0 + 1e-9) << rule.ToString();
  }
}

TEST(AssociationRuleTest, ToStringIsReadable) {
  AssociationRule rule{Itemset({1}), Itemset({2}), 2.0, 0.5};
  EXPECT_EQ(rule.ToString(), "{1} => {2} (esup=2.000, conf=0.500)");
}

}  // namespace
}  // namespace ufim
