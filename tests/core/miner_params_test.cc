#include "core/miner.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(ExpectedSupportParamsTest, ValidatesRange) {
  ExpectedSupportParams p;
  p.min_esup = 0.5;
  EXPECT_TRUE(p.Validate().ok());
  p.min_esup = 1.0;
  EXPECT_TRUE(p.Validate().ok());
  p.min_esup = 0.0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
  p.min_esup = -0.1;
  EXPECT_FALSE(p.Validate().ok());
  p.min_esup = 1.01;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProbabilisticParamsTest, ValidatesRanges) {
  ProbabilisticParams p;
  p.min_sup = 0.5;
  p.pft = 0.9;
  EXPECT_TRUE(p.Validate().ok());
  p.pft = 0.0;
  EXPECT_TRUE(p.Validate().ok());
  p.pft = 1.0;  // frequent requires Pr > pft; pft = 1 admits nothing
  EXPECT_FALSE(p.Validate().ok());
  p.pft = -0.1;
  EXPECT_FALSE(p.Validate().ok());
  p.pft = 0.9;
  p.min_sup = 0.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(TopKParamsTest, ValidatesK) {
  TopKParams p;
  EXPECT_TRUE(p.Validate().ok());  // default k = 10
  p.k = 1;
  EXPECT_TRUE(p.Validate().ok());
  p.k = 0;
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MiningTaskTest, TaskKindNamesAllAlternatives) {
  EXPECT_EQ(TaskKindName(MiningTask(ExpectedSupportParams{})),
            "expected-support");
  EXPECT_EQ(TaskKindName(MiningTask(ProbabilisticParams{})), "probabilistic");
  EXPECT_EQ(TaskKindName(MiningTask(TopKParams{})), "top-k");
}

TEST(ProbabilisticParamsTest, MinSupportCountCeilsAndClamps) {
  ProbabilisticParams p;
  p.min_sup = 0.5;
  EXPECT_EQ(p.MinSupportCount(4), 2u);
  EXPECT_EQ(p.MinSupportCount(5), 3u);  // ceil(2.5)
  p.min_sup = 0.001;
  EXPECT_EQ(p.MinSupportCount(100), 1u);  // ceil(0.1) but at least 1
  p.min_sup = 1.0;
  EXPECT_EQ(p.MinSupportCount(7), 7u);
  EXPECT_EQ(p.MinSupportCount(0), 0u);  // empty database: clamped to size
}

}  // namespace
}  // namespace ufim
