#include "core/itemset.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(ItemsetTest, ConstructorSortsAndDeduplicates) {
  Itemset s({5, 1, 3, 1, 5});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
}

TEST(ItemsetTest, Contains) {
  Itemset s({2, 4, 6});
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(Itemset().Contains(0));
}

TEST(ItemsetTest, ContainsAll) {
  Itemset big({1, 2, 3, 4});
  EXPECT_TRUE(big.ContainsAll(Itemset({2, 4})));
  EXPECT_TRUE(big.ContainsAll(Itemset()));
  EXPECT_FALSE(big.ContainsAll(Itemset({2, 5})));
  EXPECT_FALSE(Itemset({1}).ContainsAll(big));
}

TEST(ItemsetTest, UnionInsertsInOrder) {
  Itemset s({1, 5});
  EXPECT_EQ(s.Union(3), Itemset({1, 3, 5}));
  EXPECT_EQ(s.Union(0), Itemset({0, 1, 5}));
  EXPECT_EQ(s.Union(9), Itemset({1, 5, 9}));
  // Original untouched.
  EXPECT_EQ(s, Itemset({1, 5}));
}

TEST(ItemsetTest, WithoutIndex) {
  Itemset s({1, 3, 5});
  EXPECT_EQ(s.WithoutIndex(0), Itemset({3, 5}));
  EXPECT_EQ(s.WithoutIndex(1), Itemset({1, 5}));
  EXPECT_EQ(s.WithoutIndex(2), Itemset({1, 3}));
}

TEST(ItemsetTest, AllSubsetsMissingOne) {
  Itemset s({1, 2, 3});
  auto subs = s.AllSubsetsMissingOne();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], Itemset({2, 3}));
  EXPECT_EQ(subs[1], Itemset({1, 3}));
  EXPECT_EQ(subs[2], Itemset({1, 2}));
}

TEST(ItemsetTest, SharesPrefix) {
  EXPECT_TRUE(Itemset::SharesPrefix(Itemset({1, 2, 3}), Itemset({1, 2, 4})));
  EXPECT_FALSE(Itemset::SharesPrefix(Itemset({1, 2, 3}), Itemset({1, 3, 4})));
  EXPECT_TRUE(Itemset::SharesPrefix(Itemset({1}), Itemset({2})));  // empty prefix
  EXPECT_FALSE(Itemset::SharesPrefix(Itemset({1, 2}), Itemset({1})));
  EXPECT_FALSE(Itemset::SharesPrefix(Itemset(), Itemset()));
}

TEST(ItemsetTest, OrderingIsLexicographic) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 0xFFFF}));
  EXPECT_FALSE(Itemset({2}) < Itemset({1, 9}));
}

TEST(ItemsetTest, ToString) {
  EXPECT_EQ(Itemset({3, 1}).ToString(), "{1, 3}");
  EXPECT_EQ(Itemset().ToString(), "{}");
}

TEST(ItemsetTest, HashUsableInUnorderedSet) {
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(Itemset({1, 2}));
  set.insert(Itemset({2, 1}));  // same set
  set.insert(Itemset({1, 3}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Itemset({2, 1})));
}

}  // namespace
}  // namespace ufim
