#include "core/mining_result.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

FrequentItemset Make(std::initializer_list<ItemId> items, double esup) {
  FrequentItemset fi;
  fi.itemset = Itemset(items);
  fi.expected_support = esup;
  return fi;
}

TEST(MiningResultTest, AddAndSize) {
  MiningResult r;
  EXPECT_TRUE(r.empty());
  r.Add(Make({1}, 2.0));
  r.Add(Make({2}, 1.5));
  EXPECT_EQ(r.size(), 2u);
}

TEST(MiningResultTest, SortCanonicalOrdersBySizeThenLex) {
  MiningResult r;
  r.Add(Make({1, 2}, 1.0));
  r.Add(Make({3}, 1.0));
  r.Add(Make({1}, 1.0));
  r.SortCanonical();
  EXPECT_EQ(r[0].itemset, Itemset({1}));
  EXPECT_EQ(r[1].itemset, Itemset({3}));
  EXPECT_EQ(r[2].itemset, Itemset({1, 2}));
}

TEST(MiningResultTest, FindLocatesItemset) {
  MiningResult r;
  r.Add(Make({1, 2}, 1.25));
  const FrequentItemset* hit = r.Find(Itemset({2, 1}));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->expected_support, 1.25);
  EXPECT_EQ(r.Find(Itemset({9})), nullptr);
}

TEST(MiningResultTest, ItemsetsOnlySorted) {
  MiningResult r;
  r.Add(Make({5}, 1.0));
  r.Add(Make({1}, 1.0));
  auto only = r.ItemsetsOnly();
  ASSERT_EQ(only.size(), 2u);
  EXPECT_EQ(only[0], Itemset({1}));
  EXPECT_EQ(only[1], Itemset({5}));
}

TEST(MiningResultTest, ToStringMentionsProbabilitiesWhenPresent) {
  MiningResult r;
  FrequentItemset fi = Make({1}, 2.0);
  fi.frequent_probability = 0.875;
  r.Add(fi);
  EXPECT_NE(r.ToString().find("freq_prob=0.875"), std::string::npos);
  MiningResult r2;
  r2.Add(Make({1}, 2.0));
  EXPECT_EQ(r2.ToString().find("freq_prob"), std::string::npos);
}

TEST(MiningResultTest, CountersAreMutable) {
  MiningResult r;
  r.counters().candidates_generated = 42;
  EXPECT_EQ(r.counters().candidates_generated, 42u);
}

}  // namespace
}  // namespace ufim
