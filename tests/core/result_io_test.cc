#include "core/result_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ufim {
namespace {

FrequentItemset MakeFi(std::initializer_list<ItemId> items, double esup,
                       double var, std::optional<double> prob = std::nullopt) {
  FrequentItemset fi;
  fi.itemset = Itemset(items);
  fi.expected_support = esup;
  fi.variance = var;
  fi.frequent_probability = prob;
  return fi;
}

TEST(ResultIoTest, LineRoundTripWithoutProbability) {
  FrequentItemset fi = MakeFi({3, 1, 7}, 2.5, 0.75);
  auto parsed = ParseResultLine(FormatResultLine(fi));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->itemset, fi.itemset);
  EXPECT_EQ(parsed->expected_support, fi.expected_support);
  EXPECT_EQ(parsed->variance, fi.variance);
  EXPECT_FALSE(parsed->frequent_probability.has_value());
}

TEST(ResultIoTest, LineRoundTripWithProbability) {
  FrequentItemset fi = MakeFi({2}, 1.0 / 3.0, 0.1 + 0.2, 0.875);
  auto parsed = ParseResultLine(FormatResultLine(fi));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->expected_support, 1.0 / 3.0);  // bit-exact via %.17g
  EXPECT_EQ(parsed->variance, 0.1 + 0.2);
  ASSERT_TRUE(parsed->frequent_probability.has_value());
  EXPECT_EQ(*parsed->frequent_probability, 0.875);
}

TEST(ResultIoTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParseResultLine("").ok());
  EXPECT_FALSE(ParseResultLine("1,2").ok());          // missing numbers
  EXPECT_FALSE(ParseResultLine("1,x 1.0 0.5").ok());  // bad item
  EXPECT_FALSE(ParseResultLine("1 2.0 0.5 0.9 junk").ok());  // trailing
}

TEST(ResultIoTest, FileRoundTrip) {
  MiningResult result;
  result.Add(MakeFi({0}, 3.0, 0.5));
  result.Add(MakeFi({0, 4}, 1.5, 0.25, 0.99));
  const std::string path = testing::TempDir() + "/result.txt";
  ASSERT_TRUE(WriteResult(result, path).ok());
  auto loaded = ReadResult(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].itemset, Itemset({0}));
  EXPECT_EQ((*loaded)[1].itemset, Itemset({0, 4}));
  ASSERT_TRUE((*loaded)[1].frequent_probability.has_value());
  EXPECT_EQ(*(*loaded)[1].frequent_probability, 0.99);
  std::remove(path.c_str());
}

TEST(ResultIoTest, ReadReportsLineNumbers) {
  const std::string path = testing::TempDir() + "/broken_result.txt";
  {
    std::ofstream out(path);
    out << "# header\n1 2.0 0.5\nbroken line here extra\n";
  }
  auto loaded = ReadResult(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadResult("/nonexistent/r.txt").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace ufim
