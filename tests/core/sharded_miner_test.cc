#include "core/sharded_miner.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/miner_registry.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeRandomDatabase;

std::unique_ptr<Miner> MakeInner(const char* name, std::size_t threads = 1) {
  MinerOptions options;
  options.num_threads = threads;
  auto miner = MinerRegistry::Global().Create(name, options);
  EXPECT_NE(miner, nullptr) << name;
  return miner;
}

TEST(ShardedMinerTest, NameWrapsInner) {
  ShardedMiner sharded(MakeInner("UApriori"), 4);
  EXPECT_EQ(sharded.name(), "Sharded(UApriori)");
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_TRUE(sharded.is_exact());
}

TEST(ShardedMinerTest, SupportsExpectedSupportTasksOnly) {
  ShardedMiner sharded(MakeInner("UApriori"), 4);
  EXPECT_TRUE(sharded.Supports(MiningTask(ExpectedSupportParams{})));
  EXPECT_FALSE(sharded.Supports(MiningTask(ProbabilisticParams{})));
  EXPECT_FALSE(sharded.Supports(MiningTask(TopKParams{})));

  FlatView view((MakePaperTable1()));
  auto rejected = sharded.Mine(view, MiningTask(ProbabilisticParams{}));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedMinerTest, InvalidParamsPropagate) {
  ShardedMiner sharded(MakeInner("UApriori"), 3);
  FlatView view((MakePaperTable1()));
  ExpectedSupportParams params;
  params.min_esup = -1.0;
  auto result = sharded.Mine(view, MiningTask(params));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedMinerTest, EmptyDatabaseYieldsEmptyResult) {
  ShardedMiner sharded(MakeInner("UApriori"), 4);
  FlatView view{UncertainDatabase()};
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto result = sharded.Mine(view, MiningTask(params));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ShardedMinerTest, PaperExampleAnyShardCount) {
  // Table 1 has 4 transactions; shard counts beyond the database size
  // must clamp and still produce the paper's Example 1 answer.
  FlatView view((MakePaperTable1()));
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  for (std::size_t shards : {1u, 2u, 3u, 4u, 9u}) {
    ShardedMiner sharded(MakeInner("UApriori"), shards);
    auto result = sharded.Mine(view, MiningTask(params));
    ASSERT_TRUE(result.ok()) << shards << " shards";
    ASSERT_EQ(result->size(), 2u) << shards << " shards";
    EXPECT_EQ((*result)[0].itemset, Itemset{kItemA});
    EXPECT_EQ((*result)[1].itemset, Itemset{kItemC});
    EXPECT_NEAR((*result)[0].expected_support, 2.1, 1e-12);
  }
}

/// SON equivalence: sharded mining must reproduce the unsharded answer
/// exactly at the itemset level and to summation rounding in the
/// moments, for every expected-support miner and shard count.
TEST(ShardedMinerTest, MatchesUnshardedForEveryExpectedMiner) {
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 41, .num_transactions = 80, .num_items = 10});
  FlatView view(db);
  for (const std::string& name : MinerRegistry::Global().NamesOf(
           TaskFamily::kExpectedSupport, /*production_only=*/true)) {
    for (double min_esup : {0.05, 0.15, 0.4}) {
      ExpectedSupportParams params;
      params.min_esup = min_esup;
      auto plain =
          MakeInner(name.c_str())->Mine(view, MiningTask(params));
      ASSERT_TRUE(plain.ok()) << name;
      for (std::size_t shards : {2u, 5u, 13u}) {
        ShardedMiner sharded(MakeInner(name.c_str()), shards);
        auto merged = sharded.Mine(view, MiningTask(params));
        ASSERT_TRUE(merged.ok()) << name << " shards " << shards;
        ASSERT_EQ(merged->size(), plain->size())
            << name << " shards " << shards << " min_esup " << min_esup;
        for (std::size_t i = 0; i < plain->size(); ++i) {
          EXPECT_EQ((*merged)[i].itemset, (*plain)[i].itemset) << name;
          EXPECT_NEAR((*merged)[i].expected_support,
                      (*plain)[i].expected_support, 1e-9)
              << name << " " << (*plain)[i].itemset.ToString();
          EXPECT_NEAR((*merged)[i].variance, (*plain)[i].variance, 1e-9);
        }
      }
    }
  }
}

TEST(ShardedMinerTest, BitIdenticalAcrossThreadCounts) {
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 42, .num_transactions = 70, .num_items = 9});
  FlatView view(db);
  ExpectedSupportParams params;
  params.min_esup = 0.1;
  ShardedMiner baseline(MakeInner("UApriori", 1), 5, 1);
  auto expect = baseline.Mine(view, MiningTask(params));
  ASSERT_TRUE(expect.ok());
  for (std::size_t threads : {2u, 8u}) {
    ShardedMiner sharded(MakeInner("UApriori", threads), 5, threads);
    auto result = sharded.Mine(view, MiningTask(params));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), expect->size()) << threads << " threads";
    for (std::size_t i = 0; i < expect->size(); ++i) {
      EXPECT_EQ((*result)[i].itemset, (*expect)[i].itemset);
      // Exact: same shard decomposition, same merge order.
      EXPECT_EQ((*result)[i].expected_support, (*expect)[i].expected_support);
      EXPECT_EQ((*result)[i].variance, (*expect)[i].variance);
    }
  }
}

}  // namespace
}  // namespace ufim
