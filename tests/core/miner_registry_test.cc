#include "core/miner_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

std::vector<std::string_view> EveryFactoryName() {
  std::vector<std::string_view> names;
  for (ExpectedAlgorithm algo :
       {ExpectedAlgorithm::kUApriori, ExpectedAlgorithm::kUFPGrowth,
        ExpectedAlgorithm::kUHMine, ExpectedAlgorithm::kBruteForce}) {
    names.push_back(ToString(algo));
  }
  for (ProbabilisticAlgorithm algo :
       {ProbabilisticAlgorithm::kDPNB, ProbabilisticAlgorithm::kDPB,
        ProbabilisticAlgorithm::kDCNB, ProbabilisticAlgorithm::kDCB,
        ProbabilisticAlgorithm::kPDUApriori, ProbabilisticAlgorithm::kNDUApriori,
        ProbabilisticAlgorithm::kNDUHMine, ProbabilisticAlgorithm::kMCSampling,
        ProbabilisticAlgorithm::kBruteForce}) {
    names.push_back(ToString(algo));
  }
  return names;
}

TEST(MinerRegistryTest, RoundTripsEveryFactoryName) {
  for (std::string_view name : EveryFactoryName()) {
    const MinerEntry* entry = MinerRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->name, name);
    std::unique_ptr<Miner> miner = MinerRegistry::Global().Create(name);
    ASSERT_NE(miner, nullptr) << name;
    EXPECT_EQ(miner->name(), name);
    // The registered family must agree with what the miner accepts.
    const bool expects_esup =
        entry->family == TaskFamily::kExpectedSupport;
    EXPECT_EQ(miner->Supports(MiningTask(ExpectedSupportParams{})),
              expects_esup)
        << name;
    EXPECT_EQ(miner->Supports(MiningTask(ProbabilisticParams{})),
              !expects_esup)
        << name;
  }
}

TEST(MinerRegistryTest, UnknownNameIsNull) {
  EXPECT_EQ(MinerRegistry::Global().Find("NoSuchMiner"), nullptr);
  EXPECT_EQ(MinerRegistry::Global().Create("NoSuchMiner"), nullptr);
}

TEST(MinerRegistryTest, ProductionNamesExcludeBruteForce) {
  const std::vector<std::string> production =
      MinerRegistry::Global().Names(/*production_only=*/true);
  EXPECT_EQ(std::count(production.begin(), production.end(),
                       "BruteForceExpected"),
            0);
  EXPECT_EQ(std::count(production.begin(), production.end(),
                       "BruteForceProbabilistic"),
            0);
  // 3 expected-support + 4 exact + 3 approximate + MCSampling + TopK =
  // 12 production algorithms.
  EXPECT_EQ(production.size(), 12u);
  EXPECT_EQ(MinerRegistry::Global()
                .NamesOf(TaskFamily::kExpectedSupport, /*production_only=*/true)
                .size(),
            3u);
  EXPECT_EQ(MinerRegistry::Global()
                .NamesOf(TaskFamily::kProbabilistic, /*production_only=*/true)
                .size(),
            8u);
  EXPECT_EQ(MinerRegistry::Global()
                .NamesOf(TaskFamily::kTopK, /*production_only=*/true)
                .size(),
            1u);
}

TEST(MinerRegistryTest, TopKIsAFirstClassMiner) {
  const MinerEntry* entry = MinerRegistry::Global().Find("TopK");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->family, TaskFamily::kTopK);
  std::unique_ptr<Miner> miner = MinerRegistry::Global().Create("TopK");
  ASSERT_NE(miner, nullptr);
  EXPECT_TRUE(miner->Supports(MiningTask(TopKParams{})));
  EXPECT_FALSE(miner->Supports(MiningTask(ExpectedSupportParams{})));
  EXPECT_FALSE(miner->Supports(MiningTask(ProbabilisticParams{})));
  EXPECT_TRUE(miner->is_exact());

  FlatView view((MakePaperTable1()));
  TopKParams params;
  params.k = 2;
  auto result = miner->Mine(view, MiningTask(params));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // Descending expected support: {C} 2.6 then {A} 2.1 (paper Example 1).
  EXPECT_NEAR((*result)[0].expected_support, 2.6, 1e-12);
  EXPECT_NEAR((*result)[1].expected_support, 2.1, 1e-12);

  auto wrong = miner->Mine(view, MiningTask(ExpectedSupportParams{}));
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinerRegistryTest, UnifiedFacadeDispatchesOnTask) {
  UncertainDatabase db = MakePaperTable1();
  FlatView view(db);
  std::unique_ptr<Miner> miner = MinerRegistry::Global().Create("UApriori");
  ASSERT_NE(miner, nullptr);

  ExpectedSupportParams params;
  params.min_esup = 0.5;
  auto ok = miner->Mine(view, MiningTask(params));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);  // {A}, {C} per paper Example 1

  // The wrong task family is rejected, not silently coerced.
  auto wrong = miner->Mine(view, MiningTask(ProbabilisticParams{}));
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinerRegistryTest, EveryMinerRunsThroughUnifiedFacadeOverFlatView) {
  UncertainDatabase db = MakePaperTable1();
  FlatView view(db);
  for (std::string_view name : EveryFactoryName()) {
    const MinerEntry* entry = MinerRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr) << name;
    MiningTask task;
    if (entry->family == TaskFamily::kExpectedSupport) {
      ExpectedSupportParams params;
      params.min_esup = 0.3;
      task = params;
    } else {
      ProbabilisticParams params;
      params.min_sup = 0.4;
      params.pft = 0.5;
      task = params;
    }
    auto result = MinerRegistry::Global().Create(name)->Mine(view, task);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_GT(result->size(), 0u) << name;
  }
}

TEST(MinerRegistryTest, SelfRegistrationAcceptsNewAlgorithms) {
  // A miner registered at runtime is immediately creatable by name —
  // the plug-in path a new algorithm's translation unit uses.
  class Stub final : public ExpectedSupportMiner {
   public:
    std::string_view name() const override { return "StubMiner"; }
    Result<MiningResult> MineExpected(
        const FlatView&, const ExpectedSupportParams&) const override {
      return MiningResult();
    }
  };
  MinerRegistry::Global().Register(
      MinerEntry{"StubMiner", TaskFamily::kExpectedSupport,
                 /*production=*/false,
                 [](const MinerOptions&) { return std::make_unique<Stub>(); }});
  std::unique_ptr<Miner> miner = MinerRegistry::Global().Create("StubMiner");
  ASSERT_NE(miner, nullptr);
  EXPECT_EQ(miner->name(), "StubMiner");
  auto result = miner->Mine(FlatView(MakePaperTable1()),
                            MiningTask(ExpectedSupportParams{}));
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace ufim
