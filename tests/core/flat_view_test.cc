#include "core/flat_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "algo/apriori_framework.h"
#include "common/rng.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeRandomDatabase;
using testing_util::RandomDbSpec;

/// A spread of random itemsets over the database's item universe: all
/// singletons, all pairs, and a handful of larger sets.
std::vector<Itemset> SampleItemsets(const UncertainDatabase& db,
                                    std::uint64_t seed) {
  const std::size_t n = db.num_items();
  std::vector<Itemset> out;
  for (ItemId i = 0; i < n; ++i) out.push_back(Itemset{i});
  for (ItemId i = 0; i < n; ++i) {
    for (ItemId j = i + 1; j < n; ++j) out.push_back(Itemset({i, j}));
  }
  Rng rng(seed);
  for (int k = 0; k < 8; ++k) {
    std::vector<ItemId> items;
    for (ItemId i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) items.push_back(i);
    }
    if (items.size() >= 2) out.push_back(Itemset(std::move(items)));
  }
  return out;
}

TEST(FlatViewTest, HorizontalLayoutRoundTripsTransactions) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 11});
  FlatView view(db);
  ASSERT_EQ(view.num_transactions(), db.size());
  EXPECT_EQ(view.num_items(), db.num_items());
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto units = view.TransactionUnits(static_cast<TransactionId>(t));
    ASSERT_EQ(units.size(), db[t].size());
    for (std::size_t u = 0; u < units.size(); ++u) {
      EXPECT_EQ(units[u], db[t][u]);
    }
  }
}

TEST(FlatViewTest, VerticalPostingsMatchTransactionMembership) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 12});
  FlatView view(db);
  std::size_t total_postings = 0;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    auto tids = view.PostingTids(item);
    auto probs = view.PostingProbs(item);
    ASSERT_EQ(tids.size(), probs.size());
    total_postings += tids.size();
    for (std::size_t i = 0; i < tids.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(tids[i - 1], tids[i]) << "tids must ascend";
      }
      EXPECT_EQ(probs[i], db[tids[i]].ProbabilityOf(item));
    }
  }
  EXPECT_EQ(total_postings, view.num_units());
}

TEST(FlatViewTest, ProbabilityLookupMatchesTransaction) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 13});
  FlatView view(db);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (ItemId item = 0; item < db.num_items() + 2; ++item) {
      EXPECT_EQ(view.Probability(static_cast<TransactionId>(t), item),
                db[t].ProbabilityOf(item));
    }
  }
}

TEST(FlatViewTest, CachedItemMomentsMatchScanBasedSupports) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    UncertainDatabase db = MakeRandomDatabase(
        {.seed = seed, .num_transactions = 40, .num_items = 10});
    FlatView view(db);
    for (ItemId item = 0; item < db.num_items(); ++item) {
      EXPECT_NEAR(view.ItemExpectedSupport(item), db.ItemExpectedSupport(item),
                  1e-12);
    }
  }
}

TEST(FlatViewTest, ExpectedSupportMatchesScanOnRandomizedDatabases) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    UncertainDatabase db = MakeRandomDatabase(
        {.seed = seed, .num_transactions = 30, .num_items = 9});
    FlatView view(db);
    for (const Itemset& itemset : SampleItemsets(db, seed * 7)) {
      EXPECT_NEAR(view.ExpectedSupport(itemset), db.ExpectedSupport(itemset),
                  1e-9)
          << itemset.ToString() << " seed " << seed;
    }
  }
}

TEST(FlatViewTest, ContainmentProbabilitiesMatchScanOnRandomizedDatabases) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    UncertainDatabase db = MakeRandomDatabase(
        {.seed = seed, .num_transactions = 30, .num_items = 9});
    FlatView view(db);
    for (const Itemset& itemset : SampleItemsets(db, seed * 11)) {
      const std::vector<double> expected = db.ContainmentProbabilities(itemset);
      const std::vector<double> actual = view.ContainmentProbabilities(itemset);
      ASSERT_EQ(actual.size(), expected.size()) << itemset.ToString();
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(actual[i], expected[i], 1e-12) << itemset.ToString();
      }
    }
  }
}

TEST(FlatViewTest, EvaluateCandidatesMatchesRowScanBaseline) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    UncertainDatabase db = MakeRandomDatabase(
        {.seed = seed, .num_transactions = 50, .num_items = 8});
    FlatView view(db);
    std::vector<Itemset> candidates;
    for (const Itemset& s : SampleItemsets(db, seed * 13)) {
      if (s.size() >= 2) candidates.push_back(s);
    }
    auto columnar =
        EvaluateCandidates(view, candidates, /*collect_probs=*/true);
    auto rows =
        EvaluateCandidatesRowScan(db, candidates, /*collect_probs=*/true);
    ASSERT_EQ(columnar.size(), rows.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      EXPECT_NEAR(columnar[c].esup, rows[c].esup, 1e-9)
          << candidates[c].ToString();
      EXPECT_NEAR(columnar[c].sq_sum, rows[c].sq_sum, 1e-9);
      ASSERT_EQ(columnar[c].probs.size(), rows[c].probs.size())
          << candidates[c].ToString();
      for (std::size_t i = 0; i < rows[c].probs.size(); ++i) {
        EXPECT_NEAR(columnar[c].probs[i], rows[c].probs[i], 1e-12);
      }
    }
  }
}

TEST(FlatViewTest, PrefixSliceMatchesPrefixDatabase) {
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 21, .num_transactions = 40, .num_items = 8});
  FlatView full(db);
  for (std::size_t n : {0u, 1u, 17u, 40u, 100u}) {
    FlatView sliced = full.Prefix(n);
    UncertainDatabase prefix_db = db.Prefix(n);
    ASSERT_EQ(sliced.num_transactions(), prefix_db.size());
    for (const Itemset& itemset : SampleItemsets(db, 5)) {
      EXPECT_NEAR(sliced.ExpectedSupport(itemset),
                  prefix_db.ExpectedSupport(itemset), 1e-9)
          << "prefix " << n << " " << itemset.ToString();
    }
    for (ItemId item = 0; item < db.num_items(); ++item) {
      EXPECT_NEAR(sliced.ItemExpectedSupport(item),
                  prefix_db.ItemExpectedSupport(item), 1e-12);
    }
  }
}

TEST(FlatViewTest, PrefixSliceSharesStorage) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 22});
  FlatView full(db);
  FlatView sliced = full.Prefix(db.size() / 2);
  EXPECT_FALSE(sliced.IsFullView());
  EXPECT_TRUE(full.IsFullView());
  // Same underlying arrays: the slice's horizontal span aliases the
  // full view's.
  ASSERT_GT(sliced.num_transactions(), 0u);
  EXPECT_EQ(sliced.TransactionUnits(0).data(), full.TransactionUnits(0).data());
}

TEST(FlatViewTest, EmptyDatabase) {
  FlatView view((UncertainDatabase()));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.num_units(), 0u);
  EXPECT_EQ(view.num_items(), 0u);
  EXPECT_TRUE(view.ContainmentProbabilities(Itemset{3}).empty());
  EXPECT_EQ(view.ItemExpectedSupport(3), 0.0);
}

TEST(FlatViewTest, PaperTable1ItemSupports) {
  UncertainDatabase db = MakePaperTable1();
  FlatView view(db);
  // esup(A) = 2.1 (paper Example 1).
  EXPECT_NEAR(view.ItemExpectedSupport(kItemA), 2.1, 1e-12);
}

}  // namespace
}  // namespace ufim
