#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/flat_view.h"
#include "gen/benchmark_datasets.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeRandomDatabase;

/// Ground truth for Slice(lo, hi): a database holding only the
/// transactions [lo, hi) of `db`.
UncertainDatabase SubDatabase(const UncertainDatabase& db, std::size_t lo,
                              std::size_t hi) {
  std::vector<Transaction> txns;
  for (std::size_t t = lo; t < hi && t < db.size(); ++t) {
    txns.push_back(db[t]);
  }
  return UncertainDatabase(std::move(txns));
}

std::vector<Itemset> SampleItemsets(std::size_t num_items, std::uint64_t seed) {
  std::vector<Itemset> out;
  for (ItemId i = 0; i < num_items; ++i) out.push_back(Itemset{i});
  for (ItemId i = 0; i + 1 < num_items; ++i) {
    out.push_back(Itemset({i, static_cast<ItemId>(i + 1)}));
  }
  Rng rng(seed);
  for (int k = 0; k < 6; ++k) {
    std::vector<ItemId> items;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.35)) items.push_back(i);
    }
    if (items.size() >= 2) out.push_back(Itemset(std::move(items)));
  }
  return out;
}

TEST(FlatViewSliceTest, SliceMatchesScanBasedGroundTruth) {
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 31, .num_transactions = 60, .num_items = 9});
  FlatView full(db);
  const std::size_t cuts[] = {0, 1, 13, 30, 59, 60};
  for (std::size_t lo : cuts) {
    for (std::size_t hi : cuts) {
      if (hi < lo) continue;
      FlatView slice = full.Slice(lo, hi);
      UncertainDatabase expect = SubDatabase(db, lo, hi);
      ASSERT_EQ(slice.num_transactions(), expect.size());
      EXPECT_EQ(slice.begin_tid(), lo);
      EXPECT_EQ(slice.end_tid(), hi);
      EXPECT_EQ(slice.empty(), expect.size() == 0);

      std::size_t units = 0;
      for (std::size_t t = 0; t < expect.size(); ++t) units += expect[t].size();
      EXPECT_EQ(slice.num_units(), units);

      for (ItemId item = 0; item < db.num_items(); ++item) {
        EXPECT_NEAR(slice.ItemExpectedSupport(item),
                    expect.ItemExpectedSupport(item), 1e-12)
            << "item " << item << " [" << lo << "," << hi << ")";
        // Posting tids of a slice are global ids within [lo, hi).
        for (TransactionId tid : slice.PostingTids(item)) {
          EXPECT_GE(tid, lo);
          EXPECT_LT(tid, hi);
        }
      }
      for (const Itemset& itemset : SampleItemsets(db.num_items(), 77)) {
        EXPECT_NEAR(slice.ExpectedSupport(itemset),
                    expect.ExpectedSupport(itemset), 1e-9)
            << itemset.ToString() << " [" << lo << "," << hi << ")";
      }
    }
  }
}

TEST(FlatViewSliceTest, TransactionUnitsKeepGlobalIds) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 32});
  FlatView full(db);
  FlatView slice = full.Slice(3, 9);
  for (TransactionId t = slice.begin_tid(); t < slice.end_tid(); ++t) {
    auto units = slice.TransactionUnits(t);
    ASSERT_EQ(units.size(), db[t].size());
    for (std::size_t u = 0; u < units.size(); ++u) {
      EXPECT_EQ(units[u], db[t][u]);
    }
  }
}

TEST(FlatViewSliceTest, ShardUnionInvariants) {
  // Any partition of the view into contiguous shards must conserve the
  // additive quantities: unit counts and posting lengths exactly,
  // expected supports up to summation rounding.
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 33, .num_transactions = 53, .num_items = 8});
  FlatView full(db);
  const std::size_t n = full.num_transactions();
  for (std::size_t shards : {2u, 3u, 7u, 53u, 80u}) {
    std::vector<FlatView> parts;
    for (std::size_t s = 0; s < shards; ++s) {
      parts.push_back(full.Slice(s * n / shards, (s + 1) * n / shards));
    }
    // The shards tile [0, n): adjacent boundaries meet, no overlap.
    EXPECT_EQ(parts.front().begin_tid(), 0u);
    EXPECT_EQ(parts.back().end_tid(), n);
    std::size_t units = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      if (s > 0) {
        EXPECT_EQ(parts[s].begin_tid(), parts[s - 1].end_tid());
      }
      units += parts[s].num_units();
    }
    EXPECT_EQ(units, full.num_units());

    for (ItemId item = 0; item < db.num_items(); ++item) {
      std::size_t postings = 0;
      double esup = 0.0;
      for (const FlatView& part : parts) {
        postings += part.PostingTids(item).size();
        esup += part.ItemExpectedSupport(item);
      }
      EXPECT_EQ(postings, full.PostingTids(item).size()) << "item " << item;
      EXPECT_NEAR(esup, full.ItemExpectedSupport(item), 1e-9) << "item " << item;
    }
    for (const Itemset& itemset : SampleItemsets(db.num_items(), 91)) {
      double esup = 0.0;
      for (const FlatView& part : parts) esup += part.ExpectedSupport(itemset);
      EXPECT_NEAR(esup, full.ExpectedSupport(itemset), 1e-9)
          << itemset.ToString() << " shards " << shards;
    }
  }
}

TEST(FlatViewSliceTest, SlicesCompose) {
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 34, .num_transactions = 40, .num_items = 8});
  FlatView full(db);
  // Slice offsets are view-relative: slicing a slice addresses its own
  // transactions, not the database's.
  FlatView mid = full.Slice(10, 30);
  FlatView inner = mid.Slice(5, 15);
  EXPECT_EQ(inner.begin_tid(), 15u);
  EXPECT_EQ(inner.end_tid(), 25u);
  UncertainDatabase expect = SubDatabase(db, 15, 25);
  for (ItemId item = 0; item < db.num_items(); ++item) {
    EXPECT_NEAR(inner.ItemExpectedSupport(item),
                expect.ItemExpectedSupport(item), 1e-12);
  }
  // Clamping: out-of-range and inverted bounds degrade gracefully.
  EXPECT_EQ(mid.Slice(15, 99).num_transactions(), 5u);
  EXPECT_EQ(mid.Slice(99, 99).num_transactions(), 0u);
  EXPECT_TRUE(mid.Slice(12, 3).empty());
}

TEST(FlatViewSliceTest, PrefixIsSliceFromZero) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 35});
  FlatView full(db);
  for (std::size_t n : {0u, 1u, 5u, 12u}) {
    FlatView prefix = full.Prefix(n);
    FlatView slice = full.Slice(0, n);
    EXPECT_EQ(prefix.begin_tid(), slice.begin_tid());
    EXPECT_EQ(prefix.end_tid(), slice.end_tid());
    EXPECT_EQ(prefix.num_units(), slice.num_units());
  }
}

TEST(FlatViewSliceTest, FullViewDetection) {
  UncertainDatabase db = MakeRandomDatabase({.seed = 36});
  FlatView full(db);
  EXPECT_TRUE(full.IsFullView());
  EXPECT_TRUE(full.Slice(0, db.size()).IsFullView());
  EXPECT_FALSE(full.Slice(1, db.size()).IsFullView());
  EXPECT_FALSE(full.Slice(0, db.size() - 1).IsFullView());
  // A mid-slice shares storage with the full view.
  FlatView mid = full.Slice(2, 6);
  ASSERT_GT(mid.num_transactions(), 0u);
  EXPECT_EQ(mid.TransactionUnits(2).data(), full.TransactionUnits(2).data());
}

TEST(FlatViewSliceTest, PaperTable1MiddleSlice) {
  UncertainDatabase db = MakePaperTable1();
  FlatView view(db);
  // Transactions {T2} of the paper's Table 1: esup over a single-row
  // slice equals that row's probabilities.
  FlatView t2 = view.Slice(1, 2);
  ASSERT_EQ(t2.num_transactions(), 1u);
  for (ItemId item = 0; item < view.num_items(); ++item) {
    EXPECT_NEAR(t2.ItemExpectedSupport(item), db[1].ProbabilityOf(item), 1e-12);
  }
}

}  // namespace
}  // namespace ufim
