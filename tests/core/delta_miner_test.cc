// DeltaMiner unit coverage: SON-over-suffix-shards exactness against the
// plain miners, candidate-pool retention across batches (the property a
// results-only union would break), facade/registry plumbing, and the
// empty-batch / empty-stream degenerate calls. The randomized
// cross-layout schedules live in the streaming differential harness.
#include "core/delta_miner.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/uapriori.h"
#include "common/rng.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/mining_result.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeStreamBatch;
using testing_util::StreamBatchSpec;

Transaction Txn(std::vector<ProbItem> units) {
  return Transaction(std::move(units));
}

TEST(DeltaMinerTest, MatchesPlainMinerForEveryExpectedSupportAlgorithm) {
  ExpectedSupportParams params;
  params.min_esup = 0.22;
  Rng rng(42);
  StreamBatchSpec spec;
  spec.num_items = 9;
  std::vector<std::vector<Transaction>> batches;
  for (int b = 0; b < 4; ++b) batches.push_back(MakeStreamBatch(rng, spec, 7));

  for (const std::string& algorithm :
       MinerRegistry::Global().NamesOf(TaskFamily::kExpectedSupport)) {
    Result<std::unique_ptr<DeltaMiner>> delta =
        MakeDeltaMiner(algorithm, params);
    ASSERT_TRUE(delta.ok()) << algorithm;
    EXPECT_EQ(delta.value()->name(), "Delta(" + algorithm + ")");
    std::unique_ptr<Miner> plain = MinerRegistry::Global().Create(algorithm);
    ASSERT_NE(plain, nullptr) << algorithm;

    UncertainDatabase accumulated;
    for (const std::vector<Transaction>& batch : batches) {
      Result<MiningResult> incremental = delta.value()->MineNext(batch);
      ASSERT_TRUE(incremental.ok()) << algorithm;
      accumulated.Append(batch);
      Result<MiningResult> reference =
          plain->Mine(accumulated, MiningTask(params));
      ASSERT_TRUE(reference.ok()) << algorithm;
      MiningResult expect = std::move(reference).value();
      expect.SortCanonical();
      ASSERT_EQ(incremental.value().size(), expect.size()) << algorithm;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(incremental.value()[i].itemset, expect[i].itemset)
            << algorithm;
        EXPECT_NEAR(incremental.value()[i].expected_support,
                    expect[i].expected_support, 1e-9)
            << algorithm << " " << expect[i].itemset.ToString();
      }
    }
    EXPECT_EQ(delta.value()->shards_mined(), batches.size()) << algorithm;
  }
}

TEST(DeltaMinerTest, PoolRetainsDilutedCandidatesAcrossBatches) {
  // {0,1} is frequent after batch 1, diluted below the global threshold
  // by batch 2's noise — it must leave the *results* but stay in the
  // candidate pool (the pool unions shard-local frequents and never
  // forgets; dropping to the result set instead would make the recount
  // scan mining history, not a superset) — and return after batch 3 with
  // an exact full-stream recount.
  ExpectedSupportParams params;
  params.min_esup = 0.5;

  const std::vector<Transaction> b1 = {Txn({{0, 0.9}, {1, 0.9}}),
                                       Txn({{0, 0.8}, {1, 0.8}})};
  // Noise: four transactions without {0,1}.
  const std::vector<Transaction> b2 = {Txn({{2, 0.9}}), Txn({{2, 0.8}}),
                                       Txn({{2, 0.7}}), Txn({{2, 0.9}})};
  // Recovery: enough {0,1} mass to clear the global threshold again.
  const std::vector<Transaction> b3 = {
      Txn({{0, 0.95}, {1, 0.95}}), Txn({{0, 0.95}, {1, 0.95}}),
      Txn({{0, 0.95}, {1, 0.95}}), Txn({{0, 0.95}, {1, 0.95}}),
      Txn({{0, 0.95}, {1, 0.95}})};

  Result<std::unique_ptr<DeltaMiner>> delta =
      MakeDeltaMiner("UApriori", params);
  ASSERT_TRUE(delta.ok());
  const Itemset pair{0, 1};

  Result<MiningResult> r1 = delta.value()->MineNext(b1);
  ASSERT_TRUE(r1.ok());
  EXPECT_NE(r1.value().Find(pair), nullptr) << "frequent in batch 1";
  const std::size_t pool_after_b1 = delta.value()->candidate_pool_size();

  Result<MiningResult> r2 = delta.value()->MineNext(b2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().Find(pair), nullptr) << "diluted below threshold";
  EXPECT_GE(delta.value()->candidate_pool_size(), pool_after_b1)
      << "the pool never forgets";

  Result<MiningResult> r3 = delta.value()->MineNext(b3);
  ASSERT_TRUE(r3.ok());
  const FrequentItemset* fi = r3.value().Find(pair);
  ASSERT_NE(fi, nullptr);
  // Exact recount over all eleven transactions.
  EXPECT_NEAR(fi->expected_support, 0.81 + 0.64 + 5 * (0.95 * 0.95), 1e-12);
}

TEST(DeltaMinerTest, EmptyBatchesAndEmptyStream) {
  ExpectedSupportParams params;
  params.min_esup = 0.3;
  Result<std::unique_ptr<DeltaMiner>> delta =
      MakeDeltaMiner("UApriori", params);
  ASSERT_TRUE(delta.ok());

  // Mining an empty stream is legal and empty.
  Result<MiningResult> r0 = delta.value()->MineNext({});
  ASSERT_TRUE(r0.ok());
  EXPECT_TRUE(r0.value().empty());
  EXPECT_EQ(delta.value()->shards_mined(), 0u);

  const std::vector<Transaction> batch = {Txn({{0, 0.9}}), Txn({{0, 0.8}})};
  Result<MiningResult> r1 = delta.value()->MineNext(batch);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().size(), 1u);

  // An empty batch re-mines the unchanged state: same answer, and no
  // new suffix shard.
  Result<MiningResult> r2 = delta.value()->MineNext({});
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2.value().size(), 1u);
  EXPECT_EQ(r2.value()[0].expected_support, r1.value()[0].expected_support);
  EXPECT_EQ(delta.value()->shards_mined(), 1u);
}

TEST(DeltaMinerTest, EmptyBatchIsPureRecount) {
  // A recount-only call must not open/commit an append transaction,
  // consult the compaction policy, or drift the shard bookkeeping — pin
  // every observable piece of that. The never-compact policy keeps a
  // live delta across the call, so an accidental commit-path compaction
  // would show in compactions()/has_delta().
  ExpectedSupportParams params;
  params.min_esup = 0.3;
  CompactionPolicy never;
  never.max_delta_ratio = 1e9;
  never.min_delta_units = ~std::size_t{0};
  Result<std::unique_ptr<DeltaMiner>> delta =
      MakeDeltaMiner("UApriori", params, {}, never);
  ASSERT_TRUE(delta.ok());

  const std::vector<Transaction> batch = {Txn({{0, 0.9}, {1, 0.6}}),
                                          Txn({{0, 0.8}})};
  Result<MiningResult> first = delta.value()->MineNext(batch);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(delta.value()->view().has_delta());

  const std::uint64_t generation = delta.value()->view().generation();
  const std::size_t compactions = delta.value()->view().compactions();
  const std::size_t transactions = delta.value()->view().num_transactions();
  const std::size_t shards = delta.value()->shards_mined();
  const std::size_t pool = delta.value()->candidate_pool_size();

  Result<MiningResult> recount = delta.value()->MineNext({});
  ASSERT_TRUE(recount.ok());
  EXPECT_EQ(recount.value().ToString(), first.value().ToString());

  // No mutation of any kind: the storage generation did not move (a
  // BeginAppend/Commit or Rollback would have bumped it), nothing
  // compacted, and the shard/pool bookkeeping is untouched.
  EXPECT_EQ(delta.value()->view().generation(), generation);
  EXPECT_EQ(delta.value()->view().compactions(), compactions);
  EXPECT_EQ(delta.value()->view().num_transactions(), transactions);
  EXPECT_TRUE(delta.value()->view().has_delta());
  EXPECT_EQ(delta.value()->shards_mined(), shards);
  EXPECT_EQ(delta.value()->candidate_pool_size(), pool);
}

TEST(DeltaMinerTest, PoolTracksAdmissionGenerations) {
  // Same stream as PoolRetainsDilutedCandidatesAcrossBatches; here we
  // pin the per-generation bookkeeping: each candidate remembers the
  // storage generation that admitted it, and re-discovery by a later
  // shard keeps the original.
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  const std::vector<Transaction> b1 = {Txn({{0, 0.9}, {1, 0.9}}),
                                       Txn({{0, 0.8}, {1, 0.8}})};
  const std::vector<Transaction> b2 = {Txn({{2, 0.9}}), Txn({{2, 0.8}}),
                                       Txn({{2, 0.7}}), Txn({{2, 0.9}})};
  const std::vector<Transaction> b3 = {
      Txn({{0, 0.95}, {1, 0.95}}), Txn({{0, 0.95}, {1, 0.95}}),
      Txn({{0, 0.95}, {1, 0.95}}), Txn({{0, 0.95}, {1, 0.95}}),
      Txn({{0, 0.95}, {1, 0.95}})};

  Result<std::unique_ptr<DeltaMiner>> delta =
      MakeDeltaMiner("UApriori", params);
  ASSERT_TRUE(delta.ok());

  ASSERT_TRUE(delta.value()->MineNext(b1).ok());
  const std::size_t pool_b1 = delta.value()->candidate_pool_size();
  const std::uint64_t gen_b1 = delta.value()->view().generation();
  EXPECT_EQ(delta.value()->candidates_admitted_since(0), pool_b1);
  EXPECT_EQ(delta.value()->candidates_admitted_since(gen_b1 + 1), 0u);

  ASSERT_TRUE(delta.value()->MineNext(b2).ok());
  const std::size_t pool_b2 = delta.value()->candidate_pool_size();
  const std::uint64_t gen_b2 = delta.value()->view().generation();
  ASSERT_GT(pool_b2, pool_b1) << "batch 2 admits {2}";
  EXPECT_EQ(delta.value()->candidates_admitted_since(gen_b1 + 1),
            pool_b2 - pool_b1);

  // Batch 3 re-discovers batch 1's candidates; none count as new.
  ASSERT_TRUE(delta.value()->MineNext(b3).ok());
  EXPECT_EQ(delta.value()->candidates_admitted_since(gen_b2 + 1),
            delta.value()->candidate_pool_size() - pool_b2);
  EXPECT_EQ(delta.value()->candidates_admitted_since(0),
            delta.value()->candidate_pool_size());
}

TEST(DeltaMinerTest, RegistryPlumbingRejectsBadInners) {
  ExpectedSupportParams params;
  Result<std::unique_ptr<DeltaMiner>> unknown =
      MakeDeltaMiner("NoSuchMiner", params);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  Result<std::unique_ptr<DeltaMiner>> probabilistic =
      MakeDeltaMiner("DCB", params);
  ASSERT_FALSE(probabilistic.ok());
  EXPECT_EQ(probabilistic.status().code(), StatusCode::kInvalidArgument);
}

/// Inner miner that fails calls [fail_from, fail_from + failures)
/// (0-based) and delegates to UApriori otherwise — for pinning the
/// transactional retry contract around a transiently failing shard
/// miner.
class FlakyMiner final : public ExpectedSupportMiner {
 public:
  FlakyMiner(int fail_from, int failures)
      : fail_from_(fail_from), fail_until_(fail_from + failures) {}
  std::string_view name() const override { return "Flaky"; }
  Result<MiningResult> MineExpected(
      const FlatView& view, const ExpectedSupportParams& params) const override {
    const int call = calls_++;
    if (call >= fail_from_ && call < fail_until_) {
      return Status::Internal("shard miner down");
    }
    UApriori inner;
    return inner.Mine(view, params);
  }

 private:
  int fail_from_;
  int fail_until_;
  mutable int calls_ = 0;
};

TEST(DeltaMinerTest, TransientInnerFailureRollsBackAndRetrySucceeds) {
  // A failed suffix mine rolls the appended batch back to the pre-append
  // watermark, so retrying the same batch appends it exactly once and
  // the stream continues as if the failure never happened.
  ExpectedSupportParams params;
  params.min_esup = 0.3;
  DeltaMiner delta(std::make_unique<FlakyMiner>(1, 1), params);

  const std::vector<Transaction> b1 = {Txn({{0, 0.9}}), Txn({{0, 0.8}})};
  ASSERT_TRUE(delta.MineNext(b1).ok());
  const std::size_t txns_before = delta.view().num_transactions();

  // b2 introduces a previously-unseen item, so the rollback also has to
  // shrink the grown item universe back.
  const std::vector<Transaction> b2 = {Txn({{0, 0.7}, {1, 0.9}})};
  Result<MiningResult> failed = delta.MineNext(b2);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(delta.view().num_transactions(), txns_before);
  EXPECT_EQ(delta.shards_mined(), 1u);

  // The retry succeeds and appends the batch exactly once.
  Result<MiningResult> retried = delta.MineNext(b2);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(delta.view().num_transactions(), txns_before + 1);
  EXPECT_EQ(delta.shards_mined(), 2u);

  // ... and the result matches an identical stream that never failed.
  DeltaMiner clean(std::make_unique<FlakyMiner>(99, 0), params);
  ASSERT_TRUE(clean.MineNext(b1).ok());
  Result<MiningResult> reference = clean.MineNext(b2);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(retried.value().ToString(), reference.value().ToString());
}

TEST(DeltaMinerTest, InvalidParamsSurfaceOnMineNext) {
  ExpectedSupportParams params;
  params.min_esup = -1.0;
  Result<std::unique_ptr<DeltaMiner>> delta =
      MakeDeltaMiner("UApriori", params);
  ASSERT_TRUE(delta.ok());
  Result<MiningResult> r = delta.value()->MineNext({});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace ufim
