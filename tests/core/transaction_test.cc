#include "core/transaction.h"

#include <gtest/gtest.h>

namespace ufim {
namespace {

TEST(TransactionTest, SortsUnitsByItem) {
  Transaction t({{3, 0.5}, {1, 0.2}, {2, 0.9}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].item, 1u);
  EXPECT_EQ(t[1].item, 2u);
  EXPECT_EQ(t[2].item, 3u);
}

TEST(TransactionTest, DropsNonPositiveProbabilities) {
  Transaction t({{1, 0.0}, {2, -0.5}, {3, 0.7}});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].item, 3u);
}

TEST(TransactionTest, ClampsProbabilitiesAboveOne) {
  Transaction t({{1, 1.5}});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].prob, 1.0);
}

TEST(TransactionTest, DeduplicatesKeepingLast) {
  Transaction t({{1, 0.3}, {1, 0.8}});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].prob, 0.8);
}

TEST(TransactionTest, ProbabilityOf) {
  Transaction t({{1, 0.3}, {5, 0.9}});
  EXPECT_EQ(t.ProbabilityOf(1), 0.3);
  EXPECT_EQ(t.ProbabilityOf(5), 0.9);
  EXPECT_EQ(t.ProbabilityOf(2), 0.0);
  EXPECT_EQ(t.ProbabilityOf(9), 0.0);
}

TEST(TransactionTest, ItemsetProbabilityIsProductOfMembers) {
  Transaction t({{1, 0.5}, {2, 0.4}, {3, 0.9}});
  EXPECT_DOUBLE_EQ(t.ItemsetProbability(Itemset({1})), 0.5);
  EXPECT_DOUBLE_EQ(t.ItemsetProbability(Itemset({1, 2})), 0.2);
  EXPECT_DOUBLE_EQ(t.ItemsetProbability(Itemset({1, 2, 3})), 0.18);
}

TEST(TransactionTest, ItemsetProbabilityZeroWhenMemberAbsent) {
  Transaction t({{1, 0.5}, {3, 0.9}});
  EXPECT_EQ(t.ItemsetProbability(Itemset({1, 2})), 0.0);
  EXPECT_EQ(t.ItemsetProbability(Itemset({4})), 0.0);
}

TEST(TransactionTest, EmptyItemsetHasZeroProbabilityByConvention) {
  Transaction t({{1, 0.5}});
  EXPECT_EQ(t.ItemsetProbability(Itemset()), 0.0);
}

}  // namespace
}  // namespace ufim
