// Kernel parity: the scalar, galloping and SIMD intersection kernels
// (and the dispatching entry under every forced setting) must emit
// exactly the same match positions on any pair of strictly ascending
// uint32 arrays. Cases cover the adversarial shapes the posting joins
// produce: empty, singleton, fully dense, disjoint, heavily skewed
// lengths, block-boundary lengths around the SIMD widths, and values at
// the top of the uint32 range (where a signed vector compare would go
// wrong).
#include "core/simd_intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace ufim {
namespace {

struct Matches {
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;

  bool operator==(const Matches& other) const {
    return a == other.a && b == other.b;
  }
};

using KernelFn = std::size_t (*)(const std::uint32_t*, std::size_t,
                                 const std::uint32_t*, std::size_t,
                                 std::uint32_t*, std::uint32_t*);

Matches Run(KernelFn kernel, const std::vector<std::uint32_t>& a,
            const std::vector<std::uint32_t>& b) {
  const std::size_t cap = std::min(a.size(), b.size());
  Matches out;
  out.a.resize(cap);
  out.b.resize(cap);
  const std::size_t n =
      kernel(a.data(), a.size(), b.data(), b.size(), out.a.data(), out.b.data());
  out.a.resize(n);
  out.b.resize(n);
  return out;
}

/// Ground truth from first principles: for every common value, its
/// position in each input (values are unique per list).
Matches Reference(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b) {
  Matches out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto it = std::lower_bound(b.begin(), b.end(), a[i]);
    if (it != b.end() && *it == a[i]) {
      out.a.push_back(static_cast<std::uint32_t>(i));
      out.b.push_back(static_cast<std::uint32_t>(it - b.begin()));
    }
  }
  return out;
}

void ExpectAllKernelsMatch(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b,
                           const std::string& label) {
  const Matches expected = Reference(a, b);
  EXPECT_TRUE(Run(&IntersectIndicesScalar, a, b) == expected)
      << label << " scalar";
  EXPECT_TRUE(Run(&IntersectIndicesGallop, a, b) == expected)
      << label << " gallop";
  EXPECT_TRUE(Run(&IntersectIndicesSimd, a, b) == expected) << label << " simd";
  // Both argument orders (the dispatcher may swap sides internally).
  Matches swapped = Reference(b, a);
  EXPECT_TRUE(Run(&IntersectIndicesSimd, b, a) == swapped)
      << label << " simd swapped";
  EXPECT_TRUE(Run(&IntersectIndicesGallop, b, a) == swapped)
      << label << " gallop swapped";
  // The dispatcher under every forced setting.
  for (const IntersectKernel k :
       {IntersectKernel::kAuto, IntersectKernel::kScalar,
        IntersectKernel::kGallop, IntersectKernel::kSimd}) {
    SetIntersectKernel(k);
    EXPECT_TRUE(Run(&IntersectIndices, a, b) == expected)
        << label << " dispatch " << IntersectKernelName(k);
  }
  SetIntersectKernel(IntersectKernel::kAuto);
}

std::vector<std::uint32_t> Iota(std::uint32_t from, std::size_t n,
                                std::uint32_t step = 1) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(from + static_cast<std::uint32_t>(i) * step);
  }
  return out;
}

TEST(SimdIntersectTest, EmptyAndSingletonInputs) {
  ExpectAllKernelsMatch({}, {}, "both empty");
  ExpectAllKernelsMatch({}, Iota(0, 100), "left empty");
  ExpectAllKernelsMatch(Iota(0, 100), {}, "right empty");
  ExpectAllKernelsMatch({7}, Iota(0, 100), "singleton hit");
  ExpectAllKernelsMatch({500}, Iota(0, 100), "singleton above");
  ExpectAllKernelsMatch({0}, Iota(1, 100), "singleton below");
  ExpectAllKernelsMatch({99}, Iota(0, 100), "singleton at last");
  ExpectAllKernelsMatch({3}, {3}, "both singleton equal");
  ExpectAllKernelsMatch({3}, {4}, "both singleton distinct");
}

TEST(SimdIntersectTest, DenseAndDisjointInputs) {
  ExpectAllKernelsMatch(Iota(0, 512), Iota(0, 512), "identical dense");
  ExpectAllKernelsMatch(Iota(0, 512, 2), Iota(1, 512, 2), "interleaved disjoint");
  ExpectAllKernelsMatch(Iota(0, 256), Iota(1000, 256), "disjoint ranges");
  ExpectAllKernelsMatch(Iota(0, 300), Iota(150, 300), "half overlap");
}

TEST(SimdIntersectTest, SimdBlockBoundaryLengths) {
  // Lengths straddling the 4-wide SSE and 8-wide AVX2 blocks, so the
  // vector loop and the scalar tail both run (or the tail runs alone).
  for (const std::size_t len : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    ExpectAllKernelsMatch(Iota(0, len), Iota(0, len),
                          "dense len " + std::to_string(len));
    ExpectAllKernelsMatch(Iota(0, len, 3), Iota(0, 3 * len),
                          "strided len " + std::to_string(len));
  }
}

TEST(SimdIntersectTest, HeavilySkewedLengths) {
  // 1:1000 skew, matches sprinkled through the long list — the galloping
  // sweet spot; the dispatcher must pick it and still agree bit-for-bit.
  const std::vector<std::uint32_t> longer = Iota(0, 50000);
  ExpectAllKernelsMatch(Iota(0, 50, 997), longer, "skewed sparse");
  ExpectAllKernelsMatch(Iota(49950, 50), longer, "skewed tail cluster");
  ExpectAllKernelsMatch(Iota(0, 50), longer, "skewed head cluster");
}

TEST(SimdIntersectTest, ValuesNearUint32Max) {
  // A signed epi32 compare would order these wrong; equality compares
  // and unsigned scalar bounds must not care.
  const std::uint32_t top = 0xFFFFFFFFu;
  std::vector<std::uint32_t> a, b;
  for (std::uint32_t k = 40; k > 0; --k) a.push_back(top - (k - 1) * 3);
  for (std::uint32_t k = 100; k > 0; --k) b.push_back(top - (k - 1));
  ExpectAllKernelsMatch(a, b, "near uint32 max");
  ExpectAllKernelsMatch({0u, 1u, top}, b, "low values vs top range");
}

TEST(SimdIntersectTest, RandomizedPropertyAgainstReference) {
  std::mt19937 rng(20260729u);
  for (int round = 0; round < 200; ++round) {
    const std::size_t na = rng() % 300;
    const std::size_t nb = rng() % 300;
    // Universe width controls density: narrow → many matches.
    const std::uint32_t width = 1u + rng() % 1000;
    auto make = [&](std::size_t n) {
      std::vector<std::uint32_t> v;
      v.reserve(n);
      std::uint32_t cur = rng() % 8;
      for (std::size_t i = 0; i < n; ++i) {
        v.push_back(cur);
        cur += 1u + rng() % width;
      }
      return v;
    };
    ExpectAllKernelsMatch(make(na), make(nb),
                          "random round " + std::to_string(round));
  }
}

TEST(SimdIntersectTest, KernelNamesRoundTrip) {
  for (const IntersectKernel k :
       {IntersectKernel::kAuto, IntersectKernel::kScalar,
        IntersectKernel::kGallop, IntersectKernel::kSimd}) {
    IntersectKernel parsed;
    ASSERT_TRUE(ParseIntersectKernel(IntersectKernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  IntersectKernel parsed;
  EXPECT_FALSE(ParseIntersectKernel("avx512", &parsed));
  EXPECT_FALSE(ParseIntersectKernel("", &parsed));
}

TEST(SimdIntersectTest, ForcedKernelIsObservable) {
  SetIntersectKernel(IntersectKernel::kGallop);
  EXPECT_EQ(ForcedIntersectKernel(), IntersectKernel::kGallop);
  SetIntersectKernel(IntersectKernel::kAuto);
  EXPECT_EQ(ForcedIntersectKernel(), IntersectKernel::kAuto);
}

}  // namespace
}  // namespace ufim
