// Edge cases of the streaming delta path: append-to-empty, unseen-item
// universe growth, compaction trigger boundaries, slices cut across the
// base/delta seam, seam-straddling join batches, and moment-cache
// consistency across appends and compactions. The broad randomized
// coverage lives in the streaming differential harness
// (tests/integration/streaming_equivalence_test.cc); these tests pin the
// named corners deterministically.
#include "core/streaming_flat_view.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/flat_view.h"
#include "core/itemset.h"
#include "core/uncertain_database.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeStreamBatch;
using testing_util::StreamBatchSpec;

Transaction Txn(std::vector<ProbItem> units) {
  return Transaction(std::move(units));
}

/// Asserts that `view` is observationally identical — bit for bit — to a
/// FlatView built from scratch over the same transactions: layouts,
/// cached moments, and join results may not reveal the delta.
void ExpectMatchesRebuild(const FlatView& view,
                          const std::vector<Transaction>& txns,
                          const std::string& label) {
  const UncertainDatabase db{std::vector<Transaction>(txns)};
  const FlatView rebuilt(db);

  ASSERT_EQ(view.num_transactions(), rebuilt.num_transactions()) << label;
  EXPECT_EQ(view.num_items(), rebuilt.num_items()) << label;
  EXPECT_EQ(view.num_units(), rebuilt.num_units()) << label;

  for (TransactionId t = view.begin_tid(); t < view.end_tid(); ++t) {
    const auto a = view.TransactionUnits(t);
    const auto b = rebuilt.TransactionUnits(t);
    ASSERT_EQ(a.size(), b.size()) << label << " tid=" << t;
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i].item, b[i].item) << label << " tid=" << t;
      EXPECT_EQ(a[i].prob, b[i].prob) << label << " tid=" << t;
    }
  }

  std::vector<TransactionId> at, bt;
  std::vector<double> ap, bp;
  for (std::size_t i = 0; i < view.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    EXPECT_EQ(view.PostingCount(item), rebuilt.PostingCount(item)) << label;
    view.CopyPostings(item, at, ap);
    rebuilt.CopyPostings(item, bt, bp);
    EXPECT_EQ(at, bt) << label << " item=" << i;
    EXPECT_EQ(ap, bp) << label << " item=" << i;
    EXPECT_EQ(view.ItemExpectedSupport(item), rebuilt.ItemExpectedSupport(item))
        << label << " item=" << i;
    EXPECT_EQ(view.ItemSquaredSum(item), rebuilt.ItemSquaredSum(item))
        << label << " item=" << i;
  }

  // Joins: every pair (and one triple) must produce identical
  // containment vectors — same matches, same product bits.
  for (std::size_t i = 0; i + 1 < view.num_items(); ++i) {
    const Itemset pair{static_cast<ItemId>(i), static_cast<ItemId>(i + 1)};
    EXPECT_EQ(view.ContainmentProbabilities(pair),
              rebuilt.ContainmentProbabilities(pair))
        << label << " pair=" << pair.ToString();
  }
  if (view.num_items() >= 3) {
    const Itemset triple{0, 1, 2};
    EXPECT_EQ(view.ContainmentProbabilities(triple),
              rebuilt.ContainmentProbabilities(triple))
        << label;
  }
}

TEST(StreamingFlatViewTest, AppendToEmptyView) {
  StreamingFlatView sv;
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  EXPECT_EQ(sv.num_transactions(), 0u);
  EXPECT_EQ(sv.num_items(), 0u);
  EXPECT_FALSE(sv.has_delta());
  EXPECT_TRUE(sv.View().empty());

  const std::vector<Transaction> batch = {
      Txn({{2, 0.5}, {4, 0.25}}), Txn({}), Txn({{0, 1.0}, {2, 0.75}})};
  sv.Append(batch);
  EXPECT_EQ(sv.num_transactions(), 3u);
  EXPECT_EQ(sv.num_items(), 5u);
  EXPECT_TRUE(sv.has_delta());
  ExpectMatchesRebuild(sv.View(), batch, "append-to-empty");
}

TEST(StreamingFlatViewTest, UnseenItemsGrowTheUniverse) {
  const std::vector<Transaction> base = {Txn({{0, 0.9}, {1, 0.4}}),
                                         Txn({{1, 0.8}})};
  StreamingFlatView sv{UncertainDatabase{std::vector<Transaction>(base)}};
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  EXPECT_EQ(sv.num_items(), 2u);

  std::vector<Transaction> all = base;
  const std::vector<Transaction> batch = {Txn({{1, 0.5}, {7, 0.6}}),
                                          Txn({{3, 0.2}})};
  all.insert(all.end(), batch.begin(), batch.end());
  sv.Append(batch);
  EXPECT_EQ(sv.num_items(), 8u);
  // The new items live purely in the delta region.
  const FlatView view = sv.View();
  EXPECT_EQ(view.PostingCount(7), 1u);
  EXPECT_EQ(view.PostingCount(3), 1u);
  EXPECT_EQ(view.ItemExpectedSupport(7), 0.6);
  ExpectMatchesRebuild(view, all, "unseen-items");

  // ... and survive compaction into the base CSR.
  sv.Compact();
  EXPECT_FALSE(sv.has_delta());
  ExpectMatchesRebuild(sv.View(), all, "unseen-items-compacted");
}

TEST(StreamingFlatViewTest, CompactionPolicyBoundaries) {
  // Strict-greater trigger: delta == ratio * base stays, one more unit
  // compacts.
  CompactionPolicy policy;
  policy.max_delta_ratio = 0.5;
  policy.min_delta_units = 0;
  EXPECT_FALSE(policy.ShouldCompact(/*base_units=*/100, /*delta_units=*/0,
                                    /*delta_txns=*/0));
  EXPECT_FALSE(policy.ShouldCompact(100, 50, 10));
  EXPECT_TRUE(policy.ShouldCompact(100, 51, 10));

  // min_delta_units gates small deltas even over a tiny base.
  policy.min_delta_units = 8;
  EXPECT_FALSE(policy.ShouldCompact(0, 7, 3));
  EXPECT_TRUE(policy.ShouldCompact(0, 8, 3));

  // With a positive ratio the transaction count is irrelevant: a
  // unit-less delta (only empty transactions appended) never trips the
  // unit-ratio trigger.
  EXPECT_FALSE(policy.ShouldCompact(100, 0, 5));

  // Ratio 0 means always-contiguous: any appended transaction — even a
  // unit-less one — folds, regardless of the min_delta_units gate.
  policy.max_delta_ratio = 0.0;
  EXPECT_TRUE(policy.ShouldCompact(100, 1, 1));
  EXPECT_TRUE(policy.ShouldCompact(100, 0, 2));
  EXPECT_FALSE(policy.ShouldCompact(100, 0, 0));

  // Any negative ratio is the same always-contiguous mode, not a
  // third behavior (and ufim_cli rejects negatives before they reach
  // a policy).
  policy.max_delta_ratio = -0.75;
  EXPECT_TRUE(policy.ShouldCompact(100, 1, 1));
  EXPECT_TRUE(policy.ShouldCompact(100, 0, 2));
  EXPECT_FALSE(policy.ShouldCompact(100, 0, 0));
}

TEST(StreamingFlatViewTest, AutomaticCompactionAtEveryRatio) {
  for (const double ratio : {0.0, 0.25, 1.0, 1e9}) {
    CompactionPolicy policy;
    policy.max_delta_ratio = ratio;
    policy.min_delta_units = 4;
    StreamingFlatView sv{policy};
    sv.AssertSoleWriter();  // single-threaded test body: sole writer
    std::vector<Transaction> all;
    Rng rng(99);
    StreamBatchSpec spec;
    spec.num_items = 6;
    for (int round = 0; round < 8; ++round) {
      const std::vector<Transaction> batch = MakeStreamBatch(rng, spec, 3);
      all.insert(all.end(), batch.begin(), batch.end());
      const bool compacted = sv.Append(batch);
      EXPECT_EQ(compacted, !sv.has_delta() && !all.empty() &&
                               sv.compactions() > 0)
          << "ratio=" << ratio << " round=" << round;
      // Whatever the policy did, the view stays equivalent to a rebuild.
      ExpectMatchesRebuild(sv.View(), all,
                           "auto-compact ratio=" + std::to_string(ratio) +
                               " round=" + std::to_string(round));
      // The policy invariant itself: a surviving delta never exceeds
      // the trigger.
      EXPECT_FALSE(policy.ShouldCompact(sv.num_units() - sv.delta_units(),
                                        sv.delta_units(),
                                        sv.delta_transactions()))
          << "ratio=" << ratio << " round=" << round;
    }
    if (ratio == 0.0) {
      EXPECT_GE(sv.compactions(), 7u);
    }
    // A huge ratio compacts at most once: over the empty starting base
    // any delta exceeds ratio * 0 (the bootstrap fold), never after.
    if (ratio == 1e9) {
      EXPECT_LE(sv.compactions(), 1u);
    }
  }
}

TEST(StreamingFlatViewTest, SliceAcrossTheSeam) {
  Rng rng(1234);
  StreamBatchSpec spec;
  spec.num_items = 7;
  const std::vector<Transaction> base_txns = MakeStreamBatch(rng, spec, 10);
  const std::vector<Transaction> delta_txns = MakeStreamBatch(rng, spec, 6);

  StreamingFlatView sv{
      UncertainDatabase{std::vector<Transaction>(base_txns)}};
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  sv.Append(delta_txns);
  ASSERT_TRUE(sv.has_delta());

  std::vector<Transaction> all = base_txns;
  all.insert(all.end(), delta_txns.begin(), delta_txns.end());
  const FlatView rebuilt(UncertainDatabase{std::vector<Transaction>(all)});
  const FlatView view = sv.View();

  // Every slice — base-only, delta-only, seam-straddling, empty-at-seam
  // — must agree with the same slice of the rebuilt view, bit for bit.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 10}, {10, 16}, {7, 13}, {9, 11}, {10, 10}, {0, 16}, {12, 16}};
  for (const auto& [lo, hi] : ranges) {
    const FlatView a = view.Slice(lo, hi);
    const FlatView b = rebuilt.Slice(lo, hi);
    const std::string label =
        "slice [" + std::to_string(lo) + "," + std::to_string(hi) + ")";
    ASSERT_EQ(a.num_transactions(), b.num_transactions()) << label;
    EXPECT_EQ(a.num_units(), b.num_units()) << label;
    std::vector<TransactionId> at, bt;
    std::vector<double> ap, bp;
    for (std::size_t i = 0; i < a.num_items(); ++i) {
      const ItemId item = static_cast<ItemId>(i);
      a.CopyPostings(item, at, ap);
      b.CopyPostings(item, bt, bp);
      EXPECT_EQ(at, bt) << label << " item=" << i;
      EXPECT_EQ(ap, bp) << label << " item=" << i;
      EXPECT_EQ(a.ItemExpectedSupport(item), b.ItemExpectedSupport(item))
          << label << " item=" << i;
      EXPECT_EQ(a.ItemSquaredSum(item), b.ItemSquaredSum(item))
          << label << " item=" << i;
    }
    for (std::size_t i = 0; i + 1 < a.num_items(); ++i) {
      const Itemset pair{static_cast<ItemId>(i), static_cast<ItemId>(i + 1)};
      EXPECT_EQ(a.ContainmentProbabilities(pair),
                b.ContainmentProbabilities(pair))
          << label;
    }
    // Slices of slices compose across the seam too.
    if (hi - lo >= 4) {
      const FlatView aa = a.Slice(1, hi - lo - 1);
      const FlatView bb = b.Slice(1, hi - lo - 1);
      EXPECT_EQ(aa.num_units(), bb.num_units()) << label << " nested";
      for (std::size_t i = 0; i < aa.num_items(); ++i) {
        EXPECT_EQ(aa.ItemExpectedSupport(static_cast<ItemId>(i)),
                  bb.ItemExpectedSupport(static_cast<ItemId>(i)))
            << label << " nested item=" << i;
      }
    }
  }
}

TEST(StreamingFlatViewTest, SeamStraddlingJoinBatches) {
  // Two ubiquitous items over a base long enough that the first
  // kJoinBatchTids-posting driver batch crosses the base/delta seam —
  // the one physical configuration where the join kernel must
  // materialize a batch from both regions.
  std::vector<Transaction> base_txns;
  for (std::size_t t = 0; t < 900; ++t) {
    const double p = 0.1 + static_cast<double>(t % 17) / 20.0;
    base_txns.push_back(Txn({{0, p}, {1, 1.0 - p / 2}, {2, 0.5}}));
  }
  std::vector<Transaction> delta_txns;
  for (std::size_t t = 0; t < 600; ++t) {
    const double p = 0.15 + static_cast<double>(t % 13) / 18.0;
    delta_txns.push_back(Txn({{0, p}, {1, p / 3 + 0.2}}));
  }

  CompactionPolicy never;
  never.max_delta_ratio = 1e9;
  never.min_delta_units = ~std::size_t{0};
  StreamingFlatView sv{UncertainDatabase{std::vector<Transaction>(base_txns)},
                       never};
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  sv.Append(delta_txns);
  ASSERT_TRUE(sv.has_delta());
  ASSERT_GT(sv.View().PostingCount(0), FlatView::kJoinBatchTids);

  std::vector<Transaction> all = base_txns;
  all.insert(all.end(), delta_txns.begin(), delta_txns.end());
  const FlatView rebuilt(UncertainDatabase{std::vector<Transaction>(all)});

  for (const Itemset& itemset :
       {Itemset{0, 1}, Itemset{0, 2}, Itemset{0, 1, 2}, Itemset{0}}) {
    EXPECT_EQ(sv.View().ContainmentProbabilities(itemset),
              rebuilt.ContainmentProbabilities(itemset))
        << itemset.ToString();
    EXPECT_EQ(sv.View().ExpectedSupport(itemset),
              rebuilt.ExpectedSupport(itemset))
        << itemset.ToString();
  }
}

TEST(StreamingFlatViewTest, GenerationAdvancesOnEveryMutation) {
  StreamingFlatView sv;
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  EXPECT_EQ(sv.generation(), 0u);

  // An empty append is a no-op: no mutation, no bump.
  sv.Append({});
  EXPECT_EQ(sv.generation(), 0u);

  const std::vector<Transaction> batch = {Txn({{0, 0.5}, {1, 0.25}}),
                                          Txn({{1, 0.75}})};
  sv.Append(batch);
  const std::uint64_t after_append = sv.generation();
  EXPECT_GT(after_append, 0u);

  // Compaction retires the old storage and publishes a strictly newer
  // generation.
  sv.Compact();
  const std::uint64_t after_compact = sv.generation();
  EXPECT_GT(after_compact, after_append);

  // A no-op compaction (no delta) does not mutate anything.
  sv.Compact();
  EXPECT_EQ(sv.generation(), after_compact);

  // A rollback restores the pre-transaction bits but still counts as a
  // mutation: views handed out inside the transaction must not survive.
  sv.BeginAppend();
  sv.Append(batch);
  const std::uint64_t in_txn = sv.generation();
  EXPECT_GT(in_txn, after_compact);
  sv.RollbackAppend();
  EXPECT_GT(sv.generation(), in_txn);
  EXPECT_EQ(sv.num_transactions(), batch.size());
}

TEST(StreamingFlatViewTest, SnapshotSurvivesAppendAndCompact) {
  Rng rng(321);
  StreamBatchSpec spec;
  spec.num_items = 8;
  StreamingFlatView sv;
  sv.AssertSoleWriter();  // single-threaded test body: sole writer

  std::vector<Transaction> at_snapshot;
  for (int round = 0; round < 3; ++round) {
    sv.Append(MakeStreamBatch(rng, spec, 5));
  }
  // Reconstruct the transactions currently in the stream for the
  // rebuild comparison (MakeStreamBatch is deterministic in rng).
  {
    Rng replay(321);
    for (int round = 0; round < 3; ++round) {
      const std::vector<Transaction> b = MakeStreamBatch(replay, spec, 5);
      at_snapshot.insert(at_snapshot.end(), b.begin(), b.end());
    }
  }

  const StreamingSnapshot snap = sv.Snapshot();
  EXPECT_EQ(snap.watermark(), sv.num_transactions());
  EXPECT_EQ(snap.generation(), sv.generation());
  ExpectMatchesRebuild(snap.view(), at_snapshot, "snapshot-at-capture");

  // Hammer the source: interleaved appends, explicit compactions, and a
  // rolled-back transaction. The snapshot must stay bit-identical to a
  // from-scratch rebuild of the capture-time transactions throughout.
  for (int round = 0; round < 4; ++round) {
    sv.Append(MakeStreamBatch(rng, spec, 7));
    if (round % 2 == 0) sv.Compact();
    ExpectMatchesRebuild(snap.view(), at_snapshot,
                         "snapshot-after-round-" + std::to_string(round));
  }
  sv.BeginAppend();
  sv.Append(MakeStreamBatch(rng, spec, 4));
  sv.RollbackAppend();
  ExpectMatchesRebuild(snap.view(), at_snapshot, "snapshot-after-rollback");

  // Snapshots are self-contained: one taken from a source that is then
  // destroyed keeps reading.
  StreamingSnapshot orphan;
  {
    StreamingFlatView tmp;
    tmp.AssertSoleWriter();
    tmp.Append(at_snapshot);
    orphan = tmp.Snapshot();
  }
  ExpectMatchesRebuild(orphan.view(), at_snapshot, "orphan-snapshot");
}

#if UFIM_STALE_VIEW_CHECKS

TEST(StreamingFlatViewDeathTest, StaleViewAfterAppendAborts) {
  StreamingFlatView sv;
  sv.AssertSoleWriter();
  const std::vector<Transaction> seed = {Txn({{0, 0.5}}), Txn({{1, 0.75}})};
  const std::vector<Transaction> more = {Txn({{0, 0.25}})};
  sv.Append(seed);
  const FlatView stale = sv.View();
  sv.Append(more);
  EXPECT_DEATH(stale.ItemExpectedSupport(0), "stale view");
}

TEST(StreamingFlatViewDeathTest, StaleViewAfterCompactAborts) {
  StreamingFlatView sv;
  sv.AssertSoleWriter();
  const std::vector<Transaction> seed = {Txn({{0, 0.5}}), Txn({{1, 0.75}})};
  sv.Append(seed);
  const FlatView stale = sv.View();
  const FlatView stale_slice = stale.Slice(0, 1);
  sv.Compact();
  EXPECT_DEATH(stale.TransactionUnits(0), "stale view");
  // Slices inherit the birth generation: a pre-mutation slice is just
  // as stale as its parent.
  EXPECT_DEATH(stale_slice.TransactionUnits(0), "stale view");
}

TEST(StreamingFlatViewDeathTest, SnapshotViewNeverTrips) {
  StreamingFlatView sv;
  sv.AssertSoleWriter();
  const std::vector<Transaction> seed = {Txn({{0, 0.5}}), Txn({{1, 0.75}})};
  const std::vector<Transaction> more = {Txn({{0, 0.25}})};
  sv.Append(seed);
  const StreamingSnapshot snap = sv.Snapshot();
  sv.Append(more);
  sv.Compact();
  // Frozen storage's generation never moves, so the check passes.
  EXPECT_EQ(snap.view().ItemExpectedSupport(0), 0.5);
}

#endif  // UFIM_STALE_VIEW_CHECKS

TEST(StreamingFlatViewTest, MomentCachesConsistentAfterCompaction) {
  Rng rng(555);
  StreamBatchSpec spec;
  spec.num_items = 9;
  StreamingFlatView sv;
  sv.AssertSoleWriter();  // single-threaded test body: sole writer
  std::vector<Transaction> all;
  for (int round = 0; round < 5; ++round) {
    const std::vector<Transaction> batch = MakeStreamBatch(rng, spec, 6);
    all.insert(all.end(), batch.begin(), batch.end());
    sv.Append(batch);

    // Capture the cached full-view moments, compact, and require the
    // exact same bits: compaction is a layout change only, and the
    // persistent Kahan accumulators must equal a from-scratch rebuild's.
    const FlatView before = sv.View();
    std::vector<double> esup(sv.num_items()), sq(sv.num_items());
    for (std::size_t i = 0; i < sv.num_items(); ++i) {
      esup[i] = before.ItemExpectedSupport(static_cast<ItemId>(i));
      sq[i] = before.ItemSquaredSum(static_cast<ItemId>(i));
    }
    sv.Compact();
    EXPECT_FALSE(sv.has_delta());
    const FlatView after = sv.View();
    const FlatView rebuilt(UncertainDatabase{std::vector<Transaction>(all)});
    for (std::size_t i = 0; i < sv.num_items(); ++i) {
      const ItemId item = static_cast<ItemId>(i);
      EXPECT_EQ(after.ItemExpectedSupport(item), esup[i]) << "item=" << i;
      EXPECT_EQ(after.ItemSquaredSum(item), sq[i]) << "item=" << i;
      EXPECT_EQ(after.ItemExpectedSupport(item),
                rebuilt.ItemExpectedSupport(item))
          << "item=" << i;
      EXPECT_EQ(after.ItemSquaredSum(item), rebuilt.ItemSquaredSum(item))
          << "item=" << i;
    }
  }
}

}  // namespace
}  // namespace ufim
