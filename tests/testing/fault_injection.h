#ifndef UFIM_TESTS_TESTING_FAULT_INJECTION_H_
#define UFIM_TESTS_TESTING_FAULT_INJECTION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"

namespace ufim::testing_util {

/// Deterministic fault-injection harness around RunContext's counted
/// checkpoint mode. The pattern is count-then-arm: run the workload once
/// with a count-only trigger to learn its exact checkpoint total (the
/// totals are deterministic per (data, config) — checkpoints are counted
/// per work unit, never per timeslice), then re-run with a fault armed at
/// seeded positions drawn from [1, total]. Every faulted run must return
/// the armed code cleanly, and a Reset + re-run on the same objects must
/// be bit-identical to the unfaulted baseline.

/// Arming nth = kCountOnly counts checkpoints without ever faulting.
inline constexpr std::uint64_t kCountOnly =
    std::numeric_limits<std::uint64_t>::max();

/// Runs `work` with `ctx` in counting mode and returns the exact number
/// of checkpoints it observed. `work` must complete successfully (the
/// trigger never fires). Leaves `ctx` freshly Reset.
template <typename Fn>
std::uint64_t CountCheckpoints(const RunContext& ctx, Fn&& work) {
  ctx.AssertQuiescent();  // caller hands us the context between runs
  ctx.Reset();
  ctx.ArmFaultAtCheckpoint(kCountOnly, StatusCode::kCancelled);
  std::forward<Fn>(work)();
  const std::uint64_t total = ctx.checkpoints();
  ctx.Reset();
  return total;
}

/// Seeded schedule of distinct 1-based fault positions in [1, total]:
/// always the first and last checkpoint (the abort points most likely to
/// hit half-initialized or almost-done state), the rest drawn uniformly
/// from the interior. Sorted ascending; size = min(faults, total).
inline std::vector<std::uint64_t> FaultSchedule(std::uint64_t seed,
                                                std::uint64_t total,
                                                std::size_t faults) {
  std::vector<std::uint64_t> picks;
  if (total == 0 || faults == 0) return picks;
  picks.push_back(1);
  if (total > 1 && faults > 1) picks.push_back(total);
  const std::uint64_t want = std::min<std::uint64_t>(faults, total);
  if (want > picks.size()) {
    Rng rng(seed);
    for (std::uint64_t interior :
         SampleWithoutReplacement(rng, total - 2, want - picks.size())) {
      picks.push_back(interior + 2);  // map [0, total-2) onto [2, total-1]
    }
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

/// Stable per-case seed (FNV-1a over the label, split by `stream`), so a
/// failing schedule reproduces across runs and platforms without any
/// dependence on std::hash.
inline std::uint64_t ScheduleSeed(std::string_view label,
                                  std::uint64_t stream = 0) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return DeriveStreamSeed(h, stream);
}

}  // namespace ufim::testing_util

#endif  // UFIM_TESTS_TESTING_FAULT_INJECTION_H_
