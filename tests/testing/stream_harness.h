#ifndef UFIM_TESTS_TESTING_STREAM_HARNESS_H_
#define UFIM_TESTS_TESTING_STREAM_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/delta_miner.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/streaming_flat_view.h"
#include "core/uncertain_database.h"
#include "testing/random_db.h"

namespace ufim::testing_util {

/// One seeded, randomized append/compact/mine schedule for the streaming
/// differential harness. Everything — batch sizes (including empty
/// batches), transaction contents (long-tail item skew, duplicate item
/// draws, empty transactions), the streaming compaction policy, and the
/// forced-compaction points — is a pure function of `seed`, so a failure
/// reproduces from its seed alone.
struct StreamScheduleSpec {
  std::uint64_t seed = 1;
  std::size_t num_ops = 5;     ///< MineNext calls in the schedule
  std::size_t max_batch = 8;   ///< batch sizes drawn from [0, max_batch]
  std::size_t item_growth = 2; ///< item-universe growth per op (unseen items)
  double force_compact_prob = 0.25;  ///< explicit Compact() before a mine
  double snapshot_prob = 0.35;  ///< Snapshot() after a mine, re-checked at end
  double min_esup = 0.2;
  StreamBatchSpec batch;       ///< item/probability regime of the stream
};

/// Runs one schedule under the currently forced intersect kernel with
/// `algorithm` as the shard miner at `num_threads`, checking after every
/// `MineNext`:
///
///  1. **Layout transparency (bit-identical):** a streaming `DeltaMiner`
///     under a randomized compaction policy plus random forced
///     compactions, against a second `DeltaMiner` fed the same batches
///     whose policy compacts after *every* append — i.e. whose base is a
///     full from-scratch rebuild at each step. Results (itemsets,
///     expected supports, variances) and `MiningCounters` must match
///     bit for bit: mining may never observe whether postings are
///     contiguous or split at the base/delta seam.
///  2. **Semantic exactness:** the streaming result against the plain
///     (non-incremental) registry miner run on the accumulated database
///     built from scratch. Itemset sets must match exactly; moments are
///     compared to 1e-9 (the plain miner may legally accumulate in a
///     different — e.g. probe-sweep — order).
///  3. **Snapshot immutability (bit-identical):** schedule steps take
///     `Snapshot()` handles mid-stream and record a baseline mined over
///     each at capture time; after the whole schedule — every later
///     append, policy compaction, and forced compaction — each handle is
///     re-mined and must reproduce its baseline bit for bit (results and
///     `MiningCounters`), proving mutations never touch frozen storage.
///
/// `final_result`, when given, receives the final streaming result so
/// callers can additionally pin bit-equality across thread counts.
inline void RunStreamDifferential(const StreamScheduleSpec& spec,
                                  std::string_view algorithm,
                                  std::size_t num_threads,
                                  MiningResult* final_result = nullptr) {
  Rng rng(spec.seed);

  // Draw the whole schedule up front so every variant sees identical
  // data regardless of how it consumes randomness internally.
  std::vector<std::vector<Transaction>> batches;
  std::vector<bool> force_compact;
  std::vector<bool> take_snapshot;
  batches.reserve(spec.num_ops);
  for (std::size_t op = 0; op < spec.num_ops; ++op) {
    StreamBatchSpec bs = spec.batch;
    bs.num_items += op * spec.item_growth;  // later batches grow the universe
    const std::size_t size = rng.UniformInt(0, spec.max_batch);
    batches.push_back(MakeStreamBatch(rng, bs, size));
    force_compact.push_back(rng.Bernoulli(spec.force_compact_prob));
    take_snapshot.push_back(rng.Bernoulli(spec.snapshot_prob));
  }

  // Randomized streaming policy: anything from compact-almost-always to
  // compact-never (so forced compactions and the seam path both get
  // exercised), against the compact-every-append rebuild reference.
  constexpr double kRatios[] = {0.05, 0.25, 1.0, 1e9};
  CompactionPolicy streaming_policy;
  streaming_policy.max_delta_ratio = kRatios[rng.UniformInt(0, 3)];
  streaming_policy.min_delta_units = rng.UniformInt(0, 32);
  CompactionPolicy rebuild_policy;
  rebuild_policy.max_delta_ratio = 0.0;
  rebuild_policy.min_delta_units = 0;

  ExpectedSupportParams params;
  params.min_esup = spec.min_esup;
  MinerOptions options;
  options.num_threads = num_threads;

  Result<std::unique_ptr<DeltaMiner>> streaming =
      MakeDeltaMiner(algorithm, params, options, streaming_policy);
  Result<std::unique_ptr<DeltaMiner>> rebuild =
      MakeDeltaMiner(algorithm, params, options, rebuild_policy);
  std::unique_ptr<Miner> plain =
      MinerRegistry::Global().Create(algorithm, options);
  EXPECT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_TRUE(rebuild.ok()) << rebuild.status().ToString();
  EXPECT_NE(plain, nullptr);
  if (!streaming.ok() || !rebuild.ok() || plain == nullptr) return;

  struct TakenSnapshot {
    std::size_t op = 0;
    StreamingSnapshot snap;
    MiningResult at_capture;
  };
  std::vector<TakenSnapshot> snapshots;

  UncertainDatabase accumulated;
  for (std::size_t op = 0; op < batches.size(); ++op) {
    const std::string label = "seed=" + std::to_string(spec.seed) +
                              " op=" + std::to_string(op) +
                              " threads=" + std::to_string(num_threads);
    if (force_compact[op]) streaming.value()->Compact();

    Result<MiningResult> a = streaming.value()->MineNext(batches[op]);
    Result<MiningResult> b = rebuild.value()->MineNext(batches[op]);
    ASSERT_TRUE(a.ok()) << label << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << label << ": " << b.status().ToString();
    // The rebuild reference must really be the contiguous layout.
    EXPECT_FALSE(rebuild.value()->view().has_delta()) << label;

    ASSERT_EQ(a.value().size(), b.value().size()) << label;
    for (std::size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].itemset, b.value()[i].itemset) << label;
      EXPECT_EQ(a.value()[i].expected_support, b.value()[i].expected_support)
          << label << " " << b.value()[i].itemset.ToString();
      EXPECT_EQ(a.value()[i].variance, b.value()[i].variance)
          << label << " " << b.value()[i].itemset.ToString();
    }
    const MiningCounters& ca = a.value().counters();
    const MiningCounters& cb = b.value().counters();
    EXPECT_EQ(ca.candidates_generated, cb.candidates_generated) << label;
    EXPECT_EQ(ca.candidates_pruned_apriori, cb.candidates_pruned_apriori)
        << label;
    EXPECT_EQ(ca.candidates_rejected_bound, cb.candidates_rejected_bound)
        << label;
    EXPECT_EQ(ca.exact_tail_evals,
              cb.exact_tail_evals)
        << label;
    EXPECT_EQ(ca.database_scans, cb.database_scans) << label;

    // Semantic exactness against a from-scratch non-incremental run.
    accumulated.Append(batches[op]);
    Result<MiningResult> c = plain->Mine(FlatView(accumulated),
                                         MiningTask(params));
    ASSERT_TRUE(c.ok()) << label << ": " << c.status().ToString();
    MiningResult reference = std::move(c).value();
    reference.SortCanonical();
    ASSERT_EQ(a.value().size(), reference.size()) << label;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(a.value()[i].itemset, reference[i].itemset) << label;
      EXPECT_NEAR(a.value()[i].expected_support,
                  reference[i].expected_support, 1e-9)
          << label << " " << reference[i].itemset.ToString();
      EXPECT_NEAR(a.value()[i].variance, reference[i].variance, 1e-9)
          << label << " " << reference[i].itemset.ToString();
    }
    // Snapshot step: freeze the streaming state and record a bitwise
    // baseline over the frozen view; checked again after the schedule.
    if (take_snapshot[op]) {
      // Single-threaded schedule: this thread is the sole writer, so it
      // may also acquire snapshots.
      streaming.value()->view().AssertSoleWriter();
      TakenSnapshot taken;
      taken.op = op;
      taken.snap = streaming.value()->view().Snapshot();
      Result<MiningResult> at_capture =
          plain->Mine(taken.snap.view(), MiningTask(params));
      ASSERT_TRUE(at_capture.ok())
          << label << ": " << at_capture.status().ToString();
      taken.at_capture = std::move(at_capture).value();
      snapshots.push_back(std::move(taken));
    }

    if (final_result != nullptr) *final_result = std::move(a).value();
  }

  // Every snapshot taken along the way must re-mine bit-identically to
  // its capture-time baseline, whatever the stream did afterwards.
  for (const TakenSnapshot& taken : snapshots) {
    const std::string label = "seed=" + std::to_string(spec.seed) +
                              " snapshot-op=" + std::to_string(taken.op) +
                              " threads=" + std::to_string(num_threads);
    Result<MiningResult> again =
        plain->Mine(taken.snap.view(), MiningTask(params));
    ASSERT_TRUE(again.ok()) << label << ": " << again.status().ToString();
    ASSERT_EQ(again.value().size(), taken.at_capture.size()) << label;
    for (std::size_t i = 0; i < taken.at_capture.size(); ++i) {
      EXPECT_EQ(again.value()[i].itemset, taken.at_capture[i].itemset)
          << label;
      EXPECT_EQ(again.value()[i].expected_support,
                taken.at_capture[i].expected_support)
          << label << " " << taken.at_capture[i].itemset.ToString();
      EXPECT_EQ(again.value()[i].variance, taken.at_capture[i].variance)
          << label << " " << taken.at_capture[i].itemset.ToString();
    }
    const MiningCounters& cr = again.value().counters();
    const MiningCounters& cs = taken.at_capture.counters();
    EXPECT_EQ(cr.candidates_generated, cs.candidates_generated) << label;
    EXPECT_EQ(cr.candidates_pruned_apriori, cs.candidates_pruned_apriori)
        << label;
    EXPECT_EQ(cr.candidates_rejected_bound, cs.candidates_rejected_bound)
        << label;
    EXPECT_EQ(cr.exact_tail_evals, cs.exact_tail_evals) << label;
    EXPECT_EQ(cr.database_scans, cs.database_scans) << label;
  }
}

}  // namespace ufim::testing_util

#endif  // UFIM_TESTS_TESTING_STREAM_HARNESS_H_
