#ifndef UFIM_TESTS_TESTING_RANDOM_DB_H_
#define UFIM_TESTS_TESTING_RANDOM_DB_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/transaction.h"
#include "core/uncertain_database.h"

namespace ufim::testing_util {

/// Parameters of a randomized test database.
struct RandomDbSpec {
  std::uint64_t seed = 1;
  std::size_t num_transactions = 12;
  std::size_t num_items = 8;
  double item_presence = 0.5;  ///< Bernoulli inclusion rate per (txn, item)
  double min_prob = 0.05;      ///< probability range of present units
  double max_prob = 1.0;
};

/// Builds a small random uncertain database. Small enough that the
/// brute-force oracle miners stay fast, varied enough (via seeds) to act
/// as property-test inputs.
inline UncertainDatabase MakeRandomDatabase(const RandomDbSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Transaction> txns;
  txns.reserve(spec.num_transactions);
  for (std::size_t t = 0; t < spec.num_transactions; ++t) {
    std::vector<ProbItem> units;
    for (std::size_t i = 0; i < spec.num_items; ++i) {
      if (rng.Bernoulli(spec.item_presence)) {
        units.push_back(ProbItem{static_cast<ItemId>(i),
                                 rng.Uniform(spec.min_prob, spec.max_prob)});
      }
    }
    txns.emplace_back(std::move(units));
  }
  return UncertainDatabase(std::move(txns));
}

/// Parameters of a streaming transaction batch with a Kosarak-like
/// long-tail item popularity: item ranks are drawn from a Zipf
/// distribution, so a few head items appear in most transactions while
/// the tail is sparse — the regime where posting-length skew (and with
/// it kernel dispatch and compaction policy) actually matters.
struct StreamBatchSpec {
  std::size_t num_items = 16;
  double item_skew = 1.1;     ///< Zipf exponent of item popularity (0 = uniform)
  double avg_length = 4.0;    ///< mean units per transaction (Poisson)
  double empty_prob = 0.0;    ///< chance a transaction comes out empty
  double min_prob = 0.05;     ///< probability range of present units
  double max_prob = 1.0;
};

/// Draws one batch of `n` transactions from `spec`, consuming `rng` (so
/// successive calls over one Rng produce an evolving stream; the whole
/// stream is reproducible from the Rng's seed). Items within one
/// transaction are drawn with replacement and deduplicated by the
/// `Transaction` constructor — duplicate draws land in the stream
/// exactly as dirty real-world feeds would, and the generator is used by
/// both the streaming differential harness and bench_streaming so their
/// input regimes match.
inline std::vector<Transaction> MakeStreamBatch(Rng& rng,
                                                const StreamBatchSpec& spec,
                                                std::size_t n) {
  std::vector<Transaction> batch;
  batch.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<ProbItem> units;
    if (!rng.Bernoulli(spec.empty_prob)) {
      const unsigned len = rng.Poisson(spec.avg_length);
      units.reserve(len);
      for (unsigned u = 0; u < len; ++u) {
        // Zipf ranks are 1-based and head-heavy; rank 1 = most popular.
        const ItemId item = static_cast<ItemId>(
            rng.Zipf(spec.num_items, spec.item_skew) - 1);
        units.push_back(
            ProbItem{item, rng.Uniform(spec.min_prob, spec.max_prob)});
      }
    }
    batch.emplace_back(std::move(units));
  }
  return batch;
}

}  // namespace ufim::testing_util

#endif  // UFIM_TESTS_TESTING_RANDOM_DB_H_
