#ifndef UFIM_TESTS_TESTING_RANDOM_DB_H_
#define UFIM_TESTS_TESTING_RANDOM_DB_H_

#include <cstdint>

#include "common/rng.h"
#include "core/uncertain_database.h"

namespace ufim::testing_util {

/// Parameters of a randomized test database.
struct RandomDbSpec {
  std::uint64_t seed = 1;
  std::size_t num_transactions = 12;
  std::size_t num_items = 8;
  double item_presence = 0.5;  ///< Bernoulli inclusion rate per (txn, item)
  double min_prob = 0.05;      ///< probability range of present units
  double max_prob = 1.0;
};

/// Builds a small random uncertain database. Small enough that the
/// brute-force oracle miners stay fast, varied enough (via seeds) to act
/// as property-test inputs.
inline UncertainDatabase MakeRandomDatabase(const RandomDbSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Transaction> txns;
  txns.reserve(spec.num_transactions);
  for (std::size_t t = 0; t < spec.num_transactions; ++t) {
    std::vector<ProbItem> units;
    for (std::size_t i = 0; i < spec.num_items; ++i) {
      if (rng.Bernoulli(spec.item_presence)) {
        units.push_back(ProbItem{static_cast<ItemId>(i),
                                 rng.Uniform(spec.min_prob, spec.max_prob)});
      }
    }
    txns.emplace_back(std::move(units));
  }
  return UncertainDatabase(std::move(txns));
}

}  // namespace ufim::testing_util

#endif  // UFIM_TESTS_TESTING_RANDOM_DB_H_
