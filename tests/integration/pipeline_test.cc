// Full-pipeline integration: dataset generation -> disk -> reload ->
// mining -> result serialization -> reload -> post-processing. What a
// downstream user actually does, wired end to end.
#include <cstdio>

#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "core/postprocess.h"
#include "core/result_io.h"
#include "eval/metrics.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "io/dataset_io.h"

namespace ufim {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(PipelineTest, DatasetRoundTripPreservesMiningResults) {
  // Mining the reloaded dataset must equal mining the original.
  UncertainDatabase original =
      AssignGaussianProbabilities(MakeGazelleLike(800, 5), 0.9, 0.05, 6);
  const std::string path = TempPath("pipeline.udb");
  ASSERT_TRUE(WriteDataset(original, path).ok());
  auto reloaded = ReadDataset(path);
  ASSERT_TRUE(reloaded.ok());

  ExpectedSupportParams params;
  params.min_esup = 0.005;
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine);
  auto before = miner->Mine(original, params);
  auto after = miner->Mine(*reloaded, params);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (std::size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].itemset, (*after)[i].itemset);
    EXPECT_EQ((*before)[i].expected_support, (*after)[i].expected_support);
  }
  std::remove(path.c_str());
}

TEST_F(PipelineTest, ResultRoundTripThenPostprocess) {
  UncertainDatabase db =
      AssignGaussianProbabilities(MakeGazelleLike(800, 7), 0.9, 0.05, 8);
  ProbabilisticParams params;
  params.min_sup = 0.004;
  params.pft = 0.9;
  auto mined = CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUHMine)
                   ->Mine(db, params);
  ASSERT_TRUE(mined.ok());
  ASSERT_GT(mined->size(), 0u);

  const std::string path = TempPath("pipeline_result.txt");
  ASSERT_TRUE(WriteResult(*mined, path).ok());
  auto reloaded = ReadResult(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), mined->size());

  // Post-processing the reloaded result equals post-processing the
  // in-memory one (serialization is bit-exact).
  MiningResult closed_mem = FilterClosed(*mined);
  MiningResult closed_disk = FilterClosed(*reloaded);
  EXPECT_EQ(closed_mem.ItemsetsOnly(), closed_disk.ItemsetsOnly());
  std::remove(path.c_str());
}

TEST_F(PipelineTest, DiffTwoAlgorithmsThroughSerializedResults) {
  // The workflow behind the paper's fairness methodology: persist two
  // algorithms' results and diff them with precision/recall.
  UncertainDatabase db =
      AssignGaussianProbabilities(MakeAccidentLike(400, 9), 0.5, 0.5, 10);
  ProbabilisticParams params;
  params.min_sup = 0.2;
  params.pft = 0.9;
  const std::string path_a = TempPath("dcb.txt");
  const std::string path_b = TempPath("nduh.txt");
  auto a = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB)->Mine(db, params);
  auto b =
      CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUHMine)->Mine(db, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(WriteResult(*a, path_a).ok());
  ASSERT_TRUE(WriteResult(*b, path_b).ok());
  auto ra = ReadResult(path_a);
  auto rb = ReadResult(path_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  PrecisionRecall pr = ComputePrecisionRecall(*rb, *ra);
  // CLT regime with N=400 is already good enough for near-agreement.
  EXPECT_GE(pr.precision, 0.9);
  EXPECT_GE(pr.recall, 0.9);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(PipelineTest, ZipfPipelineEndToEnd) {
  // Zipf-probability branch of the generator feeding the whole chain.
  UncertainDatabase db = AssignZipfProbabilities(MakeConnectLike(300, 11), 1.2, 12);
  const std::string path = TempPath("zipf.udb");
  ASSERT_TRUE(WriteDataset(db, path).ok());
  auto reloaded = ReadDataset(path);
  ASSERT_TRUE(reloaded.ok());
  ExpectedSupportParams params;
  params.min_esup = 0.1;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(*reloaded, params);
    ASSERT_TRUE(result.ok()) << ToString(algo);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ufim
