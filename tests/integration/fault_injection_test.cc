// Randomized fault-injection sweep: every registered algorithm must
// survive cancellation at arbitrary checkpoints. For each miner and
// thread count the suite learns the run's exact checkpoint total
// (count-only arming — the totals are deterministic per (data, config)),
// then cancels the run at seeded positions across [1, total]. Each
// faulted run must return kCancelled as a clean Status — no crash, no
// leak, no torn state — and a Reset + re-run *on the same miner, view
// and pool objects* must be bit-identical to the never-cancelled
// baseline, results and work counters both. TSan runs this suite in CI,
// so the cancel/unwind paths are also raced at 2 and 8 threads.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/delta_miner.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/sharded_miner.h"
#include "testing/fault_injection.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::CountCheckpoints;
using testing_util::FaultSchedule;
using testing_util::MakeRandomDatabase;
using testing_util::MakeStreamBatch;
using testing_util::ScheduleSeed;
using testing_util::StreamBatchSpec;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kFaultsPerCase = 8;

MiningTask TaskFor(TaskFamily family) {
  switch (family) {
    case TaskFamily::kExpectedSupport: {
      ExpectedSupportParams params;
      params.min_esup = 0.12;
      return params;
    }
    case TaskFamily::kProbabilistic: {
      ProbabilisticParams params;
      params.min_sup = 0.25;
      params.pft = 0.6;
      return params;
    }
    case TaskFamily::kTopK: {
      TopKParams params;
      params.k = 12;
      return params;
    }
  }
  return ExpectedSupportParams{};
}

void ExpectIdentical(const MiningResult& actual, const MiningResult& expect,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expect.size()) << label;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(actual[i].itemset, expect[i].itemset) << label;
    EXPECT_EQ(actual[i].expected_support, expect[i].expected_support)
        << label << " " << expect[i].itemset.ToString();
    EXPECT_EQ(actual[i].variance, expect[i].variance)
        << label << " " << expect[i].itemset.ToString();
    ASSERT_EQ(actual[i].frequent_probability.has_value(),
              expect[i].frequent_probability.has_value())
        << label;
    if (expect[i].frequent_probability.has_value()) {
      EXPECT_EQ(*actual[i].frequent_probability,
                *expect[i].frequent_probability)
          << label << " " << expect[i].itemset.ToString();
    }
  }
}

/// One miner instance through the full count-then-arm protocol: learn
/// the checkpoint total, cancel at `kFaultsPerCase` seeded positions,
/// and after every abort prove the cleanup contract by re-mining the
/// same objects to the unfaulted baseline.
void CheckSurvivesCancellation(Miner& miner, const RunContext& ctx,
                               const FlatView& view, const MiningTask& task,
                               const std::string& label) {
  Result<MiningResult> baseline = miner.Mine(view, task);
  ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().ToString();

  const std::uint64_t total = CountCheckpoints(ctx, [&] {
    Result<MiningResult> counted = miner.Mine(view, task);
    ASSERT_TRUE(counted.ok()) << label;
  });
  ASSERT_GE(total, 1u) << label << ": a miner that never polls its "
                       << "RunContext cannot be cancelled";

  for (const std::uint64_t nth :
       FaultSchedule(ScheduleSeed(label), total, kFaultsPerCase)) {
    const std::string at = label + " @checkpoint " + std::to_string(nth) +
                           "/" + std::to_string(total);
    ctx.AssertQuiescent();  // no mine in flight between the sequential runs
    ctx.Reset();
    ctx.ArmFaultAtCheckpoint(nth, StatusCode::kCancelled);
    Result<MiningResult> faulted = miner.Mine(view, task);
    ASSERT_FALSE(faulted.ok()) << at << ": armed fault did not surface";
    EXPECT_EQ(faulted.status().code(), StatusCode::kCancelled) << at;

    // Cleanup contract: same miner, same view, fresh token — the
    // aborted run may not have left anything behind.
    ctx.Reset();
    Result<MiningResult> rerun = miner.Mine(view, task);
    ASSERT_TRUE(rerun.ok()) << at << ": " << rerun.status().ToString();
    ExpectIdentical(rerun.value(), baseline.value(), at);
    EXPECT_EQ(rerun->counters().candidates_generated,
              baseline->counters().candidates_generated)
        << at;
    EXPECT_EQ(rerun->counters().exact_tail_evals,
              baseline->counters().exact_tail_evals)
        << at;
  }
}

TEST(FaultInjectionTest, EveryRegisteredMinerSurvivesCancellation) {
  const UncertainDatabase db = MakeRandomDatabase({.seed = 81,
                                                   .num_transactions = 60,
                                                   .num_items = 9,
                                                   .item_presence = 0.55});
  FlatView view(db);
  for (const std::string& name : MinerRegistry::Global().Names()) {
    const MinerEntry* entry = MinerRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr);
    const MiningTask task = TaskFor(entry->family);
    for (const std::size_t threads : kThreadCounts) {
      MinerOptions options;
      options.num_threads = threads;
      const RunContext ctx = options.run_context;  // shared-state handle
      std::unique_ptr<Miner> miner = MinerRegistry::Global().Create(name,
                                                                    options);
      ASSERT_NE(miner, nullptr) << name;
      CheckSurvivesCancellation(*miner, ctx, view, task,
                                name + "@" + std::to_string(threads));
    }
  }
}

// The pattern-growth miners only split dominant subtrees into stealable
// tasks on larger inputs; this case forces real recursion depth and an
// aggressive split budget so cancellation lands *inside* the
// work-stealing task groups, not just at top-level ranks.
TEST(FaultInjectionTest, PatternGrowthSplitTasksSurviveCancellation) {
  const UncertainDatabase db = MakeRandomDatabase({.seed = 82,
                                                   .num_transactions = 180,
                                                   .num_items = 14,
                                                   .item_presence = 0.45,
                                                   .min_prob = 0.3});
  FlatView view(db);
  ExpectedSupportParams params;
  params.min_esup = 0.05;
  for (const char* name : {"UFP-growth", "UH-Mine"}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      MinerOptions options;
      options.num_threads = threads;
      options.split_budget = 64;  // aggressive: many stealable subtrees
      const RunContext ctx = options.run_context;
      std::unique_ptr<Miner> miner = MinerRegistry::Global().Create(name,
                                                                    options);
      ASSERT_NE(miner, nullptr) << name;
      CheckSurvivesCancellation(
          *miner, ctx, view, MiningTask(params),
          std::string("split/") + name + "@" + std::to_string(threads));
    }
  }
}

// ShardedMiner is not registry-listed (it wraps another miner), so the
// SON driver's phase boundaries get their own sweep: cancellation must
// land cleanly whether it strikes during the parallel per-shard mining
// or during the full-view recount.
TEST(FaultInjectionTest, ShardedMinerSurvivesCancellationAcrossPhases) {
  const UncertainDatabase db = MakeRandomDatabase({.seed = 83,
                                                   .num_transactions = 96,
                                                   .num_items = 10,
                                                   .item_presence = 0.5});
  FlatView view(db);
  ExpectedSupportParams params;
  params.min_esup = 0.12;
  for (const std::size_t threads : kThreadCounts) {
    MinerOptions options;
    options.num_threads = threads;
    const RunContext ctx = options.run_context;
    ShardedMiner miner(MinerRegistry::Global().Create("UApriori", options), 4,
                       threads);
    miner.AssertConfigPhase();  // freshly constructed, no mine in flight
    miner.set_run_context(ctx);
    CheckSurvivesCancellation(miner, ctx, view, MiningTask(params),
                              "Sharded(UApriori)@" + std::to_string(threads));
  }
}

// DeltaMiner's cancellation contract is transactional, not just clean:
// a batch whose mine is cancelled pre-commit must roll back to the
// pre-append watermark, a post-commit (recount-phase) cancellation must
// leave the committed stream consistent, and in both cases the caller
// recovers with a Reset and one retry — resending the batch if it rolled
// back, an empty batch if it committed. The watermark tells the two
// apart, exactly as a resuming client would.
TEST(FaultInjectionTest, DeltaMinerRollsBackOrCommitsButAlwaysRecovers) {
  ExpectedSupportParams params;
  params.min_esup = 0.2;
  StreamBatchSpec spec;
  spec.num_items = 8;
  Rng rng(84);
  const std::vector<Transaction> b1 = MakeStreamBatch(rng, spec, 12);
  const std::vector<Transaction> b2 = MakeStreamBatch(rng, spec, 10);

  // Reference: the same stream, never cancelled.
  Result<std::unique_ptr<DeltaMiner>> clean = MakeDeltaMiner("UApriori",
                                                             params);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean.value()->MineNext(b1).ok());
  Result<MiningResult> reference = clean.value()->MineNext(b2);
  ASSERT_TRUE(reference.ok());

  // Learn the checkpoint total of MineNext(b2) on a twin stream (MineNext
  // mutates state, so the counting run needs its own instance).
  MinerOptions count_options;
  const RunContext count_ctx = count_options.run_context;
  Result<std::unique_ptr<DeltaMiner>> counting =
      MakeDeltaMiner("UApriori", params, count_options);
  ASSERT_TRUE(counting.ok());
  ASSERT_TRUE(counting.value()->MineNext(b1).ok());
  const std::uint64_t total = CountCheckpoints(count_ctx, [&] {
    ASSERT_TRUE(counting.value()->MineNext(b2).ok());
  });
  ASSERT_GE(total, 2u) << "expected checkpoints on both sides of the commit";

  for (const std::uint64_t nth :
       FaultSchedule(ScheduleSeed("delta-rollback"), total, kFaultsPerCase)) {
    const std::string at =
        "delta @checkpoint " + std::to_string(nth) + "/" + std::to_string(total);
    MinerOptions options;
    const RunContext ctx = options.run_context;
    Result<std::unique_ptr<DeltaMiner>> delta =
        MakeDeltaMiner("UApriori", params, options);
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(delta.value()->MineNext(b1).ok()) << at;
    const std::size_t txns_before = delta.value()->view().num_transactions();

    ctx.AssertQuiescent();  // no mine in flight between the sequential runs
    ctx.ArmFaultAtCheckpoint(nth, StatusCode::kCancelled);
    Result<MiningResult> faulted = delta.value()->MineNext(b2);
    ASSERT_FALSE(faulted.ok()) << at;
    EXPECT_EQ(faulted.status().code(), StatusCode::kCancelled) << at;

    // Consistent either way: fully rolled back or fully committed,
    // never a torn batch.
    const std::size_t txns_now = delta.value()->view().num_transactions();
    const bool committed = txns_now == txns_before + b2.size();
    if (!committed) {
      EXPECT_EQ(txns_now, txns_before) << at;
    }

    ctx.Reset();
    Result<MiningResult> retried = committed ? delta.value()->MineNext({})
                                             : delta.value()->MineNext(b2);
    ASSERT_TRUE(retried.ok()) << at << ": " << retried.status().ToString();
    EXPECT_EQ(delta.value()->view().num_transactions(),
              txns_before + b2.size())
        << at;
    ExpectIdentical(retried.value(), reference.value(), at);
  }
}

}  // namespace
}  // namespace ufim
