// TSan concurrent-reader matrix for snapshot handles: miners run over a
// StreamingSnapshot while a live writer thread appends and
// force-compacts the source view, at {1,2,8} miner threads under every
// intersection kernel. The snapshot mine must be bit-identical —
// results and MiningCounters — to mining the same handle quiesced
// (before the writer starts and after it joins). A second leg pins
// DeltaMiner::MineNext against explicit Compact() calls racing its
// recount phase. Run under ThreadSanitizer in CI (the copy-on-compact
// publication and the frozen-snapshot reads are exactly the shared
// state TSan needs to see).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/delta_miner.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/mining_result.h"
#include "core/simd_intersect.h"
#include "core/streaming_flat_view.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeStreamBatch;
using testing_util::StreamBatchSpec;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Forces a kernel for one scope and restores the heuristic on exit.
struct ScopedKernel {
  explicit ScopedKernel(IntersectKernel k) { SetIntersectKernel(k); }
  ~ScopedKernel() { SetIntersectKernel(IntersectKernel::kAuto); }
};

/// Bit-identical comparison: itemsets, moments and work counters.
void ExpectBitIdentical(const MiningResult& got, const MiningResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].itemset, want[i].itemset) << label;
    EXPECT_EQ(got[i].expected_support, want[i].expected_support)
        << label << " " << want[i].itemset.ToString();
    EXPECT_EQ(got[i].variance, want[i].variance)
        << label << " " << want[i].itemset.ToString();
  }
  const MiningCounters& cg = got.counters();
  const MiningCounters& cw = want.counters();
  EXPECT_EQ(cg.candidates_generated, cw.candidates_generated) << label;
  EXPECT_EQ(cg.candidates_pruned_apriori, cw.candidates_pruned_apriori)
      << label;
  EXPECT_EQ(cg.candidates_rejected_bound, cw.candidates_rejected_bound)
      << label;
  EXPECT_EQ(cg.exact_tail_evals, cw.exact_tail_evals) << label;
  EXPECT_EQ(cg.database_scans, cw.database_scans) << label;
}

class SnapshotConcurrencyTest
    : public ::testing::TestWithParam<IntersectKernel> {};

TEST_P(SnapshotConcurrencyTest, MineOverSnapshotWithLiveWriter) {
  ScopedKernel forced(GetParam());
  ExpectedSupportParams params;
  params.min_esup = 0.2;
  const MiningTask task(params);

  for (const std::size_t threads : kThreadCounts) {
    const std::string label =
        std::string("kernel=") + std::string(IntersectKernelName(GetParam())) +
        " threads=" + std::to_string(threads);
    Rng rng(4242 + threads);
    StreamBatchSpec spec;
    spec.num_items = 9;

    CompactionPolicy policy;
    policy.max_delta_ratio = 1.0;  // leave a real delta for the snapshot
    policy.min_delta_units = 8;
    StreamingFlatView sv{policy};
    sv.AssertSoleWriter();  // setup phase: this thread is the writer
    for (int round = 0; round < 3; ++round) {
      sv.Append(MakeStreamBatch(rng, spec, 6));
    }
    const StreamingSnapshot snap = sv.Snapshot();

    MinerOptions options;
    options.num_threads = threads;
    std::unique_ptr<Miner> miner =
        MinerRegistry::Global().Create("UApriori", options);
    ASSERT_NE(miner, nullptr);

    // Quiesced baseline over the frozen handle, before any writer runs.
    Result<MiningResult> baseline = miner->Mine(snap.view(), task);
    ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().ToString();

    // Writer thread: appends and force-compacts the source while the
    // main thread mines the snapshot. Thread creation/join give the
    // happens-before edges the single-writer contract needs — inside
    // the thread body it is the sole writer.
    const std::vector<std::vector<Transaction>> writer_batches = [&] {
      std::vector<std::vector<Transaction>> batches;
      for (int round = 0; round < 6; ++round) {
        batches.push_back(MakeStreamBatch(rng, spec, 5));
      }
      return batches;
    }();
    std::thread writer([&sv, &writer_batches] {
      sv.AssertSoleWriter();
      for (std::size_t round = 0; round < writer_batches.size(); ++round) {
        sv.Append(writer_batches[round]);
        if (round % 2 == 0) sv.Compact();
      }
    });

    // Concurrent mine over the frozen handle, racing the writer.
    Result<MiningResult> live = miner->Mine(snap.view(), task);
    writer.join();
    ASSERT_TRUE(live.ok()) << label << ": " << live.status().ToString();

    // Quiesced re-mine after the writer finished.
    Result<MiningResult> after = miner->Mine(snap.view(), task);
    ASSERT_TRUE(after.ok()) << label << ": " << after.status().ToString();

    ExpectBitIdentical(live.value(), baseline.value(), label + " live");
    ExpectBitIdentical(after.value(), baseline.value(), label + " after");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(SnapshotConcurrencyTest, DeltaMinerRecountToleratesConcurrentCompact) {
  ScopedKernel forced(GetParam());
  ExpectedSupportParams params;
  params.min_esup = 0.25;

  for (const std::size_t threads : kThreadCounts) {
    const std::string label =
        std::string("kernel=") + std::string(IntersectKernelName(GetParam())) +
        " threads=" + std::to_string(threads);
    Rng rng(777 + threads);
    StreamBatchSpec spec;
    spec.num_items = 8;
    std::vector<std::vector<Transaction>> batches;
    for (int b = 0; b < 5; ++b) batches.push_back(MakeStreamBatch(rng, spec, 6));

    MinerOptions options;
    options.num_threads = threads;
    CompactionPolicy policy;
    policy.max_delta_ratio = 2.0;  // keep a delta for Compact() to fold
    policy.min_delta_units = 4;

    // Serial reference: same batches, no concurrent compactor.
    Result<std::unique_ptr<DeltaMiner>> reference =
        MakeDeltaMiner("UApriori", params, options, policy);
    ASSERT_TRUE(reference.ok()) << label;
    std::vector<MiningResult> want;
    for (const std::vector<Transaction>& batch : batches) {
      Result<MiningResult> r = reference.value()->MineNext(batch);
      ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString();
      want.push_back(std::move(r).value());
    }

    // Concurrent run: a second thread hammers explicit Compact() —
    // serialized with MineNext's mutation phase by the miner's write
    // mutex, free to overlap its snapshot-based recount phase — while
    // the main thread feeds the same batches.
    Result<std::unique_ptr<DeltaMiner>> concurrent =
        MakeDeltaMiner("UApriori", params, options, policy);
    ASSERT_TRUE(concurrent.ok()) << label;
    std::atomic<bool> stop{false};
    std::thread compactor([&concurrent, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        concurrent.value()->Compact();
        std::this_thread::yield();
      }
    });
    std::vector<MiningResult> got;
    for (const std::vector<Transaction>& batch : batches) {
      Result<MiningResult> r = concurrent.value()->MineNext(batch);
      if (!r.ok()) {
        stop.store(true, std::memory_order_relaxed);
        compactor.join();
        FAIL() << label << ": " << r.status().ToString();
      }
      got.push_back(std::move(r).value());
    }
    stop.store(true, std::memory_order_relaxed);
    compactor.join();

    // Compaction is a layout change only: every step's results and
    // counters match the compactor-free run bit for bit.
    for (std::size_t op = 0; op < want.size(); ++op) {
      ExpectBitIdentical(got[op], want[op],
                         label + " op=" + std::to_string(op));
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, SnapshotConcurrencyTest,
                         ::testing::Values(IntersectKernel::kScalar,
                                           IntersectKernel::kGallop,
                                           IntersectKernel::kSimd),
                         [](const auto& info) {
                           return std::string(
                               IntersectKernelName(info.param));
                         });

}  // namespace
}  // namespace ufim
