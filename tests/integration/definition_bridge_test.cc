// The paper's headline claim (§1, verified in §4.4): for large databases
// the two frequent-itemset definitions are bridged by the (esup, var)
// moments — an expected-support miner that also tracks variance solves
// the probabilistic problem via the Normal approximation.
#include <cmath>

#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "eval/metrics.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "prob/normal.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

UncertainDatabase LargeSparse(std::uint64_t seed) {
  return AssignGaussianProbabilities(MakeGazelleLike(4000, seed), 0.8, 0.05,
                                     seed + 1);
}

TEST(DefinitionBridgeTest, MomentsFromMinersMatchDistributionMachinery) {
  // The variance every miner reports must equal the Poisson-binomial
  // variance of the containment-probability vector.
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.25;
  auto result =
      CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine)->Mine(db, params);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& fi : result->itemsets()) {
    auto probs = db.ContainmentProbabilities(fi.itemset);
    SupportMoments m = ComputeSupportMoments(probs);
    EXPECT_NEAR(fi.expected_support, m.mean, 1e-9);
    EXPECT_NEAR(fi.variance, m.variance, 1e-9);
  }
}

TEST(DefinitionBridgeTest, NormalTestOverExpectedResultsEqualsNDUApriori) {
  // Mining expected-support-frequent itemsets at a low threshold and then
  // filtering with the Normal test reproduces NDUApriori exactly.
  UncertainDatabase db = LargeSparse(3);
  ProbabilisticParams pparams;
  pparams.min_sup = 0.02;
  pparams.pft = 0.9;
  const std::size_t msc = pparams.MinSupportCount(db.size());

  auto ndu = CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUApriori)
                 ->Mine(db, pparams);
  ASSERT_TRUE(ndu.ok());

  ExpectedSupportParams eparams;
  eparams.min_esup = 0.005;  // low enough to cover all candidates
  auto expected = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine)
                      ->Mine(db, eparams);
  ASSERT_TRUE(expected.ok());

  MiningResult bridged;
  for (const FrequentItemset& fi : expected->itemsets()) {
    if (NormalApproxFrequentProbability(fi.expected_support, fi.variance, msc) >
        pparams.pft) {
      bridged.Add(fi);
    }
  }
  PrecisionRecall pr = ComputePrecisionRecall(bridged, *ndu);
  EXPECT_EQ(pr.precision, 1.0);
  EXPECT_EQ(pr.recall, 1.0);
}

TEST(DefinitionBridgeTest, FrequentProbabilitiesSaturateOnLargeData) {
  // §4.5 finding: on large databases, the frequent probabilities of the
  // mined probabilistic frequent itemsets are almost all 1.
  UncertainDatabase db = LargeSparse(4);
  ProbabilisticParams params;
  params.min_sup = 0.015;
  params.pft = 0.9;
  auto result = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB)
                    ->Mine(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->size(), 0u);
  std::size_t saturated = 0;
  for (const FrequentItemset& fi : result->itemsets()) {
    if (*fi.frequent_probability > 0.9999) ++saturated;
  }
  // "Most" saturate; the handful of borderline itemsets sit between pft
  // and 1, so the fraction is noisy on small result sets.
  EXPECT_GT(static_cast<double>(saturated) / result->size(), 0.6);
  EXPECT_GT(saturated, 0u);
}

TEST(DefinitionBridgeTest, VarianceNeverExceedsMean) {
  // Poisson-binomial: var = Σp(1-p) <= Σp = mean. Every miner's output
  // must satisfy it.
  UncertainDatabase db = LargeSparse(5);
  ExpectedSupportParams params;
  params.min_esup = 0.01;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    for (const FrequentItemset& fi : result->itemsets()) {
      EXPECT_LE(fi.variance, fi.expected_support + 1e-9) << ToString(algo);
      EXPECT_GE(fi.variance, -1e-9) << ToString(algo);
    }
  }
}

}  // namespace
}  // namespace ufim
