// The core invariant of the whole study: the three expected-support
// miners are different *algorithms* for the same problem and must return
// identical results; likewise DP and DC for the probabilistic problem.
// Swept over randomized databases and thresholds.
#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

struct Case {
  std::uint64_t seed;
  std::size_t num_transactions;
  std::size_t num_items;
  double presence;
  double threshold;  // min_esup or min_sup
  double pft;
};

class CrossAlgorithmTest : public ::testing::TestWithParam<Case> {};

TEST_P(CrossAlgorithmTest, ExpectedSupportMinersAgree) {
  const Case c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed, .num_transactions = c.num_transactions,
       .num_items = c.num_items, .item_presence = c.presence});
  ExpectedSupportParams params;
  params.min_esup = c.threshold;

  std::vector<MiningResult> results;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto miner = CreateExpectedSupportMiner(algo);
    auto r = miner->Mine(db, params);
    ASSERT_TRUE(r.ok()) << ToString(algo);
    results.push_back(std::move(r).value());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size())
        << "algorithm " << i << " disagrees on result count";
    for (const FrequentItemset& fi : results[0].itemsets()) {
      const FrequentItemset* hit = results[i].Find(fi.itemset);
      ASSERT_NE(hit, nullptr) << fi.itemset.ToString();
      EXPECT_NEAR(hit->expected_support, fi.expected_support, 1e-8);
      EXPECT_NEAR(hit->variance, fi.variance, 1e-8);
    }
  }
}

TEST_P(CrossAlgorithmTest, ExactProbabilisticMinersAgree) {
  const Case c = GetParam();
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = c.seed + 500, .num_transactions = c.num_transactions,
       .num_items = c.num_items, .item_presence = c.presence});
  ProbabilisticParams params;
  params.min_sup = c.threshold;
  params.pft = c.pft;

  std::vector<MiningResult> results;
  for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
    auto miner = CreateProbabilisticMiner(algo);
    auto r = miner->Mine(db, params);
    ASSERT_TRUE(r.ok()) << ToString(algo);
    results.push_back(std::move(r).value());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (const FrequentItemset& fi : results[0].itemsets()) {
      const FrequentItemset* hit = results[i].Find(fi.itemset);
      ASSERT_NE(hit, nullptr) << fi.itemset.ToString();
      EXPECT_NEAR(*hit->frequent_probability, *fi.frequent_probability, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CrossAlgorithmTest,
    ::testing::Values(Case{101, 20, 8, 0.5, 0.2, 0.5},
                      Case{102, 30, 6, 0.6, 0.3, 0.9},
                      Case{103, 15, 10, 0.4, 0.1, 0.7},
                      Case{104, 40, 5, 0.8, 0.4, 0.8},
                      Case{105, 25, 7, 0.3, 0.15, 0.3},
                      Case{106, 50, 6, 0.7, 0.5, 0.95},
                      Case{107, 12, 9, 0.5, 0.25, 0.6},
                      Case{108, 35, 8, 0.45, 0.35, 0.85}));

// On a realistic (generator-produced, Gaussian-probability) database the
// expected-support miners must also agree — this exercises the dense
// path with hundreds of items rather than the toy universes above.
TEST(CrossAlgorithmRealisticTest, ExpectedMinersAgreeOnAccidentLike) {
  UncertainDatabase db = AssignGaussianProbabilities(
      MakeAccidentLike(300, 1), 0.5, 0.5, 2);
  ExpectedSupportParams params;
  params.min_esup = 0.2;
  auto ua = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori)->Mine(db, params);
  auto uh = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine)->Mine(db, params);
  auto ufp = CreateExpectedSupportMiner(ExpectedAlgorithm::kUFPGrowth)->Mine(db, params);
  ASSERT_TRUE(ua.ok());
  ASSERT_TRUE(uh.ok());
  ASSERT_TRUE(ufp.ok());
  EXPECT_GT(ua->size(), 0u);
  ASSERT_EQ(ua->size(), uh->size());
  ASSERT_EQ(ua->size(), ufp->size());
  for (const FrequentItemset& fi : ua->itemsets()) {
    const FrequentItemset* h1 = uh->Find(fi.itemset);
    const FrequentItemset* h2 = ufp->Find(fi.itemset);
    ASSERT_NE(h1, nullptr);
    ASSERT_NE(h2, nullptr);
    EXPECT_NEAR(h1->expected_support, fi.expected_support, 1e-7);
    EXPECT_NEAR(h2->expected_support, fi.expected_support, 1e-7);
  }
}

}  // namespace
}  // namespace ufim
