#include "core/miner_factory.h"

#include <gtest/gtest.h>

#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

TEST(FactoryTest, CreatesEveryExpectedMiner) {
  for (ExpectedAlgorithm algo :
       {ExpectedAlgorithm::kUApriori, ExpectedAlgorithm::kUFPGrowth,
        ExpectedAlgorithm::kUHMine, ExpectedAlgorithm::kBruteForce}) {
    auto miner = CreateExpectedSupportMiner(algo);
    ASSERT_NE(miner, nullptr);
    EXPECT_EQ(miner->name(), ToString(algo));
  }
}

TEST(FactoryTest, CreatesEveryProbabilisticMiner) {
  for (ProbabilisticAlgorithm algo :
       {ProbabilisticAlgorithm::kDPNB, ProbabilisticAlgorithm::kDPB,
        ProbabilisticAlgorithm::kDCNB, ProbabilisticAlgorithm::kDCB,
        ProbabilisticAlgorithm::kPDUApriori, ProbabilisticAlgorithm::kNDUApriori,
        ProbabilisticAlgorithm::kNDUHMine, ProbabilisticAlgorithm::kMCSampling,
        ProbabilisticAlgorithm::kBruteForce}) {
    auto miner = CreateProbabilisticMiner(algo);
    ASSERT_NE(miner, nullptr);
    EXPECT_EQ(miner->name(), ToString(algo));
  }
}

TEST(FactoryTest, ExactnessFlagsMatchTaxonomy) {
  EXPECT_TRUE(CreateProbabilisticMiner(ProbabilisticAlgorithm::kDPB)->is_exact());
  EXPECT_TRUE(CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCNB)->is_exact());
  EXPECT_FALSE(
      CreateProbabilisticMiner(ProbabilisticAlgorithm::kPDUApriori)->is_exact());
  EXPECT_FALSE(
      CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUApriori)->is_exact());
  EXPECT_FALSE(
      CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUHMine)->is_exact());
}

TEST(FactoryTest, EnumerationHelpersExcludeBruteForce) {
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    EXPECT_NE(algo, ExpectedAlgorithm::kBruteForce);
  }
  EXPECT_EQ(AllExpectedAlgorithms().size(), 3u);
  EXPECT_EQ(AllExactProbabilisticAlgorithms().size(), 4u);
  EXPECT_EQ(AllApproximateProbabilisticAlgorithms().size(), 3u);
}

TEST(FactoryTest, OptionsReachUApriori) {
  // Both configurations must produce identical results (pruning is an
  // optimization); this smoke-tests the options plumbing.
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.3;
  MinerOptions on;
  on.decremental_pruning = true;
  MinerOptions off;
  off.decremental_pruning = false;
  auto a = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori, on)
               ->Mine(db, params);
  auto b = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori, off)
               ->Mine(db, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ItemsetsOnly(), b->ItemsetsOnly());
}

}  // namespace
}  // namespace ufim
