// The prefilter's hard contract: --prefilter bounds may only change how
// much work is done, never what is mined. Every registered probabilistic
// production miner must produce results *bit-identical* (EXPECT_EQ on
// doubles, including frequent probabilities) to its prefilter-off run,
// at every thread count — and for the exact apriori family the
// reject/eval counters must still partition the candidate count.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeRandomDatabase;

void ExpectIdentical(const MiningResult& actual, const MiningResult& expect,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expect.size()) << label;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(actual[i].itemset, expect[i].itemset) << label;
    EXPECT_EQ(actual[i].expected_support, expect[i].expected_support)
        << label << " " << expect[i].itemset.ToString();
    EXPECT_EQ(actual[i].variance, expect[i].variance)
        << label << " " << expect[i].itemset.ToString();
    ASSERT_EQ(actual[i].frequent_probability.has_value(),
              expect[i].frequent_probability.has_value())
        << label;
    if (expect[i].frequent_probability.has_value()) {
      EXPECT_EQ(*actual[i].frequent_probability,
                *expect[i].frequent_probability)
          << label << " " << expect[i].itemset.ToString();
    }
  }
}

void CheckAllProbabilisticMiners(const UncertainDatabase& db,
                                 const ProbabilisticParams& params,
                                 const std::string& tag,
                                 std::uint64_t* total_rejected) {
  FlatView view(db);
  const MiningTask task = params;
  for (const std::string& name : MinerRegistry::Global().NamesOf(
           TaskFamily::kProbabilistic, /*production_only=*/true)) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      MinerOptions off;
      off.num_threads = threads;
      off.prefilter = PrefilterMode::kOff;
      MinerOptions bounds = off;
      bounds.prefilter = PrefilterMode::kBounds;

      auto baseline = MinerRegistry::Global().Create(name, off)->Mine(view, task);
      auto screened =
          MinerRegistry::Global().Create(name, bounds)->Mine(view, task);
      const std::string label =
          tag + "/" + name + "@" + std::to_string(threads);
      ASSERT_TRUE(baseline.ok()) << label;
      ASSERT_TRUE(screened.ok()) << label;
      ExpectIdentical(screened.value(), baseline.value(), label);

      const MiningCounters& sc = screened->counters();
      EXPECT_EQ(sc.candidates_generated,
                baseline->counters().candidates_generated)
          << label;
      // The screened run never evaluates more tails than the baseline.
      EXPECT_LE(sc.exact_tail_evals, baseline->counters().exact_tail_evals)
          << label;
      // Exact-tail miners keep the partition invariant in both modes.
      if (name.rfind("DP", 0) == 0 || name.rfind("DC", 0) == 0) {
        EXPECT_EQ(sc.candidates_rejected_bound + sc.exact_tail_evals,
                  sc.candidates_generated)
            << label;
      }
      *total_rejected += sc.candidates_rejected_bound;
    }
  }
}

TEST(PrefilterEquivalenceTest, AllMinersDenseDatabase) {
  std::uint64_t rejected = 0;
  ProbabilisticParams params;
  params.min_sup = 0.3;
  params.pft = 0.7;
  CheckAllProbabilisticMiners(MakeRandomDatabase({.seed = 71,
                                                  .num_transactions = 90,
                                                  .num_items = 9,
                                                  .item_presence = 0.6}),
                              params, "dense", &rejected);
  // The cascade must actually fire somewhere, or this test proves nothing.
  EXPECT_GT(rejected, 0u);
}

TEST(PrefilterEquivalenceTest, AllMinersSparseLowProbDatabase) {
  std::uint64_t rejected = 0;
  ProbabilisticParams params;
  params.min_sup = 0.15;
  params.pft = 0.9;
  CheckAllProbabilisticMiners(MakeRandomDatabase({.seed = 72,
                                                  .num_transactions = 120,
                                                  .num_items = 12,
                                                  .item_presence = 0.35,
                                                  .min_prob = 0.05,
                                                  .max_prob = 0.6}),
                              params, "sparse", &rejected);
  EXPECT_GT(rejected, 0u);
}

TEST(PrefilterEquivalenceTest, NearThresholdBandStaysExact)
{
  // min_sup chosen so that many candidates sit close to msc, where the
  // cascade must stay undecided and defer to the exact tail: the regime
  // where an unsound bound would actually corrupt results.
  std::uint64_t rejected = 0;
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.5;
  CheckAllProbabilisticMiners(MakeRandomDatabase({.seed = 73,
                                                  .num_transactions = 80,
                                                  .num_items = 8,
                                                  .item_presence = 0.7,
                                                  .min_prob = 0.4,
                                                  .max_prob = 0.6}),
                              params, "near-threshold", &rejected);
}

}  // namespace
}  // namespace ufim
