// End-to-end checks of every algorithm against the paper's own running
// example (Table 1, Examples 1 and 2).
#include <gtest/gtest.h>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"

namespace ufim {
namespace {

TEST(PaperExampleTest, Example1AllExpectedMiners) {
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.5;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok()) << ToString(algo);
    ASSERT_EQ(result->size(), 2u) << ToString(algo);
    const FrequentItemset* a = result->Find(Itemset({kItemA}));
    const FrequentItemset* c = result->Find(Itemset({kItemC}));
    ASSERT_NE(a, nullptr) << ToString(algo);
    ASSERT_NE(c, nullptr) << ToString(algo);
    EXPECT_NEAR(a->expected_support, 2.1, 1e-9) << ToString(algo);
    EXPECT_NEAR(c->expected_support, 2.6, 1e-9) << ToString(algo);
  }
}

TEST(PaperExampleTest, Example2AllExactMiners) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok()) << ToString(algo);
    const FrequentItemset* a = result->Find(Itemset({kItemA}));
    ASSERT_NE(a, nullptr) << ToString(algo);
    ASSERT_TRUE(a->frequent_probability.has_value());
    EXPECT_NEAR(*a->frequent_probability, 0.8, 1e-9) << ToString(algo);
  }
}

TEST(PaperExampleTest, ChernoffDoesNotChangeTable1Results) {
  UncertainDatabase db = MakePaperTable1();
  ProbabilisticParams params;
  params.min_sup = 0.5;
  params.pft = 0.7;
  auto dpb = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDPB)->Mine(db, params);
  auto dpnb = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDPNB)->Mine(db, params);
  ASSERT_TRUE(dpb.ok());
  ASSERT_TRUE(dpnb.ok());
  EXPECT_EQ(dpb->ItemsetsOnly(), dpnb->ItemsetsOnly());
}

TEST(PaperExampleTest, Table1DatabaseStatsSane) {
  UncertainDatabase db = MakePaperTable1();
  EXPECT_TRUE(db.Validate().ok());
  DatabaseStats stats = db.ComputeStats();
  EXPECT_EQ(stats.num_transactions, 4u);
  EXPECT_EQ(stats.num_items, 6u);
}

}  // namespace
}  // namespace ufim
