// Parallel-vs-sequential and kernel-vs-kernel equivalence: every
// registered algorithm must produce results *identical* to its scalar
// num_threads = 1 run at any thread count AND under any forced
// intersection kernel — not approximately equal. The parallel kernels
// promise deterministic partitioning (posting joins split by candidate,
// probe sweeps merged in fixed shard order, tail evaluations judged per
// candidate), and the batch join kernel promises a float evaluation
// order independent of how the set intersection was computed (scalar,
// galloping, or SIMD), so these tests compare doubles with EXPECT_EQ.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "algo/apriori_framework.h"
#include "algo/uh_struct.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/simd_intersect.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

using testing_util::MakeRandomDatabase;
using testing_util::RandomDbSpec;

constexpr std::size_t kThreadCounts[] = {2, 8};

constexpr IntersectKernel kKernels[] = {
    IntersectKernel::kScalar, IntersectKernel::kGallop,
    IntersectKernel::kSimd};

/// Forces a kernel for one scope and restores the heuristic on exit.
struct ScopedKernel {
  explicit ScopedKernel(IntersectKernel k) { SetIntersectKernel(k); }
  ~ScopedKernel() { SetIntersectKernel(IntersectKernel::kAuto); }
};

MiningTask TaskFor(TaskFamily family) {
  switch (family) {
    case TaskFamily::kExpectedSupport: {
      ExpectedSupportParams params;
      params.min_esup = 0.12;
      return params;
    }
    case TaskFamily::kProbabilistic: {
      ProbabilisticParams params;
      params.min_sup = 0.25;
      params.pft = 0.6;
      return params;
    }
    case TaskFamily::kTopK: {
      TopKParams params;
      params.k = 12;
      return params;
    }
  }
  return ExpectedSupportParams{};
}

void ExpectIdentical(const MiningResult& actual, const MiningResult& expect,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expect.size()) << label;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(actual[i].itemset, expect[i].itemset) << label;
    EXPECT_EQ(actual[i].expected_support, expect[i].expected_support)
        << label << " " << expect[i].itemset.ToString();
    EXPECT_EQ(actual[i].variance, expect[i].variance)
        << label << " " << expect[i].itemset.ToString();
    ASSERT_EQ(actual[i].frequent_probability.has_value(),
              expect[i].frequent_probability.has_value())
        << label;
    if (expect[i].frequent_probability.has_value()) {
      EXPECT_EQ(*actual[i].frequent_probability,
                *expect[i].frequent_probability)
          << label << " " << expect[i].itemset.ToString();
    }
  }
}

/// Runs every registered algorithm (production and oracle) on `db`
/// across {scalar, gallop, simd} × {1, 2, 8 threads} and requires
/// results bit-identical to the scalar single-thread run — including
/// identical work counters, since neither the parallel paths nor the
/// intersection kernels may change what is evaluated, only how.
void CheckAllMiners(const UncertainDatabase& db, const std::string& tag) {
  FlatView view(db);
  for (const std::string& name : MinerRegistry::Global().Names()) {
    const MinerEntry* entry = MinerRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr);
    const MiningTask task = TaskFor(entry->family);

    Result<MiningResult> baseline = Status::Internal("not run");
    {
      ScopedKernel forced(IntersectKernel::kScalar);
      MinerOptions baseline_options;
      baseline_options.num_threads = 1;
      baseline = MinerRegistry::Global()
                     .Create(name, baseline_options)
                     ->Mine(view, task);
    }
    ASSERT_TRUE(baseline.ok()) << name << ": " << baseline.status().ToString();

    for (const IntersectKernel kernel : kKernels) {
      ScopedKernel forced(kernel);
      for (std::size_t threads : {std::size_t{1}, kThreadCounts[0],
                                  kThreadCounts[1]}) {
        if (kernel == IntersectKernel::kScalar && threads == 1) continue;
        MinerOptions options;
        options.num_threads = threads;
        auto run =
            MinerRegistry::Global().Create(name, options)->Mine(view, task);
        ASSERT_TRUE(run.ok()) << name;
        const std::string label = tag + "/" + name + "@" +
                                  std::to_string(threads) + "/" +
                                  IntersectKernelName(kernel);
        ExpectIdentical(run.value(), baseline.value(), label);
        EXPECT_EQ(run->counters().candidates_generated,
                  baseline->counters().candidates_generated)
            << label;
        EXPECT_EQ(run->counters().candidates_rejected_bound,
                  baseline->counters().candidates_rejected_bound)
            << label;
        EXPECT_EQ(run->counters().exact_tail_evals,
                  baseline->counters().exact_tail_evals)
            << label;
      }
    }
  }
}

TEST(ParallelEquivalenceTest, AllMinersOnDenseRandomDatabase) {
  CheckAllMiners(MakeRandomDatabase({.seed = 51,
                                     .num_transactions = 60,
                                     .num_items = 9,
                                     .item_presence = 0.6}),
                 "dense");
}

TEST(ParallelEquivalenceTest, AllMinersOnSparseRandomDatabase) {
  CheckAllMiners(MakeRandomDatabase({.seed = 52,
                                     .num_transactions = 90,
                                     .num_items = 14,
                                     .item_presence = 0.25}),
                 "sparse");
}

TEST(ParallelEquivalenceTest, AllMinersOnLowProbabilityDatabase) {
  CheckAllMiners(MakeRandomDatabase({.seed = 53,
                                     .num_transactions = 70,
                                     .num_items = 10,
                                     .item_presence = 0.5,
                                     .min_prob = 0.05,
                                     .max_prob = 0.4}),
                 "low-prob");
}

/// The pattern-growth miners (UFP-growth, UH-Mine, NDUH-Mine) mine
/// task-parallel over top-level header ranks since PR 4. The generic
/// matrix above already covers them on small databases; this test works
/// them harder — more transactions, more items, a threshold low enough
/// for several projection levels — so the per-rank merge and the
/// task-local scratch are exercised with real recursion depth.
TEST(ParallelEquivalenceTest, PatternGrowthMinersDeepRecursion) {
  const UncertainDatabase db =
      MakeRandomDatabase({.seed = 57,
                          .num_transactions = 220,
                          .num_items = 18,
                          .item_presence = 0.45,
                          .min_prob = 0.3,
                          .max_prob = 1.0});
  FlatView view(db);
  struct Case {
    const char* name;
    MiningTask task;
  };
  ExpectedSupportParams esup_params;
  esup_params.min_esup = 0.04;  // deep: many frequent itemsets
  ProbabilisticParams prob_params;
  prob_params.min_sup = 0.08;
  prob_params.pft = 0.5;
  const Case cases[] = {
      {"UFP-growth", esup_params},
      {"UH-Mine", esup_params},
      {"NDUH-Mine", prob_params},
  };
  for (const Case& c : cases) {
    Result<MiningResult> baseline = Status::Internal("not run");
    {
      ScopedKernel forced(IntersectKernel::kScalar);
      MinerOptions options;
      options.num_threads = 1;
      baseline = MinerRegistry::Global().Create(c.name, options)->Mine(view, c.task);
    }
    ASSERT_TRUE(baseline.ok()) << c.name;
    ASSERT_GT(baseline->size(), 50u) << c.name << ": not deep enough to be "
                                     << "a meaningful parallel test";
    for (const IntersectKernel kernel : kKernels) {
      ScopedKernel forced(kernel);
      for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        MinerOptions options;
        options.num_threads = threads;
        auto run =
            MinerRegistry::Global().Create(c.name, options)->Mine(view, c.task);
        ASSERT_TRUE(run.ok()) << c.name;
        const std::string label = std::string("deep/") + c.name + "@" +
                                  std::to_string(threads) + "/" +
                                  IntersectKernelName(kernel);
        ExpectIdentical(run.value(), baseline.value(), label);
        EXPECT_EQ(run->counters().candidates_generated,
                  baseline->counters().candidates_generated)
            << label;
        EXPECT_EQ(run->counters().database_scans,
                  baseline->counters().database_scans)
            << label;
      }
    }
  }
}

/// A staircase database with one dominant chain: transaction t holds
/// items 0..(t mod kChainLen), so the least-frequent chain items carry
/// the deepest conditional subtrees — the one-whale-subtree shape that
/// serialized under PR 4's per-top-level-rank scheme and that the
/// recursive split (PR 7) decomposes. Probabilities cycle through a
/// small set of values so UFP-tree nodes share only sometimes, keeping
/// the conditional trees large.
UncertainDatabase MakeDominantChainDatabase(std::size_t num_transactions,
                                            std::size_t chain_len) {
  std::vector<Transaction> txns;
  txns.reserve(num_transactions);
  for (std::size_t t = 0; t < num_transactions; ++t) {
    std::vector<ProbItem> units;
    const std::size_t len = 1 + (t % chain_len);
    for (std::size_t i = 0; i < len; ++i) {
      ProbItem unit;
      unit.item = static_cast<ItemId>(i);
      unit.prob = 0.5 + 0.05 * static_cast<double>((t + 3 * i) % 8);
      units.push_back(unit);
    }
    txns.push_back(Transaction(std::move(units)));
  }
  return UncertainDatabase(std::move(txns));
}

/// The recursive split matrix of ISSUE 7: on the dominant-chain
/// database, every pattern-growth miner must be bit-identical to its
/// serial scalar baseline across {1,2,8} threads × {scalar, gallop,
/// simd} × split budgets {off (1), auto (0), aggressive (64)} — results
/// and counters both, since splitting may only change *where* a subtree
/// is mined, never what is evaluated.
TEST(ParallelEquivalenceTest, PatternGrowthSplitBudgetsOnDominantRank) {
  const UncertainDatabase db = MakeDominantChainDatabase(320, 16);
  FlatView view(db);
  struct Case {
    const char* name;
    MiningTask task;
  };
  ExpectedSupportParams esup_params;
  esup_params.min_esup = 0.05;
  ProbabilisticParams prob_params;
  prob_params.min_sup = 0.08;
  prob_params.pft = 0.5;
  const Case cases[] = {
      {"UFP-growth", esup_params},
      {"UH-Mine", esup_params},
      {"NDUH-Mine", prob_params},
  };
  constexpr std::size_t kBudgets[] = {1, 0, 64};  // off, auto, aggressive
  for (const Case& c : cases) {
    Result<MiningResult> baseline = Status::Internal("not run");
    {
      ScopedKernel forced(IntersectKernel::kScalar);
      MinerOptions options;
      options.num_threads = 1;
      options.split_budget = 1;  // serial, splitting off
      baseline =
          MinerRegistry::Global().Create(c.name, options)->Mine(view, c.task);
    }
    ASSERT_TRUE(baseline.ok()) << c.name;
    ASSERT_GT(baseline->size(), 50u)
        << c.name << ": chain database not deep enough to be meaningful";
    for (const IntersectKernel kernel : kKernels) {
      ScopedKernel forced(kernel);
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        for (std::size_t budget : kBudgets) {
          MinerOptions options;
          options.num_threads = threads;
          options.split_budget = budget;
          auto run =
              MinerRegistry::Global().Create(c.name, options)->Mine(view,
                                                                    c.task);
          ASSERT_TRUE(run.ok()) << c.name;
          const std::string label = std::string("dominant/") + c.name + "@" +
                                    std::to_string(threads) + "/b" +
                                    std::to_string(budget) + "/" +
                                    IntersectKernelName(kernel);
          ExpectIdentical(run.value(), baseline.value(), label);
          EXPECT_EQ(run->counters().candidates_generated,
                    baseline->counters().candidates_generated)
              << label;
          EXPECT_EQ(run->counters().database_scans,
                    baseline->counters().database_scans)
              << label;
        }
      }
    }
  }
}

/// The UH-Struct engine's mining scratch (moment accumulators + slot
/// map) is task-local since PR 4 and `Mine` is const: one engine may
/// serve concurrent Mine calls — each itself multi-threaded — without
/// interference. TSan runs this suite in CI.
TEST(ParallelEquivalenceTest, UHStructEngineScratchIsolationUnderConcurrency) {
  const UncertainDatabase db = MakeRandomDatabase(
      {.seed = 58, .num_transactions = 120, .num_items = 12});
  FlatView view(db);
  const double threshold = 0.1 * static_cast<double>(view.num_transactions());
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [threshold](double esup, double) {
    return esup >= threshold;
  };
  const UHStructEngine engine(view, std::move(hooks));

  MiningCounters baseline_counters;
  const std::vector<FrequentItemset> baseline =
      engine.Mine(&baseline_counters, /*num_threads=*/1);
  ASSERT_GT(baseline.size(), 10u);

  constexpr std::size_t kCallers = 4;
  std::vector<std::vector<FrequentItemset>> found(kCallers);
  std::vector<MiningCounters> counters(kCallers);
  {
    std::vector<std::thread> callers;
    for (std::size_t i = 0; i < kCallers; ++i) {
      callers.emplace_back([&, i] {
        // Odd callers mine multi-threaded, even ones sequentially —
        // both shapes must coexist on one shared engine.
        found[i] = engine.Mine(&counters[i], /*num_threads=*/i % 2 == 0 ? 1 : 8);
      });
    }
    for (std::thread& t : callers) t.join();
  }
  for (std::size_t i = 0; i < kCallers; ++i) {
    ASSERT_EQ(found[i].size(), baseline.size()) << "caller " << i;
    for (std::size_t j = 0; j < baseline.size(); ++j) {
      EXPECT_EQ(found[i][j].itemset, baseline[j].itemset);
      EXPECT_EQ(found[i][j].expected_support, baseline[j].expected_support);
      EXPECT_EQ(found[i][j].variance, baseline[j].variance);
    }
    EXPECT_EQ(counters[i].candidates_generated,
              baseline_counters.candidates_generated);
  }
}

TEST(ParallelEquivalenceTest, EvaluateCandidatesExactAcrossThreadCounts) {
  // Kernel-level check, both strategies: many candidates (the cost model
  // may sweep) and few (it joins). Decremental pruning off — with it on,
  // only abandoned infrequent candidates may legally differ.
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 54, .num_transactions = 600, .num_items = 12});
  FlatView view(db);
  std::vector<Itemset> frequent;
  for (ItemId i = 0; i < 12; ++i) frequent.push_back(Itemset{i});
  std::vector<Itemset> pairs = GenerateCandidates(frequent, nullptr);
  std::vector<Itemset> few(pairs.begin(), pairs.begin() + 5);

  for (const std::vector<Itemset>* cands : {&pairs, &few}) {
    std::vector<CandidateStats> baseline;
    {
      ScopedKernel forced(IntersectKernel::kScalar);
      baseline = EvaluateCandidates(view, *cands, /*collect_probs=*/true,
                                    /*decremental_threshold=*/-1.0,
                                    /*num_threads=*/1);
    }
    for (const IntersectKernel kernel : kKernels) {
      ScopedKernel forced(kernel);
      for (std::size_t threads : {std::size_t{1}, kThreadCounts[0],
                                  kThreadCounts[1]}) {
        auto run = EvaluateCandidates(view, *cands, /*collect_probs=*/true,
                                      /*decremental_threshold=*/-1.0, threads);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t c = 0; c < baseline.size(); ++c) {
          EXPECT_EQ(run[c].esup, baseline[c].esup)
              << (*cands)[c].ToString() << " @" << threads << "/"
              << IntersectKernelName(kernel);
          EXPECT_EQ(run[c].sq_sum, baseline[c].sq_sum);
          ASSERT_EQ(run[c].probs.size(), baseline[c].probs.size());
          for (std::size_t i = 0; i < baseline[c].probs.size(); ++i) {
            EXPECT_EQ(run[c].probs[i], baseline[c].probs[i]);
          }
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, JoinKernelsMatchRowScanBaseline) {
  // End-to-end parity of the batch join path against the retained
  // row-oriented baseline, under every forced kernel: same candidates,
  // near-equal moments (the two paths multiply members in different
  // orders, so equality is to rounding), identical match sets.
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 56, .num_transactions = 400, .num_items = 10});
  FlatView view(db);
  std::vector<Itemset> frequent;
  for (ItemId i = 0; i < 10; ++i) frequent.push_back(Itemset{i});
  std::vector<Itemset> pairs = GenerateCandidates(frequent, nullptr);
  std::vector<Itemset> triples = GenerateCandidates(pairs, nullptr);
  std::vector<Itemset> cands = pairs;
  cands.insert(cands.end(), triples.begin(), triples.end());

  const auto rows =
      EvaluateCandidatesRowScan(db, cands, /*collect_probs=*/true);
  for (const IntersectKernel kernel : kKernels) {
    ScopedKernel forced(kernel);
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const auto joined = EvaluateCandidates(view, cands,
                                             /*collect_probs=*/true,
                                             /*decremental_threshold=*/-1.0,
                                             threads);
      ASSERT_EQ(joined.size(), rows.size());
      for (std::size_t c = 0; c < rows.size(); ++c) {
        const std::string label = cands[c].ToString() + " @" +
                                  std::to_string(threads) + "/" +
                                  IntersectKernelName(kernel);
        EXPECT_NEAR(joined[c].esup, rows[c].esup, 1e-9) << label;
        EXPECT_NEAR(joined[c].sq_sum, rows[c].sq_sum, 1e-9) << label;
        ASSERT_EQ(joined[c].probs.size(), rows[c].probs.size()) << label;
        for (std::size_t i = 0; i < rows[c].probs.size(); ++i) {
          EXPECT_NEAR(joined[c].probs[i], rows[c].probs[i], 1e-12) << label;
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, DecrementalPruningKeepsFrequentOnesExact) {
  // With decremental pruning on, candidates that reach the threshold
  // must still be exact at every thread count (abandoned ones are
  // guaranteed infrequent and may carry partial sums).
  UncertainDatabase db = MakeRandomDatabase(
      {.seed = 55, .num_transactions = 800, .num_items = 10});
  FlatView view(db);
  std::vector<Itemset> frequent;
  for (ItemId i = 0; i < 10; ++i) frequent.push_back(Itemset{i});
  std::vector<Itemset> pairs = GenerateCandidates(frequent, nullptr);

  const double threshold = 0.2 * static_cast<double>(view.num_transactions());
  auto full = EvaluateCandidates(view, pairs, /*collect_probs=*/false,
                                 /*decremental_threshold=*/-1.0, 1);
  for (const IntersectKernel kernel : kKernels) {
    ScopedKernel forced(kernel);
    for (std::size_t threads : {1u, 2u, 8u}) {
      auto pruned = EvaluateCandidates(view, pairs, /*collect_probs=*/false,
                                       threshold, threads);
      ASSERT_EQ(pruned.size(), full.size());
      for (std::size_t c = 0; c < full.size(); ++c) {
        if (full[c].esup >= threshold) {
          EXPECT_EQ(pruned[c].esup, full[c].esup)
              << pairs[c].ToString() << " @" << threads << "/"
              << IntersectKernelName(kernel);
        } else {
          EXPECT_LE(pruned[c].esup, full[c].esup + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ufim
