// Semantics of the MiningCounters every experiment row reports: they are
// measurement instruments, so their meaning is pinned by tests.
#include <gtest/gtest.h>

#include "algo/exact_dc.h"
#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "testing/random_db.h"

namespace ufim {
namespace {

TEST(CountersTest, UAprioriScansOncePerLevelPlusItems) {
  // Paper Table 1 at min_esup 0.25: frequent itemsets reach size 2, so
  // scans = 1 (items) + 1 (pairs) + 1 (triple candidates, none survive).
  UncertainDatabase db = MakePaperTable1();
  ExpectedSupportParams params;
  params.min_esup = 0.25;
  auto result =
      CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori)->Mine(db, params);
  ASSERT_TRUE(result.ok());
  std::size_t max_size = 0;
  for (const FrequentItemset& fi : result->itemsets()) {
    max_size = std::max(max_size, fi.itemset.size());
  }
  EXPECT_GE(result->counters().database_scans, max_size);
  EXPECT_LE(result->counters().database_scans, max_size + 1);
}

TEST(CountersTest, CandidatesGeneratedAtLeastResults) {
  // Every result was once a candidate, for every miner.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 91, .num_transactions = 30, .num_items = 8});
  ExpectedSupportParams eparams;
  eparams.min_esup = 0.1;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto result = CreateExpectedSupportMiner(algo)->Mine(db, eparams);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->counters().candidates_generated, result->size())
        << ToString(algo);
  }
  ProbabilisticParams pparams;
  pparams.min_sup = 0.2;
  pparams.pft = 0.5;
  for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, pparams);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->counters().candidates_generated, result->size())
        << ToString(algo);
  }
}

TEST(CountersTest, ChernoffPlusExactEvalsCoverAllCandidates) {
  // For the bounded exact miners each candidate is either pruned by the
  // Chernoff filter or evaluated exactly — the two counters partition
  // the candidate count.
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 92, .num_transactions = 80, .num_items = 8});
  ProbabilisticParams params;
  params.min_sup = 0.3;
  params.pft = 0.9;
  for (ProbabilisticAlgorithm algo :
       {ProbabilisticAlgorithm::kDPB, ProbabilisticAlgorithm::kDCB}) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    const MiningCounters& c = result->counters();
    EXPECT_EQ(c.candidates_rejected_bound + c.exact_tail_evals,
              c.candidates_generated)
        << ToString(algo);
  }
}

TEST(CountersTest, UnboundedMinersEvaluateEverything) {
  UncertainDatabase db = testing_util::MakeRandomDatabase(
      {.seed = 93, .num_transactions = 50, .num_items = 7});
  ProbabilisticParams params;
  params.min_sup = 0.4;
  params.pft = 0.9;
  for (ProbabilisticAlgorithm algo :
       {ProbabilisticAlgorithm::kDPNB, ProbabilisticAlgorithm::kDCNB}) {
    auto result = CreateProbabilisticMiner(algo)->Mine(db, params);
    ASSERT_TRUE(result.ok());
    const MiningCounters& c = result->counters();
    EXPECT_EQ(c.candidates_rejected_bound, 0u) << ToString(algo);
    EXPECT_EQ(c.exact_tail_evals, c.candidates_generated)
        << ToString(algo);
  }
}

TEST(CountersTest, AprioriSubsetPruningCountsJoinsDropped) {
  // A database engineered so that {0,1} and {0,2} are frequent but {1,2}
  // is not: the join {0,1,2} must be subset-pruned and counted.
  std::vector<Transaction> txns;
  for (int i = 0; i < 10; ++i) {
    txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {1, i % 2 ? 1.0 : 0.9}});
    txns.emplace_back(std::vector<ProbItem>{{0, 1.0}, {2, i % 2 ? 0.9 : 1.0}});
  }
  UncertainDatabase db(std::move(txns));
  ExpectedSupportParams params;
  params.min_esup = 0.4;  // abs 8: {0}, {1}, {2}, {0,1}, {0,2} qualify
  auto result =
      CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori)->Mine(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find(Itemset({0, 1, 2})), nullptr);
  EXPECT_GE(result->counters().candidates_pruned_apriori, 1u);
}

TEST(FftThresholdInvarianceTest, MiningResultsIdenticalAcrossThresholds) {
  // The FFT threshold is a performance knob only: any value must yield
  // bit-comparable frequent probabilities.
  UncertainDatabase db = AssignGaussianProbabilities(
      MakeAccidentLike(400, 21), 0.5, 0.5, 22);
  ProbabilisticParams params;
  params.min_sup = 0.25;
  params.pft = 0.9;
  auto reference = ExactDC(false, 64).Mine(db, params);
  ASSERT_TRUE(reference.ok());
  for (std::size_t threshold : {1u, 16u, 1024u, 1u << 30}) {
    auto other = ExactDC(false, threshold).Mine(db, params);
    ASSERT_TRUE(other.ok());
    ASSERT_EQ(other->size(), reference->size()) << "threshold=" << threshold;
    for (const FrequentItemset& fi : reference->itemsets()) {
      const FrequentItemset* hit = other->Find(fi.itemset);
      ASSERT_NE(hit, nullptr);
      EXPECT_NEAR(*hit->frequent_probability, *fi.frequent_probability, 1e-9)
          << "threshold=" << threshold;
    }
  }
}

}  // namespace
}  // namespace ufim
