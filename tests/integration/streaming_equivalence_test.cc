// Streaming differential harness: randomized append/compact/mine
// schedules asserting that incremental mining over the streaming
// base+delta layout is bit-identical — results *and* work counters — to
// a full rebuild+mine at every step, under every intersection kernel at
// 1, 2 and 8 threads, and set-identical to the plain non-incremental
// miners. See tests/testing/stream_harness.h for exactly what one
// schedule checks.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/mining_result.h"
#include "core/simd_intersect.h"
#include "testing/stream_harness.h"

namespace ufim {
namespace {

using testing_util::RunStreamDifferential;
using testing_util::StreamScheduleSpec;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Forces a kernel for one scope and restores the heuristic on exit.
struct ScopedKernel {
  explicit ScopedKernel(IntersectKernel k) { SetIntersectKernel(k); }
  ~ScopedKernel() { SetIntersectKernel(IntersectKernel::kAuto); }
};

/// Schedule variety, derived from the seed alone: every third seed leans
/// on heavy item skew, every fourth raises the empty-transaction rate,
/// every fifth mines at a low threshold (deeper levels, more
/// candidates). Combined with the in-harness randomization (batch sizes,
/// forced compactions, compaction policy, universe growth) this spreads
/// the schedules across the regimes the delta path must survive.
StreamScheduleSpec SpecForSeed(std::uint64_t seed) {
  StreamScheduleSpec spec;
  spec.seed = seed;
  spec.batch.num_items = 8 + seed % 5;
  spec.batch.item_skew = (seed % 3 == 0) ? 2.0 : 0.9;
  spec.batch.empty_prob = (seed % 4 == 0) ? 0.3 : 0.05;
  spec.min_esup = (seed % 5 == 0) ? 0.1 : 0.25;
  return spec;
}

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<IntersectKernel> {};

// 72 seeded schedules per kernel instance (216 across the suite), each
// run — and checked — at 1, 2 and 8 threads, with the final streaming
// results additionally pinned bit-identical across the thread counts.
TEST_P(StreamingEquivalenceTest, RandomSchedulesMatchRebuildBitForBit) {
  ScopedKernel forced(GetParam());
  constexpr std::uint64_t kSeedsPerKernel = 72;
  const std::uint64_t base =
      1000 * (static_cast<std::uint64_t>(GetParam()) + 1);
  for (std::uint64_t seed = base; seed < base + kSeedsPerKernel; ++seed) {
    const StreamScheduleSpec spec = SpecForSeed(seed);
    MiningResult per_thread[std::size(kThreadCounts)];
    for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
      RunStreamDifferential(spec, "UApriori", kThreadCounts[t],
                            &per_thread[t]);
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (std::size_t t = 1; t < std::size(kThreadCounts); ++t) {
      ASSERT_EQ(per_thread[t].size(), per_thread[0].size())
          << "seed=" << seed << " threads=" << kThreadCounts[t];
      for (std::size_t i = 0; i < per_thread[0].size(); ++i) {
        EXPECT_EQ(per_thread[t][i].itemset, per_thread[0][i].itemset)
            << "seed=" << seed;
        EXPECT_EQ(per_thread[t][i].expected_support,
                  per_thread[0][i].expected_support)
            << "seed=" << seed;
        EXPECT_EQ(per_thread[t][i].variance, per_thread[0][i].variance)
            << "seed=" << seed;
      }
    }
  }
}

// The pattern-growth shard miners run the same differential on a
// smaller seed set: their projection/tree paths consume the streaming
// view through different accessors (rank projection, horizontal rows)
// than the apriori join path.
TEST_P(StreamingEquivalenceTest, PatternGrowthShardMiners) {
  ScopedKernel forced(GetParam());
  for (const char* algorithm : {"UFP-growth", "UH-Mine"}) {
    for (std::uint64_t seed = 7; seed < 19; ++seed) {
      for (const std::size_t threads : kThreadCounts) {
        RunStreamDifferential(SpecForSeed(seed), algorithm, threads);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, StreamingEquivalenceTest,
                         ::testing::Values(IntersectKernel::kScalar,
                                           IntersectKernel::kGallop,
                                           IntersectKernel::kSimd),
                         [](const auto& info) {
                           return std::string(
                               IntersectKernelName(info.param));
                         });

}  // namespace
}  // namespace ufim
