// Parallel execution layer on the QUEST scalability family: sequential
// vs 2/4/8-thread candidate counting, and sharded vs monolithic mining.
//
// Measured:
//   * EvaluateCandidates over the level-2 candidate set at 1/2/4/8
//     threads (both kernels inherit the thread count; the cost model's
//     strategy pick is thread-independent, so the same kernel is timed
//     at every count), and
//   * a full UApriori run through ShardedMiner at 1/2/4/8 shards with
//     matching thread counts, against the unsharded single-thread run.
//
// Results are recorded in BENCH_parallel.json. Speedups require real
// cores: on a single-core container every multi-thread configuration
// degenerates to ~1x (scheduling overhead included), which the recorded
// environment block makes explicit.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "algo/apriori_framework.h"
#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/sharded_miner.h"

namespace ufim::bench {
namespace {

constexpr double kMinEsupRatio = 0.005;

/// Frequent-item pairs: the level-2 candidate set UApriori would scan.
std::vector<Itemset> Level2Candidates(const FlatView& view) {
  const double threshold =
      kMinEsupRatio * static_cast<double>(view.num_transactions());
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<Itemset> frequent;
  for (const ItemStats& is : stats) {
    if (is.esup >= threshold) frequent.push_back(Itemset{is.item});
  }
  return GenerateCandidates(frequent, nullptr);
}

void BM_EvaluateCandidatesThreads(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  const FlatView view(db);
  const std::vector<Itemset> candidates = Level2Candidates(view);
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto stats = EvaluateCandidates(view, candidates, /*collect_probs=*/false,
                                    /*decremental_threshold=*/-1.0, threads);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_EvaluateCandidatesThreads)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{5000, 10000}, {1, 2, 4, 8}});

void BM_ShardedUApriori(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  const FlatView view(db);
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  const std::size_t threads = shards;  // one worker per shard
  MinerOptions options;
  options.num_threads = threads;
  ExpectedSupportParams params;
  params.min_esup = kMinEsupRatio;
  for (auto _ : state) {
    if (shards <= 1) {
      auto miner = MinerRegistry::Global().Create("UApriori");
      auto result = miner->Mine(view, MiningTask(params));
      benchmark::DoNotOptimize(result);
    } else {
      ShardedMiner miner(MinerRegistry::Global().Create("UApriori", options),
                         shards, threads);
      auto result = miner.Mine(view, MiningTask(params));
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedUApriori)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{10000}, {1, 2, 4, 8}});

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
