#include "bench_datasets.h"

#include "gen/benchmark_datasets.h"
#include "gen/probability.h"

namespace ufim::bench {

namespace {
constexpr std::uint64_t kSeed = 20120827;  // VLDB'12 conference date
}  // namespace

const UncertainDatabase& ConnectDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeConnectLike(n, kSeed), 0.95, 0.05, kSeed + 1));
  return db;
}

const UncertainDatabase& AccidentDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeAccidentLike(n, kSeed), 0.5, 0.5, kSeed + 2));
  return db;
}

const UncertainDatabase& KosarakDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeKosarakLike(n, kSeed), 0.5, 0.5, kSeed + 3));
  return db;
}

const UncertainDatabase& GazelleDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeGazelleLike(n, kSeed), 0.95, 0.05, kSeed + 4));
  return db;
}

UncertainDatabase QuestDb(std::size_t n) {
  auto det = MakeQuestT25I15(n, kSeed);
  // The fixed configuration is valid by construction; an error here is a
  // programming bug, so fail loudly via empty database + stderr.
  if (!det.ok()) {
    std::fprintf(stderr, "QuestDb: %s\n", det.status().ToString().c_str());
    return UncertainDatabase();
  }
  return AssignGaussianProbabilities(*det, 0.9, 0.1, kSeed + 5);
}

UncertainDatabase ZipfDenseDb(double skew, std::size_t n) {
  return AssignZipfProbabilities(MakeConnectLike(n, kSeed), skew, kSeed + 6);
}

}  // namespace ufim::bench
