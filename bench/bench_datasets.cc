#include "bench_datasets.h"

#include "gen/benchmark_datasets.h"
#include "gen/probability.h"

namespace ufim::bench {

namespace {
constexpr std::uint64_t kSeed = 20120827;  // VLDB'12 conference date
}  // namespace

const UncertainDatabase& ConnectDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeConnectLike(n, kSeed), 0.95, 0.05, kSeed + 1));
  return db;
}

const UncertainDatabase& AccidentDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeAccidentLike(n, kSeed), 0.5, 0.5, kSeed + 2));
  return db;
}

const UncertainDatabase& KosarakDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeKosarakLike(n, kSeed), 0.5, 0.5, kSeed + 3));
  return db;
}

const UncertainDatabase& GazelleDb(std::size_t n) {
  static const UncertainDatabase& db = *new UncertainDatabase(
      AssignGaussianProbabilities(MakeGazelleLike(n, kSeed), 0.95, 0.05, kSeed + 4));
  return db;
}

UncertainDatabase QuestDb(std::size_t n) {
  auto det = MakeQuestT25I15(n, kSeed);
  // The fixed configuration is valid by construction; an error here is a
  // programming bug, so fail loudly via empty database + stderr.
  if (!det.ok()) {
    std::fprintf(stderr, "QuestDb: %s\n", det.status().ToString().c_str());
    return UncertainDatabase();
  }
  return AssignGaussianProbabilities(*det, 0.9, 0.1, kSeed + 5);
}

UncertainDatabase ZipfDenseDb(double skew, std::size_t n) {
  return AssignZipfProbabilities(MakeConnectLike(n, kSeed), skew, kSeed + 6);
}

const UncertainDatabase& DominantChainDb(std::size_t n, std::size_t chain_len) {
  static const UncertainDatabase& db = *new UncertainDatabase([](
      std::size_t num, std::size_t len) {
    std::vector<Transaction> txns;
    txns.reserve(num);
    for (std::size_t t = 0; t < num; ++t) {
      std::vector<ProbItem> units;
      const std::size_t m = 1 + (t % len);
      units.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        ProbItem unit;
        unit.item = static_cast<ItemId>(i);
        unit.prob = 0.55 + 0.05 * static_cast<double>((t + 3 * i) % 8);
        units.push_back(unit);
      }
      txns.push_back(Transaction(std::move(units)));
    }
    return txns;
  }(n, chain_len));
  return db;
}

}  // namespace ufim::bench
