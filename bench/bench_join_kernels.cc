// Posting-intersection kernel sweep: scalar vs galloping vs SIMD on
// synthetic sorted tid lists across length skew and match density, plus
// the end-to-end batch join (EvaluateCandidates posting path) on QUEST
// under each forced kernel.
//
//   BM_Intersect/<skew>/<density%>/<kernel> — intersect a 4096-element
//     list against one skew× longer; density% of the short list matches.
//   BM_JoinCandidatesKernel/<n>/<kernel> — level-2 candidate counting.
//
// Results are recorded in BENCH_simd.json together with the host CPU
// features (the dispatcher's auto pick depends on them).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "algo/apriori_framework.h"
#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/simd_intersect.h"

namespace ufim::bench {
namespace {

constexpr IntersectKernel kKernelOf[] = {
    IntersectKernel::kScalar, IntersectKernel::kGallop, IntersectKernel::kSimd};

/// Strictly ascending lists: `b` has skew × kShortLen elements; a
/// `density`-fraction of `a`'s elements are drawn from `b`, the rest
/// fall in the gaps. Deterministic per (skew, density).
constexpr std::size_t kShortLen = 4096;

struct IntersectInput {
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
};

IntersectInput MakeInput(std::size_t skew, unsigned density_pct) {
  IntersectInput in;
  const std::size_t nb = kShortLen * skew;
  std::mt19937 rng(977u * static_cast<unsigned>(skew) + density_pct);
  in.b.reserve(nb);
  // b = even values with random stride, so odd values are guaranteed
  // non-members for the miss part of a.
  std::uint32_t cur = 2;
  for (std::size_t i = 0; i < nb; ++i) {
    in.b.push_back(cur);
    cur += 2 + 2 * (rng() % 4);
  }
  in.a.reserve(kShortLen);
  const std::size_t stride = nb / kShortLen;
  for (std::size_t i = 0; i < kShortLen; ++i) {
    const std::uint32_t member = in.b[i * stride + rng() % stride];
    if (rng() % 100 < density_pct) {
      in.a.push_back(member);
    } else {
      in.a.push_back(member + 1);  // odd → never in b
    }
  }
  std::sort(in.a.begin(), in.a.end());
  in.a.erase(std::unique(in.a.begin(), in.a.end()), in.a.end());
  return in;
}

void BM_Intersect(benchmark::State& state) {
  const std::size_t skew = static_cast<std::size_t>(state.range(0));
  const unsigned density = static_cast<unsigned>(state.range(1));
  const IntersectKernel kernel = kKernelOf[state.range(2)];
  const IntersectInput in = MakeInput(skew, density);
  std::vector<std::uint32_t> out_a(in.a.size());
  std::vector<std::uint32_t> out_b(in.a.size());

  SetIntersectKernel(kernel);
  std::size_t matches = 0;
  for (auto _ : state) {
    matches = IntersectIndices(in.a.data(), in.a.size(), in.b.data(),
                               in.b.size(), out_a.data(), out_b.data());
    benchmark::DoNotOptimize(out_a.data());
    benchmark::DoNotOptimize(out_b.data());
  }
  SetIntersectKernel(IntersectKernel::kAuto);
  state.counters["short_len"] = static_cast<double>(in.a.size());
  state.counters["long_len"] = static_cast<double>(in.b.size());
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel(IntersectKernelName(kernel));
}
BENCHMARK(BM_Intersect)
    ->ArgsProduct({{1, 16, 256, 2048}, {10, 90}, {0, 1, 2}});

/// End-to-end: the batch posting-join path of EvaluateCandidates on the
/// QUEST level-2 candidates, forced onto each kernel (single thread, so
/// the delta is pure kernel).
void RunJoinCandidates(benchmark::State& state, const UncertainDatabase& db,
                       double min_esup_ratio, IntersectKernel kernel) {
  const FlatView view(db);
  const double threshold =
      min_esup_ratio * static_cast<double>(view.num_transactions());
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<Itemset> frequent;
  for (const ItemStats& is : stats) {
    if (is.esup >= threshold) frequent.push_back(Itemset{is.item});
  }
  std::vector<Itemset> candidates = GenerateCandidates(frequent, nullptr);
  // Keep the candidate set small enough that the cost model stays on the
  // posting-join path (a dense pair level would flip it to the probe
  // sweep, which no intersection kernel touches).
  if (candidates.size() > 2000) candidates.resize(2000);

  SetIntersectKernel(kernel);
  for (auto _ : state) {
    auto out = EvaluateCandidates(view, candidates, /*collect_probs=*/false,
                                  /*decremental_threshold=*/-1.0,
                                  /*num_threads=*/1);
    benchmark::DoNotOptimize(out);
  }
  SetIntersectKernel(IntersectKernel::kAuto);
  state.counters["candidates"] = static_cast<double>(candidates.size());
  state.SetLabel(IntersectKernelName(kernel));
}

/// Sparse workload: QUEST pair candidates — short, similar-length
/// postings, so the join is gather-bound and kernels should tie.
void BM_JoinCandidatesKernel(benchmark::State& state) {
  RunJoinCandidates(state, QuestDb(static_cast<std::size_t>(state.range(0))),
                    0.005, kKernelOf[state.range(1)]);
}
BENCHMARK(BM_JoinCandidatesKernel)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{5000}, {0, 1, 2}});

/// Dense workload: Connect-like pair candidates — long posting lists,
/// where the intersection kernel is the bottleneck.
void BM_JoinCandidatesDense(benchmark::State& state) {
  RunJoinCandidates(state, ConnectDb(static_cast<std::size_t>(state.range(0))),
                    0.25, kKernelOf[state.range(1)]);
}
BENCHMARK(BM_JoinCandidatesDense)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{2000}, {0, 1, 2}});

/// Skewed workload: Kosarak-like pair candidates — power-law item
/// popularity makes the driver/member length ratio the adversarial case
/// the galloping + blocked kernels exist for.
void BM_JoinCandidatesSkewed(benchmark::State& state) {
  RunJoinCandidates(state, KosarakDb(static_cast<std::size_t>(state.range(0))),
                    0.002, kKernelOf[state.range(1)]);
}
BENCHMARK(BM_JoinCandidatesSkewed)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{10000}, {0, 1, 2}});

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
