// Figure 5(e)-(h): the exact probabilistic miners vs pft on Accident-like
// and Kosarak-like at a fixed min_sup. Expected shape (paper §4.3): pft
// has little impact on time or memory (most frequent probabilities
// saturate near 1), DCB remains fastest, DPNB slowest.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kPfts[] = {0.1, 0.3, 0.5, 0.7, 0.9};

struct Sweep {
  const char* dataset;
  const UncertainDatabase& (*db)(std::size_t);
  std::size_t n;
  double min_sup;
};

void RegisterAll() {
  static const Sweep kSweeps[] = {
      {"Accident", &AccidentDb, 4000, 0.25},
      {"Kosarak", &KosarakDb, 6000, 0.1},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
      for (double pft : kPfts) {
        std::string name = std::string("fig5_pft/") + sweep.dataset + "/" +
                           std::string(ToString(algo)) +
                           "/pft=" + std::to_string(pft);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&db, algo, min_sup = sweep.min_sup, pft](benchmark::State& state) {
              RunProbabilisticCase(state, db, algo, min_sup, pft);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
