// Figure 6(k)-(l): approximate probabilistic miners under Zipf
// probabilities, skew 0.8 to 2.0, min_sup = 0.1, pft = 0.9. Expected
// shape: time/memory fall with skew; PDUApriori gradually becomes the
// fastest at high skew (paper §4.4).
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kSkews[] = {0.8, 1.2, 1.6, 2.0};
constexpr double kMinSup = 0.1;
constexpr double kPft = 0.9;

void RegisterAll() {
  for (double skew : kSkews) {
    auto* db = new UncertainDatabase(ZipfDenseDb(skew));
    for (ProbabilisticAlgorithm algo : AllApproximateProbabilisticAlgorithms()) {
      std::string name = std::string("fig6_zipf/") + std::string(ToString(algo)) +
                         "/skew=" + std::to_string(skew);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [db, algo](benchmark::State& state) {
            RunProbabilisticCase(state, *db, algo, kMinSup, kPft);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
