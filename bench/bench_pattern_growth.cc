// Parallel pattern growth: UFP-growth, UH-Mine and NDUH-Mine across
// worker-thread counts and recursive split budgets over prebuilt
// FlatViews.
//
// The miners farm out the top-level header ranks of their global
// structure (UFP-tree / UH-Struct) as dynamically-scheduled tasks, and
// since PR 7 recursively split dominant conditional subtrees into
// nested TaskGroup children on the work-stealing pool whenever a
// subtree's estimated work crosses the split-budget threshold
// (MinerOptions.split_budget: 0 = automatic, 1 = never split, larger =
// more aggressive). Outputs merge in fixed task-index order, so every
// configuration returns bit-identical results (enforced by
// integration_parallel_equivalence_test; this bench only times it).
//
// Benchmark args are {threads, split_budget}. Each row records the
// thread count, split budget, the host's hardware_concurrency and the
// active intersection kernel so that JSON captured in a 1-CPU container
// (see BENCH_pattern_growth.json) is self-describing: with
// hardware_concurrency == 1 every multi-thread row measures scheduling
// overhead only, not speedup.
//
// Measured on Kosarak-like sparse data (UH-Mine's favorable regime,
// where pattern growth is competitive with the apriori family), on the
// Quest T25I15 family, and on a skewed one-dominant-rank chain dataset
// where a single top-level task owns nearly all the work — the
// straggler shape the recursive split exists to decompose.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>

#include "bench_datasets.h"
#include "common/run_context.h"
#include "core/flat_view.h"
#include "core/miner.h"
#include "core/miner_registry.h"
#include "core/simd_intersect.h"

namespace ufim::bench {
namespace {

void RunMiner(benchmark::State& state, const char* algorithm,
              const FlatView& view, const MiningTask& task) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t split_budget = static_cast<std::size_t>(state.range(1));
  MinerOptions options;
  options.num_threads = threads;
  options.split_budget = split_budget;
  const RunContext ctx = options.run_context;  // shared-state handle
  std::unique_ptr<Miner> miner =
      MinerRegistry::Global().Create(algorithm, options);
  std::size_t found = 0;
  for (auto _ : state) {
    auto result = miner->Mine(view, task);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    found = result->size();
    benchmark::DoNotOptimize(result);
  }
  // Checkpoint density, measured by one count-only run outside the timed
  // loop (counting mode pays for an extra atomic increment per poll, so
  // it never runs while the clock does). checkpoints * the fast-path
  // cost ceiling pinned by common_run_context_test bounds the
  // cancellation overhead of a row well under the 1% budget.
  ctx.AssertQuiescent();  // timed loop finished; no mine in flight
  ctx.ArmFaultAtCheckpoint(std::numeric_limits<std::uint64_t>::max(),
                           StatusCode::kCancelled);
  // A failure here is a broken configuration, not a missing counter —
  // surface it instead of silently omitting "checkpoints" (the old
  // `if (....ok())` swallowed the error; PR-9 ignored-Status audit).
  if (Result<MiningResult> counted = miner->Mine(view, task); counted.ok()) {
    state.counters["checkpoints"] = static_cast<double>(ctx.checkpoints());
  } else {
    state.SkipWithError(counted.status().ToString().c_str());
  }
  ctx.Reset();
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["split_budget"] = static_cast<double>(split_budget);
  state.counters["hardware_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["itemsets"] = static_cast<double>(found);
  state.SetLabel(IntersectKernelName(ForcedIntersectKernel()));
}

// {threads, split_budget} sweep: serial baseline, then each thread
// count with splitting off (1), automatic (0), and aggressive (64).
void ThreadBudgetSweep(benchmark::internal::Benchmark* b) {
  b->Unit(benchmark::kMillisecond);
  b->Args({1, 1});
  for (long threads : {2L, 4L, 8L}) {
    for (long budget : {1L, 0L, 64L}) {
      b->Args({threads, budget});
    }
  }
}

const FlatView& KosarakView() {
  static const FlatView* view = new FlatView(KosarakDb());
  return *view;
}

const FlatView& QuestView() {
  static const FlatView* view = new FlatView(QuestDb(4000));
  return *view;
}

const FlatView& DominantChainView() {
  static const FlatView* view = new FlatView(DominantChainDb());
  return *view;
}

MiningTask EsupTask(double min_esup) {
  ExpectedSupportParams params;
  params.min_esup = min_esup;
  return params;
}

MiningTask ProbTask(double min_sup, double pft) {
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = pft;
  return params;
}

void BM_UFPGrowthKosarak(benchmark::State& state) {
  RunMiner(state, "UFP-growth", KosarakView(), EsupTask(0.0025));
}
BENCHMARK(BM_UFPGrowthKosarak)->Apply(ThreadBudgetSweep);

void BM_UHMineKosarak(benchmark::State& state) {
  RunMiner(state, "UH-Mine", KosarakView(), EsupTask(0.0025));
}
BENCHMARK(BM_UHMineKosarak)->Apply(ThreadBudgetSweep);

void BM_NDUHMineKosarak(benchmark::State& state) {
  RunMiner(state, "NDUH-Mine", KosarakView(), ProbTask(0.005, 0.5));
}
BENCHMARK(BM_NDUHMineKosarak)->Apply(ThreadBudgetSweep);

void BM_UFPGrowthQuest(benchmark::State& state) {
  RunMiner(state, "UFP-growth", QuestView(), EsupTask(0.01));
}
BENCHMARK(BM_UFPGrowthQuest)->Apply(ThreadBudgetSweep);

void BM_UHMineQuest(benchmark::State& state) {
  RunMiner(state, "UH-Mine", QuestView(), EsupTask(0.01));
}
BENCHMARK(BM_UHMineQuest)->Apply(ThreadBudgetSweep);

void BM_UFPGrowthDominantChain(benchmark::State& state) {
  RunMiner(state, "UFP-growth", DominantChainView(), EsupTask(0.05));
}
BENCHMARK(BM_UFPGrowthDominantChain)->Apply(ThreadBudgetSweep);

void BM_UHMineDominantChain(benchmark::State& state) {
  RunMiner(state, "UH-Mine", DominantChainView(), EsupTask(0.05));
}
BENCHMARK(BM_UHMineDominantChain)->Apply(ThreadBudgetSweep);

void BM_NDUHMineDominantChain(benchmark::State& state) {
  RunMiner(state, "NDUH-Mine", DominantChainView(), ProbTask(0.08, 0.5));
}
BENCHMARK(BM_NDUHMineDominantChain)->Apply(ThreadBudgetSweep);

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
