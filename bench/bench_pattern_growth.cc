// Parallel pattern growth: UFP-growth, UH-Mine and NDUH-Mine at 1/2/4/8
// worker threads over the same prebuilt FlatView.
//
// The miners farm out the top-level header ranks of their global
// structure (UFP-tree / UH-Struct) as dynamically-scheduled tasks —
// per-rank subtree costs are heavily skewed, which is exactly what the
// dynamic claim order absorbs — and merge per-rank outputs in fixed rank
// order, so every configuration returns bit-identical results (enforced
// by integration_parallel_equivalence_test; this bench only times it).
//
// Measured on Kosarak-like sparse data (UH-Mine's favorable regime,
// where pattern growth is competitive with the apriori family) and on
// the Quest T25I15 family. Results are recorded in
// BENCH_pattern_growth.json. Speedups require real cores: on a 1-CPU
// container every multi-thread row measures scheduling overhead only,
// which the recorded environment block makes explicit.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>

#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/miner.h"
#include "core/miner_registry.h"

namespace ufim::bench {
namespace {

void RunMiner(benchmark::State& state, const char* algorithm,
              const FlatView& view, const MiningTask& task) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  MinerOptions options;
  options.num_threads = threads;
  std::unique_ptr<Miner> miner =
      MinerRegistry::Global().Create(algorithm, options);
  std::size_t found = 0;
  for (auto _ : state) {
    auto result = miner->Mine(view, task);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    found = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["itemsets"] = static_cast<double>(found);
}

const FlatView& KosarakView() {
  static const FlatView* view = new FlatView(KosarakDb());
  return *view;
}

const FlatView& QuestView() {
  static const FlatView* view = new FlatView(QuestDb(4000));
  return *view;
}

MiningTask EsupTask(double min_esup) {
  ExpectedSupportParams params;
  params.min_esup = min_esup;
  return params;
}

MiningTask ProbTask(double min_sup, double pft) {
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = pft;
  return params;
}

void BM_UFPGrowthKosarak(benchmark::State& state) {
  RunMiner(state, "UFP-growth", KosarakView(), EsupTask(0.0025));
}
BENCHMARK(BM_UFPGrowthKosarak)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_UHMineKosarak(benchmark::State& state) {
  RunMiner(state, "UH-Mine", KosarakView(), EsupTask(0.0025));
}
BENCHMARK(BM_UHMineKosarak)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_NDUHMineKosarak(benchmark::State& state) {
  RunMiner(state, "NDUH-Mine", KosarakView(), ProbTask(0.005, 0.5));
}
BENCHMARK(BM_NDUHMineKosarak)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_UFPGrowthQuest(benchmark::State& state) {
  RunMiner(state, "UFP-growth", QuestView(), EsupTask(0.01));
}
BENCHMARK(BM_UFPGrowthQuest)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_UHMineQuest(benchmark::State& state) {
  RunMiner(state, "UH-Mine", QuestView(), EsupTask(0.01));
}
BENCHMARK(BM_UHMineQuest)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
