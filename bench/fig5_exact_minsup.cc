// Figure 5(a)-(d): the exact probabilistic miners (DPNB, DPB, DCNB, DCB)
// vs min_sup on Accident-like (dense) and Kosarak-like (sparse), at
// pft = 0.9. Expected shape (paper §4.3): DCB fastest, DPNB slowest;
// Chernoff-pruned variants beat their unpruned twins; DP variants use
// less memory than DC variants; density is *not* the deciding factor.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kPft = 0.9;

struct Sweep {
  const char* dataset;
  const UncertainDatabase& (*db)(std::size_t);
  std::size_t n;
  std::vector<double> thresholds;
};

void RegisterAll() {
  // Thresholds sit below the top items' expected supports (mean unit
  // probability is 0.5, so item esup tops out near 0.45 N): this is the
  // regime where the exact computations dominate, as in the paper's
  // figures (their axes span the same "some itemsets qualify" region).
  static const Sweep kSweeps[] = {
      {"Accident", &AccidentDb, 4000, {0.4, 0.35, 0.3, 0.25, 0.2, 0.15}},
      {"Kosarak", &KosarakDb, 6000, {0.25, 0.2, 0.15, 0.1, 0.05, 0.02}},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
      for (double min_sup : sweep.thresholds) {
        std::string name = std::string("fig5/") + sweep.dataset + "/" +
                           std::string(ToString(algo)) +
                           "/min_sup=" + std::to_string(min_sup);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&db, algo, min_sup](benchmark::State& state) {
              RunProbabilisticCase(state, db, algo, min_sup, kPft);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
