// Figure 4(k)-(l): expected-support miners on a dense dataset whose
// probabilities follow a Zipf level distribution, sweeping the skew from
// 0.8 to 2.0 at min_esup = 0.1. Expected shape: time and memory fall as
// the skew rises (more zero-probability units, fewer frequent itemsets),
// with UH-Mine gradually overtaking UApriori.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kSkews[] = {0.8, 1.2, 1.6, 2.0};
constexpr double kMinEsup = 0.1;

void RegisterAll() {
  for (double skew : kSkews) {
    auto* db = new UncertainDatabase(ZipfDenseDb(skew));
    for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
      std::string name = std::string("fig4_zipf/") + std::string(ToString(algo)) +
                         "/skew=" + std::to_string(skew);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [db, algo](benchmark::State& state) {
            RunExpectedCase(state, *db, algo, kMinEsup);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
