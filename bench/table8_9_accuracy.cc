// Tables 8 and 9: precision and recall of the approximate probabilistic
// miners (PDUApriori, NDUApriori, NDUH-Mine) against the exact result
// (DCB), sweeping min_sup on Accident-like (Table 8) and Kosarak-like
// (Table 9) at pft = 0.9. Expected shape: precision and recall ~1
// throughout, with a few false positives at the lowest thresholds and
// the Normal-based miners at least as accurate as the Poisson-based one.
//
// Each benchmark row reports precision/recall as counters and, after all
// rows ran, main() prints the two tables in the paper's layout.
#include <cstdio>
#include <map>

#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"
#include "eval/metrics.h"

namespace ufim::bench {
namespace {

constexpr double kPft = 0.9;

struct Row {
  double precision[3];
  double recall[3];
};
// (dataset, min_sup) -> accuracy of the three approximate miners.
std::map<std::pair<std::string, double>, Row>& Results() {
  static auto* r = new std::map<std::pair<std::string, double>, Row>();
  return *r;
}

void AccuracyCase(benchmark::State& state, const UncertainDatabase& db,
                  const char* dataset, double min_sup) {
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = kPft;
  for (auto _ : state) {
    auto exact = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB)
                     ->Mine(db, params);
    if (!exact.ok()) {
      state.SkipWithError(exact.status().ToString().c_str());
      return;
    }
    const auto algos = AllApproximateProbabilisticAlgorithms();
    Row row{};
    for (std::size_t i = 0; i < algos.size(); ++i) {
      auto approx = CreateProbabilisticMiner(algos[i])->Mine(db, params);
      if (!approx.ok()) {
        state.SkipWithError(approx.status().ToString().c_str());
        return;
      }
      PrecisionRecall pr = ComputePrecisionRecall(*approx, *exact);
      row.precision[i] = pr.precision;
      row.recall[i] = pr.recall;
      state.counters[std::string(ToString(algos[i])) + "_P"] = pr.precision;
      state.counters[std::string(ToString(algos[i])) + "_R"] = pr.recall;
    }
    state.counters["exact_frequent"] = static_cast<double>(exact->size());
    Results()[{dataset, min_sup}] = row;
  }
}

void RegisterAll() {
  struct Sweep {
    const char* dataset;
    const UncertainDatabase& (*db)(std::size_t);
    std::size_t n;
    std::vector<double> thresholds;
  };
  static const Sweep kSweeps[] = {
      {"Accident", &AccidentDb, 1500, {0.2, 0.3, 0.4, 0.5, 0.6}},
      {"Kosarak", &KosarakDb, 5000, {0.0025, 0.005, 0.01, 0.05, 0.1}},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (double min_sup : sweep.thresholds) {
      std::string name = std::string("table8_9/") + sweep.dataset +
                         "/min_sup=" + std::to_string(min_sup);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&db, dataset = sweep.dataset, min_sup](benchmark::State& state) {
            AccuracyCase(state, db, dataset, min_sup);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void PrintTables() {
  for (const char* dataset : {"Accident", "Kosarak"}) {
    std::printf("\n%s (Table %s layout): min_sup | PDUApriori P R | "
                "NDUApriori P R | NDUH-Mine P R\n",
                dataset, std::string(dataset) == "Accident" ? "8" : "9");
    for (const auto& [key, row] : Results()) {
      if (key.first != dataset) continue;
      std::printf("  %-8.4g |", key.second);
      for (int i = 0; i < 3; ++i) {
        std::printf("  %.2f %.2f |", row.precision[i], row.recall[i]);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ufim::bench::PrintTables();
  benchmark::Shutdown();
  return 0;
}
