// FlatView columnar support counting vs. the row-scan baseline, on the
// QUEST scalability family (the acceptance gate for the columnar
// refactor: the posting-join path must not be slower than re-walking
// row-oriented transactions).
//
// Measured per dataset size:
//   * level-2 candidate evaluation (the hot loop of every Apriori-style
//     miner) through EvaluateCandidates over a prebuilt FlatView vs
//     EvaluateCandidatesRowScan over the database rows, and
//   * a full UApriori run through the unified Miner facade, view
//     prebuilt vs built inside the timed region (view construction
//     amortization).
#include <benchmark/benchmark.h>

#include <vector>

#include "algo/apriori_framework.h"
#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"

namespace ufim::bench {
namespace {

constexpr double kMinEsupRatio = 0.005;

/// Frequent-item pairs: the level-2 candidate set UApriori would scan.
std::vector<Itemset> Level2Candidates(const FlatView& view) {
  const double threshold =
      kMinEsupRatio * static_cast<double>(view.num_transactions());
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<Itemset> frequent;
  for (const ItemStats& is : stats) {
    if (is.esup >= threshold) frequent.push_back(Itemset{is.item});
  }
  return GenerateCandidates(frequent, nullptr);
}

void BM_EvaluateCandidatesFlatView(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  const FlatView view(db);
  const std::vector<Itemset> candidates = Level2Candidates(view);
  for (auto _ : state) {
    auto stats = EvaluateCandidates(view, candidates, /*collect_probs=*/false);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
}
BENCHMARK(BM_EvaluateCandidatesFlatView)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(5000)
    ->Arg(10000);

void BM_EvaluateCandidatesRowScan(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  const FlatView view(db);
  const std::vector<Itemset> candidates = Level2Candidates(view);
  for (auto _ : state) {
    auto stats =
        EvaluateCandidatesRowScan(db, candidates, /*collect_probs=*/false);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
}
BENCHMARK(BM_EvaluateCandidatesRowScan)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(5000)
    ->Arg(10000);

void BM_UAprioriOverPrebuiltView(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  const FlatView view(db);
  auto miner = MinerRegistry::Global().Create("UApriori");
  ExpectedSupportParams params;
  params.min_esup = kMinEsupRatio;
  for (auto _ : state) {
    auto result = miner->Mine(view, MiningTask(params));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UAprioriOverPrebuiltView)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(10000);

void BM_UAprioriWithViewBuild(benchmark::State& state) {
  const UncertainDatabase db = QuestDb(static_cast<std::size_t>(state.range(0)));
  auto miner = MinerRegistry::Global().Create("UApriori");
  ExpectedSupportParams params;
  params.min_esup = kMinEsupRatio;
  for (auto _ : state) {
    auto result = miner->Mine(db, MiningTask(params));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UAprioriWithViewBuild)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(10000);

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
