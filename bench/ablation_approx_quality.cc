// Ablation: result-level quality of the approximate probabilistic miners
// against the exact DP reference, run through the modern FlatView +
// MinerRegistry harness (§3.3 / Tables 8 and 9 at mining granularity
// rather than per-distribution — `bench/micro_distributions.cc` keeps
// the distributional distances). Each cell mines the same view with the
// exact DPNB and one approximation and reports set precision/recall plus
// the mean absolute frequent-probability error over the agreed itemsets:
// Normal-approximation error vanishes as the support vectors grow (CLT),
// which is why NDU tracks DP on the dense regimes, while sampling error
// is governed by the sample budget alone.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace ufim::bench {
namespace {

void QualityCase(benchmark::State& state, const FlatView& view,
                 const std::string& algorithm,
                 const ProbabilisticParams& params) {
  for (auto _ : state) {
    auto exact = RunRegisteredExperiment("DPNB", view, params);
    auto approx = RunRegisteredExperiment(algorithm, view, params);
    if (!exact.ok() || !approx.ok()) {
      state.SkipWithError((exact.ok() ? approx : exact).status().ToString().c_str());
      return;
    }
    const PrecisionRecall pr =
        ComputePrecisionRecall(approx->result, exact->result);
    state.counters["precision"] = pr.precision;
    state.counters["recall"] = pr.recall;
    state.counters["exact_frequent"] = static_cast<double>(pr.exact_size);
    state.counters["approx_frequent"] = static_cast<double>(pr.approx_size);
    // Probability accuracy over the intersection (both sides report a
    // frequent probability for these itemsets).
    double abs_err_sum = 0.0;
    std::size_t compared = 0;
    for (const FrequentItemset& fi : exact->result.itemsets()) {
      const FrequentItemset* hit = approx->result.Find(fi.itemset);
      if (hit == nullptr || !hit->frequent_probability.has_value() ||
          !fi.frequent_probability.has_value()) {
        continue;
      }
      abs_err_sum +=
          std::abs(*hit->frequent_probability - *fi.frequent_probability);
      ++compared;
    }
    state.counters["mean_abs_prob_err"] =
        compared == 0 ? 0.0 : abs_err_sum / static_cast<double>(compared);
  }
}

void RegisterAll() {
  struct Workload {
    const char* dataset;
    const UncertainDatabase& (*db)(std::size_t);
    std::size_t n;
    double min_sup;
    double pft;
  };
  // Sizes chosen so the DP reference stays tractable at Iterations(1);
  // the probability regimes mirror Table 7 (dense Gaussian(0.5, 0.5)
  // vs sparse low-probability assignments).
  static const Workload kWorkloads[] = {
      {"Accident", &AccidentDb, 1500, 0.25, 0.9},
      {"Kosarak", &KosarakDb, 4000, 0.002, 0.9},
      {"Gazelle", &GazelleDb, 2500, 0.01, 0.9},
  };
  static const char* kApprox[] = {"NDUApriori", "PDUApriori", "NDUH-Mine",
                                  "MCSampling"};
  for (const Workload& w : kWorkloads) {
    static std::vector<std::unique_ptr<FlatView>> views;
    views.push_back(std::make_unique<FlatView>(w.db(w.n)));
    const FlatView* view = views.back().get();
    for (const char* algo : kApprox) {
      std::string name = std::string("approx_quality/") + w.dataset + "/" +
                         algo + "_vs_DPNB";
      ProbabilisticParams params;
      params.min_sup = w.min_sup;
      params.pft = w.pft;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [view, algo, params](benchmark::State& state) {
            QualityCase(state, *view, algo, params);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
