// Ablation: distributional quality of the two approximations behind
// §3.3 — total-variation and Kolmogorov distance between the exact
// Poisson-binomial support distribution and its Normal / Poisson
// surrogates, as the number of trials N and the probability regime
// vary. This quantifies *why* Tables 8/9 look the way they do: Normal
// error vanishes with N (CLT); Poisson error stalls unless unit
// probabilities are small (Le Cam).
#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "prob/distance.h"
#include "prob/poisson_binomial.h"

namespace ufim::bench {
namespace {

void QualityCase(benchmark::State& state, std::size_t n, double lo, double hi,
                 const char* /*regime*/) {
  Rng rng(1234);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.Uniform(lo, hi);
  SupportMoments m = ComputeSupportMoments(probs);
  const std::size_t len = n + 1;
  for (auto _ : state) {
    auto exact = PoissonBinomialCappedPmfDP(probs, n);
    exact.resize(len, 0.0);
    auto normal = DiscretizedNormalPmf(m.mean, m.variance, len);
    auto poisson = PoissonPmf(m.mean, len);
    state.counters["tv_normal"] = TotalVariationDistance(exact, normal);
    state.counters["tv_poisson"] = TotalVariationDistance(exact, poisson);
    state.counters["ks_normal"] = KolmogorovDistance(exact, normal);
    state.counters["ks_poisson"] = KolmogorovDistance(exact, poisson);
  }
}

void RegisterAll() {
  struct Regime {
    const char* name;
    double lo, hi;
  };
  static const Regime kRegimes[] = {
      {"high_probs", 0.5, 1.0},   // Connect/Gazelle-style assignments
      {"mid_probs", 0.2, 0.8},    // Accident/Kosarak-style
      {"small_probs", 0.0, 0.05}, // Le Cam regime where Poisson shines
  };
  for (const Regime& regime : kRegimes) {
    for (std::size_t n : {100u, 400u, 1600u, 6400u}) {
      std::string name = std::string("approx_quality/") + regime.name +
                         "/n=" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [n, regime](benchmark::State& state) {
            QualityCase(state, n, regime.lo, regime.hi, regime.name);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
