// Figure 5(i)-(j): scalability of the exact probabilistic miners on the
// Quest T25I15D{n} family at min_sup = 0.1, pft = 0.9. Expected shape:
// linear-ish growth, with the DC variants' curves flatter than the DP
// variants' (O(N log N) vs O(N² min_sup) per itemset).
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr std::size_t kSizes[] = {500, 1000, 2000, 4000};
constexpr double kMinSup = 0.02;
constexpr double kPft = 0.9;

void RegisterAll() {
  for (std::size_t n : kSizes) {
    auto* db = new UncertainDatabase(QuestDb(n));
    for (ProbabilisticAlgorithm algo : AllExactProbabilisticAlgorithms()) {
      std::string name = std::string("fig5_scalability/") +
                         std::string(ToString(algo)) + "/n=" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [db, algo](benchmark::State& state) {
            RunProbabilisticCase(state, *db, algo, kMinSup, kPft);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
