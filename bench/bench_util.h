#ifndef UFIM_BENCH_BENCH_UTIL_H_
#define UFIM_BENCH_BENCH_UTIL_H_

#include <string>

#include <benchmark/benchmark.h>

#include "core/miner_factory.h"
#include "eval/experiment.h"

namespace ufim::bench {

/// Runs one expected-support mining configuration under google-benchmark,
/// reporting the figures' three series as counters: wall time (the bench
/// metric itself), peak heap bytes, and the number of frequent itemsets.
inline void RunExpectedCase(benchmark::State& state, const UncertainDatabase& db,
                            ExpectedAlgorithm algo, double min_esup) {
  auto miner = CreateExpectedSupportMiner(algo);
  ExpectedSupportParams params;
  params.min_esup = min_esup;
  for (auto _ : state) {
    auto m = RunExpectedExperiment(*miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
    state.counters["peak_MB"] = static_cast<double>(m->peak_bytes) / 1e6;
    state.counters["candidates"] =
        static_cast<double>(m->counters.candidates_generated);
  }
}

/// Probabilistic-miner counterpart; additionally reports the bound
/// screening and exact-evaluation counters (Figure 5 commentary).
inline void RunProbabilisticCase(benchmark::State& state,
                                 const UncertainDatabase& db,
                                 ProbabilisticAlgorithm algo, double min_sup,
                                 double pft) {
  auto miner = CreateProbabilisticMiner(algo);
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = pft;
  for (auto _ : state) {
    auto m = RunProbabilisticExperiment(*miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
    state.counters["peak_MB"] = static_cast<double>(m->peak_bytes) / 1e6;
    state.counters["rejected_bound"] =
        static_cast<double>(m->counters.candidates_rejected_bound);
    state.counters["accepted_bound"] =
        static_cast<double>(m->counters.candidates_accepted_bound);
    state.counters["exact_tail_evals"] =
        static_cast<double>(m->counters.exact_tail_evals);
  }
}

}  // namespace ufim::bench

#endif  // UFIM_BENCH_BENCH_UTIL_H_
