// Table 10: the winner-summary matrix. Runs every algorithm of each
// group on a representative dense configuration (Accident-like,
// min_sup/min_esup high) and a representative sparse configuration
// (Kosarak-like, low threshold), then prints which algorithm won on time
// and memory per (group, dataset) cell — the reproduction of the paper's
// check-mark table.
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

struct Outcome {
  std::string algorithm;
  double millis = 0.0;
  double peak_mb = 0.0;
};

struct Cell {
  std::string group;
  std::string dataset;
  std::vector<Outcome> outcomes;
};

std::vector<Cell>& Cells() {
  static auto* cells = new std::vector<Cell>();
  return *cells;
}

void RunExpectedGroup(const char* dataset, const UncertainDatabase& db,
                      double min_esup) {
  Cell cell{"expected-support", dataset, {}};
  ExpectedSupportParams params;
  params.min_esup = min_esup;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto miner = CreateExpectedSupportMiner(algo);
    auto m = RunExpectedExperiment(*miner, db, params);
    if (m.ok()) {
      cell.outcomes.push_back(Outcome{std::string(m->algorithm), m->millis,
                                      static_cast<double>(m->peak_bytes) / 1e6});
    }
  }
  Cells().push_back(std::move(cell));
}

void RunProbabilisticGroup(const char* group, const char* dataset,
                           const UncertainDatabase& db,
                           const std::vector<ProbabilisticAlgorithm>& algos,
                           double min_sup, double pft) {
  Cell cell{group, dataset, {}};
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = pft;
  for (ProbabilisticAlgorithm algo : algos) {
    auto miner = CreateProbabilisticMiner(algo);
    auto m = RunProbabilisticExperiment(*miner, db, params);
    if (m.ok()) {
      cell.outcomes.push_back(Outcome{std::string(m->algorithm), m->millis,
                                      static_cast<double>(m->peak_bytes) / 1e6});
    }
  }
  Cells().push_back(std::move(cell));
}

void Table10(benchmark::State& state) {
  for (auto _ : state) {
    Cells().clear();
    // Dense cells use Connect-like (density 0.33, mean prob 0.95) with a
    // high threshold; sparse cells use Kosarak-like with a low one — the
    // two regimes Table 10 contrasts. The exact group keeps Accident-like
    // for its dense cell (exact mining on Connect-like at high density
    // explodes combinatorially, as the paper's 1-hour timeouts show).
    const UncertainDatabase& dense = ConnectDb(2000);
    const UncertainDatabase& dense_exact = AccidentDb(1500);
    const UncertainDatabase& sparse = KosarakDb(10000);
    RunExpectedGroup("dense", dense, 0.5);
    RunExpectedGroup("sparse", sparse, 0.0005);
    RunProbabilisticGroup("exact-probabilistic", "dense", dense_exact,
                          AllExactProbabilisticAlgorithms(), 0.3, 0.9);
    RunProbabilisticGroup("exact-probabilistic", "sparse", sparse,
                          AllExactProbabilisticAlgorithms(), 0.05, 0.9);
    RunProbabilisticGroup("approx-probabilistic", "dense", dense,
                          AllApproximateProbabilisticAlgorithms(), 0.45, 0.9);
    RunProbabilisticGroup("approx-probabilistic", "sparse", sparse,
                          AllApproximateProbabilisticAlgorithms(), 0.0005, 0.9);
  }
}

void PrintSummary() {
  std::printf("\nTable 10 reproduction — winners per (group, dataset):\n");
  std::printf("%-22s %-8s %-14s %-14s\n", "group", "dataset", "time winner",
              "memory winner");
  for (const Cell& cell : Cells()) {
    if (cell.outcomes.empty()) continue;
    const Outcome* best_time = &cell.outcomes[0];
    const Outcome* best_mem = &cell.outcomes[0];
    for (const Outcome& o : cell.outcomes) {
      if (o.millis < best_time->millis) best_time = &o;
      if (o.peak_mb < best_mem->peak_mb) best_mem = &o;
    }
    std::printf("%-22s %-8s %-14s %-14s\n", cell.group.c_str(),
                cell.dataset.c_str(), best_time->algorithm.c_str(),
                best_mem->algorithm.c_str());
    for (const Outcome& o : cell.outcomes) {
      std::printf("    %-14s %10.1f ms %10.2f MB\n", o.algorithm.c_str(),
                  o.millis, o.peak_mb);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

BENCHMARK(ufim::bench::Table10)->Unit(benchmark::kMillisecond)->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ufim::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
