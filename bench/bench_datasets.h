#ifndef UFIM_BENCH_BENCH_DATASETS_H_
#define UFIM_BENCH_BENCH_DATASETS_H_

#include <cstddef>

#include "core/uncertain_database.h"

namespace ufim::bench {

/// Scaled instances of the paper's five benchmark datasets (Table 6) with
/// the Table 7 probability parameters. Transaction counts are reduced to
/// single-core laptop scale; EXPERIMENTS.md records the scaling. Each
/// function memoizes its default-size instance so that bench binaries pay
/// generation cost once.

/// Connect: dense, Gaussian(0.95, 0.05).
const UncertainDatabase& ConnectDb(std::size_t n = 2000);

/// Accident: dense-ish, Gaussian(0.5, 0.5).
const UncertainDatabase& AccidentDb(std::size_t n = 3000);

/// Kosarak: sparse, Gaussian(0.5, 0.5).
const UncertainDatabase& KosarakDb(std::size_t n = 10000);

/// Gazelle: very sparse, Gaussian(0.95, 0.05).
const UncertainDatabase& GazelleDb(std::size_t n = 5000);

/// T25I15D{n}: the Quest scalability family, Gaussian(0.9, 0.1).
/// Not memoized (callers sweep n); build once per size and reuse.
UncertainDatabase QuestDb(std::size_t n);

/// Dense dataset with Zipf-assigned probabilities at the given skew
/// (the Figure 4/5/6 (k),(l) workload).
UncertainDatabase ZipfDenseDb(double skew, std::size_t n = 1500);

/// Skewed one-dominant-rank dataset: transaction t holds the chain
/// items 0..(t mod chain_len), so the least-frequent chain items carry
/// the deepest conditional subtrees — under per-top-level-rank
/// parallelism one task mines nearly everything while the rest idle,
/// the straggler shape the recursive split budget (PR 7) decomposes.
/// Probabilities cycle a small value set deterministically.
const UncertainDatabase& DominantChainDb(std::size_t n = 6000,
                                         std::size_t chain_len = 24);

}  // namespace ufim::bench

#endif  // UFIM_BENCH_BENCH_DATASETS_H_
