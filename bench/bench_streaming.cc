// Streaming ingestion vs full rebuild: the cost of absorbing a batch of
// appended transactions and re-answering the mining question.
//
// Two layers are measured over the same Kosarak-like stream (2000-txn
// base + 1024 appended transactions, long-tail item skew):
//
//  * storage only — StreamingFlatView::Append (delta tail writes, plus
//    whatever compactions the policy triggers) against building a fresh
//    FlatView over the accumulated database per batch. This isolates the
//    O(batch units) vs O(total units) claim.
//  * append + mine — DeltaMiner::MineNext (suffix-shard mine + exact
//    pool recount over the streaming layout) against the rebuild
//    pipeline every batch: FlatView(db) from scratch + a full UApriori
//    run. This is the end-to-end amortized cost per appended
//    transaction that a serving system pays.
//
// A final sweep prices StreamingFlatView::Snapshot() — the frozen
// read handle concurrent miners hold — at growing delta sizes: the
// base arrays are shared by pointer, so the copy is O(delta +
// num_items), not O(database).
//
// Batch sizes sweep 1x/8x/64x (16, 128, 1024 transactions — i.e. 64,
// 8, 1 MineNext calls for the same 1024-txn stream), and a separate
// sweep varies the compaction ratio at a fixed batch size. min_esup is
// chosen so min_esup * batch stays above one expected occurrence even
// for the smallest batch (see the DeltaMiner batch-sizing note).
// Results are recorded in BENCH_streaming.json; on a 1-CPU container
// the comparison is still meaningful (both sides are single-threaded
// CPU work), unlike the thread-scaling benches.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "bench_datasets.h"
#include "core/delta_miner.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/streaming_flat_view.h"
#include "testing/random_db.h"

namespace ufim::bench {
namespace {

constexpr std::size_t kBaseTxns = 2000;
constexpr std::size_t kStreamTxns = 1024;
constexpr double kMinEsup = 0.1;

/// The shared stream: base database + appended tail, drawn once from
/// the same long-tail generator the differential harness uses.
struct StreamData {
  UncertainDatabase base;
  std::vector<Transaction> tail;
};

const StreamData& Stream() {
  static const StreamData* data = [] {
    auto* d = new StreamData();
    Rng rng(20260729);
    testing_util::StreamBatchSpec spec;
    spec.num_items = 64;
    spec.item_skew = 1.2;
    spec.avg_length = 6.0;
    d->base = UncertainDatabase(
        testing_util::MakeStreamBatch(rng, spec, kBaseTxns));
    d->tail = testing_util::MakeStreamBatch(rng, spec, kStreamTxns);
    return d;
  }();
  return *data;
}

std::span<const Transaction> Batch(std::size_t lo, std::size_t batch) {
  const std::vector<Transaction>& tail = Stream().tail;
  const std::size_t hi = std::min(lo + batch, tail.size());
  return {tail.data() + lo, hi - lo};
}

/// Storage only: absorb the stream through StreamingFlatView::Append.
void BM_AppendStorage(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    StreamingFlatView sv(Stream().base);
    sv.AssertSoleWriter();  // single-threaded bench: sole writer by construction
    for (std::size_t lo = 0; lo < kStreamTxns; lo += batch) {
      sv.Append(Batch(lo, batch));
    }
    benchmark::DoNotOptimize(sv.num_units());
    state.counters["compactions"] = static_cast<double>(sv.compactions());
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["us_per_txn"] = benchmark::Counter(
      static_cast<double>(kStreamTxns) * 1e-6, benchmark::Counter::kIsIterationInvariantRate |
                                                   benchmark::Counter::kInvert);
}

/// Storage only, rebuild baseline: a fresh FlatView per batch.
void BM_RebuildStorage(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    UncertainDatabase db = Stream().base;
    std::size_t units = 0;
    for (std::size_t lo = 0; lo < kStreamTxns; lo += batch) {
      db.Append(Batch(lo, batch));
      const FlatView view(db);
      units = view.num_units();
      benchmark::DoNotOptimize(units);
    }
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["us_per_txn"] = benchmark::Counter(
      static_cast<double>(kStreamTxns) * 1e-6, benchmark::Counter::kIsIterationInvariantRate |
                                                   benchmark::Counter::kInvert);
}

/// End to end: DeltaMiner::MineNext per batch over the streaming layout.
/// `state.range(1)` selects the compaction ratio in percent (so the
/// policy sweep reuses this body); negative means "never compact".
void BM_StreamingMineNext(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const double ratio = state.range(1) < 0
                           ? 1e18
                           : static_cast<double>(state.range(1)) / 100.0;
  ExpectedSupportParams params;
  params.min_esup = kMinEsup;
  CompactionPolicy policy;
  policy.max_delta_ratio = ratio;
  std::size_t frequent = 0;
  for (auto _ : state) {
    auto miner = MakeDeltaMiner("UApriori", params, MinerOptions{}, policy);
    if (!miner.ok()) {
      state.SkipWithError(miner.status().ToString().c_str());
      break;
    }
    auto seeded = miner.value()->MineNext(Stream().base.transactions());
    if (!seeded.ok()) {
      state.SkipWithError(seeded.status().ToString().c_str());
      break;
    }
    for (std::size_t lo = 0; lo < kStreamTxns; lo += batch) {
      auto result = miner.value()->MineNext(Batch(lo, batch));
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      frequent = result.value().size();
    }
    state.counters["compactions"] =
        static_cast<double>(miner.value()->view().compactions());
    state.counters["pool"] =
        static_cast<double>(miner.value()->candidate_pool_size());
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["itemsets"] = static_cast<double>(frequent);
}

/// Snapshot cost: freeze a handle (StreamingFlatView::Snapshot — base
/// pointer shared, delta + moment arrays deep-copied) at a controlled
/// delta size. `state.range(0)` is the number of appended transactions
/// left unfolded in the delta; the never-compact policy pins the delta
/// at exactly that size so the O(delta + num_items) claim is visible
/// across the sweep.
void BM_Snapshot(benchmark::State& state) {
  const std::size_t delta_txns = static_cast<std::size_t>(state.range(0));
  CompactionPolicy never;
  never.max_delta_ratio = 1e18;
  StreamingFlatView sv(Stream().base, never);
  sv.AssertSoleWriter();  // single-threaded bench: sole writer by construction
  sv.Append(Batch(0, delta_txns));
  std::size_t delta_units = sv.num_units();
  for (auto _ : state) {
    const StreamingSnapshot snap = sv.Snapshot();
    benchmark::DoNotOptimize(snap.view().num_units());
    delta_units = snap.view().num_units();
  }
  state.counters["delta_txns"] = static_cast<double>(delta_txns);
  benchmark::DoNotOptimize(delta_units);
}

/// End to end, rebuild baseline: accumulate, rebuild the columnar view,
/// full mine — once per batch.
void BM_RebuildMine(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  ExpectedSupportParams params;
  params.min_esup = kMinEsup;
  std::unique_ptr<Miner> miner = MinerRegistry::Global().Create("UApriori");
  std::size_t frequent = 0;
  for (auto _ : state) {
    UncertainDatabase db = Stream().base;
    for (std::size_t lo = 0; lo < kStreamTxns; lo += batch) {
      db.Append(Batch(lo, batch));
      auto result = miner->Mine(FlatView(db), MiningTask(params));
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      frequent = result.value().size();
    }
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["itemsets"] = static_cast<double>(frequent);
}

// Batch-size sweep: 1x / 8x / 64x at the default compaction ratio.
BENCHMARK(BM_AppendStorage)->Arg(16)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebuildStorage)->Arg(16)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamingMineNext)
    ->Args({16, 25})->Args({128, 25})->Args({1024, 25})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebuildMine)->Arg(16)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Compaction-policy sweep at a fixed 128-txn batch: always (0), the
// default (25%), lazy (100%), never (<0 sentinel).
BENCHMARK(BM_StreamingMineNext)
    ->Args({128, 0})->Args({128, 100})->Args({128, -1})
    ->Unit(benchmark::kMillisecond);

// Snapshot-handle cost at growing delta sizes (base arrays are shared,
// so this scales with the unfolded delta, not the full database).
BENCHMARK(BM_Snapshot)->Arg(0)->Arg(16)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ufim::bench

BENCHMARK_MAIN();
