// Figure 4(i)-(j): scalability of the expected-support miners on the
// Quest T25I15D{n} family, n from 2k to 32k (paper: 20k to 320k),
// min_esup = 0.1. Expected shape: linear time and memory in n, with
// UApriori's memory the flattest (no auxiliary structure).
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr std::size_t kSizes[] = {2000, 4000, 8000, 16000, 32000};
constexpr double kMinEsup = 0.02;

void RegisterAll() {
  for (std::size_t n : kSizes) {
    // Build each size once, share across the three algorithms.
    auto* db = new UncertainDatabase(QuestDb(n));
    for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
      std::string name = std::string("fig4_scalability/") +
                         std::string(ToString(algo)) + "/n=" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [db, algo](benchmark::State& state) {
            RunExpectedCase(state, *db, algo, kMinEsup);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
