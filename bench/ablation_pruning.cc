// Ablation: the two pruning techniques the paper's implementations use.
//  (1) UApriori's decremental pruning [17, 18] on/off across densities;
//  (2) DC's FFT threshold — where does switching the conquer step from
//      schoolbook to FFT convolution pay off at mining granularity?
// DESIGN.md lists both as explicit design choices.
#include <benchmark/benchmark.h>

#include "algo/exact_dc.h"
#include "algo/uapriori.h"
#include "bench_datasets.h"
#include "eval/experiment.h"

namespace ufim::bench {
namespace {

void DecrementalCase(benchmark::State& state, const UncertainDatabase& db,
                     bool decremental, double min_esup) {
  UApriori miner(decremental);
  ExpectedSupportParams params;
  params.min_esup = min_esup;
  for (auto _ : state) {
    auto m = RunExpectedExperiment(miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
  }
}

void FftThresholdCase(benchmark::State& state, const UncertainDatabase& db,
                      std::size_t fft_threshold, double min_sup) {
  ExactDC miner(/*use_chernoff_pruning=*/false, fft_threshold);
  ProbabilisticParams params;
  params.min_sup = min_sup;
  params.pft = 0.9;
  for (auto _ : state) {
    auto m = RunProbabilisticExperiment(miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
  }
}

void RegisterAll() {
  struct DecrementalSweep {
    const char* dataset;
    const UncertainDatabase& (*db)(std::size_t);
    std::size_t n;
    double min_esup;
  };
  static const DecrementalSweep kDecremental[] = {
      {"Connect", &ConnectDb, 2000, 0.5},
      {"Accident", &AccidentDb, 3000, 0.2},
      {"Kosarak", &KosarakDb, 10000, 0.0025},
  };
  for (const DecrementalSweep& sweep : kDecremental) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (bool on : {false, true}) {
      std::string name = std::string("ablation_decremental/") + sweep.dataset +
                         (on ? "/on" : "/off");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&db, on, min_esup = sweep.min_esup](benchmark::State& state) {
            DecrementalCase(state, db, on, min_esup);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  static const UncertainDatabase& accident = AccidentDb(3000);
  for (std::size_t threshold : {16u, 64u, 256u, 1024u, 1u << 30}) {
    std::string name = "ablation_fft_threshold/Accident/threshold=" +
                       (threshold == (1u << 30) ? std::string("never")
                                                : std::to_string(threshold));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [threshold](benchmark::State& state) {
          FftThresholdCase(state, accident, threshold, 0.25);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
