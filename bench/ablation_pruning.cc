// Ablation: the pruning techniques the paper's implementations use, run
// through the modern FlatView + MinerRegistry harness (the same
// RunRegisteredExperiment path the CLI takes, so every knob here is a
// production configuration):
//  (1) UApriori's decremental pruning [17, 18] on/off across densities;
//  (2) DC's FFT threshold — where does switching the conquer step from
//      schoolbook to FFT convolution pay off at mining granularity?
//  (3) the bound-cascade prefilter (--prefilter off/bounds) across
//      pft/minsup for the exact DP/DC miners and MCSampling — this sweep
//      is what BENCH_prefilter.json records (exact-tail-evals avoided
//      plus end-to-end speedup; results are identical by contract).
// DESIGN.md lists (1) and (2) as explicit design choices.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "eval/experiment.h"

namespace ufim::bench {
namespace {

const FlatView& AccidentView() {
  static const FlatView view(AccidentDb(3000));
  return view;
}

void RegisteredCase(benchmark::State& state, const FlatView& view,
                    const std::string& algorithm, const MiningTask& task,
                    const MinerOptions& options) {
  for (auto _ : state) {
    auto m = RunRegisteredExperiment(algorithm, view, task, options);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
    state.counters["rejected_bound"] =
        static_cast<double>(m->counters.candidates_rejected_bound);
    state.counters["accepted_bound"] =
        static_cast<double>(m->counters.candidates_accepted_bound);
    state.counters["exact_tail_evals"] =
        static_cast<double>(m->counters.exact_tail_evals);
  }
}

void RegisterAll() {
  struct DecrementalSweep {
    const char* dataset;
    const UncertainDatabase& (*db)(std::size_t);
    std::size_t n;
    double min_esup;
  };
  static const DecrementalSweep kDecremental[] = {
      {"Connect", &ConnectDb, 2000, 0.5},
      {"Accident", &AccidentDb, 3000, 0.2},
      {"Kosarak", &KosarakDb, 10000, 0.0025},
  };
  for (const DecrementalSweep& sweep : kDecremental) {
    // Build each view once, outside the timed region (the harness's
    // standing rule: sweeps share one view per dataset).
    static std::vector<std::unique_ptr<FlatView>> views;
    views.push_back(std::make_unique<FlatView>(sweep.db(sweep.n)));
    const FlatView* view = views.back().get();
    for (bool on : {false, true}) {
      std::string name = std::string("ablation_decremental/") + sweep.dataset +
                         (on ? "/on" : "/off");
      ExpectedSupportParams params;
      params.min_esup = sweep.min_esup;
      MinerOptions options;
      options.decremental_pruning = on;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [view, params, options](benchmark::State& state) {
            RegisteredCase(state, *view, "UApriori", params, options);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  for (std::size_t threshold : {16u, 64u, 256u, 1024u, 1u << 30}) {
    std::string name = "ablation_fft_threshold/Accident/threshold=" +
                       (threshold == (1u << 30) ? std::string("never")
                                                : std::to_string(threshold));
    ProbabilisticParams params;
    params.min_sup = 0.25;
    params.pft = 0.9;
    MinerOptions options;
    options.dc_fft_threshold = threshold;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [params, options](benchmark::State& state) {
          RegisteredCase(state, AccidentView(), "DCNB", params, options);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  // The prefilter sweep: each (algorithm, min_sup, pft) cell runs with
  // the cascade off and on; the off/on pair shares every other knob, so
  // the wall-time ratio is the end-to-end speedup and the
  // exact_tail_evals ratio the work eliminated.
  static const char* kPrefilterAlgos[] = {"DPNB", "DCNB", "MCSampling"};
  for (const char* algo : kPrefilterAlgos) {
    for (double min_sup : {0.2, 0.3}) {
      for (double pft : {0.5, 0.9}) {
        for (PrefilterMode mode :
             {PrefilterMode::kOff, PrefilterMode::kBounds}) {
          std::string name = std::string("ablation_prefilter/Accident/") +
                             algo + "/min_sup=" + std::to_string(min_sup) +
                             "/pft=" + std::to_string(pft) + "/" +
                             std::string(PrefilterModeName(mode));
          ProbabilisticParams params;
          params.min_sup = min_sup;
          params.pft = pft;
          MinerOptions options;
          options.prefilter = mode;
          benchmark::RegisterBenchmark(
              name.c_str(),
              [algo, params, options](benchmark::State& state) {
                RegisteredCase(state, AccidentView(), algo, params, options);
              })
              ->Unit(benchmark::kMillisecond)
              ->Iterations(1);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
