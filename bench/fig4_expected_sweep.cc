// Figure 4(a)-(h): running time and memory of the expected-support-based
// miners (UApriori, UH-Mine, UFP-growth) vs min_esup on two dense
// (Connect-like, Accident-like) and two sparse (Kosarak-like,
// Gazelle-like) datasets. Each benchmark row is one point of the paper's
// curves; time is the bench metric, memory the peak_MB counter.
//
// Expected shape (paper §4.2): UApriori fastest on the dense datasets at
// high min_esup, UH-Mine fastest on the sparse datasets and at low
// thresholds, UFP-growth slowest and most memory-hungry throughout.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

struct Sweep {
  const char* dataset;
  const UncertainDatabase& (*db)(std::size_t);
  std::size_t n;
  std::vector<double> thresholds;
};

void RegisterAll() {
  static const Sweep kSweeps[] = {
      {"Connect", &ConnectDb, 2000, {0.9, 0.8, 0.7, 0.6, 0.5, 0.4}},
      {"Accident", &AccidentDb, 3000, {0.5, 0.4, 0.3, 0.2, 0.1}},
      {"Kosarak", &KosarakDb, 10000, {0.1, 0.05, 0.01, 0.005, 0.0025, 0.001}},
      {"Gazelle", &GazelleDb, 5000, {0.1, 0.01, 0.001, 0.0005}},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
      for (double min_esup : sweep.thresholds) {
        std::string name = std::string("fig4/") + sweep.dataset + "/" +
                           std::string(ToString(algo)) +
                           "/min_esup=" + std::to_string(min_esup);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&db, algo, min_esup](benchmark::State& state) {
              RunExpectedCase(state, db, algo, min_esup);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
