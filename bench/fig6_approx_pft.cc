// Figure 6(e)-(h): approximate probabilistic miners + DCB vs pft.
// Expected shape: pft has almost no effect on time or memory; the
// dataset's density decides the ranking (paper §4.4).
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kPfts[] = {0.1, 0.3, 0.5, 0.7, 0.9};

struct Sweep {
  const char* dataset;
  const UncertainDatabase& (*db)(std::size_t);
  std::size_t n;
  double min_sup;
};

void RegisterAll() {
  static const Sweep kSweeps[] = {
      {"Accident", &AccidentDb, 1500, 0.2},
      {"Kosarak", &KosarakDb, 5000, 0.01},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    std::vector<ProbabilisticAlgorithm> algos = {ProbabilisticAlgorithm::kDCB};
    for (ProbabilisticAlgorithm a : AllApproximateProbabilisticAlgorithms()) {
      algos.push_back(a);
    }
    for (ProbabilisticAlgorithm algo : algos) {
      for (double pft : kPfts) {
        std::string name = std::string("fig6_pft/") + sweep.dataset + "/" +
                           std::string(ToString(algo)) +
                           "/pft=" + std::to_string(pft);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&db, algo, min_sup = sweep.min_sup, pft](benchmark::State& state) {
              RunProbabilisticCase(state, db, algo, min_sup, pft);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
