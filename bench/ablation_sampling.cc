// Ablation: the sampling-based approximation (paper reference [11])
// against the moment-based ones — time vs accuracy as the per-candidate
// sample budget grows. Shows why the paper's study focuses on the
// moment methods: sampling needs thousands of worlds per candidate to
// match the accuracy the closed-form approximations get for one scan.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "core/miner_factory.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace ufim::bench {
namespace {

constexpr double kMinSup = 0.2;
constexpr double kPft = 0.9;

void SamplingCase(benchmark::State& state, std::size_t samples) {
  const UncertainDatabase& db = AccidentDb(2000);
  ProbabilisticParams params;
  params.min_sup = kMinSup;
  params.pft = kPft;
  // Exact reference for the accuracy counters (computed outside timing).
  static const MiningResult& exact = [] {
    ProbabilisticParams p;
    p.min_sup = kMinSup;
    p.pft = kPft;
    auto r = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB)
                 ->Mine(AccidentDb(2000), p);
    return *new MiningResult(std::move(r).value());
  }();

  MinerOptions options;
  options.mc_samples = samples;
  auto miner = CreateProbabilisticMiner(ProbabilisticAlgorithm::kMCSampling,
                                        options);
  for (auto _ : state) {
    auto m = RunProbabilisticExperiment(*miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    PrecisionRecall pr = ComputePrecisionRecall(m->result, exact);
    state.counters["precision"] = pr.precision;
    state.counters["recall"] = pr.recall;
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
  }
}

void MomentBaselineCase(benchmark::State& state, ProbabilisticAlgorithm algo) {
  const UncertainDatabase& db = AccidentDb(2000);
  ProbabilisticParams params;
  params.min_sup = kMinSup;
  params.pft = kPft;
  auto miner = CreateProbabilisticMiner(algo);
  for (auto _ : state) {
    auto m = RunProbabilisticExperiment(*miner, db, params);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    state.counters["frequent"] = static_cast<double>(m->num_frequent);
  }
}

void RegisterAll() {
  for (std::size_t samples : {64u, 256u, 1024u, 4096u, 16384u}) {
    std::string name =
        "ablation_sampling/MCSampling/samples=" + std::to_string(samples);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [samples](benchmark::State& state) {
                                   SamplingCase(state, samples);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  for (ProbabilisticAlgorithm algo : {ProbabilisticAlgorithm::kNDUApriori,
                                      ProbabilisticAlgorithm::kPDUApriori}) {
    std::string name =
        std::string("ablation_sampling/baseline/") + std::string(ToString(algo));
    benchmark::RegisterBenchmark(name.c_str(),
                                 [algo](benchmark::State& state) {
                                   MomentBaselineCase(state, algo);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
