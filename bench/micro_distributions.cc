// Table 4 ablation: per-itemset cost of determining the frequent
// probability — DP O(N·msc), DC O(N log N), Chernoff O(1) given the mean
// (O(N) with the scan). Also micro-benchmarks the FFT-vs-naive conquer
// crossover that justifies ExactDC's fft_threshold default.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "prob/chernoff.h"
#include "prob/convolution.h"
#include "prob/fft.h"
#include "prob/normal.h"
#include "prob/poisson.h"
#include "prob/poisson_binomial.h"

namespace ufim {
namespace {

std::vector<double> RandomProbs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.Uniform01();
  return probs;
}

void BM_TailDP(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t msc = n / 2;
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialTailDP(probs, msc));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TailDP)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_TailDC(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t msc = n / 2;
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialTailDC(probs, msc));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TailDC)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_TailDCNoFft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t msc = n / 2;
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PoissonBinomialTailDC(probs, msc, /*fft_threshold=*/1u << 30));
  }
}
BENCHMARK(BM_TailDCNoFft)->RangeMultiplier(4)->Range(64, 4096);

void BM_ChernoffTest(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    // O(N) scan for the mean + O(1) bound, the Table 4 cost model.
    SupportMoments m = ComputeSupportMoments(probs);
    benchmark::DoNotOptimize(ChernoffCertifiesInfrequent(m.mean, n / 2, 0.9));
  }
}
BENCHMARK(BM_ChernoffTest)->RangeMultiplier(4)->Range(64, 16384);

void BM_NormalApprox(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    SupportMoments m = ComputeSupportMoments(probs);
    benchmark::DoNotOptimize(
        NormalApproxFrequentProbability(m.mean, m.variance, n / 2));
  }
}
BENCHMARK(BM_NormalApprox)->RangeMultiplier(4)->Range(64, 16384);

void BM_PoissonApprox(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto probs = RandomProbs(n, 42);
  for (auto _ : state) {
    SupportMoments m = ComputeSupportMoments(probs);
    benchmark::DoNotOptimize(PoissonTail(n / 2, m.mean));
  }
}
BENCHMARK(BM_PoissonApprox)->RangeMultiplier(4)->Range(64, 16384);

void BM_FftConvolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomProbs(n, 1);
  const auto b = RandomProbs(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FftConvolve(a, b));
  }
}
BENCHMARK(BM_FftConvolve)->RangeMultiplier(4)->Range(16, 4096);

void BM_NaiveConvolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomProbs(n, 1);
  const auto b = RandomProbs(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveConvolve(a, b));
  }
}
BENCHMARK(BM_NaiveConvolve)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace ufim

BENCHMARK_MAIN();
