// Figure 6(a)-(d): the approximate probabilistic miners (PDUApriori,
// NDUApriori, NDUH-Mine) against the best exact miner (DCB), vs min_sup
// on Accident-like (dense) and Kosarak-like (sparse), pft = 0.9.
// Expected shape (paper §4.4): the Apriori-framework approximations win
// on the dense dataset, NDUH-Mine wins on the sparse one, DCB is the
// slowest and most memory-hungry throughout.
#include <benchmark/benchmark.h>

#include "bench_datasets.h"
#include "bench_util.h"

namespace ufim::bench {
namespace {

constexpr double kPft = 0.9;

struct Sweep {
  const char* dataset;
  const UncertainDatabase& (*db)(std::size_t);
  std::size_t n;
  std::vector<double> thresholds;
};

std::vector<ProbabilisticAlgorithm> Algorithms() {
  std::vector<ProbabilisticAlgorithm> algos = {ProbabilisticAlgorithm::kDCB};
  for (ProbabilisticAlgorithm a : AllApproximateProbabilisticAlgorithms()) {
    algos.push_back(a);
  }
  return algos;
}

void RegisterAll() {
  static const Sweep kSweeps[] = {
      {"Accident", &AccidentDb, 1500, {0.5, 0.4, 0.3, 0.2, 0.1, 0.05}},
      {"Kosarak", &KosarakDb, 5000, {0.1, 0.05, 0.01, 0.005, 0.0025, 0.001}},
  };
  for (const Sweep& sweep : kSweeps) {
    const UncertainDatabase& db = sweep.db(sweep.n);
    for (ProbabilisticAlgorithm algo : Algorithms()) {
      for (double min_sup : sweep.thresholds) {
        std::string name = std::string("fig6/") + sweep.dataset + "/" +
                           std::string(ToString(algo)) +
                           "/min_sup=" + std::to_string(min_sup);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&db, algo, min_sup](benchmark::State& state) {
              RunProbabilisticCase(state, db, algo, min_sup, kPft);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace ufim::bench

int main(int argc, char** argv) {
  ufim::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
