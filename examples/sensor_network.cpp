// Sensor-network monitoring — the motivating application of the paper's
// introduction. Each transaction is one reading epoch; each item is an
// "event" reported by a sensor, with a probability reflecting the
// sensor's confidence (inherent sensor noise). The example mines which
// event combinations co-occur reliably, comparing an exact probabilistic
// miner against the cheap Normal approximation, and saves/loads the
// dataset via the text format.
//
//   $ ./sensor_network
#include <cstdio>

#include "common/rng.h"
#include "core/miner_factory.h"
#include "eval/metrics.h"
#include "io/dataset_io.h"

namespace {

// Simulates a deployment: `num_epochs` reading rounds over
// `num_event_types` event types. A hidden set of correlated event
// clusters (e.g. "temperature spike" + "humidity drop" during ventilation
// failure) fires together; sensors detect events with noisy confidence.
ufim::UncertainDatabase SimulateDeployment(std::size_t num_epochs,
                                           std::size_t num_event_types,
                                           std::uint64_t seed) {
  ufim::Rng rng(seed);
  // Three hidden clusters of co-occurring events.
  const std::vector<std::vector<ufim::ItemId>> clusters = {
      {0, 1, 2}, {3, 4}, {5, 6, 7}};
  std::vector<ufim::Transaction> epochs;
  for (std::size_t e = 0; e < num_epochs; ++e) {
    std::vector<ufim::ProbItem> units;
    for (const auto& cluster : clusters) {
      if (!rng.Bernoulli(0.6)) continue;  // cluster active this epoch?
      for (ufim::ItemId event : cluster) {
        if (rng.Bernoulli(0.9)) {  // sensor saw it
          // Detection confidence: high but noisy.
          units.push_back(ufim::ProbItem{event, rng.Uniform(0.7, 1.0)});
        }
      }
    }
    // Background noise events with low confidence.
    for (ufim::ItemId event = 0; event < num_event_types; ++event) {
      if (rng.Bernoulli(0.05)) {
        units.push_back(ufim::ProbItem{event, rng.Uniform(0.05, 0.4)});
      }
    }
    epochs.emplace_back(std::move(units));
  }
  return ufim::UncertainDatabase(std::move(epochs));
}

}  // namespace

int main() {
  using namespace ufim;
  UncertainDatabase db = SimulateDeployment(5000, 24, 7);
  DatabaseStats stats = db.ComputeStats();
  std::printf("Simulated %zu epochs, %zu event types, avg %.2f events/epoch\n",
              stats.num_transactions, stats.num_items, stats.avg_length);

  // Persist and reload through the text format (round-trip check).
  const std::string path = "/tmp/sensor_events.udb";
  if (Status s = WriteDataset(db, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = ReadDataset(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Round-tripped dataset through %s (%zu transactions)\n",
              path.c_str(), reloaded->size());

  ProbabilisticParams params;
  params.min_sup = 0.3;  // events co-occurring in >= 30%% of epochs
  params.pft = 0.9;

  auto exact = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB)
                   ->Mine(*reloaded, params);
  auto approx = CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUHMine)
                    ->Mine(*reloaded, params);
  if (!exact.ok() || !approx.ok()) {
    std::fprintf(stderr, "mining failed\n");
    return 1;
  }

  std::printf("\nReliable event combinations (exact DCB):\n");
  for (const FrequentItemset& fi : exact->itemsets()) {
    if (fi.itemset.size() < 2) continue;  // pairs and larger are the insight
    std::printf("  events %-12s esup = %7.1f  Pr = %.4f\n",
                fi.itemset.ToString().c_str(), fi.expected_support,
                *fi.frequent_probability);
  }

  PrecisionRecall pr = ComputePrecisionRecall(*approx, *exact);
  std::printf(
      "\nNDUH-Mine vs exact: %zu vs %zu itemsets, precision %.3f recall %.3f\n",
      pr.approx_size, pr.exact_size, pr.precision, pr.recall);
  std::printf("(the paper's point: on %zu epochs the cheap Normal "
              "approximation is essentially exact)\n",
              db.size());
  return 0;
}
