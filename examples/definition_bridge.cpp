// The paper's central insight, demonstrated end to end: the two
// definitions of "frequent itemset" over uncertain data are bridged by
// the first two moments of the support distribution. We mine a large
// database three ways —
//   1. exact probabilistic (DCB),
//   2. Normal approximation (NDUH-Mine),
//   3. expected-support mining + a post-hoc Normal filter (the "reuse
//      existing solutions" recipe of §1),
// and show that all three agree while costing very different amounts.
//
//   $ ./definition_bridge
#include <cstdio>

#include "core/miner_factory.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "prob/normal.h"

int main() {
  using namespace ufim;

  UncertainDatabase db = AssignGaussianProbabilities(
      MakeKosarakLike(20000, 11), 0.5, 0.5, 12);
  std::printf("Sparse uncertain database: %zu transactions\n", db.size());

  ProbabilisticParams pparams;
  pparams.min_sup = 0.01;
  pparams.pft = 0.9;
  const std::size_t msc = pparams.MinSupportCount(db.size());

  // 1. Exact.
  auto exact_miner = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB);
  auto exact = RunProbabilisticExperiment(*exact_miner, db, pparams);
  if (!exact.ok()) return 1;
  std::printf("\n1. exact DCB:            %8.1f ms, %4zu itemsets\n",
              exact->millis, exact->num_frequent);

  // 2. Normal approximation inside the miner.
  auto approx_miner = CreateProbabilisticMiner(ProbabilisticAlgorithm::kNDUHMine);
  auto approx = RunProbabilisticExperiment(*approx_miner, db, pparams);
  if (!approx.ok()) return 1;
  std::printf("2. NDUH-Mine:            %8.1f ms, %4zu itemsets\n",
              approx->millis, approx->num_frequent);

  // 3. The bridge recipe: any expected-support miner + variance + Φ.
  ExpectedSupportParams eparams;
  eparams.min_esup = 0.5 * static_cast<double>(msc) / db.size();
  auto es_miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine);
  auto es = RunExpectedExperiment(*es_miner, db, eparams);
  if (!es.ok()) return 1;
  MiningResult bridged;
  for (const FrequentItemset& fi : es->result.itemsets()) {
    const double p =
        NormalApproxFrequentProbability(fi.expected_support, fi.variance, msc);
    if (p > pparams.pft) {
      FrequentItemset out = fi;
      out.frequent_probability = p;
      bridged.Add(std::move(out));
    }
  }
  std::printf("3. UH-Mine + Φ filter:   %8.1f ms, %4zu itemsets\n", es->millis,
              bridged.size());

  PrecisionRecall pr2 = ComputePrecisionRecall(approx->result, exact->result);
  PrecisionRecall pr3 = ComputePrecisionRecall(bridged, exact->result);
  std::printf("\nagreement with exact:  NDUH-Mine P=%.3f R=%.3f |"
              "  bridge P=%.3f R=%.3f\n",
              pr2.precision, pr2.recall, pr3.precision, pr3.recall);
  std::printf("\nTakeaway (paper §1/§4.5): with N = %zu the cheap moment-based"
              "\nmethods replicate the exact probabilistic result at a fraction"
              "\nof the cost — the two definitions can be unified.\n",
              db.size());
  return 0;
}
