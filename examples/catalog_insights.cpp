// Catalog insights: the post-processing layer end-to-end. Mines a
// product catalog without knowing a good threshold (top-k), condenses
// the full result (closed / maximal), derives association rules with
// expected confidence, and persists everything for downstream tooling.
//
//   $ ./catalog_insights
#include <cstdio>

#include "algo/top_k.h"
#include "core/miner_factory.h"
#include "core/postprocess.h"
#include "core/result_io.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"

int main() {
  using namespace ufim;

  UncertainDatabase db =
      AssignGaussianProbabilities(MakeGazelleLike(6000, 99), 0.85, 0.05, 100);
  std::printf("Catalog sessions: %zu\n", db.size());

  // 1. No threshold in mind? Ask for the strongest itemsets directly.
  auto top = MineTopKExpected(db, 12);
  if (!top.ok()) {
    std::fprintf(stderr, "%s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop-12 itemsets by expected support "
              "(%llu candidates explored):\n",
              static_cast<unsigned long long>(
                  top->counters().candidates_generated));
  for (const FrequentItemset& fi : top->itemsets()) {
    std::printf("  %-12s esup = %8.2f\n", fi.itemset.ToString().c_str(),
                fi.expected_support);
  }

  // 2. Full mining at the threshold the top-k run suggests, then
  //    condense: closed loses nothing, maximal gives the frontier.
  // Rule material needs co-occurrence pairs, which on sparse catalog
  // data sit far below the single-product supports: mine deep.
  ExpectedSupportParams params;
  params.min_esup = 0.003;
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUHMine);
  auto all = miner->Mine(db, params);
  if (!all.ok()) return 1;
  MiningResult closed = FilterClosed(*all);
  MiningResult maximal = FilterMaximal(*all);
  std::printf("\nAt min_esup=%.4f: %zu frequent, %zu closed, %zu maximal\n",
              params.min_esup, all->size(), closed.size(), maximal.size());

  // 3. Rules with expected confidence.
  auto rules = GenerateRules(*all, /*min_confidence=*/0.1);
  std::printf("\n%zu rules at confidence >= 0.10 (top 5):\n", rules.size());
  for (std::size_t i = 0; i < rules.size() && i < 5; ++i) {
    std::printf("  %s\n", rules[i].ToString().c_str());
  }

  // 4. Persist the result for diffing between algorithm runs.
  const std::string path = "/tmp/catalog_result.txt";
  if (Status s = WriteResult(*all, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = ReadResult(path);
  if (!reloaded.ok() || reloaded->size() != all->size()) {
    std::fprintf(stderr, "result round-trip failed\n");
    return 1;
  }
  std::printf("\nPersisted and reloaded %zu itemsets via %s\n",
              reloaded->size(), path.c_str());
  return 0;
}
