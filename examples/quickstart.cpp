// Quickstart: build an uncertain database, index it once as a columnar
// FlatView, and mine it under both frequent-itemset definitions through
// the unified Miner API. Uses the paper's Table 1 database so the output
// can be checked against Examples 1 and 2.
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "gen/benchmark_datasets.h"

int main() {
  using namespace ufim;

  // The paper's running example: 4 transactions over items A..F (ids 0..5).
  UncertainDatabase db = MakePaperTable1();
  const char* names = "ABCDEF";

  std::printf("Uncertain database (Table 1 of the paper), %zu transactions:\n",
              db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    std::printf("  T%zu:", t + 1);
    for (const ProbItem& u : db[t]) {
      std::printf(" %c(%.1f)", names[u.item], u.prob);
    }
    std::printf("\n");
  }

  // Index once; every miner below shares the same columnar view.
  FlatView view(db);

  // One driver for both problem definitions: pick an algorithm by name
  // from the registry, describe the task as a MiningTask, and run it.
  struct Run {
    const char* algorithm;
    MiningTask task;
  };
  ExpectedSupportParams esup_params;
  esup_params.min_esup = 0.5;
  ProbabilisticParams prob_params;
  prob_params.min_sup = 0.5;
  prob_params.pft = 0.7;
  const Run runs[] = {
      {"UApriori", esup_params},   // Definition 2: expected support
      {"DCB", prob_params},        // Definition 4: probabilistic
  };

  for (const Run& run : runs) {
    auto miner = MinerRegistry::Global().Create(run.algorithm);
    auto mined = miner->Mine(view, run.task);
    if (!mined.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   mined.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s (%s task): %zu frequent itemsets\n", run.algorithm,
                std::string(TaskKindName(run.task)).c_str(), mined->size());
    for (const FrequentItemset& fi : mined->itemsets()) {
      if (fi.frequent_probability.has_value()) {
        std::printf("  %-10s esup = %.2f, Pr(sup >= %zu) = %.3f\n",
                    fi.itemset.ToString().c_str(), fi.expected_support,
                    prob_params.MinSupportCount(db.size()),
                    *fi.frequent_probability);
      } else {
        std::printf("  %-10s esup = %.2f, var = %.2f\n",
                    fi.itemset.ToString().c_str(), fi.expected_support,
                    fi.variance);
      }
    }
  }
  return 0;
}
