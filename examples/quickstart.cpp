// Quickstart: build an uncertain database, mine it under both frequent-
// itemset definitions, and print the results. Uses the paper's Table 1
// database so the output can be checked against Examples 1 and 2.
//
//   $ ./quickstart
#include <cstdio>

#include "core/miner_factory.h"
#include "gen/benchmark_datasets.h"

int main() {
  using namespace ufim;

  // The paper's running example: 4 transactions over items A..F (ids 0..5).
  UncertainDatabase db = MakePaperTable1();
  const char* names = "ABCDEF";

  std::printf("Uncertain database (Table 1 of the paper), %zu transactions:\n",
              db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    std::printf("  T%zu:", t + 1);
    for (const ProbItem& u : db[t]) {
      std::printf(" %c(%.1f)", names[u.item], u.prob);
    }
    std::printf("\n");
  }

  // --- Definition 1: expected-support-based frequent itemsets. ---
  ExpectedSupportParams esup_params;
  esup_params.min_esup = 0.5;
  auto miner = CreateExpectedSupportMiner(ExpectedAlgorithm::kUApriori);
  auto expected = miner->Mine(db, esup_params);
  if (!expected.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }
  std::printf("\nExpected-support frequent itemsets (min_esup = %.2f):\n",
              esup_params.min_esup);
  for (const FrequentItemset& fi : expected->itemsets()) {
    std::printf("  %-10s esup = %.2f, var = %.2f\n",
                fi.itemset.ToString().c_str(), fi.expected_support, fi.variance);
  }

  // --- Definition 2: probabilistic frequent itemsets. ---
  ProbabilisticParams prob_params;
  prob_params.min_sup = 0.5;
  prob_params.pft = 0.7;
  auto prob_miner = CreateProbabilisticMiner(ProbabilisticAlgorithm::kDCB);
  auto probabilistic = prob_miner->Mine(db, prob_params);
  if (!probabilistic.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 probabilistic.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nProbabilistic frequent itemsets (min_sup = %.2f, pft = %.2f):\n",
      prob_params.min_sup, prob_params.pft);
  for (const FrequentItemset& fi : probabilistic->itemsets()) {
    std::printf("  %-10s Pr(sup >= %zu) = %.3f\n",
                fi.itemset.ToString().c_str(),
                prob_params.MinSupportCount(db.size()),
                *fi.frequent_probability);
  }
  return 0;
}
