// Market-basket analysis over uncertain purchase-intent data. Items are
// products; each transaction is a browsing session where the probability
// of a unit models purchase intent inferred from behaviour (view time,
// cart adds). The example contrasts the three expected-support miners on
// the same workload and shows the counters that explain their cost
// differences — a small-scale rehearsal of the paper's Figure 4 study.
//
//   $ ./market_basket
#include <cstdio>

#include "core/miner_factory.h"
#include "eval/experiment.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"

int main() {
  using namespace ufim;

  // Gazelle is literally click-stream/purchase data; reuse its generator
  // with purchase-intent-like probabilities (most intents are strong:
  // Gaussian mean 0.8).
  DeterministicDatabase sessions = MakeGazelleLike(8000, 2024);
  UncertainDatabase db = AssignGaussianProbabilities(sessions, 0.8, 0.1, 2025);
  DatabaseStats stats = db.ComputeStats();
  std::printf("Sessions: %zu, products: %zu, avg basket %.2f, density %.4f\n",
              stats.num_transactions, stats.num_items, stats.avg_length,
              stats.density);

  ExpectedSupportParams params;
  params.min_esup = 0.003;  // products expected in >= 0.3% of sessions

  std::printf("\n%-12s %10s %12s %12s\n", "algorithm", "time (ms)",
              "candidates", "#frequent");
  MiningResult reference;
  for (ExpectedAlgorithm algo : AllExpectedAlgorithms()) {
    auto miner = CreateExpectedSupportMiner(algo);
    auto m = RunExpectedExperiment(*miner, db, params);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", ToString(algo).data(),
                   m.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %10.1f %12llu %12zu\n", m->algorithm.c_str(), m->millis,
                static_cast<unsigned long long>(m->counters.candidates_generated),
                m->num_frequent);
    reference = std::move(m->result);
  }

  // Show the strongest product associations (largest frequent itemsets,
  // then highest expected support).
  std::printf("\nTop associations:\n");
  std::size_t shown = 0;
  for (auto it = reference.itemsets().rbegin();
       it != reference.itemsets().rend() && shown < 8; ++it) {
    if (it->itemset.size() < 2) break;
    std::printf("  products %-14s expected co-purchases: %.1f sessions\n",
                it->itemset.ToString().c_str(), it->expected_support);
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no multi-product associations at this threshold)\n");
  }
  std::printf("\nAll three miners returned %zu frequent itemsets — different "
              "algorithms, one definition.\n",
              reference.size());
  return 0;
}
