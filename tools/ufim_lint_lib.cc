#include "ufim_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <unordered_set>

namespace ufim::lint {

namespace {

/// True when `path` starts with `prefix` ("src/", "src/algo/", ...).
bool HasPrefix(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// Splits `text` into lines without the trailing '\n'.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Per-line waiver set: `// ufim-lint: allow(rule-a, rule-b)` waives the
/// named rules on its own line and on the line below (so a waiver can
/// sit above the offending statement). Parsed from the RAW text — the
/// marker lives in a comment, which stripping erases.
class Waivers {
 public:
  explicit Waivers(const std::vector<std::string>& raw_lines) {
    static const std::regex kWaiver(
        R"(//\s*ufim-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(raw_lines[i], m, kWaiver)) continue;
      std::string rules = m[1].str();
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::size_t pos = 0;
      while (pos < rules.size()) {
        while (pos < rules.size() && rules[pos] == ' ') ++pos;
        std::size_t end = rules.find(' ', pos);
        if (end == std::string::npos) end = rules.size();
        if (end > pos) {
          const std::string rule = rules.substr(pos, end - pos);
          waived_.insert(Key(i + 1, rule));      // this line
          waived_.insert(Key(i + 2, rule));      // the line below
        }
        pos = end;
      }
    }
  }

  bool Waived(std::size_t line, const std::string& rule) const {
    return waived_.count(Key(line, rule)) > 0;
  }

 private:
  static std::string Key(std::size_t line, const std::string& rule) {
    return std::to_string(line) + ":" + rule;
  }
  std::unordered_set<std::string> waived_;
};

/// One file, preprocessed once: raw + stripped text, line-split both
/// ways, waivers parsed.
struct PreparedFile {
  const SourceFile* source = nullptr;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
  Waivers waivers;

  explicit PreparedFile(const SourceFile& file)
      : source(&file),
        raw_lines(SplitLines(file.content)),
        stripped_lines(SplitLines(StripCommentsAndStrings(file.content))),
        waivers(raw_lines) {}
};

void Emit(const PreparedFile& f, std::size_t line, const char* rule,
          std::string message, std::vector<Diagnostic>* out) {
  if (f.waivers.Waived(line, rule)) return;
  out->push_back(Diagnostic{f.source->path, line, rule, std::move(message)});
}

// --- rules -----------------------------------------------------------------

/// catch-run-aborted: the abort unwind may only be caught at the
/// GuardMine facade boundary. (ISSUE names miner.cc, but GuardMine is a
/// template and lives in the header — the header is the boundary.)
void CheckCatchRunAborted(const PreparedFile& f, std::vector<Diagnostic>* out) {
  const std::string& path = f.source->path;
  if (!HasPrefix(path, "src/") && !HasPrefix(path, "tools/")) return;
  if (path == "src/core/miner.h") return;
  static const std::regex kCatch(
      R"(\bcatch\s*\(\s*(?:const\s+)?(?:ufim\s*::\s*)?RunAbortedError\b)");
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    if (std::regex_search(f.stripped_lines[i], kCatch)) {
      Emit(f, i + 1, "catch-run-aborted",
           "RunAbortedError may only be caught by GuardMine "
           "(src/core/miner.h); catching it elsewhere swallows "
           "cancellation",
           out);
    }
  }
}

/// no-nondeterminism: unseeded randomness and wall-clock reads are
/// banned from library code.
void CheckNoNondeterminism(const PreparedFile& f,
                           std::vector<Diagnostic>* out) {
  if (!HasPrefix(f.source->path, "src/")) return;
  struct Pattern {
    const char* regex;
    const char* what;
  };
  static const Pattern kPatterns[] = {
      {R"(\b(?:std\s*::\s*)?s?rand\s*\()", "rand()/srand()"},
      {R"(\brandom_device\b)", "std::random_device"},
      {R"(\b(?:std\s*::\s*)?time\s*\()", "time()"},
      {R"(\b(?:std\s*::\s*)?clock\s*\()", "clock()"},
  };
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    for (const Pattern& p : kPatterns) {
      if (std::regex_search(f.stripped_lines[i], std::regex(p.regex))) {
        Emit(f, i + 1, "no-nondeterminism",
             std::string(p.what) +
                 " in library code: results must be a pure function of "
                 "(dataset, parameters, seed) — use the seeded Rng / "
                 "eval/stopwatch instead",
             out);
      }
    }
  }
}

/// unordered-iteration, pass 1: collect names declared with an
/// unordered container type, across the whole file set. Coarse on
/// purpose — a name is suspect everywhere once it is declared unordered
/// anywhere, which errs toward flagging (waive with an argument).
void CollectUnorderedNames(const PreparedFile& f,
                           std::unordered_set<std::string>* names) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;={(])");
  for (const std::string& line : f.stripped_lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names->insert((*it)[1].str());
    }
  }
}

/// unordered-iteration, pass 2: flag range-fors over those names.
void CheckUnorderedIteration(const PreparedFile& f,
                             const std::unordered_set<std::string>& names,
                             std::vector<Diagnostic>* out) {
  if (!HasPrefix(f.source->path, "src/")) return;
  static const std::regex kRangeFor(R"(\bfor\s*\([^;()]*:\s*(\w+)\s*\))");
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& line = f.stripped_lines[i];
    auto begin = std::sregex_iterator(line.begin(), line.end(), kRangeFor);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (names.count(name) == 0) continue;
      Emit(f, i + 1, "unordered-iteration",
           "range-for over unordered container '" + name +
               "': iteration order is unspecified, so emitting or "
               "accumulating from it is nondeterministic — sort into a "
               "vector first",
           out);
    }
  }
}

/// missing-poll: a src/algo file that fans out via ParallelFor* must
/// have a RunContext poll site, or cancellation never reaches it.
void CheckMissingPoll(const PreparedFile& f, std::vector<Diagnostic>* out) {
  if (!HasPrefix(f.source->path, "src/algo/")) return;
  static const std::regex kFanOut(R"(\bParallelFor\w*\s*\()");
  static const std::regex kPoll(
      R"(\b(?:PollRunContext|PollOrThrow|CheckPoint)\s*\()");
  std::size_t first_fan_out = 0;
  bool fans_out = false, polls = false;
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    if (!fans_out && std::regex_search(f.stripped_lines[i], kFanOut)) {
      fans_out = true;
      first_fan_out = i + 1;
    }
    if (std::regex_search(f.stripped_lines[i], kPoll)) polls = true;
  }
  if (fans_out && !polls) {
    Emit(f, first_fan_out, "missing-poll",
         "this mining file fans out via ParallelFor but never polls a "
         "RunContext — cancellation, deadlines and memory budgets "
         "cannot stop it",
         out);
  }
}

/// no-iostream: library code reports through Status, never by printing.
void CheckNoIostream(const PreparedFile& f, std::vector<Diagnostic>* out) {
  if (!HasPrefix(f.source->path, "src/")) return;
  static const std::regex kInclude(R"(#\s*include\s*<iostream>)");
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    if (std::regex_search(f.stripped_lines[i], kInclude)) {
      Emit(f, i + 1, "no-iostream",
           "<iostream> in library code: report through Status/Result; "
           "printing belongs to the CLI and the tests",
           out);
    }
  }
}

/// raw-mutex: locking goes through the annotated common/mutex.h
/// wrappers so the -Wthread-safety build can see it.
void CheckRawMutex(const PreparedFile& f, std::vector<Diagnostic>* out) {
  const std::string& path = f.source->path;
  if (!HasPrefix(path, "src/")) return;
  if (path == "src/common/mutex.h") return;  // the wrapper itself
  static const std::regex kRaw(
      R"(\bstd\s*::\s*(?:mutex|lock_guard|unique_lock|scoped_lock)\b|#\s*include\s*<mutex>)");
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    if (std::regex_search(f.stripped_lines[i], kRaw)) {
      Emit(f, i + 1, "raw-mutex",
           "raw std::mutex/locks are invisible to the thread-safety "
           "analysis — use Mutex/MutexLock from common/mutex.h",
           out);
    }
  }
}

/// raw-view: a live StreamingFlatView::View() dies at the next
/// Append/Compact/RollbackAppend (debug builds abort the stale read) —
/// library code that reads across mutations takes a Snapshot() handle.
/// Any raw call left in src/ carries a written lifetime argument.
void CheckRawView(const PreparedFile& f, std::vector<Diagnostic>* out) {
  if (!HasPrefix(f.source->path, "src/")) return;
  static const std::regex kRawView(R"((?:\.|->)\s*View\s*\(\s*\))");
  for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
    if (std::regex_search(f.stripped_lines[i], kRawView)) {
      Emit(f, i + 1, "raw-view",
           "raw StreamingFlatView::View() call: the view is only valid "
           "until the next Append/Compact (debug builds abort a stale "
           "read) — take a Snapshot() to read across mutations, or waive "
           "with the lifetime argument",
           out);
    }
  }
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out = content;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kRawString,
    kChar,
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string R"delim( ... )delim": find the delimiter.
          std::size_t open = content.find('(', i + 2);
          if (open == std::string::npos) break;  // malformed; leave as-is
          raw_delim = ")" + content.substr(i + 2, open - (i + 2)) + "\"";
          for (std::size_t j = i; j <= open; ++j) {
            if (content[j] != '\n') out[j] = ' ';
          }
          i = open;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files) {
  std::vector<PreparedFile> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& file : files) prepared.emplace_back(file);

  // Cross-file pass: the unordered-container symbol table (a member
  // declared in a header is iterated in a .cc).
  std::unordered_set<std::string> unordered_names;
  for (const PreparedFile& f : prepared) {
    CollectUnorderedNames(f, &unordered_names);
  }

  std::vector<Diagnostic> out;
  for (const PreparedFile& f : prepared) {
    CheckCatchRunAborted(f, &out);
    CheckNoNondeterminism(f, &out);
    CheckUnorderedIteration(f, unordered_names, &out);
    CheckMissingPoll(f, &out);
    CheckNoIostream(f, &out);
    CheckRawMutex(f, &out);
    CheckRawView(f, &out);
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace ufim::lint
