#ifndef UFIM_TOOLS_UFIM_LINT_LIB_H_
#define UFIM_TOOLS_UFIM_LINT_LIB_H_

#include <cstddef>
#include <string>
#include <vector>

/// ufim_lint — project-specific conventions the compiler cannot check.
///
/// The general-purpose layers of the PR-9 static-analysis stack (Clang
/// thread-safety annotations, [[nodiscard]] Status, clang-tidy) enforce
/// language-level properties. This checker enforces the *repo*
/// conventions that keep results deterministic and cancellation sound:
///
///   catch-run-aborted    `RunAbortedError` is the internal abort unwind;
///                        only the GuardMine facade boundary
///                        (src/core/miner.h) may catch it. A stray catch
///                        swallows cancellation and poisons the cleanup
///                        contract.
///   no-nondeterminism    No rand()/srand()/random_device/time()/clock()
///                        in library code: all randomness flows through
///                        seeded Rng, all timing through eval/stopwatch,
///                        so every mining result is a pure function of
///                        (dataset, parameters, seed).
///   unordered-iteration  No range-for over a variable declared as
///                        std::unordered_map/set: iteration order is
///                        unspecified, so anything emitted or accumulated
///                        from such a loop silently depends on hash
///                        seeding. Copy into a vector and sort first
///                        (or waive with a written order-independence
///                        argument).
///   missing-poll         Every src/algo file that fans work out through
///                        ParallelFor* must poll its RunContext
///                        somewhere, or cancellation/deadlines never
///                        reach that miner.
///   no-iostream          No <iostream> in src/: library code reports
///                        through Status/Result, never by printing.
///   raw-mutex            No std::mutex/lock_guard/unique_lock outside
///                        common/mutex.h: the annotated Mutex/MutexLock
///                        wrappers are what make the -Wthread-safety CI
///                        leg able to see locking at all.
///   raw-view             No bare `StreamingFlatView::View()` calls in
///                        src/: a live view dies at the next
///                        Append/Compact (debug builds abort the stale
///                        read). Reads that cross mutations go through
///                        a `Snapshot()` handle; the few justified raw
///                        calls carry a waiver with their lifetime
///                        argument.
///
/// Matching runs on comment- and string-stripped text, so prose and
/// string literals never trip a rule. A justified exception is waived
/// in-line:
///
///   // ufim-lint: allow(unordered-iteration)  <why it is safe>
///
/// on the offending line or the line directly above it.
namespace ufim::lint {

struct Diagnostic {
  std::string file;   ///< repo-relative path
  std::size_t line;   ///< 1-based
  std::string rule;   ///< e.g. "no-nondeterminism"
  std::string message;
};

/// One input file. `path` must be repo-relative with '/' separators —
/// rule scoping ("src/", "src/algo/", the miner.h exemption) keys on it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Replaces comments, string literals (raw strings included) and char
/// literals with spaces, preserving newlines and column positions —
/// diagnostics computed on the stripped text line up with the original.
/// Exposed for direct unit testing.
std::string StripCommentsAndStrings(const std::string& content);

/// Runs every rule over `files` and returns the surviving diagnostics,
/// ordered by (file, line). Cross-file state (the unordered-container
/// symbol table) is built over the whole set, so lint the tree in one
/// call rather than file by file.
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files);

/// "path:line: [rule] message" — the grep/IDE-clickable form the CLI
/// prints.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace ufim::lint

#endif  // UFIM_TOOLS_UFIM_LINT_LIB_H_
