// ufim command-line tool: generate benchmark datasets, inspect them, and
// mine them with any of the library's algorithms.
//
//   ufim_cli generate --family kosarak --n 5000 --prob gaussian:0.5,0.5
//       --seed 7 --out data.udb
//   ufim_cli stats data.udb
//   ufim_cli mine data.udb --algorithm UApriori --min-esup 0.01
//   ufim_cli mine data.udb --algorithm DCB --min-sup 0.05 --pft 0.9
//       --top 20 --rules 0.8
//   ufim_cli mine data.udb --algorithm TopK --k 20
//   ufim_cli mine data.udb --algorithm UApriori --min-esup 0.01
//       --threads 8 --shards 4
//   ufim_cli mine-stream data.udb --algorithm UApriori --min-esup 0.01
//       --batch 256 --compact-ratio 0.25
//
// Argument handling lives in common/cli_args.h (unit-tested): numeric
// flags are validated over their full token and unknown flags are
// rejected per subcommand, both with a non-zero exit.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/cli_args.h"
#include "common/run_context.h"
#include "core/delta_miner.h"
#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/postprocess.h"
#include "core/simd_intersect.h"
#include "eval/experiment.h"
#include "eval/stopwatch.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "io/dataset_io.h"

namespace ufim::cli {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage:
  ufim_cli generate --family {connect|accident|kosarak|gazelle|quest}
           --n <transactions> [--prob gaussian:<mean>,<var> | zipf:<skew>]
           [--seed <s>] --out <path>
  ufim_cli stats <path>
  ufim_cli mine <path> --algorithm <name>
           (--min-esup <r> | --min-sup <r> [--pft <p>] | --k <n>)
           [--threads <t>] [--shards <s>] [--split-budget <n>]
           [--kernel {auto|scalar|gallop|simd}]
           [--prefilter {off|bounds}]
           [--deadline-ms <ms>] [--memory-budget-mb <mb>]
           [--top <k>] [--closed] [--maximal] [--rules <min_conf>]
  ufim_cli mine-stream <path> --algorithm <name> --min-esup <r>
           [--batch <n>] [--compact-ratio <r>] [--compact-every <n>]
           [--threads <t>]
           [--split-budget <n>] [--kernel {auto|scalar|gallop|simd}]
           [--deadline-ms <ms>] [--memory-budget-mb <mb>]

  --threads: worker threads for the parallel mining paths
             (default: hardware concurrency; results are identical at
             every setting). --shards: partition the database into <s>
             transaction shards mined independently and merged exactly
             (expected-support algorithms only).
  --split-budget: recursive task-splitting budget for the pattern-growth
             miners' dominant conditional subtrees (0 = automatic
             threshold, the default; 1 = split never, i.e. top-level
             rank tasks only; larger = split more aggressively).
             Results are identical at every setting.
  --kernel:  force the posting-intersection kernel (default auto:
             galloping on skewed list lengths, SIMD when the CPU has
             it, scalar otherwise; results are identical under every
             kernel). Equivalent to setting UFIM_INTERSECT.
  --prefilter: candidate screening for the probabilistic miners
             (DP/DC/MCSampling). 'bounds' certifies obviously
             (in)frequent candidates from an O(1) two-sided bound
             cascade so fewer exact tails are computed; output is
             identical to 'off' (the default) by construction.
  --deadline-ms: soft wall-clock deadline for the mining run. The
             miners poll it cooperatively and a run that overshoots
             stops at the next checkpoint with a DeadlineExceeded
             error and a non-zero exit — no partial results, no
             leaked state.
  --memory-budget-mb: cooperative cap on mining-phase allocation
             growth (measured from the start of the run); exceeding
             it fails the run with ResourceExhausted the same way.

  mine-stream replays the dataset as an append-only stream in batches
  of --batch transactions (default 256) through the incremental
  DeltaMiner: each batch is mined as its own shard over the streaming
  delta layout and the running result is recounted exactly, compacting
  when the delta exceeds --compact-ratio units per base unit (default
  0.25; 0 compacts every batch). --compact-every <n> additionally forces
  an explicit compaction after every n batches (0, the default, never
  forces one); compaction only changes the storage layout, so the final
  listing is identical with and without it. Per-batch progress goes to
  stderr; the
  final listing on stdout is identical to the equivalent 'mine' run
  (expected-support algorithms only). Size batches so that
  min-esup * batch stays well above 1, or the per-batch shard
  threshold admits every observed itemset and the SON candidate pool
  explodes.
)");
  // The algorithm list comes from the registry, so newly registered
  // miners show up here without CLI edits.
  auto print_family = [](const char* label, TaskFamily family) {
    std::fprintf(stderr, "%s:", label);
    for (const std::string& name :
         MinerRegistry::Global().NamesOf(family, /*production_only=*/true)) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
  };
  print_family("expected-support algorithms", TaskFamily::kExpectedSupport);
  print_family("probabilistic algorithms   ", TaskFamily::kProbabilistic);
  print_family("top-k algorithms           ", TaskFamily::kTopK);
  return 2;
}

/// Prints the accessor's error and converts it to the fail exit: use as
///   std::size_t n; if (!OrFail(args.GetSize("n", 1000, &n, &err), err)) ...
bool OrFail(bool ok, const std::string& error) {
  if (!ok) std::fprintf(stderr, "%s\n", error.c_str());
  return ok;
}

/// Applies --kernel when present (shared by mine and mine-stream so the
/// accepted names can never drift apart); false + diagnostic on an
/// unknown name.
bool ApplyKernelFlag(const Args& args) {
  const char* kernel_name = args.Get("kernel");
  if (kernel_name == nullptr) return true;
  IntersectKernel kernel;
  if (!ParseIntersectKernel(kernel_name, &kernel)) {
    std::fprintf(stderr, "bad --kernel '%s' (auto|scalar|gallop|simd)\n",
                 kernel_name);
    return false;
  }
  SetIntersectKernel(kernel);
  return true;
}

/// Builds the cooperative run-limit token from --deadline-ms /
/// --memory-budget-mb (0 = unconstrained). Called right before mining so
/// the deadline clock and the memory baseline start at the run, not at
/// argument parsing or dataset load.
RunContext MakeRunLimits(std::size_t deadline_ms,
                         std::size_t memory_budget_mb) {
  RunContext run;
  if (deadline_ms > 0) {
    run.SetDeadlineAfterMillis(static_cast<std::int64_t>(deadline_ms));
  }
  if (memory_budget_mb > 0) {
    run.SetMemoryBudgetBytes(memory_budget_mb * (std::size_t{1} << 20));
  }
  return run;
}

int Generate(const Args& args) {
  std::string err;
  if (!args.Validate({.value_flags = {"family", "n", "prob", "seed", "out"},
                      .switches = {}},
                     &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  const char* family = args.Get("family");
  const char* out_path = args.Get("out");
  if (family == nullptr || out_path == nullptr) return Usage();
  std::size_t n = 0, seed_raw = 0;
  if (!OrFail(args.GetSize("n", 1000, &n, &err), err) ||
      !OrFail(args.GetSize("seed", 42, &seed_raw, &err), err)) {
    return 2;
  }
  const std::uint64_t seed = seed_raw;

  DeterministicDatabase det;
  const std::string fam = family;
  if (fam == "connect") {
    det = MakeConnectLike(n, seed);
  } else if (fam == "accident") {
    det = MakeAccidentLike(n, seed);
  } else if (fam == "kosarak") {
    det = MakeKosarakLike(n, seed);
  } else if (fam == "gazelle") {
    det = MakeGazelleLike(n, seed);
  } else if (fam == "quest") {
    auto q = MakeQuestT25I15(n, seed);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    det = std::move(q).value();
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family);
    return Usage();
  }

  // Probability model: "gaussian:mean,var" (default 0.9,0.1) or "zipf:skew".
  std::string prob = args.Get("prob") != nullptr ? args.Get("prob") : "gaussian:0.9,0.1";
  UncertainDatabase db;
  if (prob.rfind("gaussian:", 0) == 0) {
    double mean = 0.9, var = 0.1;
    if (std::sscanf(prob.c_str() + 9, "%lf,%lf", &mean, &var) != 2) {
      std::fprintf(stderr, "bad --prob '%s'\n", prob.c_str());
      return Usage();
    }
    db = AssignGaussianProbabilities(det, mean, var, seed + 1);
  } else if (prob.rfind("zipf:", 0) == 0) {
    const double skew = std::atof(prob.c_str() + 5);
    db = AssignZipfProbabilities(det, skew, seed + 1);
  } else {
    std::fprintf(stderr, "bad --prob '%s'\n", prob.c_str());
    return Usage();
  }

  if (Status s = WriteDataset(db, out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  DatabaseStats stats = db.ComputeStats();
  std::printf("wrote %zu transactions (%zu items, avg len %.2f) to %s\n",
              stats.num_transactions, stats.num_items, stats.avg_length,
              out_path);
  return 0;
}

int Stats(const Args& args) {
  std::string err;
  if (!args.Validate({.value_flags = {}, .switches = {}}, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  if (args.positional.size() < 2) return Usage();
  auto db = ReadDataset(args.positional[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  DatabaseStats s = db->ComputeStats();
  std::printf("transactions: %zu\nitems:        %zu\navg length:   %.3f\n"
              "density:      %.6f\nmean prob:    %.4f\n",
              s.num_transactions, s.num_items, s.avg_length, s.density,
              s.mean_probability);
  return 0;
}

/// Result post-processing knobs, parsed and validated up front so a bad
/// --top/--rules fails before minutes of mining, not after.
struct ShowOptions {
  bool closed = false;
  bool maximal = false;
  std::optional<std::size_t> top;
  std::optional<double> rules_min_conf;
};

void PrintResult(const MiningResult& result, const ShowOptions& show,
                 double millis) {
  MiningResult shown = result;
  if (show.closed) shown = FilterClosed(shown);
  if (show.maximal) shown = FilterMaximal(shown);
  if (show.top.has_value()) shown = TopK(shown, *show.top);
  std::printf("# %zu frequent itemsets (%.1f ms)\n", result.size(), millis);
  std::printf("%s", shown.ToString().c_str());
  if (show.rules_min_conf.has_value()) {
    const double min_conf = *show.rules_min_conf;
    auto rules = GenerateRules(result, min_conf);
    std::printf("# %zu rules at confidence >= %.2f\n", rules.size(), min_conf);
    for (const AssociationRule& rule : rules) {
      std::printf("  %s\n", rule.ToString().c_str());
    }
  }
}

int Mine(const Args& args) {
  std::string err;
  if (!args.Validate(
          {.value_flags = {"algorithm", "min-esup", "min-sup", "pft", "k",
                           "threads", "shards", "split-budget", "kernel",
                           "prefilter", "deadline-ms", "memory-budget-mb",
                           "top", "rules"},
           .switches = {"closed", "maximal"}},
          &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  if (args.positional.size() < 2 || args.Get("algorithm") == nullptr) {
    return Usage();
  }

  // Validate every numeric flag before touching the dataset.
  std::size_t num_threads = 0, num_shards = 1, split_budget = 0, k = 10;
  std::size_t deadline_ms = 0, memory_budget_mb = 0;
  double min_esup = 0.5, min_sup = 0.5, pft = 0.9;
  ShowOptions show;
  show.closed = args.Get("closed") != nullptr;
  show.maximal = args.Get("maximal") != nullptr;
  {
    std::size_t top = 10;
    double rules_conf = 0.8;
    if (!OrFail(args.GetSize("threads", 0, &num_threads, &err), err) ||
        !OrFail(args.GetSize("shards", 1, &num_shards, &err), err) ||
        !OrFail(args.GetSize("split-budget", 0, &split_budget, &err), err) ||
        !OrFail(args.GetSize("deadline-ms", 0, &deadline_ms, &err), err) ||
        !OrFail(args.GetSize("memory-budget-mb", 0, &memory_budget_mb, &err),
                err) ||
        !OrFail(args.GetSize("k", 10, &k, &err), err) ||
        !OrFail(args.GetDouble("min-esup", 0.5, &min_esup, &err), err) ||
        !OrFail(args.GetDouble("min-sup", 0.5, &min_sup, &err), err) ||
        !OrFail(args.GetDouble("pft", 0.9, &pft, &err), err) ||
        !OrFail(args.GetSize("top", 10, &top, &err), err) ||
        !OrFail(args.GetDouble("rules", 0.8, &rules_conf, &err), err)) {
      return 2;
    }
    if (args.Get("top") != nullptr) show.top = top;
    if (args.Get("rules") != nullptr) show.rules_min_conf = rules_conf;
  }

  auto db = ReadDataset(args.positional[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::string algo_name = args.Get("algorithm");

  // One code path for both problem definitions: look the algorithm up in
  // the registry, assemble the matching MiningTask, run it through the
  // unified Miner facade over a FlatView built once.
  const MinerEntry* entry = MinerRegistry::Global().Find(algo_name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo_name.c_str());
    return Usage();
  }
  MiningTask task;
  if (entry->family == TaskFamily::kExpectedSupport) {
    if (args.Get("min-esup") == nullptr) {
      std::fprintf(stderr, "%s needs --min-esup\n", algo_name.c_str());
      return Usage();
    }
    ExpectedSupportParams params;
    params.min_esup = min_esup;
    task = params;
  } else if (entry->family == TaskFamily::kProbabilistic) {
    if (args.Get("min-sup") == nullptr) {
      std::fprintf(stderr, "%s needs --min-sup\n", algo_name.c_str());
      return Usage();
    }
    ProbabilisticParams params;
    params.min_sup = min_sup;
    params.pft = pft;
    task = params;
  } else {
    if (args.Get("k") == nullptr) {
      std::fprintf(stderr, "%s needs --k\n", algo_name.c_str());
      return Usage();
    }
    TopKParams params;
    params.k = k;
    task = params;
  }

  // Execution configuration: every algorithm, threaded and optionally
  // sharded, goes through the same registry-driven experiment path.
  if (!ApplyKernelFlag(args)) return Usage();
  MinerOptions options;
  options.num_threads = num_threads;  // 0 = all hardware threads
  options.split_budget = split_budget;  // 0 = automatic threshold
  if (const char* prefilter_name = args.Get("prefilter")) {
    if (!ParsePrefilterMode(prefilter_name, &options.prefilter)) {
      std::fprintf(stderr, "bad --prefilter '%s' (off|bounds)\n",
                   prefilter_name);
      return Usage();
    }
    if (entry->family != TaskFamily::kProbabilistic) {
      std::fprintf(stderr, "--prefilter applies to probabilistic algorithms only\n");
      return Usage();
    }
  }
  if (num_shards > 1 && entry->family != TaskFamily::kExpectedSupport) {
    std::fprintf(stderr, "--shards applies to expected-support algorithms only\n");
    return Usage();
  }
  FlatView view(*db);
  options.run_context = MakeRunLimits(deadline_ms, memory_budget_mb);
  auto m = RunRegisteredExperiment(algo_name, view, task, options, num_shards);
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return 1;
  }
  PrintResult(m->result, show, m->millis);
  return 0;
}

int MineStream(const Args& args) {
  std::string err;
  if (!args.Validate({.value_flags = {"algorithm", "min-esup", "batch",
                                      "compact-ratio", "compact-every",
                                      "threads", "split-budget", "kernel",
                                      "deadline-ms", "memory-budget-mb"},
                      .switches = {}},
                     &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  if (args.positional.size() < 2 || args.Get("algorithm") == nullptr) {
    return Usage();
  }

  // Validate every numeric flag before touching the dataset.
  std::size_t num_threads = 0, split_budget = 0, batch_size = 256;
  std::size_t deadline_ms = 0, memory_budget_mb = 0, compact_every = 0;
  double min_esup = 0.5, compact_ratio = 0.25;
  if (!OrFail(args.GetSize("threads", 0, &num_threads, &err), err) ||
      !OrFail(args.GetSize("split-budget", 0, &split_budget, &err), err) ||
      !OrFail(args.GetSize("deadline-ms", 0, &deadline_ms, &err), err) ||
      !OrFail(args.GetSize("memory-budget-mb", 0, &memory_budget_mb, &err),
              err) ||
      !OrFail(args.GetSize("batch", 256, &batch_size, &err), err) ||
      !OrFail(args.GetSize("compact-every", 0, &compact_every, &err), err) ||
      !OrFail(args.GetDouble("min-esup", 0.5, &min_esup, &err), err) ||
      !OrFail(args.GetDouble("compact-ratio", 0.25, &compact_ratio, &err),
              err)) {
    return 2;
  }
  if (args.Get("min-esup") == nullptr) {
    std::fprintf(stderr, "mine-stream needs --min-esup\n");
    return Usage();
  }
  if (batch_size == 0) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return 2;
  }
  if (compact_ratio < 0.0) {
    std::fprintf(stderr, "--compact-ratio must be >= 0\n");
    return 2;
  }
  if (!ApplyKernelFlag(args)) return Usage();

  auto db = ReadDataset(args.positional[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  ExpectedSupportParams params;
  params.min_esup = min_esup;
  MinerOptions options;
  options.num_threads = num_threads;  // 0 = all hardware threads
  options.split_budget = split_budget;  // 0 = automatic threshold
  options.run_context = MakeRunLimits(deadline_ms, memory_budget_mb);
  CompactionPolicy policy;
  policy.max_delta_ratio = compact_ratio;
  auto miner = MakeDeltaMiner(args.Get("algorithm"), params, options, policy);
  if (!miner.ok()) {
    std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
    return miner.status().code() == StatusCode::kNotFound ? Usage() : 1;
  }

  // Replay the dataset as an append-only stream. Progress lines go to
  // stderr so stdout carries exactly the final listing — diffable
  // against the equivalent one-shot 'mine' run.
  const std::vector<Transaction>& txns = db->transactions();
  Stopwatch watch;
  Result<MiningResult> result = Status::Internal("empty stream");
  std::size_t batches = 0;
  for (std::size_t lo = 0; lo == 0 || lo < txns.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, txns.size());
    result = miner.value()->MineNext(
        std::span<const Transaction>(txns.data() + lo, hi - lo));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    ++batches;
    // Interleaved explicit compactions: a layout change only, so the
    // final stdout listing is identical with and without the flag (the
    // Release CI smoke diffs exactly that).
    if (compact_every > 0 && batches % compact_every == 0) {
      miner.value()->Compact();
    }
    std::fprintf(stderr,
                 "batch %zu: +%zu txns (%zu total), %zu frequent, "
                 "%zu delta txns, %zu compactions\n",
                 batches, hi - lo, miner.value()->view().num_transactions(),
                 result.value().size(),
                 miner.value()->view().delta_transactions(),
                 miner.value()->view().compactions());
    if (hi >= txns.size()) break;
  }
  PrintResult(result.value(), ShowOptions{}, watch.ElapsedMillis());
  return 0;
}

/// Surfaces swallowed stdout write errors: the result listings go out
/// through printf, whose return values the commands ignore — so before
/// this check, `mine > out.txt` onto a full disk (or a closed pipe)
/// truncated the listing and still exited 0. Flush + ferror catches
/// every buffered failure at once, turning it into a diagnostic and a
/// non-zero exit. Found by the PR-9 ignored-Status audit.
int CheckedExit(int code) {
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: writing to stdout failed\n");
    return code == 0 ? 1 : code;
  }
  return code;
}

int Main(int argc, char** argv) {
  std::string err;
  std::optional<Args> args =
      Args::Parse(argc, argv, /*switches=*/{"closed", "maximal"}, &err);
  if (!args.has_value()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return Usage();
  }
  if (args->positional.empty()) return Usage();
  const std::string& command = args->positional[0];
  if (command == "generate") return CheckedExit(Generate(*args));
  if (command == "stats") return CheckedExit(Stats(*args));
  if (command == "mine") return CheckedExit(Mine(*args));
  if (command == "mine-stream") return CheckedExit(MineStream(*args));
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace ufim::cli

int main(int argc, char** argv) { return ufim::cli::Main(argc, argv); }
