// ufim command-line tool: generate benchmark datasets, inspect them, and
// mine them with any of the library's algorithms.
//
//   ufim_cli generate --family kosarak --n 5000 --prob gaussian:0.5,0.5
//       --seed 7 --out data.udb
//   ufim_cli stats data.udb
//   ufim_cli mine data.udb --algorithm UApriori --min-esup 0.01
//   ufim_cli mine data.udb --algorithm DCB --min-sup 0.05 --pft 0.9
//       --top 20 --rules 0.8
//   ufim_cli mine data.udb --algorithm TopK --k 20
//   ufim_cli mine data.udb --algorithm UApriori --min-esup 0.01
//       --threads 8 --shards 4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "core/flat_view.h"
#include "core/miner_registry.h"
#include "core/postprocess.h"
#include "core/simd_intersect.h"
#include "eval/experiment.h"
#include "gen/benchmark_datasets.h"
#include "gen/probability.h"
#include "io/dataset_io.h"

namespace ufim::cli {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage:
  ufim_cli generate --family {connect|accident|kosarak|gazelle|quest}
           --n <transactions> [--prob gaussian:<mean>,<var> | zipf:<skew>]
           [--seed <s>] --out <path>
  ufim_cli stats <path>
  ufim_cli mine <path> --algorithm <name>
           (--min-esup <r> | --min-sup <r> [--pft <p>] | --k <n>)
           [--threads <t>] [--shards <s>]
           [--kernel {auto|scalar|gallop|simd}]
           [--top <k>] [--closed] [--maximal] [--rules <min_conf>]

  --threads: worker threads for the parallel counting paths
             (default: hardware concurrency; results are identical at
             every setting). --shards: partition the database into <s>
             transaction shards mined independently and merged exactly
             (expected-support algorithms only).
  --kernel:  force the posting-intersection kernel (default auto:
             galloping on skewed list lengths, SIMD when the CPU has
             it, scalar otherwise; results are identical under every
             kernel). Equivalent to setting UFIM_INTERSECT.
)");
  // The algorithm list comes from the registry, so newly registered
  // miners show up here without CLI edits.
  auto print_family = [](const char* label, TaskFamily family) {
    std::fprintf(stderr, "%s:", label);
    for (const std::string& name :
         MinerRegistry::Global().NamesOf(family, /*production_only=*/true)) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
  };
  print_family("expected-support algorithms", TaskFamily::kExpectedSupport);
  print_family("probabilistic algorithms   ", TaskFamily::kProbabilistic);
  print_family("top-k algorithms           ", TaskFamily::kTopK);
  return 2;
}

/// Minimal long-flag parser: --key value pairs plus positional args.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  // GCC 12 raises -Wrestrict false positives on the std::string
  // assignments below when Parse is inlined into main (GCC bug 105329).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
  static std::optional<Args> Parse(int argc, char** argv) {
    Args out;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key(arg.begin() + 2, arg.end());
        bool is_switch = key == "closed" || key == "maximal";
        if (is_switch) {
          out.flags[key] = "1";
        } else if (i + 1 < argc) {
          out.flags[key] = argv[++i];
        } else {
          std::fprintf(stderr, "missing value for --%s\n", key.c_str());
          return std::nullopt;
        }
      } else {
        out.positional.push_back(std::move(arg));
      }
    }
    return out;
  }
#pragma GCC diagnostic pop

  const char* Get(const std::string& key) const {
    auto it = flags.find(key);
    return it == flags.end() ? nullptr : it->second.c_str();
  }
  double GetDouble(const std::string& key, double fallback) const {
    const char* v = Get(key);
    return v != nullptr ? std::atof(v) : fallback;
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    const char* v = Get(key);
    return v != nullptr ? static_cast<std::size_t>(std::atoll(v)) : fallback;
  }
};

int Generate(const Args& args) {
  const char* family = args.Get("family");
  const char* out_path = args.Get("out");
  if (family == nullptr || out_path == nullptr) return Usage();
  const std::size_t n = args.GetSize("n", 1000);
  const std::uint64_t seed = args.GetSize("seed", 42);

  DeterministicDatabase det;
  const std::string fam = family;
  if (fam == "connect") {
    det = MakeConnectLike(n, seed);
  } else if (fam == "accident") {
    det = MakeAccidentLike(n, seed);
  } else if (fam == "kosarak") {
    det = MakeKosarakLike(n, seed);
  } else if (fam == "gazelle") {
    det = MakeGazelleLike(n, seed);
  } else if (fam == "quest") {
    auto q = MakeQuestT25I15(n, seed);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    det = std::move(q).value();
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family);
    return Usage();
  }

  // Probability model: "gaussian:mean,var" (default 0.9,0.1) or "zipf:skew".
  std::string prob = args.Get("prob") != nullptr ? args.Get("prob") : "gaussian:0.9,0.1";
  UncertainDatabase db;
  if (prob.rfind("gaussian:", 0) == 0) {
    double mean = 0.9, var = 0.1;
    if (std::sscanf(prob.c_str() + 9, "%lf,%lf", &mean, &var) != 2) {
      std::fprintf(stderr, "bad --prob '%s'\n", prob.c_str());
      return Usage();
    }
    db = AssignGaussianProbabilities(det, mean, var, seed + 1);
  } else if (prob.rfind("zipf:", 0) == 0) {
    const double skew = std::atof(prob.c_str() + 5);
    db = AssignZipfProbabilities(det, skew, seed + 1);
  } else {
    std::fprintf(stderr, "bad --prob '%s'\n", prob.c_str());
    return Usage();
  }

  if (Status s = WriteDataset(db, out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  DatabaseStats stats = db.ComputeStats();
  std::printf("wrote %zu transactions (%zu items, avg len %.2f) to %s\n",
              stats.num_transactions, stats.num_items, stats.avg_length,
              out_path);
  return 0;
}

int Stats(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto db = ReadDataset(args.positional[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  DatabaseStats s = db->ComputeStats();
  std::printf("transactions: %zu\nitems:        %zu\navg length:   %.3f\n"
              "density:      %.6f\nmean prob:    %.4f\n",
              s.num_transactions, s.num_items, s.avg_length, s.density,
              s.mean_probability);
  return 0;
}

void PrintResult(const MiningResult& result, const Args& args, double millis) {
  MiningResult shown = result;
  if (args.Get("closed") != nullptr) shown = FilterClosed(shown);
  if (args.Get("maximal") != nullptr) shown = FilterMaximal(shown);
  if (args.Get("top") != nullptr) {
    shown = TopK(shown, args.GetSize("top", 10));
  }
  std::printf("# %zu frequent itemsets (%.1f ms)\n", result.size(), millis);
  std::printf("%s", shown.ToString().c_str());
  if (args.Get("rules") != nullptr) {
    const double min_conf = args.GetDouble("rules", 0.8);
    auto rules = GenerateRules(result, min_conf);
    std::printf("# %zu rules at confidence >= %.2f\n", rules.size(), min_conf);
    for (const AssociationRule& rule : rules) {
      std::printf("  %s\n", rule.ToString().c_str());
    }
  }
}

int Mine(const Args& args) {
  if (args.positional.size() < 2 || args.Get("algorithm") == nullptr) {
    return Usage();
  }
  auto db = ReadDataset(args.positional[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::string algo_name = args.Get("algorithm");

  // One code path for both problem definitions: look the algorithm up in
  // the registry, assemble the matching MiningTask, run it through the
  // unified Miner facade over a FlatView built once.
  const MinerEntry* entry = MinerRegistry::Global().Find(algo_name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo_name.c_str());
    return Usage();
  }
  MiningTask task;
  if (entry->family == TaskFamily::kExpectedSupport) {
    if (args.Get("min-esup") == nullptr) {
      std::fprintf(stderr, "%s needs --min-esup\n", algo_name.c_str());
      return Usage();
    }
    ExpectedSupportParams params;
    params.min_esup = args.GetDouble("min-esup", 0.5);
    task = params;
  } else if (entry->family == TaskFamily::kProbabilistic) {
    if (args.Get("min-sup") == nullptr) {
      std::fprintf(stderr, "%s needs --min-sup\n", algo_name.c_str());
      return Usage();
    }
    ProbabilisticParams params;
    params.min_sup = args.GetDouble("min-sup", 0.5);
    params.pft = args.GetDouble("pft", 0.9);
    task = params;
  } else {
    if (args.Get("k") == nullptr) {
      std::fprintf(stderr, "%s needs --k\n", algo_name.c_str());
      return Usage();
    }
    TopKParams params;
    params.k = args.GetSize("k", 10);
    task = params;
  }

  // Execution configuration: every algorithm, threaded and optionally
  // sharded, goes through the same registry-driven experiment path.
  if (const char* kernel_name = args.Get("kernel")) {
    IntersectKernel kernel;
    if (!ParseIntersectKernel(kernel_name, &kernel)) {
      std::fprintf(stderr, "bad --kernel '%s' (auto|scalar|gallop|simd)\n",
                   kernel_name);
      return Usage();
    }
    SetIntersectKernel(kernel);
  }
  MinerOptions options;
  options.num_threads = args.GetSize("threads", 0);  // 0 = all hardware threads
  const std::size_t num_shards = args.GetSize("shards", 1);
  if (num_shards > 1 && entry->family != TaskFamily::kExpectedSupport) {
    std::fprintf(stderr, "--shards applies to expected-support algorithms only\n");
    return Usage();
  }
  FlatView view(*db);
  auto m = RunRegisteredExperiment(algo_name, view, task, options, num_shards);
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return 1;
  }
  PrintResult(m->result, args, m->millis);
  return 0;
}

int Main(int argc, char** argv) {
  std::optional<Args> args = Args::Parse(argc, argv);
  if (!args.has_value() || args->positional.empty()) return Usage();
  const std::string& command = args->positional[0];
  if (command == "generate") return Generate(*args);
  if (command == "stats") return Stats(*args);
  if (command == "mine") return Mine(*args);
  return Usage();
}

}  // namespace
}  // namespace ufim::cli

int main(int argc, char** argv) { return ufim::cli::Main(argc, argv); }
