// ufim_lint — the repo's convention checker. See ufim_lint_lib.h for
// the rule catalogue and the waiver syntax.
//
//   ufim_lint --root <repo> <path>...      # lint files/directories
//
// Paths are files or directories (searched recursively for .h/.cc).
// Rule scoping keys on the path *relative to --root* (default: the
// current directory), so run it from the repo root or pass --root.
// Exit: 0 clean, 1 violations, 2 usage or I/O error.
//
// CI runs `ufim_lint --root . src tools` (plus a CTest target doing the
// same), so a violation fails the build with a clickable diagnostic.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ufim_lint_lib.h"

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/// Repo-relative path with '/' separators — what rule scoping keys on.
std::string RelativePath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

int Usage() {
  std::fprintf(stderr,
               "usage: ufim_lint [--root <dir>] <file-or-dir>...\n"
               "lints .h/.cc files against the ufim conventions "
               "(see tools/ufim_lint_lib.h)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::fprintf(stderr, "ufim_lint: cannot read '%s'\n",
                   input.string().c_str());
      return 2;
    }
  }

  std::vector<ufim::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ufim_lint: cannot open '%s'\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    sources.push_back(
        ufim::lint::SourceFile{RelativePath(file, root), content.str()});
  }

  const std::vector<ufim::lint::Diagnostic> diagnostics =
      ufim::lint::Lint(sources);
  for (const ufim::lint::Diagnostic& d : diagnostics) {
    std::fprintf(stderr, "%s\n", ufim::lint::FormatDiagnostic(d).c_str());
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "ufim_lint: %zu violation%s in %zu files scanned\n",
                 diagnostics.size(), diagnostics.size() == 1 ? "" : "s",
                 sources.size());
    return 1;
  }
  return 0;
}
