#include "core/flat_view.h"

#include <algorithm>

#include "common/math_util.h"

namespace ufim {

FlatView::FlatView(const UncertainDatabase& db) {
  auto s = std::make_shared<Storage>();
  s->num_items = db.num_items();
  s->full_size = db.size();

  // Pass 1: sizes. Horizontal offsets directly; vertical postings counted
  // per item so both CSR arrays are filled without reallocation.
  std::size_t total_units = 0;
  s->txn_offsets.reserve(db.size() + 1);
  s->txn_offsets.push_back(0);
  std::vector<std::size_t> item_counts(s->num_items, 0);
  for (const Transaction& t : db) {
    total_units += t.size();
    s->txn_offsets.push_back(total_units);
    for (const ProbItem& u : t) ++item_counts[u.item];
  }

  s->units.reserve(total_units);
  s->item_offsets.assign(s->num_items + 1, 0);
  for (std::size_t i = 0; i < s->num_items; ++i) {
    s->item_offsets[i + 1] = s->item_offsets[i] + item_counts[i];
  }
  s->posting_tids.resize(total_units);
  s->posting_probs.resize(total_units);
  s->item_esup.assign(s->num_items, 0.0);
  s->item_sq_sum.assign(s->num_items, 0.0);

  // Pass 2: fill. Transactions are visited in ascending tid order, so
  // each item's postings come out tid-sorted by construction.
  std::vector<std::size_t> fill(s->item_offsets.begin(),
                                s->item_offsets.end() - 1);
  std::vector<KahanSum> esup(s->num_items);
  for (std::size_t ti = 0; ti < db.size(); ++ti) {
    for (const ProbItem& u : db[ti]) {
      s->units.push_back(u);
      const std::size_t pos = fill[u.item]++;
      s->posting_tids[pos] = static_cast<TransactionId>(ti);
      s->posting_probs[pos] = u.prob;
      esup[u.item].Add(u.prob);
      s->item_sq_sum[u.item] += u.prob * u.prob;
    }
  }
  for (std::size_t i = 0; i < s->num_items; ++i) {
    s->item_esup[i] = esup[i].value();
  }

  begin_ = 0;
  end_ = s->full_size;
  storage_ = std::move(s);
}

std::size_t FlatView::num_units() const {
  return storage_->txn_offsets[end_] - storage_->txn_offsets[begin_];
}

double FlatView::Probability(TransactionId t, ItemId item) const {
  std::span<const ProbItem> units = TransactionUnits(t);
  auto it = std::lower_bound(
      units.begin(), units.end(), item,
      [](const ProbItem& u, ItemId needle) { return u.item < needle; });
  if (it == units.end() || it->item != item) return 0.0;
  return it->prob;
}

std::pair<std::size_t, std::size_t> FlatView::PostingRange(ItemId item) const {
  const Storage& s = *storage_;
  if (item >= s.num_items) return {0, 0};
  std::size_t begin = s.item_offsets[item];
  std::size_t end = s.item_offsets[item + 1];
  // Sliced view: cut where the ascending tids cross each slice boundary.
  if (begin_ > 0) {
    begin = static_cast<std::size_t>(
        std::lower_bound(s.posting_tids.begin() + begin,
                         s.posting_tids.begin() + end,
                         static_cast<TransactionId>(begin_)) -
        s.posting_tids.begin());
  }
  if (end_ < s.full_size) {
    end = static_cast<std::size_t>(
        std::lower_bound(s.posting_tids.begin() + begin,
                         s.posting_tids.begin() + end,
                         static_cast<TransactionId>(end_)) -
        s.posting_tids.begin());
  }
  return {begin, end};
}

std::span<const TransactionId> FlatView::PostingTids(ItemId item) const {
  auto [begin, end] = PostingRange(item);
  return {storage_->posting_tids.data() + begin, end - begin};
}

std::span<const double> FlatView::PostingProbs(ItemId item) const {
  auto [begin, end] = PostingRange(item);
  return {storage_->posting_probs.data() + begin, end - begin};
}

void FlatView::CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                            std::vector<double>& probs) const {
  const std::span<const TransactionId> t = PostingTids(item);
  const std::span<const double> p = PostingProbs(item);
  tids.assign(t.begin(), t.end());
  probs.assign(p.begin(), p.end());
}

double FlatView::ItemExpectedSupport(ItemId item) const {
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_esup[item];
  KahanSum sum;
  for (double p : PostingProbs(item)) sum.Add(p);
  return sum.value();
}

double FlatView::ItemSquaredSum(ItemId item) const {
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_sq_sum[item];
  double sum = 0.0;
  for (double p : PostingProbs(item)) sum += p * p;
  return sum;
}

double FlatView::ExpectedSupport(const Itemset& itemset) const {
  KahanSum sum;
  for (double p : ContainmentProbabilities(itemset)) sum.Add(p);
  return sum.value();
}

std::vector<double> FlatView::ContainmentProbabilities(
    const Itemset& itemset) const {
  std::vector<double> out;
  JoinPostings(itemset, [&out](std::size_t, std::size_t, TransactionId,
                               double prod) {
    out.push_back(prod);
    return true;
  });
  return out;
}

FlatView FlatView::Slice(std::size_t lo, std::size_t hi) const {
  const std::size_t n = num_transactions();
  lo = std::min(lo, n);
  hi = std::min(std::max(hi, lo), n);
  return FlatView(storage_, begin_ + lo, begin_ + hi);
}

FlatView FlatView::Prefix(std::size_t n) const { return Slice(0, n); }

}  // namespace ufim
