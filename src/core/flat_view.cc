#include "core/flat_view.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"

namespace ufim {

void FlatView::BuildStorage(const UncertainDatabase& db, Storage& s) {
  s.num_items = db.num_items();
  s.full_size = db.size();
  s.base_size = db.size();

  // Pass 1: sizes. Horizontal offsets directly; vertical postings counted
  // per item so both CSR arrays are filled without reallocation.
  Storage::BaseArrays b;
  std::size_t total_units = 0;
  b.txn_offsets.reserve(db.size() + 1);
  b.txn_offsets.push_back(0);
  std::vector<std::size_t> item_counts(s.num_items, 0);
  for (const Transaction& t : db) {
    total_units += t.size();
    b.txn_offsets.push_back(total_units);
    for (const ProbItem& u : t) ++item_counts[u.item];
  }

  b.units.reserve(total_units);
  b.item_offsets.assign(s.num_items + 1, 0);
  for (std::size_t i = 0; i < s.num_items; ++i) {
    b.item_offsets[i + 1] = b.item_offsets[i] + item_counts[i];
  }
  b.posting_tids.resize(total_units);
  b.posting_probs.resize(total_units);
  s.item_esup.assign(s.num_items, 0.0);
  s.item_sq_sum.assign(s.num_items, 0.0);
  s.item_esup_acc.assign(s.num_items, KahanSum());

  // Pass 2: fill. Transactions are visited in ascending tid order, so
  // each item's postings come out tid-sorted by construction. The Kahan
  // accumulators are retained in the storage: a streaming view continues
  // them across appends, which keeps the cached moments bit-identical to
  // a from-scratch rebuild at every point of the stream.
  std::vector<std::size_t> fill(b.item_offsets.begin(),
                                b.item_offsets.end() - 1);
  for (std::size_t ti = 0; ti < db.size(); ++ti) {
    for (const ProbItem& u : db[ti]) {
      b.units.push_back(u);
      const std::size_t pos = fill[u.item]++;
      b.posting_tids[pos] = static_cast<TransactionId>(ti);
      b.posting_probs[pos] = u.prob;
      s.item_esup_acc[u.item].Add(u.prob);
      s.item_sq_sum[u.item] += u.prob * u.prob;
    }
  }
  for (std::size_t i = 0; i < s.num_items; ++i) {
    s.item_esup[i] = s.item_esup_acc[i].value();
  }
  s.base = std::make_shared<const Storage::BaseArrays>(std::move(b));

  // Empty delta region (appended to by StreamingFlatView only).
  s.delta_txn_offsets.assign(1, 0);
}

FlatView::FlatView(const UncertainDatabase& db) {
  auto s = std::make_shared<Storage>();
  BuildStorage(db, *s);
  begin_ = 0;
  end_ = s->full_size;
  born_generation_ = 0;  // freshly built storage starts at generation 0
  storage_ = std::move(s);
}

std::size_t FlatView::UnitsBefore(std::size_t t) const {
  CheckNotStale();
  const Storage& s = *storage_;
  if (t <= s.base_size) return s.base->txn_offsets[t];
  return s.base->units.size() + s.delta_txn_offsets[t - s.base_size];
}

std::size_t FlatView::num_units() const {
  return UnitsBefore(end_) - UnitsBefore(begin_);
}

double FlatView::Probability(TransactionId t, ItemId item) const {
  std::span<const ProbItem> units = TransactionUnits(t);
  auto it = std::lower_bound(
      units.begin(), units.end(), item,
      [](const ProbItem& u, ItemId needle) { return u.item < needle; });
  if (it == units.end() || it->item != item) return 0.0;
  return it->prob;
}

SegmentedPostings FlatView::PostingSegments(ItemId item) const {
  CheckNotStale();
  const Storage& s = *storage_;
  SegmentedPostings out;

  // Base segment: the item's base CSR range, cut to the viewed tids
  // [begin_, min(end_, base_size)).
  if (item < s.base_num_items() && begin_ < s.base_size) {
    const Storage::BaseArrays& b = *s.base;
    std::size_t lo = b.item_offsets[item];
    std::size_t hi = b.item_offsets[item + 1];
    if (begin_ > 0) {
      lo = static_cast<std::size_t>(
          std::lower_bound(b.posting_tids.begin() + lo,
                           b.posting_tids.begin() + hi,
                           static_cast<TransactionId>(begin_)) -
          b.posting_tids.begin());
    }
    if (end_ < s.base_size) {
      hi = static_cast<std::size_t>(
          std::lower_bound(b.posting_tids.begin() + lo,
                           b.posting_tids.begin() + hi,
                           static_cast<TransactionId>(end_)) -
          b.posting_tids.begin());
    }
    if (hi > lo) {
      out.seg[out.count++] = PostingSegment{b.posting_tids.data() + lo,
                                            b.posting_probs.data() + lo,
                                            hi - lo};
    }
  }

  // Delta segment: the item's tail postings, cut to the viewed tids
  // [max(begin_, base_size), end_).
  if (end_ > s.base_size && item < s.delta_tids.size() &&
      !s.delta_tids[item].empty()) {
    const std::vector<TransactionId>& dt = s.delta_tids[item];
    std::size_t lo = 0;
    std::size_t hi = dt.size();
    if (begin_ > s.base_size) {
      lo = static_cast<std::size_t>(
          std::lower_bound(dt.begin(), dt.end(),
                           static_cast<TransactionId>(begin_)) -
          dt.begin());
    }
    if (end_ < s.full_size) {
      hi = static_cast<std::size_t>(
          std::lower_bound(dt.begin() + lo, dt.end(),
                           static_cast<TransactionId>(end_)) -
          dt.begin());
    }
    if (hi > lo) {
      out.seg[out.count++] = PostingSegment{
          dt.data() + lo, s.delta_probs[item].data() + lo, hi - lo};
    }
  }

  out.total = (out.count > 0 ? out.seg[0].len : 0) +
              (out.count > 1 ? out.seg[1].len : 0);
  return out;
}

namespace {

/// Loud in every build (not just -DNDEBUG-off): returning only the base
/// segment here would silently drop the delta postings and corrupt
/// every downstream support.
[[noreturn]] void DieOnSeamSpanningPostings() {
  std::fprintf(stderr,
               "FlatView::PostingTids/PostingProbs: postings span the "
               "base/delta seam; use PostingSegments\n");
  std::abort();
}

}  // namespace

void FlatView::DieOnStaleView() {
  std::fprintf(stderr,
               "FlatView: stale view — the backing streaming storage was "
               "mutated (Append/Compact/RollbackAppend) after this view was "
               "obtained; re-take View() after mutating, or hold a "
               "StreamingFlatView::Snapshot() to read across mutations\n");
  std::abort();
}

std::span<const TransactionId> FlatView::PostingTids(ItemId item) const {
  const SegmentedPostings p = PostingSegments(item);
  if (p.count == 0) return {};
  if (p.count > 1) DieOnSeamSpanningPostings();
  return {p.seg[0].tids, p.seg[0].len};
}

std::span<const double> FlatView::PostingProbs(ItemId item) const {
  const SegmentedPostings p = PostingSegments(item);
  if (p.count == 0) return {};
  if (p.count > 1) DieOnSeamSpanningPostings();
  return {p.seg[0].probs, p.seg[0].len};
}

void FlatView::CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                            std::vector<double>& probs) const {
  const SegmentedPostings p = PostingSegments(item);
  tids.clear();
  probs.clear();
  tids.reserve(p.total);
  probs.reserve(p.total);
  for (std::size_t si = 0; si < p.count; ++si) {
    tids.insert(tids.end(), p.seg[si].tids, p.seg[si].tids + p.seg[si].len);
    probs.insert(probs.end(), p.seg[si].probs, p.seg[si].probs + p.seg[si].len);
  }
}

void FlatView::AppendPostingProbs(ItemId item,
                                  std::vector<double>& probs) const {
  const SegmentedPostings p = PostingSegments(item);
  probs.reserve(probs.size() + p.total);
  for (std::size_t si = 0; si < p.count; ++si) {
    probs.insert(probs.end(), p.seg[si].probs, p.seg[si].probs + p.seg[si].len);
  }
}

double FlatView::ItemExpectedSupport(ItemId item) const {
  CheckNotStale();
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_esup[item];
  // Segments in tid order give the same Add sequence a contiguous
  // rebuild of the slice would produce.
  const SegmentedPostings p = PostingSegments(item);
  KahanSum sum;
  for (std::size_t si = 0; si < p.count; ++si) {
    for (std::size_t k = 0; k < p.seg[si].len; ++k) sum.Add(p.seg[si].probs[k]);
  }
  return sum.value();
}

double FlatView::ItemSquaredSum(ItemId item) const {
  CheckNotStale();
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_sq_sum[item];
  const SegmentedPostings p = PostingSegments(item);
  double sum = 0.0;
  for (std::size_t si = 0; si < p.count; ++si) {
    for (std::size_t k = 0; k < p.seg[si].len; ++k) {
      sum += p.seg[si].probs[k] * p.seg[si].probs[k];
    }
  }
  return sum;
}

double FlatView::ExpectedSupport(const Itemset& itemset) const {
  KahanSum sum;
  for (double p : ContainmentProbabilities(itemset)) sum.Add(p);
  return sum.value();
}

std::vector<double> FlatView::ContainmentProbabilities(
    const Itemset& itemset) const {
  std::vector<double> out;
  JoinScratch scratch;
  JoinPostingsBatched(itemset, scratch, [&out](const JoinBatch& batch) {
    out.insert(out.end(), batch.prods.begin(), batch.prods.end());
    return true;
  });
  return out;
}

/// Folds one member side into the survivor columns: intersects the
/// `n` ascending survivor tids in `src_t` against the member's remaining
/// segments and writes the matches (tids and running products) to the
/// front of `st` / `sp`. Segments are tid-partitioned, so the survivor
/// range splits at the next segment's first tid and each piece
/// intersects one contiguous segment — the match set, its order, and the
/// per-tid multiplication are exactly those of a contiguous member
/// array, whatever the physical layout.
///
/// In-place operation (`src_t == st`) is safe: matches within a piece
/// ascend, pieces are consumed left to right, and the write cursor never
/// passes the read cursor.
std::size_t FlatView::FoldMember(const TransactionId* src_t,
                                 const double* src_p, std::size_t n,
                                 const JoinScratch::Side& m, TransactionId* st,
                                 double* sp, std::uint32_t* ma,
                                 std::uint32_t* mb) {
  std::size_t out = 0;
  std::size_t doff = 0;
  for (std::size_t si = m.cur; si < m.postings.count && doff < n; ++si) {
    const PostingSegment& seg = m.postings.seg[si];
    const std::size_t mpos = (si == m.cur) ? m.pos : 0;
    if (mpos >= seg.len) continue;
    // Survivor tids below the next segment's first tid can only match
    // this segment (later survivors only later segments).
    std::size_t dsub = n - doff;
    if (si + 1 < m.postings.count) {
      dsub = static_cast<std::size_t>(
          std::lower_bound(src_t + doff, src_t + n,
                           m.postings.seg[si + 1].tids[0]) -
          (src_t + doff));
    }
    if (dsub == 0) continue;
    const std::size_t k = IntersectIndices(src_t + doff, dsub, seg.tids + mpos,
                                           seg.len - mpos, ma, mb);
    const double* const mp = seg.probs + mpos;
    for (std::size_t j = 0; j < k; ++j) {
      st[out + j] = src_t[doff + ma[j]];
      sp[out + j] = src_p[doff + ma[j]] * mp[mb[j]];
    }
    out += k;
    doff += dsub;
  }
  return out;
}

/// Advances a side's segment cursor past every posting with tid <=
/// `last_tid` (future driver tids are strictly greater, so those
/// postings can never match again).
void FlatView::AdvanceSide(JoinScratch::Side& m, TransactionId last_tid) {
  while (m.cur < m.postings.count) {
    const PostingSegment& seg = m.postings.seg[m.cur];
    const std::size_t np = static_cast<std::size_t>(
        std::upper_bound(seg.tids + m.pos, seg.tids + seg.len, last_tid) -
        seg.tids);
    m.pos = np;
    if (np < seg.len) return;
    ++m.cur;
    m.pos = 0;
  }
}

bool FlatView::BeginJoin(const Itemset& itemset, JoinScratch& s) const {
  const std::vector<ItemId>& items = itemset.items();
  if (items.empty()) return false;

  // Driver = the shortest member posting list by *logical* length (first
  // minimal index, the historical tie-break — results depend on it
  // through the product order, so it must stay stable and must not see
  // the physical segmentation).
  std::size_t driver = 0;
  std::size_t shortest = PostingCount(items[0]);
  for (std::size_t k = 1; k < items.size(); ++k) {
    const std::size_t len = PostingCount(items[k]);
    if (len < shortest) {
      shortest = len;
      driver = k;
    }
  }
  if (shortest == 0) return false;

  s.members_.clear();
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (k == driver) continue;
    JoinScratch::Side side;
    side.postings = PostingSegments(items[k]);
    s.members_.push_back(side);
  }
  s.driver_postings_ = PostingSegments(items[driver]);
  s.driver_len_ = shortest;
  s.driver_pos_ = 0;
  s.EnsureCapacity(kJoinBatchTids);
  return true;
}

bool FlatView::NextJoinBatch(JoinScratch& s, JoinBatch& batch) const {
  // The scratch holds raw pointers into the storage between batches, so
  // a mutation landing mid-join must trip here, not just at BeginJoin.
  CheckNotStale();
  if (s.driver_pos_ >= s.driver_len_) return false;
  const std::size_t lo = s.driver_pos_;
  const std::size_t len = std::min(kJoinBatchTids, s.driver_len_ - lo);
  s.driver_pos_ = lo + len;

  batch.driver_done = s.driver_pos_;
  batch.driver_len = s.driver_len_;

  // Locate the batch's driver postings. A batch inside one segment is
  // used zero-copy; a batch straddling the base/delta seam (at most one
  // per join) is materialized into the survivor columns first — either
  // way the downstream folds see one contiguous ascending tid run, so
  // the batch structure is identical to a contiguous rebuild's.
  TransactionId* const st = s.tids_.data();
  double* const sp = s.prods_.data();
  const std::size_t b0 =
      s.driver_postings_.count > 0 ? s.driver_postings_.seg[0].len : 0;
  const TransactionId* src_t;
  const double* src_p;
  if (lo + len <= b0 || lo >= b0) {
    const bool in_delta = lo >= b0;
    const PostingSegment& seg = s.driver_postings_.seg[in_delta ? 1 : 0];
    const std::size_t off = in_delta ? lo - b0 : lo;
    src_t = seg.tids + off;
    src_p = seg.probs + off;
  } else {
    const PostingSegment& a = s.driver_postings_.seg[0];
    const PostingSegment& b = s.driver_postings_.seg[1];
    const std::size_t head = b0 - lo;
    std::copy_n(a.tids + lo, head, st);
    std::copy_n(a.probs + lo, head, sp);
    std::copy_n(b.tids, len - head, st + head);
    std::copy_n(b.probs, len - head, sp + head);
    src_t = st;
    src_p = sp;
  }

  if (s.members_.empty()) {
    // Single-item join: the batch is the driver slice itself, no copy
    // (beyond the at-most-once seam materialization above).
    batch.tids = {src_t, len};
    batch.prods = {src_p, len};
    return true;
  }

  const TransactionId last_tid = src_t[len - 1];

  // Fold members in fixed member order: intersect the current survivor
  // tids against the member's segments, then multiply the member's
  // probabilities into the running products. The first fold reads from
  // the driver arrays into the scratch columns; subsequent folds compact
  // in place.
  std::size_t survivors = len;
  for (JoinScratch::Side& m : s.members_) {
    survivors = FoldMember(src_t, src_p, survivors, m, st, sp,
                           s.match_a_.data(), s.match_b_.data());
    src_t = st;
    src_p = sp;
    if (survivors == 0) break;
  }

  // Advance every member past this batch's driver range.
  for (JoinScratch::Side& m : s.members_) AdvanceSide(m, last_tid);

  batch.tids = {st, survivors};
  batch.prods = {sp, survivors};
  return true;
}

FlatView::ListMatches FlatView::JoinWithPostings(
    std::span<const TransactionId> seq_tids, ItemId item,
    JoinScratch& s) const {
  const SegmentedPostings p = PostingSegments(item);
  s.EnsureCapacity(std::min(seq_tids.size(), p.total));
  std::uint32_t* const ma = s.match_a_.data();
  std::uint32_t* const mb = s.match_b_.data();
  std::size_t total = 0;
  std::size_t doff = 0;
  for (std::size_t si = 0; si < p.count && doff < seq_tids.size(); ++si) {
    const PostingSegment& seg = p.seg[si];
    // Sequence positions below the next segment's first tid can only
    // match this segment (tid-partitioned segments, as in FoldMember).
    std::size_t dsub = seq_tids.size() - doff;
    if (si + 1 < p.count) {
      dsub = static_cast<std::size_t>(
          std::lower_bound(seq_tids.begin() + doff, seq_tids.end(),
                           p.seg[si + 1].tids[0]) -
          (seq_tids.begin() + doff));
    }
    if (dsub == 0) continue;
    const std::size_t k =
        IntersectIndices(seq_tids.data() + doff, dsub, seg.tids, seg.len,
                         ma + total, mb + total);
    for (std::size_t j = 0; j < k; ++j) {
      ma[total + j] += static_cast<std::uint32_t>(doff);
      s.prods_[total + j] = seg.probs[mb[total + j]];
    }
    total += k;
    doff += dsub;
  }
  return ListMatches{{ma, total}, {s.prods_.data(), total}};
}

FlatView::RankProjection FlatView::ProjectOntoRanks(
    std::span<const ItemId> rank_to_item) const {
  RankProjection out;
  const std::size_t n_txn = num_transactions();
  const TransactionId first = begin_tid();
  out.txn_offsets.assign(n_txn + 1, 0);

  // Counting pass (counts shifted by one so the in-place prefix sum
  // below yields offsets directly).
  for (const ItemId item : rank_to_item) {
    const SegmentedPostings p = PostingSegments(item);
    for (std::size_t si = 0; si < p.count; ++si) {
      for (std::size_t k = 0; k < p.seg[si].len; ++k) {
        ++out.txn_offsets[p.seg[si].tids[k] - first + 1];
      }
    }
  }
  for (std::size_t t = 0; t < n_txn; ++t) {
    out.txn_offsets[t + 1] += out.txn_offsets[t];
  }
  out.units.resize(out.txn_offsets.back());

  // Fill pass in ascending rank order: each row comes out rank-sorted
  // by construction.
  std::vector<std::uint32_t> fill(out.txn_offsets.begin(),
                                  out.txn_offsets.end() - 1);
  for (std::uint32_t r = 0; r < rank_to_item.size(); ++r) {
    const SegmentedPostings p = PostingSegments(rank_to_item[r]);
    for (std::size_t si = 0; si < p.count; ++si) {
      const PostingSegment& seg = p.seg[si];
      for (std::size_t k = 0; k < seg.len; ++k) {
        out.units[fill[seg.tids[k] - first]++] = RankUnit{r, seg.probs[k]};
      }
    }
  }
  return out;
}

FlatView FlatView::Slice(std::size_t lo, std::size_t hi) const {
  // Slices inherit the parent's birth generation (slicing a stale view
  // must not launder it into a fresh-looking one).
  CheckNotStale();
  const std::size_t n = num_transactions();
  lo = std::min(lo, n);
  hi = std::min(std::max(hi, lo), n);
  return FlatView(storage_, begin_ + lo, begin_ + hi, born_generation_);
}

FlatView FlatView::Prefix(std::size_t n) const { return Slice(0, n); }

}  // namespace ufim
