#include "core/flat_view.h"

#include <algorithm>

#include "common/math_util.h"

namespace ufim {

FlatView::FlatView(const UncertainDatabase& db) {
  auto s = std::make_shared<Storage>();
  s->num_items = db.num_items();
  s->full_size = db.size();

  // Pass 1: sizes. Horizontal offsets directly; vertical postings counted
  // per item so both CSR arrays are filled without reallocation.
  std::size_t total_units = 0;
  s->txn_offsets.reserve(db.size() + 1);
  s->txn_offsets.push_back(0);
  std::vector<std::size_t> item_counts(s->num_items, 0);
  for (const Transaction& t : db) {
    total_units += t.size();
    s->txn_offsets.push_back(total_units);
    for (const ProbItem& u : t) ++item_counts[u.item];
  }

  s->units.reserve(total_units);
  s->item_offsets.assign(s->num_items + 1, 0);
  for (std::size_t i = 0; i < s->num_items; ++i) {
    s->item_offsets[i + 1] = s->item_offsets[i] + item_counts[i];
  }
  s->posting_tids.resize(total_units);
  s->posting_probs.resize(total_units);
  s->item_esup.assign(s->num_items, 0.0);
  s->item_sq_sum.assign(s->num_items, 0.0);

  // Pass 2: fill. Transactions are visited in ascending tid order, so
  // each item's postings come out tid-sorted by construction.
  std::vector<std::size_t> fill(s->item_offsets.begin(),
                                s->item_offsets.end() - 1);
  std::vector<KahanSum> esup(s->num_items);
  for (std::size_t ti = 0; ti < db.size(); ++ti) {
    for (const ProbItem& u : db[ti]) {
      s->units.push_back(u);
      const std::size_t pos = fill[u.item]++;
      s->posting_tids[pos] = static_cast<TransactionId>(ti);
      s->posting_probs[pos] = u.prob;
      esup[u.item].Add(u.prob);
      s->item_sq_sum[u.item] += u.prob * u.prob;
    }
  }
  for (std::size_t i = 0; i < s->num_items; ++i) {
    s->item_esup[i] = esup[i].value();
  }

  begin_ = 0;
  end_ = s->full_size;
  storage_ = std::move(s);
}

std::size_t FlatView::num_units() const {
  return storage_->txn_offsets[end_] - storage_->txn_offsets[begin_];
}

double FlatView::Probability(TransactionId t, ItemId item) const {
  std::span<const ProbItem> units = TransactionUnits(t);
  auto it = std::lower_bound(
      units.begin(), units.end(), item,
      [](const ProbItem& u, ItemId needle) { return u.item < needle; });
  if (it == units.end() || it->item != item) return 0.0;
  return it->prob;
}

std::pair<std::size_t, std::size_t> FlatView::PostingRange(ItemId item) const {
  const Storage& s = *storage_;
  if (item >= s.num_items) return {0, 0};
  std::size_t begin = s.item_offsets[item];
  std::size_t end = s.item_offsets[item + 1];
  // Sliced view: cut where the ascending tids cross each slice boundary.
  if (begin_ > 0) {
    begin = static_cast<std::size_t>(
        std::lower_bound(s.posting_tids.begin() + begin,
                         s.posting_tids.begin() + end,
                         static_cast<TransactionId>(begin_)) -
        s.posting_tids.begin());
  }
  if (end_ < s.full_size) {
    end = static_cast<std::size_t>(
        std::lower_bound(s.posting_tids.begin() + begin,
                         s.posting_tids.begin() + end,
                         static_cast<TransactionId>(end_)) -
        s.posting_tids.begin());
  }
  return {begin, end};
}

std::span<const TransactionId> FlatView::PostingTids(ItemId item) const {
  auto [begin, end] = PostingRange(item);
  return {storage_->posting_tids.data() + begin, end - begin};
}

std::span<const double> FlatView::PostingProbs(ItemId item) const {
  auto [begin, end] = PostingRange(item);
  return {storage_->posting_probs.data() + begin, end - begin};
}

void FlatView::CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                            std::vector<double>& probs) const {
  const std::span<const TransactionId> t = PostingTids(item);
  const std::span<const double> p = PostingProbs(item);
  tids.assign(t.begin(), t.end());
  probs.assign(p.begin(), p.end());
}

double FlatView::ItemExpectedSupport(ItemId item) const {
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_esup[item];
  KahanSum sum;
  for (double p : PostingProbs(item)) sum.Add(p);
  return sum.value();
}

double FlatView::ItemSquaredSum(ItemId item) const {
  if (item >= storage_->num_items) return 0.0;
  if (IsFullView()) return storage_->item_sq_sum[item];
  double sum = 0.0;
  for (double p : PostingProbs(item)) sum += p * p;
  return sum;
}

double FlatView::ExpectedSupport(const Itemset& itemset) const {
  KahanSum sum;
  for (double p : ContainmentProbabilities(itemset)) sum.Add(p);
  return sum.value();
}

std::vector<double> FlatView::ContainmentProbabilities(
    const Itemset& itemset) const {
  std::vector<double> out;
  JoinScratch scratch;
  JoinPostingsBatched(itemset, scratch, [&out](const JoinBatch& batch) {
    out.insert(out.end(), batch.prods.begin(), batch.prods.end());
    return true;
  });
  return out;
}

bool FlatView::BeginJoin(const Itemset& itemset, JoinScratch& s) const {
  const std::vector<ItemId>& items = itemset.items();
  if (items.empty()) return false;

  // Driver = the shortest member posting list (first minimal index, the
  // historical tie-break — results depend on it through the product
  // order, so it must stay stable).
  std::size_t driver = 0;
  std::size_t shortest = PostingTids(items[0]).size();
  for (std::size_t k = 1; k < items.size(); ++k) {
    const std::size_t len = PostingTids(items[k]).size();
    if (len < shortest) {
      shortest = len;
      driver = k;
    }
  }
  if (shortest == 0) return false;

  s.members_.clear();
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (k == driver) continue;
    const std::span<const TransactionId> tids = PostingTids(items[k]);
    s.members_.push_back(JoinScratch::Member{
        tids.data(), PostingProbs(items[k]).data(), tids.size(), 0});
  }
  const std::span<const TransactionId> dtids = PostingTids(items[driver]);
  s.driver_tids_ = dtids.data();
  s.driver_probs_ = PostingProbs(items[driver]).data();
  s.driver_len_ = dtids.size();
  s.driver_pos_ = 0;
  s.EnsureCapacity(kJoinBatchTids);
  return true;
}

bool FlatView::NextJoinBatch(JoinScratch& s, JoinBatch& batch) const {
  if (s.driver_pos_ >= s.driver_len_) return false;
  const std::size_t lo = s.driver_pos_;
  const std::size_t len = std::min(kJoinBatchTids, s.driver_len_ - lo);
  s.driver_pos_ = lo + len;

  batch.driver_done = s.driver_pos_;
  batch.driver_len = s.driver_len_;

  if (s.members_.empty()) {
    // Single-item join: the batch is the driver slice itself, no copy.
    batch.tids = {s.driver_tids_ + lo, len};
    batch.prods = {s.driver_probs_ + lo, len};
    return true;
  }

  // Phase 1+2 per member, in fixed member order: intersect the current
  // survivor tids against the member's postings, then gather the
  // member's probabilities into the running products. The first member
  // reads from the driver arrays into the scratch columns; subsequent
  // members compact in place (match positions ascend, so slot k is
  // written from a slot >= k — forward-safe).
  TransactionId* const st = s.tids_.data();
  double* const sp = s.prods_.data();
  const std::uint32_t* const ma = s.match_a_.data();
  const std::uint32_t* const mb = s.match_b_.data();
  std::size_t survivors;
  {
    JoinScratch::Member& m = s.members_[0];
    survivors = IntersectIndices(s.driver_tids_ + lo, len, m.tids + m.pos,
                                 m.len - m.pos, s.match_a_.data(),
                                 s.match_b_.data());
    const double* const mp = m.probs + m.pos;
    for (std::size_t k = 0; k < survivors; ++k) {
      st[k] = s.driver_tids_[lo + ma[k]];
      sp[k] = s.driver_probs_[lo + ma[k]] * mp[mb[k]];
    }
  }
  for (std::size_t mi = 1; mi < s.members_.size() && survivors > 0; ++mi) {
    JoinScratch::Member& m = s.members_[mi];
    const std::size_t n = IntersectIndices(st, survivors, m.tids + m.pos,
                                           m.len - m.pos, s.match_a_.data(),
                                           s.match_b_.data());
    const double* const mp = m.probs + m.pos;
    for (std::size_t k = 0; k < n; ++k) {
      st[k] = st[ma[k]];
      sp[k] = sp[ma[k]] * mp[mb[k]];
    }
    survivors = n;
  }

  // Advance every member past this batch's driver range: future driver
  // tids are strictly greater, so postings <= the batch's last tid can
  // never match again.
  const TransactionId last_tid = s.driver_tids_[lo + len - 1];
  for (JoinScratch::Member& m : s.members_) {
    m.pos = static_cast<std::size_t>(
        std::upper_bound(m.tids + m.pos, m.tids + m.len, last_tid) - m.tids);
  }

  batch.tids = {st, survivors};
  batch.prods = {sp, survivors};
  return true;
}

FlatView::ListMatches FlatView::JoinWithPostings(
    std::span<const TransactionId> seq_tids, ItemId item,
    JoinScratch& s) const {
  const std::span<const TransactionId> tids = PostingTids(item);
  const std::span<const double> probs = PostingProbs(item);
  s.EnsureCapacity(std::min(seq_tids.size(), tids.size()));
  const std::size_t n =
      IntersectIndices(seq_tids.data(), seq_tids.size(), tids.data(),
                       tids.size(), s.match_a_.data(), s.match_b_.data());
  for (std::size_t k = 0; k < n; ++k) {
    s.prods_[k] = probs[s.match_b_[k]];
  }
  return ListMatches{{s.match_a_.data(), n}, {s.prods_.data(), n}};
}

FlatView::RankProjection FlatView::ProjectOntoRanks(
    std::span<const ItemId> rank_to_item) const {
  RankProjection out;
  const std::size_t n_txn = num_transactions();
  const TransactionId first = begin_tid();
  out.txn_offsets.assign(n_txn + 1, 0);

  // Counting pass (counts shifted by one so the in-place prefix sum
  // below yields offsets directly).
  for (const ItemId item : rank_to_item) {
    for (const TransactionId t : PostingTids(item)) {
      ++out.txn_offsets[t - first + 1];
    }
  }
  for (std::size_t t = 0; t < n_txn; ++t) {
    out.txn_offsets[t + 1] += out.txn_offsets[t];
  }
  out.units.resize(out.txn_offsets.back());

  // Fill pass in ascending rank order: each row comes out rank-sorted
  // by construction.
  std::vector<std::uint32_t> fill(out.txn_offsets.begin(),
                                  out.txn_offsets.end() - 1);
  for (std::uint32_t r = 0; r < rank_to_item.size(); ++r) {
    const std::span<const TransactionId> tids = PostingTids(rank_to_item[r]);
    const std::span<const double> probs = PostingProbs(rank_to_item[r]);
    for (std::size_t k = 0; k < tids.size(); ++k) {
      out.units[fill[tids[k] - first]++] = RankUnit{r, probs[k]};
    }
  }
  return out;
}

FlatView FlatView::Slice(std::size_t lo, std::size_t hi) const {
  const std::size_t n = num_transactions();
  lo = std::min(lo, n);
  hi = std::min(std::max(hi, lo), n);
  return FlatView(storage_, begin_ + lo, begin_ + hi);
}

FlatView FlatView::Prefix(std::size_t n) const { return Slice(0, n); }

}  // namespace ufim
