#include "core/sharded_miner.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "common/math_util.h"
#include "common/thread_pool.h"

namespace ufim {

void RecountExpectedCandidates(const FlatView& view,
                               const std::vector<Itemset>& singles,
                               const std::vector<Itemset>& larger,
                               double threshold, std::size_t num_threads,
                               MiningResult& result,
                               const RunContext* context) {
  PollRunContext(context);  // checkpoint: recount phase entry
  ++result.counters().database_scans;
  result.counters().candidates_generated += singles.size() + larger.size();

  for (const Itemset& s : singles) {
    const ItemId item = s.items().front();
    const double esup = view.ItemExpectedSupport(item);
    if (esup >= threshold) {
      FrequentItemset fi;
      fi.itemset = s;
      fi.expected_support = esup;
      fi.variance = esup - view.ItemSquaredSum(item);
      result.Add(std::move(fi));
    }
  }

  std::vector<std::pair<double, double>> moments(larger.size());
  std::vector<JoinScratch> scratches(
      ParallelChunkCount(larger.size(), num_threads));
  ParallelForChunks(larger.size(), num_threads, [&](std::size_t chunk,
                                                    std::size_t lo,
                                                    std::size_t hi) {
    JoinScratch& scratch = scratches[chunk];
    for (std::size_t c = lo; c < hi; ++c) {
      PollRunContext(context);  // checkpoint: one per recounted candidate
      KahanSum esup;
      double sq_sum = 0.0;
      view.JoinPostingsBatched(larger[c], scratch, [&](const JoinBatch& b) {
        for (const double prod : b.prods) {
          esup.Add(prod);
          sq_sum += prod * prod;
        }
        return true;
      });
      moments[c] = {esup.value(), sq_sum};
    }
  }, context);
  for (std::size_t c = 0; c < larger.size(); ++c) {
    if (moments[c].first >= threshold) {
      FrequentItemset fi;
      fi.itemset = larger[c];
      fi.expected_support = moments[c].first;
      fi.variance = moments[c].first - moments[c].second;
      result.Add(std::move(fi));
    }
  }
}

ShardedMiner::ShardedMiner(std::unique_ptr<Miner> inner,
                           std::size_t num_shards, std::size_t num_threads)
    : inner_(std::move(inner)),
      name_("Sharded(" + std::string(inner_->name()) + ")"),
      num_shards_(std::max<std::size_t>(num_shards, 1)),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {}

void ShardedMiner::set_run_context(RunContext context) {
  // The caller's claim on this wrapper covers the whole wiring step:
  // while no mine is in flight on the wrapper, none is in flight on the
  // inner miner either (the wrapper is its only driver).
  inner_->AssertConfigPhase();
  inner_->set_run_context(context);  // copies share the token
  Miner::set_run_context(std::move(context));
}

bool ShardedMiner::Supports(const MiningTask& task) const {
  // Only expected support is additive across shards; see class comment.
  return std::holds_alternative<ExpectedSupportParams>(task) &&
         inner_->Supports(task);
}

Result<MiningResult> ShardedMiner::Mine(const FlatView& view,
                                        const MiningTask& task) const {
  const auto* params = std::get_if<ExpectedSupportParams>(&task);
  if (params == nullptr || !inner_->Supports(task)) {
    return Status::InvalidArgument(
        name_ + " supports expected-support tasks of its inner miner only");
  }
  UFIM_RETURN_IF_ERROR(params->Validate());

  const std::size_t n_txn = view.num_transactions();
  const std::size_t shards = std::min(num_shards_, std::max<std::size_t>(n_txn, 1));
  if (shards <= 1) return inner_->Mine(view, task);

  // The driver polls at phase boundaries and inside the recount; the
  // guard converts those throws (and the context-carrying ParallelFor's
  // final poll) into a clean Status at this facade.
  return internal::GuardMine([&]() -> Result<MiningResult> {
    PollRunContext(&run_context());  // checkpoint: shard phase entry

    // Phase 1: mine every shard independently at the same min_esup ratio.
    // Shard boundaries are a pure function of (n_txn, shards), so the
    // candidate union — and with it the final answer — is reproducible.
    std::vector<Result<MiningResult>> local;
    local.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      local.push_back(Status::Internal("shard not mined"));
    }
    ParallelFor(
        shards, num_threads_,
        [&](std::size_t s) {
          const FlatView shard =
              view.Slice(s * n_txn / shards, (s + 1) * n_txn / shards);
          local[s] = inner_->Mine(shard, task);
        },
        &run_context());

    MiningResult result;
    std::unordered_set<Itemset, ItemsetHash> seen;
    std::vector<Itemset> singles;
    std::vector<Itemset> larger;
    for (std::size_t s = 0; s < shards; ++s) {
      UFIM_RETURN_IF_ERROR(local[s].status());
      // Counters aggregate the work done across all shards plus the merge
      // pass below — the uniform work measures stay meaningful.
      MiningCounters& agg = result.counters();
      const MiningCounters& sc = local[s]->counters();
      agg.candidates_generated += sc.candidates_generated;
      agg.candidates_pruned_apriori += sc.candidates_pruned_apriori;
      agg.candidates_rejected_bound += sc.candidates_rejected_bound;
      agg.candidates_accepted_bound += sc.candidates_accepted_bound;
      agg.exact_tail_evals += sc.exact_tail_evals;
      agg.database_scans += sc.database_scans;
      for (const FrequentItemset& fi : local[s]->itemsets()) {
        if (seen.insert(fi.itemset).second) {
          (fi.itemset.size() == 1 ? singles : larger).push_back(fi.itemset);
        }
      }
    }
    // Canonical candidate order keeps the recount (and any strategy the
    // kernels pick) independent of shard completion order.
    std::sort(singles.begin(), singles.end());
    std::sort(larger.begin(), larger.end());

    // Phase 2: exact recount of the union over the full view.
    const double threshold = params->min_esup * static_cast<double>(n_txn);
    RecountExpectedCandidates(view, singles, larger, threshold, num_threads_,
                              result, &run_context());
    result.SortCanonical();
    return result;
  });
}

}  // namespace ufim
