#include "core/streaming_flat_view.h"

#include <cassert>
#include <utility>

namespace ufim {

StreamingFlatView::StreamingFlatView(CompactionPolicy policy)
    : StreamingFlatView(UncertainDatabase(), policy) {}

StreamingFlatView::StreamingFlatView(const UncertainDatabase& db,
                                     CompactionPolicy policy)
    : storage_(std::make_shared<FlatView::Storage>()), policy_(policy) {
  FlatView::BuildStorage(db, *storage_);
  storage_->delta_tids.resize(storage_->num_items);
  storage_->delta_probs.resize(storage_->num_items);
}

void StreamingFlatView::BeginAppend() {
  assert(!txn_.has_value() && "append transaction already open");
  const FlatView::Storage& s = *storage_;
  AppendTxn txn;
  txn.full_size = s.full_size;
  txn.num_items = s.num_items;
  txn.delta_units = s.delta_units.size();
  txn.delta_txn_offsets = s.delta_txn_offsets.size();
  txn_ = std::move(txn);
}

void StreamingFlatView::SnapshotForTxn(ItemId item) {
  const FlatView::Storage& s = *storage_;
  // Tids assigned inside the transaction are >= the transaction's
  // starting full_size, and per-item delta tids strictly ascend — so the
  // tail tid tells in O(1) whether this item was already dirtied (and
  // snapshotted) by this transaction.
  const std::vector<TransactionId>& tids = s.delta_tids[item];
  if (!tids.empty() &&
      static_cast<std::size_t>(tids.back()) >= txn_->full_size) {
    return;
  }
  AppendTxn::ItemSnapshot snap;
  snap.item = item;
  snap.delta_len = tids.size();
  snap.esup_acc = s.item_esup_acc[item];
  snap.esup = s.item_esup[item];
  snap.sq_sum = s.item_sq_sum[item];
  txn_->items.push_back(std::move(snap));
}

bool StreamingFlatView::CommitAppend() {
  assert(txn_.has_value() && "no open append transaction");
  txn_.reset();
  // Deferred policy check, same rule as a bare Append's tail.
  const FlatView::Storage& s = *storage_;
  const bool compact =
      policy_.max_delta_ratio <= 0.0
          ? has_delta()
          : policy_.ShouldCompact(s.units.size(), s.delta_units.size());
  if (compact) {
    Compact();
    return true;
  }
  return false;
}

void StreamingFlatView::RollbackAppend() {
  assert(txn_.has_value() && "no open append transaction");
  FlatView::Storage& s = *storage_;
  const AppendTxn& txn = *txn_;
  // Per-item posting tails and moment cells first; items created inside
  // the transaction are truncated away by the universe shrink below, so
  // writing their cells here is harmless.
  for (const AppendTxn::ItemSnapshot& snap : txn.items) {
    s.delta_tids[snap.item].resize(snap.delta_len);
    s.delta_probs[snap.item].resize(snap.delta_len);
    s.item_esup_acc[snap.item] = snap.esup_acc;
    s.item_esup[snap.item] = snap.esup;
    s.item_sq_sum[snap.item] = snap.sq_sum;
  }
  if (s.num_items != txn.num_items) {
    s.num_items = txn.num_items;
    s.delta_tids.resize(txn.num_items);
    s.delta_probs.resize(txn.num_items);
    s.item_esup.resize(txn.num_items);
    s.item_sq_sum.resize(txn.num_items);
    s.item_esup_acc.resize(txn.num_items);
  }
  s.delta_units.resize(txn.delta_units);
  s.delta_txn_offsets.resize(txn.delta_txn_offsets);
  s.full_size = txn.full_size;
  txn_.reset();
}

bool StreamingFlatView::Append(std::span<const Transaction> batch) {
  FlatView::Storage& s = *storage_;
  for (const Transaction& t : batch) {
    const TransactionId tid = static_cast<TransactionId>(s.full_size);
    for (const ProbItem& u : t) {
      if (u.item >= s.num_items) {
        // Previously-unseen item: grow the item-indexed arrays. The base
        // CSR stays as built (the new item simply has no base segment).
        s.num_items = static_cast<std::size_t>(u.item) + 1;
        s.delta_tids.resize(s.num_items);
        s.delta_probs.resize(s.num_items);
        s.item_esup.resize(s.num_items, 0.0);
        s.item_sq_sum.resize(s.num_items, 0.0);
        s.item_esup_acc.resize(s.num_items, KahanSum());
      }
      if (txn_.has_value()) SnapshotForTxn(u.item);
      s.delta_units.push_back(u);
      s.delta_tids[u.item].push_back(tid);
      s.delta_probs[u.item].push_back(u.prob);
      // Per-item unit order is tid-major here exactly as in a
      // from-scratch build, so continuing the persistent accumulators
      // reproduces the rebuild's moment bits at every point.
      s.item_esup_acc[u.item].Add(u.prob);
      s.item_esup[u.item] = s.item_esup_acc[u.item].value();
      s.item_sq_sum[u.item] += u.prob * u.prob;
    }
    s.delta_txn_offsets.push_back(s.delta_units.size());
    ++s.full_size;
  }
  // Inside an append transaction the compaction is deferred to
  // CommitAppend: folding uncommitted rows into the base would make them
  // unrecoverable on rollback.
  if (txn_.has_value()) return false;
  // Ratio <= 0 means "always contiguous": even a unit-less delta (only
  // empty transactions appended) folds, so the rebuild reference of the
  // differential harness really is the from-scratch layout.
  const bool compact =
      policy_.max_delta_ratio <= 0.0
          ? has_delta()
          : policy_.ShouldCompact(s.units.size(), s.delta_units.size());
  if (compact) {
    Compact();
    return true;
  }
  return false;
}

void StreamingFlatView::Compact() {
  assert(!txn_.has_value() && "cannot compact inside an append transaction");
  FlatView::Storage& s = *storage_;
  if (s.full_size == s.base_size) return;

  // Horizontal: the delta rows append directly (they already follow the
  // base rows in tid order).
  const std::size_t base_units = s.units.size();
  s.units.insert(s.units.end(), s.delta_units.begin(), s.delta_units.end());
  s.txn_offsets.reserve(s.full_size + 1);
  for (std::size_t d = 1; d < s.delta_txn_offsets.size(); ++d) {
    s.txn_offsets.push_back(base_units + s.delta_txn_offsets[d]);
  }

  // Vertical: per item, the merged posting list is base postings then
  // delta postings — already globally tid-sorted, so the merge is a
  // counting pass plus contiguous copies (same layout a from-scratch
  // build would produce).
  const std::size_t base_items = s.base_num_items();
  std::vector<std::size_t> offsets(s.num_items + 1, 0);
  for (std::size_t i = 0; i < s.num_items; ++i) {
    const std::size_t base_len =
        i < base_items ? s.item_offsets[i + 1] - s.item_offsets[i] : 0;
    offsets[i + 1] = offsets[i] + base_len + s.delta_tids[i].size();
  }
  std::vector<TransactionId> tids(offsets.back());
  std::vector<double> probs(offsets.back());
  for (std::size_t i = 0; i < s.num_items; ++i) {
    std::size_t pos = offsets[i];
    if (i < base_items) {
      const std::size_t lo = s.item_offsets[i];
      const std::size_t len = s.item_offsets[i + 1] - lo;
      std::copy_n(s.posting_tids.begin() + lo, len, tids.begin() + pos);
      std::copy_n(s.posting_probs.begin() + lo, len, probs.begin() + pos);
      pos += len;
    }
    std::copy(s.delta_tids[i].begin(), s.delta_tids[i].end(),
              tids.begin() + pos);
    std::copy(s.delta_probs[i].begin(), s.delta_probs[i].end(),
              probs.begin() + pos);
  }
  s.item_offsets = std::move(offsets);
  s.posting_tids = std::move(tids);
  s.posting_probs = std::move(probs);

  // The delta is folded in; reset it. Moments are untouched — the
  // accumulators describe the logical content, which did not change.
  s.base_size = s.full_size;
  s.delta_txn_offsets.assign(1, 0);
  s.delta_units.clear();
  for (std::size_t i = 0; i < s.num_items; ++i) {
    s.delta_tids[i].clear();
    s.delta_probs[i].clear();
  }
  ++compactions_;
}

}  // namespace ufim
