#include "core/streaming_flat_view.h"

#include <cassert>
#include <utility>

namespace ufim {

StreamingFlatView::StreamingFlatView(CompactionPolicy policy)
    : StreamingFlatView(UncertainDatabase(), policy) {}

StreamingFlatView::StreamingFlatView(const UncertainDatabase& db,
                                     CompactionPolicy policy)
    : storage_(std::make_shared<FlatView::Storage>()), policy_(policy) {
  FlatView::BuildStorage(db, *storage_);
  storage_->delta_tids.resize(storage_->num_items);
  storage_->delta_probs.resize(storage_->num_items);
}

void StreamingFlatView::BeginAppend() {
  assert(!txn_.has_value() && "append transaction already open");
  const FlatView::Storage& s = *storage_;
  AppendTxn txn;
  txn.full_size = s.full_size;
  txn.num_items = s.num_items;
  txn.delta_units = s.delta_units.size();
  txn.delta_txn_offsets = s.delta_txn_offsets.size();
  txn_ = std::move(txn);
}

void StreamingFlatView::SnapshotForTxn(ItemId item) {
  const FlatView::Storage& s = *storage_;
  // Tids assigned inside the transaction are >= the transaction's
  // starting full_size, and per-item delta tids strictly ascend — so the
  // tail tid tells in O(1) whether this item was already dirtied (and
  // snapshotted) by this transaction.
  const std::vector<TransactionId>& tids = s.delta_tids[item];
  if (!tids.empty() &&
      static_cast<std::size_t>(tids.back()) >= txn_->full_size) {
    return;
  }
  AppendTxn::ItemSnapshot snap;
  snap.item = item;
  snap.delta_len = tids.size();
  snap.esup_acc = s.item_esup_acc[item];
  snap.esup = s.item_esup[item];
  snap.sq_sum = s.item_sq_sum[item];
  txn_->items.push_back(std::move(snap));
}

bool StreamingFlatView::CommitAppend() {
  assert(txn_.has_value() && "no open append transaction");
  txn_.reset();
  // Deferred policy check, same rule as a bare Append's tail.
  return MaybeCompact();
}

void StreamingFlatView::RollbackAppend() {
  assert(txn_.has_value() && "no open append transaction");
  FlatView::Storage& s = *storage_;
  const AppendTxn& txn = *txn_;
  // Per-item posting tails and moment cells first; items created inside
  // the transaction are truncated away by the universe shrink below, so
  // writing their cells here is harmless.
  for (const AppendTxn::ItemSnapshot& snap : txn.items) {
    s.delta_tids[snap.item].resize(snap.delta_len);
    s.delta_probs[snap.item].resize(snap.delta_len);
    s.item_esup_acc[snap.item] = snap.esup_acc;
    s.item_esup[snap.item] = snap.esup;
    s.item_sq_sum[snap.item] = snap.sq_sum;
  }
  if (s.num_items != txn.num_items) {
    s.num_items = txn.num_items;
    s.delta_tids.resize(txn.num_items);
    s.delta_probs.resize(txn.num_items);
    s.item_esup.resize(txn.num_items);
    s.item_sq_sum.resize(txn.num_items);
    s.item_esup_acc.resize(txn.num_items);
  }
  s.delta_units.resize(txn.delta_units);
  s.delta_txn_offsets.resize(txn.delta_txn_offsets);
  s.full_size = txn.full_size;
  // A rollback is a mutation like any other: views handed out during
  // the transaction (or before it) must not keep reading, even though
  // the restored bits happen to match the pre-transaction state.
  s.generation.fetch_add(1, std::memory_order_relaxed);
  txn_.reset();
}

bool StreamingFlatView::Append(std::span<const Transaction> batch) {
  FlatView::Storage& s = *storage_;
  for (const Transaction& t : batch) {
    const TransactionId tid = static_cast<TransactionId>(s.full_size);
    for (const ProbItem& u : t) {
      if (u.item >= s.num_items) {
        // Previously-unseen item: grow the item-indexed arrays. The base
        // CSR stays as built (the new item simply has no base segment).
        s.num_items = static_cast<std::size_t>(u.item) + 1;
        s.delta_tids.resize(s.num_items);
        s.delta_probs.resize(s.num_items);
        s.item_esup.resize(s.num_items, 0.0);
        s.item_sq_sum.resize(s.num_items, 0.0);
        s.item_esup_acc.resize(s.num_items, KahanSum());
      }
      if (txn_.has_value()) SnapshotForTxn(u.item);
      s.delta_units.push_back(u);
      s.delta_tids[u.item].push_back(tid);
      s.delta_probs[u.item].push_back(u.prob);
      // Per-item unit order is tid-major here exactly as in a
      // from-scratch build, so continuing the persistent accumulators
      // reproduces the rebuild's moment bits at every point.
      s.item_esup_acc[u.item].Add(u.prob);
      s.item_esup[u.item] = s.item_esup_acc[u.item].value();
      s.item_sq_sum[u.item] += u.prob * u.prob;
    }
    s.delta_txn_offsets.push_back(s.delta_units.size());
    ++s.full_size;
  }
  // Mark the mutation before the policy check so a triggered compaction
  // advances the generation sequence monotonically (append g -> g+1,
  // compact retires at g+2 and publishes fresh storage at g+2).
  if (!batch.empty()) {
    s.generation.fetch_add(1, std::memory_order_relaxed);
  }
  // Inside an append transaction the compaction is deferred to
  // CommitAppend: folding uncommitted rows into the base would make them
  // unrecoverable on rollback.
  if (txn_.has_value()) return false;
  return MaybeCompact();
}

bool StreamingFlatView::MaybeCompact() {
  const FlatView::Storage& s = *storage_;
  if (!policy_.ShouldCompact(s.base->units.size(), s.delta_units.size(),
                             delta_transactions())) {
    return false;
  }
  Compact();
  return true;
}

void StreamingFlatView::Compact() {
  assert(!txn_.has_value() && "cannot compact inside an append transaction");
  const FlatView::Storage& s = *storage_;
  if (s.full_size == s.base_size) return;

  // Copy-on-compact: the merged base is built into *fresh* storage and
  // published by swapping storage_; the retired generation's arrays are
  // never touched, so snapshot handles that still share them (or hold a
  // frozen copy of the delta) keep reading valid, immutable data.
  const FlatView::Storage::BaseArrays& ob = *s.base;
  FlatView::Storage::BaseArrays merged;

  // Horizontal: the delta rows append directly (they already follow the
  // base rows in tid order).
  const std::size_t base_units = ob.units.size();
  merged.units.reserve(base_units + s.delta_units.size());
  merged.units.insert(merged.units.end(), ob.units.begin(), ob.units.end());
  merged.units.insert(merged.units.end(), s.delta_units.begin(),
                      s.delta_units.end());
  merged.txn_offsets.reserve(s.full_size + 1);
  merged.txn_offsets.insert(merged.txn_offsets.end(), ob.txn_offsets.begin(),
                            ob.txn_offsets.end());
  for (std::size_t d = 1; d < s.delta_txn_offsets.size(); ++d) {
    merged.txn_offsets.push_back(base_units + s.delta_txn_offsets[d]);
  }

  // Vertical: per item, the merged posting list is base postings then
  // delta postings — already globally tid-sorted, so the merge is a
  // counting pass plus contiguous copies (same layout a from-scratch
  // build would produce).
  const std::size_t base_items = s.base_num_items();
  std::vector<std::size_t> offsets(s.num_items + 1, 0);
  for (std::size_t i = 0; i < s.num_items; ++i) {
    const std::size_t base_len =
        i < base_items ? ob.item_offsets[i + 1] - ob.item_offsets[i] : 0;
    offsets[i + 1] = offsets[i] + base_len + s.delta_tids[i].size();
  }
  std::vector<TransactionId> tids(offsets.back());
  std::vector<double> probs(offsets.back());
  for (std::size_t i = 0; i < s.num_items; ++i) {
    std::size_t pos = offsets[i];
    if (i < base_items) {
      const std::size_t lo = ob.item_offsets[i];
      const std::size_t len = ob.item_offsets[i + 1] - lo;
      std::copy_n(ob.posting_tids.begin() + lo, len, tids.begin() + pos);
      std::copy_n(ob.posting_probs.begin() + lo, len, probs.begin() + pos);
      pos += len;
    }
    std::copy(s.delta_tids[i].begin(), s.delta_tids[i].end(),
              tids.begin() + pos);
    std::copy(s.delta_probs[i].begin(), s.delta_probs[i].end(),
              probs.begin() + pos);
  }
  merged.item_offsets = std::move(offsets);
  merged.posting_tids = std::move(tids);
  merged.posting_probs = std::move(probs);

  // Fresh storage: merged base, empty delta. Moments carry over — the
  // accumulators describe the logical content, which did not change.
  auto fresh = std::make_shared<FlatView::Storage>();
  fresh->num_items = s.num_items;
  fresh->full_size = s.full_size;
  fresh->base_size = s.full_size;
  fresh->base =
      std::make_shared<const FlatView::Storage::BaseArrays>(std::move(merged));
  fresh->generation.store(s.generation.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  fresh->delta_txn_offsets.assign(1, 0);
  fresh->delta_tids.resize(s.num_items);
  fresh->delta_probs.resize(s.num_items);
  fresh->item_esup = s.item_esup;
  fresh->item_sq_sum = s.item_sq_sum;
  fresh->item_esup_acc = s.item_esup_acc;

  // Retire the old generation (outstanding live views on it become
  // stale; snapshots hold distinct frozen storage and are unaffected),
  // then publish the fresh one.
  storage_->generation.fetch_add(1, std::memory_order_relaxed);
  storage_ = std::move(fresh);
  ++compactions_;
}

StreamingSnapshot StreamingFlatView::Snapshot() const {
  assert(!txn_.has_value() && "cannot snapshot inside an append transaction");
  const FlatView::Storage& s = *storage_;
  // Freeze: share the immutable compacted base, deep-copy the delta and
  // moment arrays. O(delta + num_items), bounded by the compaction
  // policy — never O(total units).
  auto frozen = std::make_shared<FlatView::Storage>();
  frozen->num_items = s.num_items;
  frozen->full_size = s.full_size;
  frozen->base_size = s.base_size;
  frozen->base = s.base;
  const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
  frozen->generation.store(gen, std::memory_order_relaxed);
  frozen->delta_txn_offsets = s.delta_txn_offsets;
  frozen->delta_units = s.delta_units;
  frozen->delta_tids = s.delta_tids;
  frozen->delta_probs = s.delta_probs;
  frozen->item_esup = s.item_esup;
  frozen->item_sq_sum = s.item_sq_sum;
  frozen->item_esup_acc = s.item_esup_acc;

  StreamingSnapshot snap;
  snap.generation_ = gen;
  snap.watermark_ = s.full_size;
  snap.view_ = FlatView(std::move(frozen), 0, s.full_size, gen);
  return snap;
}

}  // namespace ufim
