#ifndef UFIM_CORE_UNCERTAIN_DATABASE_H_
#define UFIM_CORE_UNCERTAIN_DATABASE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/transaction.h"
#include "core/types.h"

namespace ufim {

/// Summary statistics of a database (the columns of the paper's Table 6).
struct DatabaseStats {
  std::size_t num_transactions = 0;
  std::size_t num_items = 0;       ///< size of the item universe actually used
  double avg_length = 0.0;         ///< average units per transaction
  double density = 0.0;            ///< avg_length / num_items
  double mean_probability = 0.0;   ///< mean of all unit probabilities
};

/// An uncertain transaction database (UDB): the central data model.
///
/// Owns its transactions. Item ids should be dense but need not be
/// contiguous; `num_items()` reports one past the largest id seen.
class UncertainDatabase {
 public:
  UncertainDatabase() = default;

  /// Takes ownership of `transactions`.
  explicit UncertainDatabase(std::vector<Transaction> transactions);

  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  const Transaction& operator[](std::size_t i) const { return transactions_[i]; }
  const std::vector<Transaction>& transactions() const { return transactions_; }

  std::vector<Transaction>::const_iterator begin() const {
    return transactions_.begin();
  }
  std::vector<Transaction>::const_iterator end() const {
    return transactions_.end();
  }

  /// Appends a transaction (updates cached stats incrementally).
  void Add(Transaction t);

  /// Appends a batch of transactions — the streaming ingestion path.
  /// Equivalent to `Add` per transaction: every eagerly maintained cache
  /// (currently `num_items`) is updated as part of the append, never
  /// invalidated, so the contract below holds mid-stream exactly as it
  /// does after construction.
  void Append(std::span<const Transaction> batch);

  /// One past the largest item id present (0 for an empty database).
  ///
  /// Cache contract: maintained *eagerly* by the constructor, `Add`, and
  /// `Append` — the value is always consistent with `transactions()`
  /// right after any mutating call returns, and const reads never race
  /// on a lazy fill (parallel miners read it concurrently). Appending a
  /// transaction whose largest item is below the current value leaves it
  /// unchanged (the universe never shrinks), matching what a
  /// from-scratch rebuild over the same transactions would report as
  /// long as ids are dense; this is what lets `StreamingFlatView` and
  /// the streaming differential harness rebuild databases incrementally
  /// without re-deriving the item universe.
  std::size_t num_items() const { return num_items_; }

  /// Computes summary statistics with one pass.
  DatabaseStats ComputeStats() const;

  /// Expected support of a single item: sum of its probabilities over all
  /// transactions (Definition 1 specialised to a 1-itemset). O(total units).
  double ItemExpectedSupport(ItemId item) const;

  /// Expected support of an arbitrary itemset via a full scan
  /// (Definition 1). Intended for tests and small inputs; the miners use
  /// their own incremental structures.
  double ExpectedSupport(const Itemset& itemset) const;

  /// Per-transaction containment probabilities Pr(X ⊆ T_i), skipping
  /// zeros. The support distribution of X is the Poisson-binomial over
  /// this vector — the bridge every algorithm in the paper builds on.
  std::vector<double> ContainmentProbabilities(const Itemset& itemset) const;

  /// Returns a database consisting of the first `n` transactions (used by
  /// the scalability experiments). Clamps n to size().
  UncertainDatabase Prefix(std::size_t n) const;

  /// Validates invariants: probabilities in (0, 1], units sorted, no
  /// duplicate items in one transaction.
  Status Validate() const;

 private:
  /// Folds `t` into the eagerly maintained stats (currently num_items_).
  void NoteTransaction(const Transaction& t);

  std::vector<Transaction> transactions_;
  std::size_t num_items_ = 0;
};

}  // namespace ufim

#endif  // UFIM_CORE_UNCERTAIN_DATABASE_H_
