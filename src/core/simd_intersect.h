#ifndef UFIM_CORE_SIMD_INTERSECT_H_
#define UFIM_CORE_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ufim {

/// Sorted-set intersection kernels over strictly ascending `uint32`
/// arrays — the inner loop of every posting merge-join in the system.
///
/// All kernels compute the same thing: the positions of the common
/// values in both inputs. Emitting *positions* (not values) is what lets
/// the posting joins gather the probability columns parallel to the tid
/// arrays after the intersection, so the set logic and the float math
/// stay separate and the float math keeps one fixed evaluation order
/// regardless of which kernel ran.
///
/// Three implementations:
///  * **scalar** — branchy two-pointer merge; the reference.
///  * **gallop** — drives from the shorter list, advancing through the
///    longer by exponential + binary search. Wins when the lengths are
///    heavily skewed (deep Apriori levels joining a rare driver against
///    dense members).
///  * **simd** — blocked compare: each driver element is tested against
///    8 (AVX2) or 4 (SSE baseline) member elements per instruction, and
///    member blocks entirely below the driver value are skipped 8 (or 4)
///    at a time. Wins when the lengths are comparable. Compiled behind
///    the `UFIM_SIMD` build option; the AVX2 body carries a
///    `target("avx2")` attribute and is selected at runtime by CPUID, so
///    one binary runs everywhere and falls back SSE → scalar as features
///    disappear.
///
/// `IntersectIndices` is the dispatching entry every caller uses: by
/// default (`kAuto`) it picks gallop on skewed lengths, SIMD when
/// compiled + supported, scalar otherwise. The choice depends only on
/// the input lengths and the forced-kernel setting — never on thread
/// count — and every kernel returns identical output, so results are
/// reproducible across machines and settings (enforced by the kernel
/// property tests and the miner equivalence suite).

enum class IntersectKernel : int {
  kAuto = 0,  ///< heuristic dispatch (default)
  kScalar,
  kGallop,
  kSimd,
};

/// Inputs must be strictly ascending. `out_a` / `out_b` need capacity
/// for min(na, nb) entries. Returns the number of common values n and
/// fills out_a[k] / out_b[k] with the index (into a / b) of the k-th
/// common value, ascending.
std::size_t IntersectIndicesScalar(const std::uint32_t* a, std::size_t na,
                                   const std::uint32_t* b, std::size_t nb,
                                   std::uint32_t* out_a, std::uint32_t* out_b);
std::size_t IntersectIndicesGallop(const std::uint32_t* a, std::size_t na,
                                   const std::uint32_t* b, std::size_t nb,
                                   std::uint32_t* out_a, std::uint32_t* out_b);
/// Falls back to the scalar kernel when the build or the CPU lacks SIMD.
std::size_t IntersectIndicesSimd(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out_a, std::uint32_t* out_b);

/// The dispatching entry point (see file comment for the policy).
std::size_t IntersectIndices(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out_a, std::uint32_t* out_b);

/// True when a vectorized kernel is compiled in and the CPU can run it
/// (the SSE baseline makes this true on any x86-64 build with UFIM_SIMD).
bool SimdIntersectAvailable();

/// Forces every subsequent `IntersectIndices` call onto one kernel
/// (`kAuto` restores the heuristic). Process-wide and thread-safe; used
/// by the equivalence tests, `ufim_cli --kernel`, and benchmarking.
void SetIntersectKernel(IntersectKernel kernel);

/// The current forced kernel. Before the first `SetIntersectKernel`
/// call this is seeded from the `UFIM_INTERSECT` environment variable
/// (`auto` | `scalar` | `gallop` | `simd`; unset or unparsable = kAuto).
IntersectKernel ForcedIntersectKernel();

const char* IntersectKernelName(IntersectKernel kernel);
bool ParseIntersectKernel(std::string_view name, IntersectKernel* out);

}  // namespace ufim

#endif  // UFIM_CORE_SIMD_INTERSECT_H_
