#include "core/miner_registry.h"

#include <algorithm>

namespace ufim {

MinerRegistry& MinerRegistry::Global() {
  // Function-local static: constructed on first use, so registrations
  // from other translation units' static initializers are safe.
  static MinerRegistry* registry = new MinerRegistry();
  return *registry;
}

bool MinerRegistry::Register(MinerEntry entry) {
  for (MinerEntry& existing : entries_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return true;
    }
  }
  entries_.push_back(std::move(entry));
  return true;
}

const MinerEntry* MinerRegistry::Find(std::string_view name) const {
  for (const MinerEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<Miner> MinerRegistry::Create(std::string_view name,
                                             const MinerOptions& options) const {
  const MinerEntry* entry = Find(name);
  if (entry == nullptr) return nullptr;
  std::unique_ptr<Miner> miner = entry->make(options);
  // Freshly constructed: nothing can be mining on it yet.
  if (miner != nullptr) {
    miner->AssertConfigPhase();
    miner->set_run_context(options.run_context);
  }
  return miner;
}

std::vector<std::string> MinerRegistry::Names(bool production_only) const {
  std::vector<std::string> out;
  for (const MinerEntry& entry : entries_) {
    if (production_only && !entry.production) continue;
    out.push_back(entry.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> MinerRegistry::NamesOf(TaskFamily family,
                                                bool production_only) const {
  std::vector<std::string> out;
  for (const MinerEntry& entry : entries_) {
    if (entry.family != family) continue;
    if (production_only && !entry.production) continue;
    out.push_back(entry.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ufim
