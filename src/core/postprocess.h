#ifndef UFIM_CORE_POSTPROCESS_H_
#define UFIM_CORE_POSTPROCESS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/mining_result.h"

namespace ufim {

/// Downstream condensations and rule generation over a mining result —
/// the standard post-processing layer of a frequent-itemset library
/// (the paper's reference [30] studies the closed condensation over
/// probabilistic data).

/// Keeps only the *closed* itemsets: X is closed iff no strict superset
/// in `result` has (numerically) the same expected support (|Δ| <= tol).
/// Input must contain all frequent itemsets (true for every miner here).
MiningResult FilterClosed(const MiningResult& result, double tol = 1e-9);

/// Keeps only the *maximal* itemsets: X is maximal iff no strict
/// superset is present at all.
MiningResult FilterMaximal(const MiningResult& result);

/// Ranking criterion for TopK.
enum class RankBy {
  kExpectedSupport,
  kFrequentProbability,  ///< itemsets without one rank below all others
};

/// The k highest-ranked itemsets (ties broken lexicographically).
MiningResult TopK(const MiningResult& result, std::size_t k,
                  RankBy rank_by = RankBy::kExpectedSupport);

/// An association rule antecedent => consequent with expected confidence
/// esup(antecedent ∪ consequent) / esup(antecedent) — the standard
/// expected-support semantics of uncertain association rules.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  double expected_support = 0.0;   ///< esup of the union
  double expected_confidence = 0.0;

  std::string ToString() const;
};

/// Generates all rules with expected confidence >= min_confidence from
/// the frequent itemsets in `result`. Every antecedent must itself be in
/// `result` (guaranteed by downward closure for expected-support-based
/// results, which is what miners produce). Itemsets larger than
/// `max_itemset_size` are skipped to bound the 2^|X| subset enumeration.
std::vector<AssociationRule> GenerateRules(const MiningResult& result,
                                           double min_confidence,
                                           std::size_t max_itemset_size = 16);

}  // namespace ufim

#endif  // UFIM_CORE_POSTPROCESS_H_
