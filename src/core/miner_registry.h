#ifndef UFIM_CORE_MINER_REGISTRY_H_
#define UFIM_CORE_MINER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/miner.h"

namespace ufim {

/// Which task alternative a registered miner answers (mirrors
/// Miner::Supports, queryable without instantiation): the paper's two
/// problem definitions plus threshold-free top-k.
enum class TaskFamily {
  kExpectedSupport,
  kProbabilistic,
  kTopK,
};

/// Registration record of one algorithm. Exactness is not duplicated
/// here — query `Miner::is_exact()` on an instance.
struct MinerEntry {
  std::string name;    ///< canonical name; must equal Miner::name()
  TaskFamily family = TaskFamily::kExpectedSupport;
  bool production = true;  ///< false for test oracles (brute force)
  std::function<std::unique_ptr<Miner>(const MinerOptions&)> make;
};

/// Name-keyed registry of all mining algorithms. Algorithms register
/// themselves from their own translation units via UFIM_REGISTER_MINER,
/// so adding a new miner never touches factory code.
class MinerRegistry {
 public:
  /// The process-wide registry.
  static MinerRegistry& Global();

  /// Registers an entry; returns true. Registering a duplicate name is a
  /// programming error and replaces the previous entry (last wins, which
  /// keeps static-init order irrelevant for well-formed code).
  bool Register(MinerEntry entry);

  /// Looks an algorithm up by canonical name; nullptr when unknown.
  [[nodiscard]] const MinerEntry* Find(std::string_view name) const;

  /// Instantiates an algorithm by name; nullptr when unknown.
  [[nodiscard]] std::unique_ptr<Miner> Create(std::string_view name,
                                const MinerOptions& options = {}) const;

  /// All registered names, sorted. `production_only` drops test oracles.
  std::vector<std::string> Names(bool production_only = false) const;

  /// Registered names of one family, sorted; `production_only` likewise.
  std::vector<std::string> NamesOf(TaskFamily family,
                                   bool production_only = false) const;

 private:
  std::vector<MinerEntry> entries_;
};

/// Registers `name` with the global registry at static-initialization
/// time. Use in the algorithm's .cc:
///
///   UFIM_REGISTER_MINER("UApriori", TaskFamily::kExpectedSupport,
///                       /*production=*/true,
///                       [](const MinerOptions& o) {
///                         return std::make_unique<UApriori>(o.decremental_pruning);
///                       });
#define UFIM_REGISTER_MINER(name, family, production, factory)     \
  namespace {                                                      \
  const bool UFIM_REGISTRY_CONCAT_(ufim_registered_, __LINE__) =   \
      ::ufim::MinerRegistry::Global().Register(                    \
          ::ufim::MinerEntry{name, family, production, factory});  \
  }
#define UFIM_REGISTRY_CONCAT_(a, b) UFIM_REGISTRY_CONCAT_IMPL_(a, b)
#define UFIM_REGISTRY_CONCAT_IMPL_(a, b) a##b

}  // namespace ufim

#endif  // UFIM_CORE_MINER_REGISTRY_H_
