#ifndef UFIM_CORE_TRANSACTION_H_
#define UFIM_CORE_TRANSACTION_H_

#include <cstddef>
#include <vector>

#include "core/itemset.h"
#include "core/types.h"

namespace ufim {

/// One uncertain transaction `<tid, {y1(p1), ..., ym(pm)}>`.
///
/// Units are kept sorted by item id with strictly positive probabilities;
/// an item appears at most once. Items whose probability would be zero are
/// simply absent (equivalent under the possible-world semantics).
class Transaction {
 public:
  Transaction() = default;

  /// Constructs from arbitrary units: sorts by item, drops prob <= 0,
  /// clamps prob to at most 1, and keeps the last unit on duplicate items.
  explicit Transaction(std::vector<ProbItem> units);

  std::size_t size() const { return units_.size(); }
  bool empty() const { return units_.empty(); }

  const std::vector<ProbItem>& units() const { return units_; }
  const ProbItem& operator[](std::size_t i) const { return units_[i]; }

  std::vector<ProbItem>::const_iterator begin() const { return units_.begin(); }
  std::vector<ProbItem>::const_iterator end() const { return units_.end(); }

  /// Existential probability of `item` in this transaction; 0 if absent.
  double ProbabilityOf(ItemId item) const;

  /// Probability that the whole itemset appears in this transaction:
  /// the product of member probabilities (0 if any member is absent).
  /// This is Pr(X ⊆ T) under the independent unit model.
  double ItemsetProbability(const Itemset& itemset) const;

  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.units_ == b.units_;
  }

 private:
  std::vector<ProbItem> units_;
};

}  // namespace ufim

#endif  // UFIM_CORE_TRANSACTION_H_
