#ifndef UFIM_CORE_MINING_RESULT_H_
#define UFIM_CORE_MINING_RESULT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/itemset.h"

namespace ufim {

/// One mined frequent itemset together with the distribution moments that
/// every algorithm in the paper reports.
///
/// `expected_support` and `variance` are the first two moments of the
/// Poisson-binomial support distribution; `frequent_probability` is
/// Pr(sup(X) >= N*min_sup) when the algorithm computes it (exact or
/// approximate probabilistic miners), and nullopt for purely
/// expected-support-based miners.
struct FrequentItemset {
  Itemset itemset;
  double expected_support = 0.0;
  double variance = 0.0;
  std::optional<double> frequent_probability;
};

/// Counters describing the work an algorithm performed. These are the
/// "uniform measures" of the paper's §4.1 beyond time/memory, and make
/// pruning effects (Chernoff, decremental) observable in tests.
struct MiningCounters {
  std::uint64_t candidates_generated = 0;   ///< itemsets whose support was evaluated
  std::uint64_t candidates_pruned_apriori = 0;  ///< dropped by downward closure
  /// Candidates certified infrequent by an O(1) bound (Chernoff or the
  /// two-sided bound cascade) without an exact tail evaluation.
  std::uint64_t candidates_rejected_bound = 0;
  /// Candidates certified frequent by the bound cascade. Accepts are
  /// diagnostic only: the exact tail is still evaluated so that reported
  /// frequent probabilities are identical with the prefilter on or off.
  std::uint64_t candidates_accepted_bound = 0;
  /// Exact (or estimator) tail computations performed. Together with
  /// candidates_rejected_bound this partitions candidates_generated for
  /// the probabilistic apriori family.
  std::uint64_t exact_tail_evals = 0;
  std::uint64_t database_scans = 0;

  /// Accumulates another run's (or parallel task's) counters. Integer
  /// sums are associative, so merging per-task deltas in any fixed order
  /// reproduces the sequential totals exactly.
  MiningCounters& operator+=(const MiningCounters& other) {
    candidates_generated += other.candidates_generated;
    candidates_pruned_apriori += other.candidates_pruned_apriori;
    candidates_rejected_bound += other.candidates_rejected_bound;
    candidates_accepted_bound += other.candidates_accepted_bound;
    exact_tail_evals += other.exact_tail_evals;
    database_scans += other.database_scans;
    return *this;
  }
};

/// The outcome of one mining run: the frequent itemsets plus counters.
class MiningResult {
 public:
  MiningResult() = default;

  void Add(FrequentItemset fi) { itemsets_.push_back(std::move(fi)); }

  std::size_t size() const { return itemsets_.size(); }
  bool empty() const { return itemsets_.empty(); }

  const std::vector<FrequentItemset>& itemsets() const { return itemsets_; }
  const FrequentItemset& operator[](std::size_t i) const { return itemsets_[i]; }

  MiningCounters& counters() { return counters_; }
  const MiningCounters& counters() const { return counters_; }

  /// Sorts itemsets lexicographically so results from different
  /// algorithms compare positionally. Returns *this for chaining.
  MiningResult& SortCanonical();

  /// Looks up an itemset; nullptr if not present. O(n) — intended for
  /// tests and result diffing, not inner loops.
  const FrequentItemset* Find(const Itemset& itemset) const;

  /// The bare itemsets, canonically sorted (for set-level comparisons).
  std::vector<Itemset> ItemsetsOnly() const;

  /// Multi-line human-readable dump (examples and debugging).
  std::string ToString() const;

 private:
  std::vector<FrequentItemset> itemsets_;
  MiningCounters counters_;
};

}  // namespace ufim

#endif  // UFIM_CORE_MINING_RESULT_H_
