#ifndef UFIM_CORE_DELTA_MINER_H_
#define UFIM_CORE_DELTA_MINER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "core/miner.h"
#include "core/streaming_flat_view.h"

namespace ufim {

/// Incremental mining driver over a `StreamingFlatView`: the streaming
/// counterpart of `ShardedMiner`'s SON scheme, with the shard structure
/// given by arrival order instead of a static partition.
///
/// `MineNext(batch)` appends the batch, mines the *appended suffix* as
/// its own shard with the inner miner at the same min_esup ratio, unions
/// the shard-local frequent itemsets into a persistent candidate pool,
/// and recounts the pool exactly over the full view
/// (`RecountExpectedCandidates`). The suffix shards mined across the
/// stream's lifetime partition the database, so the SON pigeonhole
/// applies at every point: an itemset that is globally frequent *now*
/// was locally frequent in at least one suffix shard when that shard
/// arrived and therefore sits in the pool — the recount returns the
/// exact full-database answer, identical (itemsets and moments) to
/// mining the accumulated database from scratch. Note the pool keeps
/// every shard-local candidate, not just previously-global ones: an
/// itemset can be locally frequent long before it is globally frequent,
/// and dropping it then would lose it forever.
///
/// Mining the suffix works pre- and post-compaction alike: the suffix is
/// a `Slice` of the full view, and slices walk the base/delta segment
/// lists transparently. Results and counters are bit-identical whatever
/// the compaction policy (the streaming differential harness pins this).
///
/// Only expected-support tasks are supported — the same additivity
/// restriction as `ShardedMiner`.
///
/// **Batch sizing.** The per-shard threshold is min_esup * |batch|;
/// when that drops below ~1 expected occurrence, *every* itemset a
/// transaction contains is locally frequent and the candidate pool
/// explodes combinatorially — the classic SON degenerate regime, shared
/// with very small `ShardedMiner` shards. Keep batches large enough
/// that min_esup * batch_size stays comfortably above 1 (a few
/// occurrences); the recount then dominates and stays linear in the
/// pool.
class DeltaMiner {
 public:
  /// Wraps `inner` (an expected-support miner; typically registry-made).
  /// The stream starts empty; feed transactions through `MineNext`.
  /// `num_threads` as in MinerOptions (0 = all hardware threads),
  /// applied to the suffix mining and the recount.
  DeltaMiner(std::unique_ptr<Miner> inner, ExpectedSupportParams params,
             CompactionPolicy policy = {}, std::size_t num_threads = 1);

  /// "Delta(<inner name>)".
  std::string_view name() const { return name_; }

  /// Appends `batch` to the stream and returns the exact mining result
  /// over every transaction appended so far. An empty batch re-mines the
  /// current state (recount only): it opens no append transaction,
  /// triggers no policy compaction, and moves no shard bookkeeping.
  ///
  /// **Transactional.** The append runs under the view's
  /// BeginAppend/CommitAppend protocol: if the inner shard mine fails
  /// (including cancellation through the attached RunContext), the batch
  /// is rolled back to the pre-append watermark and the error returned —
  /// the stream is *not* poisoned. Retrying the same batch after a
  /// transient failure appends it exactly once and yields the same
  /// result as if the failure never happened. The candidate pool and
  /// shard watermark advance only on a successful shard mine, and the
  /// batch commits before the recount, so a recount-phase failure leaves
  /// a consistent committed stream that an empty-batch retry re-mines.
  ///
  /// **Threads.** Calls to MineNext must still be serialized by the
  /// caller (it is the stream's one writer), but the expensive recount
  /// phase runs over a `Snapshot()` taken at commit time, outside the
  /// miner's write mutex — so an explicit `Compact()` from another
  /// thread may overlap the recount freely without changing a bit of
  /// the result.
  Result<MiningResult> MineNext(std::span<const Transaction> batch);

  /// Attaches the cooperative cancellation / deadline / budget token,
  /// shared with the inner shard miner. `MakeDeltaMiner` forwards
  /// `MinerOptions::run_context` automatically.
  void set_run_context(RunContext context);
  const RunContext& run_context() const { return run_context_; }

  /// Read-only storage access. Mutation stays behind MineNext (and the
  /// Compact forwarder below): appending to the view directly would
  /// bypass the suffix-shard bookkeeping and silently break exactness.
  const StreamingFlatView& view() const { return view_; }

  /// Forces a compaction — a layout change only, never a result change
  /// (the differential harness pins this). Serialized with MineNext's
  /// mutation phase by the miner's write mutex, so it may be called
  /// from another thread even while a MineNext recount is in flight:
  /// the recount reads a frozen snapshot, and copy-on-compact leaves
  /// retired storage untouched.
  void Compact() {
    MutexLock lock(write_mu_);
    view_.AssertSoleWriter();
    view_.Compact();
  }

  /// Suffix shards mined so far (== MineNext calls with a non-empty
  /// batch).
  std::size_t shards_mined() const {
    MutexLock lock(write_mu_);
    return shards_mined_;
  }

  /// Distinct shard-local frequent itemsets accumulated for recounting.
  std::size_t candidate_pool_size() const {
    MutexLock lock(write_mu_);
    return pool_.size();
  }

  /// Candidates first admitted to the pool at storage generation >=
  /// `generation` — per-generation bookkeeping for pool-growth
  /// diagnostics (a candidate's admission generation never changes;
  /// re-discovery by a later shard keeps the original).
  std::size_t candidates_admitted_since(std::uint64_t generation) const;

 private:
  std::unique_ptr<Miner> inner_;
  ExpectedSupportParams params_;
  std::string name_;
  std::size_t num_threads_;
  RunContext run_context_;

  /// Serializes stream mutation + snapshot acquisition (MineNext's
  /// append/commit phase, explicit Compact) and guards the pool and
  /// shard bookkeeping. The recount phase deliberately runs outside it.
  mutable Mutex write_mu_;
  StreamingFlatView view_;
  /// Transactions covered by mined suffix shards.
  std::size_t mined_upto_ UFIM_GUARDED_BY(write_mu_) = 0;
  std::size_t shards_mined_ UFIM_GUARDED_BY(write_mu_) = 0;
  /// Candidate -> storage generation at which the pool admitted it.
  std::unordered_map<Itemset, std::uint64_t, ItemsetHash> pool_
      UFIM_GUARDED_BY(write_mu_);
};

/// Builds a `DeltaMiner` around a registry algorithm — the streaming
/// entry point behind the `Miner` facade: any registered expected-support
/// algorithm can serve as the shard miner. NotFound for unregistered
/// names, InvalidArgument for non-expected-support algorithms.
Result<std::unique_ptr<DeltaMiner>> MakeDeltaMiner(
    std::string_view algorithm, const ExpectedSupportParams& params,
    const MinerOptions& options = {}, CompactionPolicy policy = {});

}  // namespace ufim

#endif  // UFIM_CORE_DELTA_MINER_H_
