#ifndef UFIM_CORE_ITEMSET_H_
#define UFIM_CORE_ITEMSET_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.h"

namespace ufim {

/// An itemset: a non-empty, duplicate-free, sorted set of items.
///
/// Stored as a sorted vector for cache-friendly subset tests and prefix
/// joins (the hot operations in every Apriori-style miner).
class Itemset {
 public:
  Itemset() = default;

  /// Constructs from arbitrary items; sorts and deduplicates.
  explicit Itemset(std::vector<ItemId> items);
  Itemset(std::initializer_list<ItemId> items);

  Itemset(const Itemset&) = default;
  Itemset& operator=(const Itemset&) = default;
  Itemset(Itemset&&) noexcept = default;
  Itemset& operator=(Itemset&&) noexcept = default;

  /// Number of items (the `l` of an l-itemset).
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Items in ascending order.
  const std::vector<ItemId>& items() const { return items_; }
  ItemId operator[](std::size_t i) const { return items_[i]; }

  std::vector<ItemId>::const_iterator begin() const { return items_.begin(); }
  std::vector<ItemId>::const_iterator end() const { return items_.end(); }

  /// True iff `item` is a member (binary search).
  bool Contains(ItemId item) const;

  /// True iff every item of `other` is a member (merge walk).
  bool ContainsAll(const Itemset& other) const;

  /// Returns this itemset extended with `item`. Precondition: `item` is
  /// not already a member.
  Itemset Union(ItemId item) const;

  /// Returns this itemset with the item at position `pos` removed.
  Itemset WithoutIndex(std::size_t pos) const;

  /// All (size-1)-subsets, in position order. Used for Apriori pruning.
  std::vector<Itemset> AllSubsetsMissingOne() const;

  /// True iff the first size-1 items of `a` and `b` agree (the classic
  /// Apriori join condition for two k-itemsets sharing a (k-1)-prefix).
  static bool SharesPrefix(const Itemset& a, const Itemset& b);

  /// "{1, 5, 9}" — for logs and test failure messages.
  std::string ToString() const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.items_ == b.items_;
  }
  friend bool operator<(const Itemset& a, const Itemset& b) {
    return a.items_ < b.items_;
  }

 private:
  std::vector<ItemId> items_;
};

/// Hash functor so Itemset can key unordered containers.
struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const;
};

}  // namespace ufim

#endif  // UFIM_CORE_ITEMSET_H_
