#ifndef UFIM_CORE_TYPES_H_
#define UFIM_CORE_TYPES_H_

#include <cstdint>

namespace ufim {

/// Dense identifier of an item. Generators and loaders map raw item labels
/// to a contiguous range [0, num_items).
using ItemId = std::uint32_t;

/// Number of transactions / index of a transaction in a database.
using TransactionId = std::uint32_t;

/// One probabilistic unit inside a transaction: item `item` appears in the
/// transaction with existential probability `prob` (attribute-level
/// uncertainty, independent across units — the model of Defs. 1-4 of the
/// paper).
struct ProbItem {
  ItemId item = 0;
  double prob = 0.0;

  friend bool operator==(const ProbItem& a, const ProbItem& b) {
    return a.item == b.item && a.prob == b.prob;
  }
};

}  // namespace ufim

#endif  // UFIM_CORE_TYPES_H_
