#ifndef UFIM_CORE_FLAT_VIEW_H_
#define UFIM_CORE_FLAT_VIEW_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/itemset.h"
#include "core/types.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Immutable columnar index over an `UncertainDatabase`, built once and
/// shared by every miner.
///
/// Two layouts over the same data, both in contiguous arrays:
///
///  * **Vertical (CSR postings):** for each item, the ascending list of
///    `(transaction, probability)` occurrences. Candidate support counting
///    becomes a tight merge-join of posting arrays instead of re-walking
///    `Transaction` objects — the locality argument of the paper's §4
///    made structural.
///  * **Horizontal (flat rows):** all transactions flattened into one
///    item array + one probability array with a CSR offset table, for the
///    tree/hyperlink builders (UFP-tree, UH-Struct) that consume
///    transactions in row order.
///
/// Per-item expected supports and Σp² are cached at build time, so the
/// level-1 pass of every miner is O(num_items) array reads.
///
/// A view is cheap to copy: copies share the underlying arrays.
/// `Slice(lo, hi)` returns an O(1) view of a contiguous transaction
/// range (`Prefix(n)` is `Slice(0, n)`) — the access pattern of the
/// scalability sweeps and of per-shard parallel mining; vertical
/// accessors of a sliced view locate their cuts by binary search on the
/// tid arrays.
///
/// Transaction ids are *global* throughout: `TransactionUnits` and
/// `Probability` take ids of the source database, and posting arrays
/// hold global ids, so ids agree across every slice of one database.
/// Iterate a view's transactions as `[begin_tid(), end_tid())`.
class FlatView {
 public:
  FlatView() : FlatView(UncertainDatabase()) {}

  /// Builds both layouts in two passes over `db`. The view does not keep
  /// a reference to `db`; it owns its arrays.
  explicit FlatView(const UncertainDatabase& db);

  std::size_t num_transactions() const { return end_ - begin_; }
  std::size_t num_items() const { return storage_->num_items; }
  bool empty() const { return begin_ == end_; }

  /// First transaction id in the view (inclusive).
  TransactionId begin_tid() const { return static_cast<TransactionId>(begin_); }
  /// One past the last transaction id in the view.
  TransactionId end_tid() const { return static_cast<TransactionId>(end_); }

  /// Total probabilistic units in the viewed transactions.
  std::size_t num_units() const;

  // --- Horizontal layout -------------------------------------------------

  /// Units of transaction `t`, ascending by item. Kept as interleaved
  /// (item, prob) records because every horizontal consumer — the probe
  /// sweep, the UFP-tree and UH-Struct builders — reads both fields of a
  /// unit together; the vertical postings below are the split layout.
  std::span<const ProbItem> TransactionUnits(TransactionId t) const {
    const Storage& s = *storage_;
    return {s.units.data() + s.txn_offsets[t],
            s.txn_offsets[t + 1] - s.txn_offsets[t]};
  }

  /// Existential probability of `item` in transaction `t`; 0 if absent.
  /// Binary search over the transaction's item array.
  double Probability(TransactionId t, ItemId item) const;

  // --- Vertical layout ---------------------------------------------------

  /// Transactions containing `item`, ascending. Items >= num_items() have
  /// empty postings.
  std::span<const TransactionId> PostingTids(ItemId item) const;

  /// Probabilities parallel to `PostingTids(item)`.
  std::span<const double> PostingProbs(ItemId item) const;

  /// Copies `item`'s postings into caller-owned vectors — the seed
  /// containment of a single-item prefix in the DFS miners (brute force,
  /// top-k). Existing contents are replaced.
  void CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                    std::vector<double>& probs) const;

  // --- Cached item moments ----------------------------------------------

  /// Σ_t Pr(item ∈ T_t) over the viewed transactions. O(1) on a full
  /// view; O(slice length) on a slice.
  double ItemExpectedSupport(ItemId item) const;

  /// Σ_t Pr(item ∈ T_t)² likewise.
  double ItemSquaredSum(ItemId item) const;

  // --- Itemset queries (merge-joins over postings) -----------------------

  /// Expected support of `itemset` by posting-list join (Definition 1).
  double ExpectedSupport(const Itemset& itemset) const;

  /// Nonzero containment probabilities Pr(X ⊆ T), ascending transaction
  /// order — identical contents to
  /// `UncertainDatabase::ContainmentProbabilities`.
  std::vector<double> ContainmentProbabilities(const Itemset& itemset) const;

  /// The shared posting merge-join kernel: visits every transaction
  /// containing all of `itemset`, ascending, with prod = Pr(X ⊆ T).
  /// Drives from the shortest member posting list and advances the other
  /// members' cursors monotonically by binary search. `sink` is called as
  /// sink(driver_pos, driver_len, tid, prod) on each match — driver_pos /
  /// driver_len expose join progress for optimistic-bound pruning (each
  /// remaining driver posting contributes at most 1 to esup) — and
  /// returns false to abandon the join.
  ///
  /// Every posting-join consumer (candidate evaluation, containment
  /// queries, the brute-force and top-k searches) routes through this or
  /// `JoinWithPostings` so join semantics can never diverge per miner.
  template <typename Sink>
  void JoinPostings(const Itemset& itemset, Sink&& sink) const {
    const std::vector<ItemId>& items = itemset.items();
    if (items.empty()) return;

    std::size_t driver = 0;
    std::size_t shortest = PostingTids(items[0]).size();
    for (std::size_t k = 1; k < items.size(); ++k) {
      const std::size_t len = PostingTids(items[k]).size();
      if (len < shortest) {
        shortest = len;
        driver = k;
      }
    }
    if (shortest == 0) return;

    struct Cursor {
      std::span<const TransactionId> tids;
      std::span<const double> probs;
      std::size_t pos;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(items.size() - 1);
    for (std::size_t k = 0; k < items.size(); ++k) {
      if (k == driver) continue;
      cursors.push_back(Cursor{PostingTids(items[k]), PostingProbs(items[k]), 0});
    }

    const std::span<const TransactionId> dtids = PostingTids(items[driver]);
    const std::span<const double> dprobs = PostingProbs(items[driver]);
    for (std::size_t i = 0; i < dtids.size(); ++i) {
      const TransactionId tid = dtids[i];
      double prod = dprobs[i];
      bool all = true;
      for (Cursor& c : cursors) {
        c.pos = static_cast<std::size_t>(
            std::lower_bound(c.tids.begin() + c.pos, c.tids.end(), tid) -
            c.tids.begin());
        if (c.pos == c.tids.size() || c.tids[c.pos] != tid) {
          all = false;
          break;
        }
        prod *= c.probs[c.pos];
      }
      if (all && !sink(i, dtids.size(), tid, prod)) return;
    }
  }

  /// The list×postings variant of the kernel: merge-joins an ascending
  /// tid sequence (typically a prefix itemset's containment) with
  /// `item`'s postings, calling sink(seq_index, posting_prob) per match.
  template <typename Sink>
  void JoinWithPostings(std::span<const TransactionId> seq_tids, ItemId item,
                        Sink&& sink) const {
    const std::span<const TransactionId> tids = PostingTids(item);
    const std::span<const double> probs = PostingProbs(item);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < seq_tids.size() && pos < tids.size(); ++i) {
      pos = static_cast<std::size_t>(
          std::lower_bound(tids.begin() + pos, tids.end(), seq_tids[i]) -
          tids.begin());
      if (pos < tids.size() && tids[pos] == seq_tids[i]) {
        sink(i, probs[pos]);
      }
    }
  }

  // --- Slicing -----------------------------------------------------------

  /// View over transactions [lo, hi) *of this view* (offsets are
  /// view-relative, so slices compose; the resulting view still reports
  /// global transaction ids). O(1): shares all arrays with this view.
  /// `lo` and `hi` are clamped to [0, num_transactions()] and to each
  /// other (hi < lo yields an empty view at lo).
  FlatView Slice(std::size_t lo, std::size_t hi) const;

  /// View over the first `n` transactions: `Slice(0, n)`.
  FlatView Prefix(std::size_t n) const;

  /// True when the view spans the whole database it was built from.
  bool IsFullView() const {
    return begin_ == 0 && end_ == storage_->full_size;
  }

 private:
  struct Storage {
    std::size_t num_items = 0;
    std::size_t full_size = 0;  ///< transactions in the source database

    // Horizontal CSR.
    std::vector<std::size_t> txn_offsets;  ///< size full_size + 1
    std::vector<ProbItem> units;

    // Vertical CSR: postings of item i live in
    // [item_offsets[i], item_offsets[i+1]) of the two arrays below,
    // sorted by ascending tid.
    std::vector<std::size_t> item_offsets;  ///< size num_items + 1
    std::vector<TransactionId> posting_tids;
    std::vector<double> posting_probs;

    // Full-database per-item moments.
    std::vector<double> item_esup;
    std::vector<double> item_sq_sum;
  };

  FlatView(std::shared_ptr<const Storage> storage, std::size_t begin,
           std::size_t end)
      : storage_(std::move(storage)), begin_(begin), end_(end) {}

  /// Postings of `item` cut to tids in [begin_, end_).
  std::pair<std::size_t, std::size_t> PostingRange(ItemId item) const;

  std::shared_ptr<const Storage> storage_;
  std::size_t begin_ = 0;  ///< first viewed transaction (global id)
  std::size_t end_ = 0;    ///< one past the last viewed transaction
};

}  // namespace ufim

#endif  // UFIM_CORE_FLAT_VIEW_H_
