#ifndef UFIM_CORE_FLAT_VIEW_H_
#define UFIM_CORE_FLAT_VIEW_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/math_util.h"
#include "core/itemset.h"
#include "core/simd_intersect.h"
#include "core/types.h"
#include "core/uncertain_database.h"

/// Stale-view generation checks (see "Storage generations" in the
/// FlatView class comment) compile into debug and sanitizer builds —
/// anything built without NDEBUG — and out of Release, keeping the hot
/// accessors branch-free there. Define UFIM_STALE_VIEW_CHECKS=0/1 to
/// override either way.
#ifndef UFIM_STALE_VIEW_CHECKS
#ifdef NDEBUG
#define UFIM_STALE_VIEW_CHECKS 0
#else
#define UFIM_STALE_VIEW_CHECKS 1
#endif
#endif

namespace ufim {

class FlatView;
class StreamingFlatView;
class StreamingSnapshot;

/// One contiguous run of an item's postings: parallel (tid, probability)
/// columns, ascending by tid. An item's postings within a view are a
/// short *list* of such segments — one for a fully compacted view, two
/// when a streaming delta tail is present (see FlatView below) — whose
/// concatenation is the item's tid-sorted posting list.
struct PostingSegment {
  const TransactionId* tids = nullptr;
  const double* probs = nullptr;
  std::size_t len = 0;
};

/// An item's postings within a view, as at most two non-empty segments
/// (base region first, then the streaming delta tail). The segments are
/// tid-partitioned: every tid of `seg[0]` precedes every tid of
/// `seg[1]`, so walking them in order yields the ascending posting list.
struct SegmentedPostings {
  PostingSegment seg[2];
  std::size_t count = 0;  ///< populated entries in seg, 0..2
  std::size_t total = 0;  ///< postings across the populated segments
};

/// Reusable scratch for the batch posting-join kernels: the member
/// segment cursors, the intersection index buffers, and the survivor
/// (tid, product) columns. One instance per worker; buffers grow to the
/// largest join seen and are reused, so the steady-state hot loop
/// allocates nothing (this is where the old per-call `cursors` vector
/// went).
class JoinScratch {
 public:
  JoinScratch() = default;

  // The scratch carries raw pointers into a FlatView between
  // BeginJoin/NextJoinBatch calls; copying mid-join would be a bug, and
  // workers each own one anyway.
  JoinScratch(const JoinScratch&) = delete;
  JoinScratch& operator=(const JoinScratch&) = delete;
  JoinScratch(JoinScratch&&) = default;
  JoinScratch& operator=(JoinScratch&&) = default;

 private:
  friend class FlatView;

  /// One side of the join: a logical posting list as its physical
  /// segments, with a consumption cursor (current segment + offset
  /// within it) advanced batch by batch.
  struct Side {
    SegmentedPostings postings;
    std::size_t cur = 0;  ///< current segment index
    std::size_t pos = 0;  ///< consumed prefix within segment `cur`
  };

  void EnsureCapacity(std::size_t n) {
    if (match_a_.size() < n) {
      match_a_.resize(n);
      match_b_.resize(n);
      tids_.resize(n);
      prods_.resize(n);
    }
  }

  // In-flight join state (set by FlatView::BeginJoin). The driver is
  // consumed by *logical* position (driver_pos_), not a per-segment
  // cursor: batches address its segments directly by offset.
  SegmentedPostings driver_postings_;
  std::size_t driver_len_ = 0;  ///< total driver postings, across segments
  std::size_t driver_pos_ = 0;  ///< consumed logical prefix
  std::vector<Side> members_;

  // Batch buffers: match positions from the intersect kernel plus the
  // survivor columns compacted in place as members fold in.
  std::vector<std::uint32_t> match_a_;
  std::vector<std::uint32_t> match_b_;
  std::vector<TransactionId> tids_;
  std::vector<double> prods_;
};

/// One batch of posting-join survivors: the transactions (within one
/// driver-posting batch) that contain the whole itemset, with their
/// containment products. Spans point into the scratch (or the view's
/// storage for single-item joins) and are valid until the next batch.
struct JoinBatch {
  std::span<const TransactionId> tids;  ///< matching transactions, ascending
  std::span<const double> prods;        ///< Pr(X ⊆ T), parallel to tids
  std::size_t driver_done = 0;  ///< driver postings consumed incl. this batch
  std::size_t driver_len = 0;   ///< total driver postings
};

/// Columnar index over an `UncertainDatabase`, built once and shared by
/// every miner.
///
/// Two layouts over the same data, both in contiguous arrays:
///
///  * **Vertical (CSR postings):** for each item, the ascending list of
///    `(transaction, probability)` occurrences. Candidate support counting
///    becomes a tight merge-join of posting arrays instead of re-walking
///    `Transaction` objects — the locality argument of the paper's §4
///    made structural.
///  * **Horizontal (flat rows):** all transactions flattened into one
///    item array + one probability array with a CSR offset table, for the
///    tree/hyperlink builders (UFP-tree, UH-Struct) that consume
///    transactions in row order.
///
/// Per-item expected supports and Σp² are cached at build time, so the
/// level-1 pass of every miner is O(num_items) array reads.
///
/// **Streaming delta.** A view built by `FlatView(db)` is fully
/// contiguous. A view obtained from a `StreamingFlatView` may carry a
/// *delta tail*: transactions appended after the last compaction live in
/// per-item tail segments (and a separate horizontal CSR) instead of the
/// base arrays. Appended tids are strictly greater than every base tid,
/// so an item's logical posting list is the base segment followed by the
/// delta segment — `PostingSegments` exposes exactly that, and every
/// accessor and join kernel walks the segment list transparently, with
/// the *same* logical batch boundaries and float evaluation order as a
/// contiguous rebuild. Results are therefore bit-identical whether the
/// data was appended or rebuilt from scratch (the streaming differential
/// harness enforces this).
///
/// **Storage generations (stale-view detection).** Every storage
/// carries a monotonically increasing generation counter; a mutation of
/// streaming storage (`StreamingFlatView::Append`, `Compact`,
/// `RollbackAppend`) bumps it. A view remembers the generation it was
/// born at, and in debug/sanitizer builds (`UFIM_STALE_VIEW_CHECKS`)
/// every accessor verifies the two still agree — a *stale* view, one
/// that outlived a mutation of its storage, aborts with a clear message
/// instead of silently reading mutated arrays and returning wrong
/// supports. Views over `FlatView(db)` storage are never stale (nothing
/// mutates that storage), and a `StreamingSnapshot`'s view holds frozen
/// storage whose generation never moves, so both pass the check for
/// free; only live `StreamingFlatView::View()` views (and their slices
/// and copies, which inherit the birth generation) can trip it.
///
/// A view is cheap to copy: copies share the underlying arrays.
/// `Slice(lo, hi)` returns an O(1) view of a contiguous transaction
/// range (`Prefix(n)` is `Slice(0, n)`) — the access pattern of the
/// scalability sweeps and of per-shard parallel mining; vertical
/// accessors of a sliced view locate their cuts by binary search on the
/// tid arrays. Slices may span the base/delta seam.
///
/// Transaction ids are *global* throughout: `TransactionUnits` and
/// `Probability` take ids of the source database, and posting arrays
/// hold global ids, so ids agree across every slice of one database.
/// Iterate a view's transactions as `[begin_tid(), end_tid())`.
class FlatView {
 public:
  FlatView() : FlatView(UncertainDatabase()) {}

  /// Builds both layouts in two passes over `db`. The view does not keep
  /// a reference to `db`; it owns its arrays.
  explicit FlatView(const UncertainDatabase& db);

  std::size_t num_transactions() const { return end_ - begin_; }
  std::size_t num_items() const { return storage_->num_items; }
  bool empty() const { return begin_ == end_; }

  /// First transaction id in the view (inclusive).
  TransactionId begin_tid() const { return static_cast<TransactionId>(begin_); }
  /// One past the last transaction id in the view.
  TransactionId end_tid() const { return static_cast<TransactionId>(end_); }

  /// Total probabilistic units in the viewed transactions.
  std::size_t num_units() const;

  // --- Horizontal layout -------------------------------------------------

  /// Units of transaction `t`, ascending by item. Kept as interleaved
  /// (item, prob) records because every horizontal consumer — the probe
  /// sweep, the UFP-tree and UH-Struct builders — reads both fields of a
  /// unit together; the vertical postings below are the split layout.
  /// Transparently reads the delta region for appended transactions.
  std::span<const ProbItem> TransactionUnits(TransactionId t) const {
    CheckNotStale();
    const Storage& s = *storage_;
    if (t < s.base_size) {
      const Storage::BaseArrays& b = *s.base;
      return {b.units.data() + b.txn_offsets[t],
              b.txn_offsets[t + 1] - b.txn_offsets[t]};
    }
    const std::size_t d = t - s.base_size;
    return {s.delta_units.data() + s.delta_txn_offsets[d],
            s.delta_txn_offsets[d + 1] - s.delta_txn_offsets[d]};
  }

  /// Existential probability of `item` in transaction `t`; 0 if absent.
  /// Binary search over the transaction's item array.
  double Probability(TransactionId t, ItemId item) const;

  // --- Vertical layout ---------------------------------------------------

  /// `item`'s postings within this view as tid-partitioned segments
  /// (base region first, then the delta tail) — the general accessor
  /// that every posting consumer walks. Views without a delta (all
  /// views over `FlatView(db)` storage, and streaming views after a
  /// compaction) produce at most one segment. Items >= num_items() have
  /// no segments.
  SegmentedPostings PostingSegments(ItemId item) const;

  /// Total postings of `item` in this view, across segments.
  std::size_t PostingCount(ItemId item) const {
    return PostingSegments(item).total;
  }

  /// Transactions containing `item`, ascending, as one contiguous span.
  /// Precondition: `item`'s postings in this view occupy a single
  /// segment (always true without a streaming delta); a seam-spanning
  /// call aborts in every build rather than silently dropping the delta
  /// segment. Callers that must handle streaming views use
  /// `PostingSegments`.
  std::span<const TransactionId> PostingTids(ItemId item) const;

  /// Probabilities parallel to `PostingTids(item)`; same precondition.
  std::span<const double> PostingProbs(ItemId item) const;

  /// Copies `item`'s postings into caller-owned vectors — the seed
  /// containment of a single-item prefix in the DFS miners (brute force,
  /// top-k). Existing contents are replaced. Segment-aware.
  void CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                    std::vector<double>& probs) const;

  /// Probability column only (the level-1 containment vector of the
  /// probabilistic apriori loop). Appends to `probs` in tid order,
  /// segment-aware, keeping the seam-walk knowledge inside the view.
  void AppendPostingProbs(ItemId item, std::vector<double>& probs) const;

  // --- Cached item moments ----------------------------------------------

  /// Σ_t Pr(item ∈ T_t) over the viewed transactions. O(1) on a full
  /// view; O(slice length) on a slice.
  double ItemExpectedSupport(ItemId item) const;

  /// Σ_t Pr(item ∈ T_t)² likewise.
  double ItemSquaredSum(ItemId item) const;

  // --- Itemset queries (merge-joins over postings) -----------------------

  /// Expected support of `itemset` by posting-list join (Definition 1).
  double ExpectedSupport(const Itemset& itemset) const;

  /// Nonzero containment probabilities Pr(X ⊆ T), ascending transaction
  /// order — identical contents to
  /// `UncertainDatabase::ContainmentProbabilities`.
  std::vector<double> ContainmentProbabilities(const Itemset& itemset) const;

  /// Driver postings per join batch. A pure function of nothing — a
  /// constant — so the batch boundaries (and with them any
  /// between-batch pruning schedule a consumer builds on top) are
  /// identical at every thread count and under every intersect kernel.
  static constexpr std::size_t kJoinBatchTids = 1024;

  /// The shared posting merge-join kernel, batch form. Drives from the
  /// shortest member posting list, `kJoinBatchTids` *logical* postings
  /// at a time (a batch may straddle the base/delta seam — the batch
  /// boundaries depend only on the driver length, never on the physical
  /// layout); per batch it (1) intersects the driver tids against each
  /// remaining member's segments through `IntersectIndices` (galloping /
  /// SIMD per the runtime dispatch), compacting the survivor list, and
  /// (2) folds member probabilities into the running products in fixed
  /// member order — so the float evaluation order, and with it every
  /// result bit, is independent of the kernel that ran the set logic and
  /// of whether the postings are contiguous or segmented.
  ///
  /// `sink(const JoinBatch&)` is called once per batch (matches in
  /// ascending tid order across batches) and returns false to abandon
  /// the join — the optimistic-bound hook for decremental pruning: each
  /// unseen driver posting contributes at most 1 to expected support.
  ///
  /// Every posting-join consumer (candidate evaluation, containment
  /// queries, the sharded/streaming recounts, the brute-force and top-k
  /// searches) routes through this or `JoinWithPostings` so join
  /// semantics can never diverge per miner.
  template <typename BatchSink>
  void JoinPostingsBatched(const Itemset& itemset, JoinScratch& scratch,
                           BatchSink&& sink) const {
    if (!BeginJoin(itemset, scratch)) return;
    JoinBatch batch;
    while (NextJoinBatch(scratch, batch)) {
      if (!sink(batch)) return;
    }
  }

  /// Matches of the list×postings join variant. Spans point into the
  /// scratch and are valid until its next use.
  struct ListMatches {
    std::span<const std::uint32_t> seq_indices;  ///< positions in seq_tids
    std::span<const double> probs;               ///< item's probability per match
    std::size_t size() const { return probs.size(); }
  };

  /// The list×postings variant of the kernel: intersects an ascending
  /// tid sequence (typically a prefix itemset's containment) with
  /// `item`'s posting segments in one vectorized pass per segment and
  /// gathers the matching posting probabilities.
  ListMatches JoinWithPostings(std::span<const TransactionId> seq_tids,
                               ItemId item, JoinScratch& scratch) const;

  // --- Rank projection (pattern-growth builders) -------------------------

  /// One unit of a rank-projected transaction.
  struct RankUnit {
    std::uint32_t rank = 0;
    double prob = 0.0;
  };

  /// CSR of the viewed transactions projected onto a frequent-item
  /// ranking: row t (view-relative) holds transaction begin_tid()+t's
  /// kept units, re-labelled by rank and ascending by rank. Rows of
  /// transactions with no kept item are empty.
  struct RankProjection {
    std::vector<std::uint32_t> txn_offsets;  ///< size num_transactions()+1
    std::vector<RankUnit> units;
  };

  /// Projects the view onto `rank_to_item` (rank r ↦ rank_to_item[r]).
  /// Built vertically — a counting pass plus a fill pass over the kept
  /// items' posting segments in rank order — so it reads only the kept
  /// units and each row comes out rank-sorted with no per-row sort; the
  /// UFP-tree and UH-Struct builders consume this instead of filtering
  /// the horizontal layout row by row.
  RankProjection ProjectOntoRanks(std::span<const ItemId> rank_to_item) const;

  // --- Slicing -----------------------------------------------------------

  /// View over transactions [lo, hi) *of this view* (offsets are
  /// view-relative, so slices compose; the resulting view still reports
  /// global transaction ids). O(1): shares all arrays with this view.
  /// `lo` and `hi` are clamped to [0, num_transactions()] and to each
  /// other (hi < lo yields an empty view at lo).
  [[nodiscard]] FlatView Slice(std::size_t lo, std::size_t hi) const;

  /// View over the first `n` transactions: `Slice(0, n)`.
  [[nodiscard]] FlatView Prefix(std::size_t n) const;

  /// True when the view spans the whole database it was built from.
  bool IsFullView() const {
    return begin_ == 0 && end_ == storage_->full_size;
  }

 private:
  friend class StreamingFlatView;

  struct Storage {
    /// The contiguous compacted region's arrays, immutable once
    /// published and shared by reference: `StreamingFlatView::Compact`
    /// builds a fresh merged `BaseArrays` into fresh storage
    /// (copy-on-compact) instead of rewriting these in place, and
    /// `StreamingFlatView::Snapshot` freezes a storage by copying only
    /// the delta + moment arrays while sharing this pointer — O(delta),
    /// bounded by the compaction policy, never O(total).
    struct BaseArrays {
      // Horizontal CSR over the base transactions [0, base_size).
      std::vector<std::size_t> txn_offsets;  ///< size base_size + 1
      std::vector<ProbItem> units;

      // Vertical CSR (base): postings of item i live in
      // [item_offsets[i], item_offsets[i+1]) of the two arrays below,
      // sorted by ascending tid. Covers the *base* item universe only —
      // items first seen in the delta have no base postings.
      std::vector<std::size_t> item_offsets;
      std::vector<TransactionId> posting_tids;
      std::vector<double> posting_probs;
    };

    std::size_t num_items = 0;  ///< one past the largest item id (base+delta)
    std::size_t full_size = 0;  ///< transactions in the source database
    std::size_t base_size = 0;  ///< transactions in the contiguous base

    /// Immutable base arrays; set by every construction path
    /// (BuildStorage / Compact / Snapshot), never rewritten after.
    std::shared_ptr<const BaseArrays> base;

    /// Mutation counter for stale-view detection: bumped by streaming
    /// Append/Rollback, and bumped once more when a compaction retires
    /// this storage in favour of the freshly merged one. Atomic so a
    /// stale reader's check races cleanly with the writer's bump
    /// (relaxed order suffices — the check is advisory, not a fence).
    std::atomic<std::uint64_t> generation{0};

    // Streaming delta: transactions [base_size, full_size), appended by
    // StreamingFlatView and folded into a fresh base by Compact(). The
    // horizontal CSR mirrors the base one; vertical postings are
    // per-item tail vectors (append-friendly, tid-sorted by arrival).
    std::vector<std::size_t> delta_txn_offsets;  ///< size full_size-base_size+1
    std::vector<ProbItem> delta_units;
    std::vector<std::vector<TransactionId>> delta_tids;  ///< size num_items
    std::vector<std::vector<double>> delta_probs;        ///< parallel

    // Full-database per-item moments. The Kahan accumulators are the
    // live state (streaming appends continue them so the cached value is
    // bit-identical to a from-scratch rebuild's accumulation); item_esup
    // holds their current values for branch-free reads.
    std::vector<double> item_esup;
    std::vector<double> item_sq_sum;
    std::vector<KahanSum> item_esup_acc;

    /// Items with base postings: item_offsets.size() - 1 (0 before any
    /// build).
    std::size_t base_num_items() const {
      return base == nullptr || base->item_offsets.empty()
                 ? 0
                 : base->item_offsets.size() - 1;
    }
  };

  FlatView(std::shared_ptr<const Storage> storage, std::size_t begin,
           std::size_t end, std::uint64_t born_generation)
      : storage_(std::move(storage)),
        begin_(begin),
        end_(end),
        born_generation_(born_generation) {}

  /// Aborts with the stale-view diagnostic (see CheckNotStale).
  [[noreturn]] static void DieOnStaleView();

  /// Debug/sanitizer-build guard on every accessor: a view whose
  /// storage has been mutated since the view was born (a *stale* view —
  /// the single-writer contract of StreamingFlatView was broken, or a
  /// raw View() was held across an Append/Compact where a Snapshot()
  /// was required) aborts loudly instead of silently reading mutated
  /// arrays. Snapshot views and plain FlatView(db) views always pass:
  /// their storage's generation never moves.
  void CheckNotStale() const {
#if UFIM_STALE_VIEW_CHECKS
    if (storage_->generation.load(std::memory_order_relaxed) !=
        born_generation_) {
      DieOnStaleView();
    }
#endif
  }

  /// Builds `s` as the contiguous (no-delta) columnar image of `db`.
  static void BuildStorage(const UncertainDatabase& db, Storage& s);

  /// Folds one member side into the survivor columns (see flat_view.cc).
  static std::size_t FoldMember(const TransactionId* src_t,
                                const double* src_p, std::size_t n,
                                const JoinScratch::Side& m, TransactionId* st,
                                double* sp, std::uint32_t* ma,
                                std::uint32_t* mb);

  /// Advances a side's segment cursor past postings with tid <= last_tid.
  static void AdvanceSide(JoinScratch::Side& m, TransactionId last_tid);

  /// Units in transactions [0, t) of the storage (t <= full_size).
  std::size_t UnitsBefore(std::size_t t) const;

  /// Sets up `scratch` for a batched join of `itemset` (driver
  /// selection, member segment cursors). False when the join is
  /// trivially empty.
  bool BeginJoin(const Itemset& itemset, JoinScratch& scratch) const;

  /// Runs one driver batch of a join started by `BeginJoin`: intersect
  /// against each member's segments, fold probabilities, advance member
  /// cursors. False when the driver is exhausted.
  bool NextJoinBatch(JoinScratch& scratch, JoinBatch& batch) const;

  std::shared_ptr<const Storage> storage_;
  std::size_t begin_ = 0;  ///< first viewed transaction (global id)
  std::size_t end_ = 0;    ///< one past the last viewed transaction
  /// Storage generation this view (or the view it was sliced/copied
  /// from) was obtained at; compared against the live generation by
  /// CheckNotStale in debug/sanitizer builds.
  std::uint64_t born_generation_ = 0;
};

}  // namespace ufim

#endif  // UFIM_CORE_FLAT_VIEW_H_
