#ifndef UFIM_CORE_FLAT_VIEW_H_
#define UFIM_CORE_FLAT_VIEW_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/itemset.h"
#include "core/simd_intersect.h"
#include "core/types.h"
#include "core/uncertain_database.h"

namespace ufim {

class FlatView;

/// Reusable scratch for the batch posting-join kernels: the member
/// cursor table, the intersection index buffers, and the survivor
/// (tid, product) columns. One instance per worker; buffers grow to the
/// largest join seen and are reused, so the steady-state hot loop
/// allocates nothing (this is where the old per-call `cursors` vector
/// went).
class JoinScratch {
 public:
  JoinScratch() = default;

  // The scratch carries raw pointers into a FlatView between
  // BeginJoin/NextJoinBatch calls; copying mid-join would be a bug, and
  // workers each own one anyway.
  JoinScratch(const JoinScratch&) = delete;
  JoinScratch& operator=(const JoinScratch&) = delete;
  JoinScratch(JoinScratch&&) = default;
  JoinScratch& operator=(JoinScratch&&) = default;

 private:
  friend class FlatView;

  struct Member {
    const TransactionId* tids = nullptr;
    const double* probs = nullptr;
    std::size_t len = 0;
    std::size_t pos = 0;  ///< consumed prefix, advanced batch by batch
  };

  void EnsureCapacity(std::size_t n) {
    if (match_a_.size() < n) {
      match_a_.resize(n);
      match_b_.resize(n);
      tids_.resize(n);
      prods_.resize(n);
    }
  }

  // In-flight join state (set by FlatView::BeginJoin).
  const TransactionId* driver_tids_ = nullptr;
  const double* driver_probs_ = nullptr;
  std::size_t driver_len_ = 0;
  std::size_t driver_pos_ = 0;
  std::vector<Member> members_;

  // Batch buffers: match positions from the intersect kernel plus the
  // survivor columns compacted in place as members fold in.
  std::vector<std::uint32_t> match_a_;
  std::vector<std::uint32_t> match_b_;
  std::vector<TransactionId> tids_;
  std::vector<double> prods_;
};

/// One batch of posting-join survivors: the transactions (within one
/// driver-posting batch) that contain the whole itemset, with their
/// containment products. Spans point into the scratch (or the view's
/// storage for single-item joins) and are valid until the next batch.
struct JoinBatch {
  std::span<const TransactionId> tids;  ///< matching transactions, ascending
  std::span<const double> prods;        ///< Pr(X ⊆ T), parallel to tids
  std::size_t driver_done = 0;  ///< driver postings consumed incl. this batch
  std::size_t driver_len = 0;   ///< total driver postings
};

/// Immutable columnar index over an `UncertainDatabase`, built once and
/// shared by every miner.
///
/// Two layouts over the same data, both in contiguous arrays:
///
///  * **Vertical (CSR postings):** for each item, the ascending list of
///    `(transaction, probability)` occurrences. Candidate support counting
///    becomes a tight merge-join of posting arrays instead of re-walking
///    `Transaction` objects — the locality argument of the paper's §4
///    made structural.
///  * **Horizontal (flat rows):** all transactions flattened into one
///    item array + one probability array with a CSR offset table, for the
///    tree/hyperlink builders (UFP-tree, UH-Struct) that consume
///    transactions in row order.
///
/// Per-item expected supports and Σp² are cached at build time, so the
/// level-1 pass of every miner is O(num_items) array reads.
///
/// A view is cheap to copy: copies share the underlying arrays.
/// `Slice(lo, hi)` returns an O(1) view of a contiguous transaction
/// range (`Prefix(n)` is `Slice(0, n)`) — the access pattern of the
/// scalability sweeps and of per-shard parallel mining; vertical
/// accessors of a sliced view locate their cuts by binary search on the
/// tid arrays.
///
/// Transaction ids are *global* throughout: `TransactionUnits` and
/// `Probability` take ids of the source database, and posting arrays
/// hold global ids, so ids agree across every slice of one database.
/// Iterate a view's transactions as `[begin_tid(), end_tid())`.
class FlatView {
 public:
  FlatView() : FlatView(UncertainDatabase()) {}

  /// Builds both layouts in two passes over `db`. The view does not keep
  /// a reference to `db`; it owns its arrays.
  explicit FlatView(const UncertainDatabase& db);

  std::size_t num_transactions() const { return end_ - begin_; }
  std::size_t num_items() const { return storage_->num_items; }
  bool empty() const { return begin_ == end_; }

  /// First transaction id in the view (inclusive).
  TransactionId begin_tid() const { return static_cast<TransactionId>(begin_); }
  /// One past the last transaction id in the view.
  TransactionId end_tid() const { return static_cast<TransactionId>(end_); }

  /// Total probabilistic units in the viewed transactions.
  std::size_t num_units() const;

  // --- Horizontal layout -------------------------------------------------

  /// Units of transaction `t`, ascending by item. Kept as interleaved
  /// (item, prob) records because every horizontal consumer — the probe
  /// sweep, the UFP-tree and UH-Struct builders — reads both fields of a
  /// unit together; the vertical postings below are the split layout.
  std::span<const ProbItem> TransactionUnits(TransactionId t) const {
    const Storage& s = *storage_;
    return {s.units.data() + s.txn_offsets[t],
            s.txn_offsets[t + 1] - s.txn_offsets[t]};
  }

  /// Existential probability of `item` in transaction `t`; 0 if absent.
  /// Binary search over the transaction's item array.
  double Probability(TransactionId t, ItemId item) const;

  // --- Vertical layout ---------------------------------------------------

  /// Transactions containing `item`, ascending. Items >= num_items() have
  /// empty postings.
  std::span<const TransactionId> PostingTids(ItemId item) const;

  /// Probabilities parallel to `PostingTids(item)`.
  std::span<const double> PostingProbs(ItemId item) const;

  /// Copies `item`'s postings into caller-owned vectors — the seed
  /// containment of a single-item prefix in the DFS miners (brute force,
  /// top-k). Existing contents are replaced.
  void CopyPostings(ItemId item, std::vector<TransactionId>& tids,
                    std::vector<double>& probs) const;

  // --- Cached item moments ----------------------------------------------

  /// Σ_t Pr(item ∈ T_t) over the viewed transactions. O(1) on a full
  /// view; O(slice length) on a slice.
  double ItemExpectedSupport(ItemId item) const;

  /// Σ_t Pr(item ∈ T_t)² likewise.
  double ItemSquaredSum(ItemId item) const;

  // --- Itemset queries (merge-joins over postings) -----------------------

  /// Expected support of `itemset` by posting-list join (Definition 1).
  double ExpectedSupport(const Itemset& itemset) const;

  /// Nonzero containment probabilities Pr(X ⊆ T), ascending transaction
  /// order — identical contents to
  /// `UncertainDatabase::ContainmentProbabilities`.
  std::vector<double> ContainmentProbabilities(const Itemset& itemset) const;

  /// Driver postings per join batch. A pure function of nothing — a
  /// constant — so the batch boundaries (and with them any
  /// between-batch pruning schedule a consumer builds on top) are
  /// identical at every thread count and under every intersect kernel.
  static constexpr std::size_t kJoinBatchTids = 1024;

  /// The shared posting merge-join kernel, batch form. Drives from the
  /// shortest member posting list, `kJoinBatchTids` postings at a time;
  /// per batch it (1) intersects the driver tids against each remaining
  /// member's postings through `IntersectIndices` (galloping / SIMD per
  /// the runtime dispatch), compacting the survivor list, and (2)
  /// gathers member probabilities into the running products in fixed
  /// member order — so the float evaluation order, and with it every
  /// result bit, is independent of the kernel that ran the set logic.
  ///
  /// `sink(const JoinBatch&)` is called once per batch (matches in
  /// ascending tid order across batches) and returns false to abandon
  /// the join — the optimistic-bound hook for decremental pruning: each
  /// unseen driver posting contributes at most 1 to expected support.
  ///
  /// Every posting-join consumer (candidate evaluation, containment
  /// queries, the sharded recount, the brute-force and top-k searches)
  /// routes through this or `JoinWithPostings` so join semantics can
  /// never diverge per miner.
  template <typename BatchSink>
  void JoinPostingsBatched(const Itemset& itemset, JoinScratch& scratch,
                           BatchSink&& sink) const {
    if (!BeginJoin(itemset, scratch)) return;
    JoinBatch batch;
    while (NextJoinBatch(scratch, batch)) {
      if (!sink(batch)) return;
    }
  }

  /// Matches of the list×postings join variant. Spans point into the
  /// scratch and are valid until its next use.
  struct ListMatches {
    std::span<const std::uint32_t> seq_indices;  ///< positions in seq_tids
    std::span<const double> probs;               ///< item's probability per match
    std::size_t size() const { return probs.size(); }
  };

  /// The list×postings variant of the kernel: intersects an ascending
  /// tid sequence (typically a prefix itemset's containment) with
  /// `item`'s postings in one vectorized pass and gathers the matching
  /// posting probabilities.
  ListMatches JoinWithPostings(std::span<const TransactionId> seq_tids,
                               ItemId item, JoinScratch& scratch) const;

  // --- Rank projection (pattern-growth builders) -------------------------

  /// One unit of a rank-projected transaction.
  struct RankUnit {
    std::uint32_t rank = 0;
    double prob = 0.0;
  };

  /// CSR of the viewed transactions projected onto a frequent-item
  /// ranking: row t (view-relative) holds transaction begin_tid()+t's
  /// kept units, re-labelled by rank and ascending by rank. Rows of
  /// transactions with no kept item are empty.
  struct RankProjection {
    std::vector<std::uint32_t> txn_offsets;  ///< size num_transactions()+1
    std::vector<RankUnit> units;
  };

  /// Projects the view onto `rank_to_item` (rank r ↦ rank_to_item[r]).
  /// Built vertically — a counting pass plus a fill pass over the kept
  /// items' posting arrays in rank order — so it reads only the kept
  /// units and each row comes out rank-sorted with no per-row sort; the
  /// UFP-tree and UH-Struct builders consume this instead of filtering
  /// the horizontal layout row by row.
  RankProjection ProjectOntoRanks(std::span<const ItemId> rank_to_item) const;

  // --- Slicing -----------------------------------------------------------

  /// View over transactions [lo, hi) *of this view* (offsets are
  /// view-relative, so slices compose; the resulting view still reports
  /// global transaction ids). O(1): shares all arrays with this view.
  /// `lo` and `hi` are clamped to [0, num_transactions()] and to each
  /// other (hi < lo yields an empty view at lo).
  FlatView Slice(std::size_t lo, std::size_t hi) const;

  /// View over the first `n` transactions: `Slice(0, n)`.
  FlatView Prefix(std::size_t n) const;

  /// True when the view spans the whole database it was built from.
  bool IsFullView() const {
    return begin_ == 0 && end_ == storage_->full_size;
  }

 private:
  struct Storage {
    std::size_t num_items = 0;
    std::size_t full_size = 0;  ///< transactions in the source database

    // Horizontal CSR.
    std::vector<std::size_t> txn_offsets;  ///< size full_size + 1
    std::vector<ProbItem> units;

    // Vertical CSR: postings of item i live in
    // [item_offsets[i], item_offsets[i+1]) of the two arrays below,
    // sorted by ascending tid.
    std::vector<std::size_t> item_offsets;  ///< size num_items + 1
    std::vector<TransactionId> posting_tids;
    std::vector<double> posting_probs;

    // Full-database per-item moments.
    std::vector<double> item_esup;
    std::vector<double> item_sq_sum;
  };

  FlatView(std::shared_ptr<const Storage> storage, std::size_t begin,
           std::size_t end)
      : storage_(std::move(storage)), begin_(begin), end_(end) {}

  /// Postings of `item` cut to tids in [begin_, end_).
  std::pair<std::size_t, std::size_t> PostingRange(ItemId item) const;

  /// Sets up `scratch` for a batched join of `itemset` (driver
  /// selection, member cursor table). False when the join is trivially
  /// empty.
  bool BeginJoin(const Itemset& itemset, JoinScratch& scratch) const;

  /// Runs one driver batch of a join started by `BeginJoin`: intersect
  /// against each member, gather probabilities, advance member cursors.
  /// False when the driver is exhausted.
  bool NextJoinBatch(JoinScratch& scratch, JoinBatch& batch) const;

  std::shared_ptr<const Storage> storage_;
  std::size_t begin_ = 0;  ///< first viewed transaction (global id)
  std::size_t end_ = 0;    ///< one past the last viewed transaction
};

}  // namespace ufim

#endif  // UFIM_CORE_FLAT_VIEW_H_
