#include "core/mining_result.h"

#include <algorithm>
#include <cstdio>

namespace ufim {

MiningResult& MiningResult::SortCanonical() {
  std::sort(itemsets_.begin(), itemsets_.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return *this;
}

const FrequentItemset* MiningResult::Find(const Itemset& itemset) const {
  for (const FrequentItemset& fi : itemsets_) {
    if (fi.itemset == itemset) return &fi;
  }
  return nullptr;
}

std::vector<Itemset> MiningResult::ItemsetsOnly() const {
  std::vector<Itemset> out;
  out.reserve(itemsets_.size());
  for (const FrequentItemset& fi : itemsets_) out.push_back(fi.itemset);
  std::sort(out.begin(), out.end());
  return out;
}

std::string MiningResult::ToString() const {
  std::string out;
  char buf[160];
  for (const FrequentItemset& fi : itemsets_) {
    if (fi.frequent_probability.has_value()) {
      std::snprintf(buf, sizeof(buf), "  %s  esup=%.4f var=%.4f freq_prob=%.4f\n",
                    fi.itemset.ToString().c_str(), fi.expected_support,
                    fi.variance, *fi.frequent_probability);
    } else {
      std::snprintf(buf, sizeof(buf), "  %s  esup=%.4f var=%.4f\n",
                    fi.itemset.ToString().c_str(), fi.expected_support,
                    fi.variance);
    }
    out += buf;
  }
  return out;
}

}  // namespace ufim
