#include "core/possible_worlds.h"

#include <algorithm>

namespace ufim {

namespace {

/// Flattened view of all units for mask-based enumeration.
struct UnitRef {
  std::uint32_t txn;
  ItemId item;
  double prob;
};

std::vector<UnitRef> FlattenUnits(const UncertainDatabase& db) {
  std::vector<UnitRef> units;
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (const ProbItem& u : db[t]) {
      units.push_back(UnitRef{static_cast<std::uint32_t>(t), u.item, u.prob});
    }
  }
  return units;
}

}  // namespace

std::size_t WorldSupport(const World& world, const Itemset& itemset) {
  std::size_t support = 0;
  for (const std::vector<ItemId>& txn : world) {
    bool all = true;
    for (ItemId want : itemset) {
      if (!std::binary_search(txn.begin(), txn.end(), want)) {
        all = false;
        break;
      }
    }
    if (all && !itemset.empty()) ++support;
  }
  return support;
}

Status EnumerateWorlds(const UncertainDatabase& db,
                       const std::function<void(const World&, double)>& visit,
                       std::size_t max_units) {
  const std::vector<UnitRef> units = FlattenUnits(db);
  if (units.size() > max_units) {
    return Status::InvalidArgument(
        "database has " + std::to_string(units.size()) +
        " units; enumeration is capped at " + std::to_string(max_units));
  }
  const std::size_t n = units.size();
  World world(db.size());
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    double prob = 1.0;
    for (auto& txn : world) txn.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        prob *= units[i].prob;
        world[units[i].txn].push_back(units[i].item);
      } else {
        prob *= 1.0 - units[i].prob;
      }
    }
    if (prob == 0.0) continue;
    for (auto& txn : world) std::sort(txn.begin(), txn.end());
    visit(world, prob);
  }
  return Status::OK();
}

Result<std::vector<double>> SupportDistributionByEnumeration(
    const UncertainDatabase& db, const Itemset& itemset,
    std::size_t max_units) {
  std::vector<double> pmf(db.size() + 1, 0.0);
  Status s = EnumerateWorlds(
      db,
      [&pmf, &itemset](const World& world, double prob) {
        pmf[WorldSupport(world, itemset)] += prob;
      },
      max_units);
  if (!s.ok()) return s;
  return pmf;
}

World SampleWorld(const UncertainDatabase& db, Rng& rng) {
  World world(db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (const ProbItem& u : db[t]) {
      if (rng.Bernoulli(u.prob)) world[t].push_back(u.item);
    }
    // Units are already item-sorted within a transaction.
  }
  return world;
}

double EstimateFrequentProbability(const UncertainDatabase& db,
                                   const Itemset& itemset, std::size_t msc,
                                   std::size_t num_samples, Rng& rng) {
  if (num_samples == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t s = 0; s < num_samples; ++s) {
    if (WorldSupport(SampleWorld(db, rng), itemset) >= msc) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

}  // namespace ufim
