#include "core/miner_factory.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ufim {

namespace {

/// Downcasts a registry-made miner to its family base. The registry
/// invariant (entry.family matches the concrete base class) makes the
/// static_cast sound. A missing registration means the enum, ToString
/// and UFIM_REGISTER_MINER name drifted apart — abort with a message
/// rather than hand the "never fails" callers a null pointer.
template <typename BaseT>
std::unique_ptr<BaseT> CreateAs(std::string_view name,
                                const MinerOptions& options) {
  std::unique_ptr<Miner> miner = MinerRegistry::Global().Create(name, options);
  if (miner == nullptr) {
    std::fprintf(stderr, "ufim: algorithm '%s' is not registered\n",
                 std::string(name).c_str());
    std::abort();
  }
  return std::unique_ptr<BaseT>(static_cast<BaseT*>(miner.release()));
}

}  // namespace

std::unique_ptr<ExpectedSupportMiner> CreateExpectedSupportMiner(
    ExpectedAlgorithm algorithm, const MinerOptions& options) {
  return CreateAs<ExpectedSupportMiner>(ToString(algorithm), options);
}

std::unique_ptr<ProbabilisticMiner> CreateProbabilisticMiner(
    ProbabilisticAlgorithm algorithm, const MinerOptions& options) {
  return CreateAs<ProbabilisticMiner>(ToString(algorithm), options);
}

std::string_view ToString(ExpectedAlgorithm algorithm) {
  switch (algorithm) {
    case ExpectedAlgorithm::kUApriori:
      return "UApriori";
    case ExpectedAlgorithm::kUFPGrowth:
      return "UFP-growth";
    case ExpectedAlgorithm::kUHMine:
      return "UH-Mine";
    case ExpectedAlgorithm::kBruteForce:
      return "BruteForceExpected";
  }
  return "?";
}

std::string_view ToString(ProbabilisticAlgorithm algorithm) {
  switch (algorithm) {
    case ProbabilisticAlgorithm::kDPNB:
      return "DPNB";
    case ProbabilisticAlgorithm::kDPB:
      return "DPB";
    case ProbabilisticAlgorithm::kDCNB:
      return "DCNB";
    case ProbabilisticAlgorithm::kDCB:
      return "DCB";
    case ProbabilisticAlgorithm::kPDUApriori:
      return "PDUApriori";
    case ProbabilisticAlgorithm::kNDUApriori:
      return "NDUApriori";
    case ProbabilisticAlgorithm::kNDUHMine:
      return "NDUH-Mine";
    case ProbabilisticAlgorithm::kMCSampling:
      return "MCSampling";
    case ProbabilisticAlgorithm::kBruteForce:
      return "BruteForceProbabilistic";
  }
  return "?";
}

std::vector<ExpectedAlgorithm> AllExpectedAlgorithms() {
  return {ExpectedAlgorithm::kUApriori, ExpectedAlgorithm::kUFPGrowth,
          ExpectedAlgorithm::kUHMine};
}

std::vector<ProbabilisticAlgorithm> AllExactProbabilisticAlgorithms() {
  return {ProbabilisticAlgorithm::kDPNB, ProbabilisticAlgorithm::kDPB,
          ProbabilisticAlgorithm::kDCNB, ProbabilisticAlgorithm::kDCB};
}

std::vector<ProbabilisticAlgorithm> AllApproximateProbabilisticAlgorithms() {
  return {ProbabilisticAlgorithm::kPDUApriori,
          ProbabilisticAlgorithm::kNDUApriori,
          ProbabilisticAlgorithm::kNDUHMine};
}

}  // namespace ufim
