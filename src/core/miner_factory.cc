#include "core/miner_factory.h"

#include "algo/brute_force.h"
#include "algo/exact_dc.h"
#include "algo/exact_dp.h"
#include "algo/mc_sampling.h"
#include "algo/ndu_apriori.h"
#include "algo/nduh_mine.h"
#include "algo/pdu_apriori.h"
#include "algo/uapriori.h"
#include "algo/ufp_growth.h"
#include "algo/uh_mine.h"

namespace ufim {

std::unique_ptr<ExpectedSupportMiner> CreateExpectedSupportMiner(
    ExpectedAlgorithm algorithm, const MinerOptions& options) {
  switch (algorithm) {
    case ExpectedAlgorithm::kUApriori:
      return std::make_unique<UApriori>(options.decremental_pruning);
    case ExpectedAlgorithm::kUFPGrowth:
      return std::make_unique<UFPGrowth>();
    case ExpectedAlgorithm::kUHMine:
      return std::make_unique<UHMine>();
    case ExpectedAlgorithm::kBruteForce:
      return std::make_unique<BruteForceExpected>();
  }
  return nullptr;
}

std::unique_ptr<ProbabilisticMiner> CreateProbabilisticMiner(
    ProbabilisticAlgorithm algorithm, const MinerOptions& options) {
  switch (algorithm) {
    case ProbabilisticAlgorithm::kDPNB:
      return std::make_unique<ExactDP>(/*use_chernoff_pruning=*/false);
    case ProbabilisticAlgorithm::kDPB:
      return std::make_unique<ExactDP>(/*use_chernoff_pruning=*/true);
    case ProbabilisticAlgorithm::kDCNB:
      return std::make_unique<ExactDC>(/*use_chernoff_pruning=*/false,
                                       options.dc_fft_threshold);
    case ProbabilisticAlgorithm::kDCB:
      return std::make_unique<ExactDC>(/*use_chernoff_pruning=*/true,
                                       options.dc_fft_threshold);
    case ProbabilisticAlgorithm::kPDUApriori:
      return std::make_unique<PDUApriori>();
    case ProbabilisticAlgorithm::kNDUApriori:
      return std::make_unique<NDUApriori>();
    case ProbabilisticAlgorithm::kNDUHMine:
      return std::make_unique<NDUHMine>();
    case ProbabilisticAlgorithm::kMCSampling:
      return std::make_unique<MCSampling>(options.mc_samples, options.mc_seed);
    case ProbabilisticAlgorithm::kBruteForce:
      return std::make_unique<BruteForceProbabilistic>();
  }
  return nullptr;
}

std::string_view ToString(ExpectedAlgorithm algorithm) {
  switch (algorithm) {
    case ExpectedAlgorithm::kUApriori:
      return "UApriori";
    case ExpectedAlgorithm::kUFPGrowth:
      return "UFP-growth";
    case ExpectedAlgorithm::kUHMine:
      return "UH-Mine";
    case ExpectedAlgorithm::kBruteForce:
      return "BruteForceExpected";
  }
  return "?";
}

std::string_view ToString(ProbabilisticAlgorithm algorithm) {
  switch (algorithm) {
    case ProbabilisticAlgorithm::kDPNB:
      return "DPNB";
    case ProbabilisticAlgorithm::kDPB:
      return "DPB";
    case ProbabilisticAlgorithm::kDCNB:
      return "DCNB";
    case ProbabilisticAlgorithm::kDCB:
      return "DCB";
    case ProbabilisticAlgorithm::kPDUApriori:
      return "PDUApriori";
    case ProbabilisticAlgorithm::kNDUApriori:
      return "NDUApriori";
    case ProbabilisticAlgorithm::kNDUHMine:
      return "NDUH-Mine";
    case ProbabilisticAlgorithm::kMCSampling:
      return "MCSampling";
    case ProbabilisticAlgorithm::kBruteForce:
      return "BruteForceProbabilistic";
  }
  return "?";
}

std::vector<ExpectedAlgorithm> AllExpectedAlgorithms() {
  return {ExpectedAlgorithm::kUApriori, ExpectedAlgorithm::kUFPGrowth,
          ExpectedAlgorithm::kUHMine};
}

std::vector<ProbabilisticAlgorithm> AllExactProbabilisticAlgorithms() {
  return {ProbabilisticAlgorithm::kDPNB, ProbabilisticAlgorithm::kDPB,
          ProbabilisticAlgorithm::kDCNB, ProbabilisticAlgorithm::kDCB};
}

std::vector<ProbabilisticAlgorithm> AllApproximateProbabilisticAlgorithms() {
  return {ProbabilisticAlgorithm::kPDUApriori,
          ProbabilisticAlgorithm::kNDUApriori,
          ProbabilisticAlgorithm::kNDUHMine};
}

}  // namespace ufim
