#include "core/postprocess.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace ufim {

namespace {

/// Index from itemset to its result entry for O(1) esup lookups.
std::unordered_map<Itemset, const FrequentItemset*, ItemsetHash> IndexOf(
    const MiningResult& result) {
  std::unordered_map<Itemset, const FrequentItemset*, ItemsetHash> index;
  index.reserve(result.size());
  for (const FrequentItemset& fi : result.itemsets()) {
    index.emplace(fi.itemset, &fi);
  }
  return index;
}

}  // namespace

MiningResult FilterClosed(const MiningResult& result, double tol) {
  // Group supersets by size: X of size s is non-closed iff some superset
  // of size s+1 has equal esup (equality propagates transitively, so
  // checking one level up suffices).
  MiningResult out;
  out.counters() = result.counters();
  for (const FrequentItemset& fi : result.itemsets()) {
    bool closed = true;
    for (const FrequentItemset& other : result.itemsets()) {
      if (other.itemset.size() != fi.itemset.size() + 1) continue;
      if (!other.itemset.ContainsAll(fi.itemset)) continue;
      if (std::fabs(other.expected_support - fi.expected_support) <= tol) {
        closed = false;
        break;
      }
    }
    if (closed) out.Add(fi);
  }
  out.SortCanonical();
  return out;
}

MiningResult FilterMaximal(const MiningResult& result) {
  MiningResult out;
  out.counters() = result.counters();
  for (const FrequentItemset& fi : result.itemsets()) {
    bool maximal = true;
    for (const FrequentItemset& other : result.itemsets()) {
      if (other.itemset.size() != fi.itemset.size() + 1) continue;
      if (other.itemset.ContainsAll(fi.itemset)) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.Add(fi);
  }
  out.SortCanonical();
  return out;
}

MiningResult TopK(const MiningResult& result, std::size_t k, RankBy rank_by) {
  std::vector<FrequentItemset> ranked(result.itemsets());
  auto key = [rank_by](const FrequentItemset& fi) {
    if (rank_by == RankBy::kFrequentProbability) {
      return fi.frequent_probability.value_or(-1.0);
    }
    return fi.expected_support;
  };
  std::sort(ranked.begin(), ranked.end(),
            [&key](const FrequentItemset& a, const FrequentItemset& b) {
              const double ka = key(a), kb = key(b);
              if (ka != kb) return ka > kb;
              return a.itemset < b.itemset;
            });
  if (ranked.size() > k) ranked.resize(k);
  MiningResult out;
  out.counters() = result.counters();
  for (FrequentItemset& fi : ranked) out.Add(std::move(fi));
  return out;
}

std::string AssociationRule::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " => %s (esup=%.3f, conf=%.3f)",
                consequent.ToString().c_str(), expected_support,
                expected_confidence);
  return antecedent.ToString() + buf;
}

std::vector<AssociationRule> GenerateRules(const MiningResult& result,
                                           double min_confidence,
                                           std::size_t max_itemset_size) {
  const auto index = IndexOf(result);
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : result.itemsets()) {
    const std::size_t n = fi.itemset.size();
    if (n < 2 || n > max_itemset_size) continue;
    const std::vector<ItemId>& items = fi.itemset.items();
    // Enumerate non-empty proper subsets as antecedents via bitmask.
    const std::size_t masks = std::size_t{1} << n;
    for (std::size_t mask = 1; mask + 1 < masks; ++mask) {
      std::vector<ItemId> ante, cons;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) {
          ante.push_back(items[i]);
        } else {
          cons.push_back(items[i]);
        }
      }
      const Itemset antecedent{std::move(ante)};
      auto it = index.find(antecedent);
      if (it == index.end()) continue;  // not mined: cannot score
      const double denom = it->second->expected_support;
      if (denom <= 0.0) continue;
      const double confidence = fi.expected_support / denom;
      if (confidence >= min_confidence) {
        rules.push_back(AssociationRule{antecedent, Itemset{std::move(cons)},
                                        fi.expected_support, confidence});
      }
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.expected_confidence != b.expected_confidence) {
                return a.expected_confidence > b.expected_confidence;
              }
              if (a.antecedent == b.antecedent) return a.consequent < b.consequent;
              return a.antecedent < b.antecedent;
            });
  return rules;
}

}  // namespace ufim
