#include "core/delta_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/miner_registry.h"
#include "core/sharded_miner.h"

namespace ufim {

namespace {

/// Rolls the view's open append transaction back unless the caller
/// committed first — so every early return (and any exception unwinding
/// to the GuardMine boundary) restores the pre-append stream.
class AppendTxnGuard {
 public:
  explicit AppendTxnGuard(StreamingFlatView& view) : view_(view) {}
  ~AppendTxnGuard() {
    // The guard unwinds on behalf of the writer that created it (inside
    // MineNext's serialized batch), so the writer role transfers here.
    view_.AssertSoleWriter();
    if (view_.in_append_txn()) view_.RollbackAppend();
  }
  AppendTxnGuard(const AppendTxnGuard&) = delete;
  AppendTxnGuard& operator=(const AppendTxnGuard&) = delete;

 private:
  StreamingFlatView& view_;
};

}  // namespace

DeltaMiner::DeltaMiner(std::unique_ptr<Miner> inner,
                       ExpectedSupportParams params, CompactionPolicy policy,
                       std::size_t num_threads)
    : inner_(std::move(inner)),
      params_(params),
      name_("Delta(" + std::string(inner_->name()) + ")"),
      view_(policy),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {}

void DeltaMiner::set_run_context(RunContext context) {
  // Same propagation contract as ShardedMiner::set_run_context: the
  // delta miner is the inner miner's only driver, so "no MineNext in
  // flight" (the caller's obligation) implies the inner config phase.
  inner_->AssertConfigPhase();
  inner_->set_run_context(context);  // copies share the token
  run_context_ = std::move(context);
}

Result<MiningResult> DeltaMiner::MineNext(std::span<const Transaction> batch) {
  UFIM_RETURN_IF_ERROR(params_.Validate());
  const MiningTask task = params_;
  if (!inner_->Supports(task)) {
    return Status::InvalidArgument(
        name_ + " needs an expected-support inner miner");
  }

  // The guard converts recount-phase checkpoint throws into a clean
  // Status at this facade (the inner miner guards its own Mine).
  return internal::GuardMine([&]() -> Result<MiningResult> {
    PollRunContext(&run_context_);  // checkpoint: batch entry

    MiningResult result;
    StreamingSnapshot snap;
    std::vector<Itemset> singles;
    std::vector<Itemset> larger;
    {
      // Mutation phase, under the write mutex (serialized with any
      // concurrent explicit Compact). MineNext calls themselves are
      // caller-serialized; inside this block the thread is the stream's
      // sole writer, which is exactly the writer-role claim.
      MutexLock lock(write_mu_);
      view_.AssertSoleWriter();

      if (batch.empty()) {
        // Pure recount: no append transaction, no policy-compaction
        // side effect, no shard/watermark drift — just freeze the
        // current state for phase 2.
        snap = view_.Snapshot();
      } else {
        // Transactional append: any failure before CommitAppend — inner
        // shard-mine error, cancellation, allocation failure — rolls
        // the batch back to the pre-append watermark on the way out, so
        // a retry of the same batch appends it exactly once.
        view_.BeginAppend();
        AppendTxnGuard rollback_unless_committed(view_);
        view_.Append(batch);
        // ufim-lint: allow(raw-view) consumed before CommitAppend, under the write mutex
        const FlatView full = view_.View();
        const std::size_t n_txn = full.num_transactions();

        // Phase 1: mine the appended suffix as its own SON shard, at
        // the same min_esup ratio (the shard threshold is ratio *
        // |shard|, exactly as ShardedMiner's static shards). The slice
        // spans the base/delta seam transparently, so this works
        // identically pre- and post-compaction.
        const FlatView suffix = full.Slice(mined_upto_, n_txn);
        Result<MiningResult> local = inner_->Mine(suffix, task);
        UFIM_RETURN_IF_ERROR(local.status());
        result.counters() += local->counters();
        const std::uint64_t admit_gen = view_.generation();
        for (const FrequentItemset& fi : local->itemsets()) {
          // emplace keeps the first admission's generation on
          // re-discovery by a later shard.
          pool_.emplace(fi.itemset, admit_gen);
        }
        mined_upto_ = n_txn;
        ++shards_mined_;
        // The shard is mined and the pool updated — commit (running any
        // deferred compaction) before snapshotting, so a recount
        // failure leaves a consistent stream that an empty-batch call
        // re-mines, and the snapshot freezes the committed state.
        view_.CommitAppend();
        snap = view_.Snapshot();
      }

      // Canonical candidate order keeps the recount independent of pool
      // insertion history (and of the unordered_map's iteration order).
      // ufim-lint: allow(unordered-iteration) order erased by the sorts below
      for (const auto& [is, admitted] : pool_) {
        static_cast<void>(admitted);
        (is.size() == 1 ? singles : larger).push_back(is);
      }
      std::sort(singles.begin(), singles.end());
      std::sort(larger.begin(), larger.end());
    }

    // Phase 2: exact recount of the whole candidate pool over the
    // frozen snapshot, outside the write mutex — a concurrent explicit
    // Compact cannot perturb it (copy-on-compact leaves the snapshot's
    // storage untouched), and the result is bit-identical either way.
    const double threshold =
        params_.min_esup * static_cast<double>(snap.watermark());
    RecountExpectedCandidates(snap.view(), singles, larger, threshold,
                              num_threads_, result, &run_context_);
    result.SortCanonical();
    return result;
  });
}

std::size_t DeltaMiner::candidates_admitted_since(
    std::uint64_t generation) const {
  MutexLock lock(write_mu_);
  std::size_t n = 0;
  // ufim-lint: allow(unordered-iteration) order-independent count
  for (const auto& [is, admitted] : pool_) {
    static_cast<void>(is);
    if (admitted >= generation) ++n;
  }
  return n;
}

Result<std::unique_ptr<DeltaMiner>> MakeDeltaMiner(
    std::string_view algorithm, const ExpectedSupportParams& params,
    const MinerOptions& options, CompactionPolicy policy) {
  const MinerEntry* entry = MinerRegistry::Global().Find(algorithm);
  if (entry == nullptr) {
    return Status::NotFound("unknown algorithm '" + std::string(algorithm) +
                            "'");
  }
  if (entry->family != TaskFamily::kExpectedSupport) {
    return Status::InvalidArgument(
        "streaming mining supports expected-support algorithms only; '" +
        std::string(algorithm) + "' is not one");
  }
  auto miner = std::make_unique<DeltaMiner>(entry->make(options), params,
                                            policy, options.num_threads);
  miner->set_run_context(options.run_context);
  return miner;
}

}  // namespace ufim
