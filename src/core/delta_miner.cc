#include "core/delta_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/miner_registry.h"
#include "core/sharded_miner.h"

namespace ufim {

namespace {

/// Rolls the view's open append transaction back unless the caller
/// committed first — so every early return (and any exception unwinding
/// to the GuardMine boundary) restores the pre-append stream.
class AppendTxnGuard {
 public:
  explicit AppendTxnGuard(StreamingFlatView& view) : view_(view) {}
  ~AppendTxnGuard() {
    // The guard unwinds on behalf of the writer that created it (inside
    // MineNext's serialized batch), so the writer role transfers here.
    view_.AssertSoleWriter();
    if (view_.in_append_txn()) view_.RollbackAppend();
  }
  AppendTxnGuard(const AppendTxnGuard&) = delete;
  AppendTxnGuard& operator=(const AppendTxnGuard&) = delete;

 private:
  StreamingFlatView& view_;
};

}  // namespace

DeltaMiner::DeltaMiner(std::unique_ptr<Miner> inner,
                       ExpectedSupportParams params, CompactionPolicy policy,
                       std::size_t num_threads)
    : inner_(std::move(inner)),
      params_(params),
      name_("Delta(" + std::string(inner_->name()) + ")"),
      view_(policy),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {}

void DeltaMiner::set_run_context(RunContext context) {
  // Same propagation contract as ShardedMiner::set_run_context: the
  // delta miner is the inner miner's only driver, so "no MineNext in
  // flight" (the caller's obligation) implies the inner config phase.
  inner_->AssertConfigPhase();
  inner_->set_run_context(context);  // copies share the token
  run_context_ = std::move(context);
}

Result<MiningResult> DeltaMiner::MineNext(std::span<const Transaction> batch) {
  UFIM_RETURN_IF_ERROR(params_.Validate());
  const MiningTask task = params_;
  if (!inner_->Supports(task)) {
    return Status::InvalidArgument(
        name_ + " needs an expected-support inner miner");
  }

  // The guard converts recount-phase checkpoint throws into a clean
  // Status at this facade (the inner miner guards its own Mine).
  return internal::GuardMine([&]() -> Result<MiningResult> {
    PollRunContext(&run_context_);  // checkpoint: batch entry

    // Writer-role claim: the delta miner owns view_ outright and
    // processes batches strictly one at a time, so inside MineNext this
    // thread is the sole writer and no reader holds an older view.
    view_.AssertSoleWriter();

    // Transactional append: any failure before CommitAppend — inner
    // shard-mine error, cancellation, allocation failure — rolls the
    // batch back to the pre-append watermark on the way out, so a retry
    // of the same batch appends it exactly once.
    view_.BeginAppend();
    AppendTxnGuard rollback_unless_committed(view_);
    view_.Append(batch);
    const FlatView full = view_.View();
    const std::size_t n_txn = full.num_transactions();

    MiningResult result;

    // Phase 1: mine the appended suffix as its own SON shard, at the same
    // min_esup ratio (the shard threshold is ratio * |shard|, exactly as
    // ShardedMiner's static shards). The slice spans the base/delta seam
    // transparently, so this works identically pre- and post-compaction.
    if (n_txn > mined_upto_) {
      const FlatView suffix = full.Slice(mined_upto_, n_txn);
      Result<MiningResult> local = inner_->Mine(suffix, task);
      UFIM_RETURN_IF_ERROR(local.status());
      result.counters() += local->counters();
      for (const FrequentItemset& fi : local->itemsets()) {
        pool_.insert(fi.itemset);
      }
      mined_upto_ = n_txn;
      ++shards_mined_;
    }
    // The shard is mined and the pool updated — commit (running any
    // deferred compaction) before the recount, so a recount failure
    // leaves a consistent stream that an empty-batch call re-mines.
    const bool compacted = view_.CommitAppend();

    // Phase 2: exact recount of the whole candidate pool over the full
    // view. Canonical candidate order keeps the recount independent of
    // pool insertion history (and of the unordered_set's iteration
    // order). Re-take the view: compaction invalidates slices.
    const FlatView recount_view = compacted ? view_.View() : full;
    std::vector<Itemset> singles;
    std::vector<Itemset> larger;
    // ufim-lint: allow(unordered-iteration) order erased by the sorts below
    for (const Itemset& is : pool_) {
      (is.size() == 1 ? singles : larger).push_back(is);
    }
    std::sort(singles.begin(), singles.end());
    std::sort(larger.begin(), larger.end());
    const double threshold =
        params_.min_esup * static_cast<double>(n_txn);
    RecountExpectedCandidates(recount_view, singles, larger, threshold,
                              num_threads_, result, &run_context_);
    result.SortCanonical();
    return result;
  });
}

Result<std::unique_ptr<DeltaMiner>> MakeDeltaMiner(
    std::string_view algorithm, const ExpectedSupportParams& params,
    const MinerOptions& options, CompactionPolicy policy) {
  const MinerEntry* entry = MinerRegistry::Global().Find(algorithm);
  if (entry == nullptr) {
    return Status::NotFound("unknown algorithm '" + std::string(algorithm) +
                            "'");
  }
  if (entry->family != TaskFamily::kExpectedSupport) {
    return Status::InvalidArgument(
        "streaming mining supports expected-support algorithms only; '" +
        std::string(algorithm) + "' is not one");
  }
  auto miner = std::make_unique<DeltaMiner>(entry->make(options), params,
                                            policy, options.num_threads);
  miner->set_run_context(options.run_context);
  return miner;
}

}  // namespace ufim
