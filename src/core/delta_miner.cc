#include "core/delta_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/miner_registry.h"
#include "core/sharded_miner.h"

namespace ufim {

DeltaMiner::DeltaMiner(std::unique_ptr<Miner> inner,
                       ExpectedSupportParams params, CompactionPolicy policy,
                       std::size_t num_threads)
    : inner_(std::move(inner)),
      params_(params),
      name_("Delta(" + std::string(inner_->name()) + ")"),
      view_(policy),
      num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {}

Result<MiningResult> DeltaMiner::MineNext(std::span<const Transaction> batch) {
  // Sticky failure: a batch appended under an inner-miner error was
  // never shard-mined, and accepting a retry of it would append (and
  // count) it twice. See the header contract.
  if (!poisoned_.ok()) return poisoned_;
  UFIM_RETURN_IF_ERROR(params_.Validate());
  const MiningTask task = params_;
  if (!inner_->Supports(task)) {
    return Status::InvalidArgument(
        name_ + " needs an expected-support inner miner");
  }

  view_.Append(batch);
  const FlatView full = view_.View();
  const std::size_t n_txn = full.num_transactions();

  MiningResult result;

  // Phase 1: mine the appended suffix as its own SON shard, at the same
  // min_esup ratio (the shard threshold is ratio * |shard|, exactly as
  // ShardedMiner's static shards). The slice spans the base/delta seam
  // transparently, so this works identically pre- and post-compaction.
  if (n_txn > mined_upto_) {
    const FlatView suffix = full.Slice(mined_upto_, n_txn);
    Result<MiningResult> local = inner_->Mine(suffix, task);
    if (!local.ok()) {
      poisoned_ = local.status();
      return poisoned_;
    }
    result.counters() += local->counters();
    for (const FrequentItemset& fi : local->itemsets()) {
      pool_.insert(fi.itemset);
    }
    mined_upto_ = n_txn;
    ++shards_mined_;
  }

  // Phase 2: exact recount of the whole candidate pool over the full
  // view. Canonical candidate order keeps the recount independent of
  // pool insertion history (and of the unordered_set's iteration order).
  std::vector<Itemset> singles;
  std::vector<Itemset> larger;
  for (const Itemset& is : pool_) {
    (is.size() == 1 ? singles : larger).push_back(is);
  }
  std::sort(singles.begin(), singles.end());
  std::sort(larger.begin(), larger.end());
  const double threshold =
      params_.min_esup * static_cast<double>(n_txn);
  RecountExpectedCandidates(full, singles, larger, threshold, num_threads_,
                            result);
  result.SortCanonical();
  return result;
}

Result<std::unique_ptr<DeltaMiner>> MakeDeltaMiner(
    std::string_view algorithm, const ExpectedSupportParams& params,
    const MinerOptions& options, CompactionPolicy policy) {
  const MinerEntry* entry = MinerRegistry::Global().Find(algorithm);
  if (entry == nullptr) {
    return Status::NotFound("unknown algorithm '" + std::string(algorithm) +
                            "'");
  }
  if (entry->family != TaskFamily::kExpectedSupport) {
    return Status::InvalidArgument(
        "streaming mining supports expected-support algorithms only; '" +
        std::string(algorithm) + "' is not one");
  }
  return std::make_unique<DeltaMiner>(entry->make(options), params, policy,
                                      options.num_threads);
}

}  // namespace ufim
