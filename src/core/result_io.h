#ifndef UFIM_CORE_RESULT_IO_H_
#define UFIM_CORE_RESULT_IO_H_

#include <string>

#include "common/result.h"
#include "core/mining_result.h"

namespace ufim {

/// Text serialization of mining results, one itemset per line:
///
///   item,item,... esup variance [freq_prob]
///
/// Lines starting with '#' are comments. Doubles are emitted with %.17g
/// so a round-trip is bit-exact. Used by the CLI to persist results and
/// by downstream tooling to diff algorithm outputs.
Status WriteResult(const MiningResult& result, const std::string& path);

Result<MiningResult> ReadResult(const std::string& path);

/// Single-line form (exposed for tests).
std::string FormatResultLine(const FrequentItemset& fi);
Result<FrequentItemset> ParseResultLine(const std::string& line);

}  // namespace ufim

#endif  // UFIM_CORE_RESULT_IO_H_
