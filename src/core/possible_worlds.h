#ifndef UFIM_CORE_POSSIBLE_WORLDS_H_
#define UFIM_CORE_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Possible-world semantics of an uncertain database — the formal ground
/// truth beneath both frequentness definitions. A *world* is one
/// deterministic database obtained by independently keeping each unit
/// with its probability; the support of X in the uncertain database is
/// exactly the distribution of X's deterministic support across worlds.
///
/// The enumerator is exponential (2^#units) and exists as the semantic
/// oracle for tests and didactic examples; the sampler scales.

/// One deterministic world: per transaction, the item ids that
/// materialized (sorted).
using World = std::vector<std::vector<ItemId>>;

/// Deterministic support count of `itemset` in a world.
std::size_t WorldSupport(const World& world, const Itemset& itemset);

/// Enumerates every possible world with its probability and invokes
/// `visit(world, probability)`. Returns InvalidArgument when the database
/// has more than `max_units` units (the default bounds the enumeration
/// to ~1M worlds). World probabilities sum to 1 over the enumeration.
Status EnumerateWorlds(const UncertainDatabase& db,
                       const std::function<void(const World&, double)>& visit,
                       std::size_t max_units = 20);

/// The exact support distribution of `itemset` computed by brute-force
/// world enumeration: result[k] = Pr(sup = k), length db.size() + 1.
/// Same preconditions as EnumerateWorlds. This path shares *no* code
/// with prob/poisson_binomial, making it an independent oracle.
Result<std::vector<double>> SupportDistributionByEnumeration(
    const UncertainDatabase& db, const Itemset& itemset,
    std::size_t max_units = 20);

/// Samples one world (each unit kept independently with its probability).
World SampleWorld(const UncertainDatabase& db, Rng& rng);

/// Monte-Carlo estimate of Pr(sup(X) >= msc) from `num_samples` sampled
/// worlds. Unbiased; standard error <= 1/(2 sqrt(num_samples)).
double EstimateFrequentProbability(const UncertainDatabase& db,
                                   const Itemset& itemset, std::size_t msc,
                                   std::size_t num_samples, Rng& rng);

}  // namespace ufim

#endif  // UFIM_CORE_POSSIBLE_WORLDS_H_
