#ifndef UFIM_CORE_STREAMING_FLAT_VIEW_H_
#define UFIM_CORE_STREAMING_FLAT_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/math_util.h"
#include "common/thread_annotations.h"
#include "core/flat_view.h"
#include "core/transaction.h"
#include "core/uncertain_database.h"

namespace ufim {

/// When the streaming delta is merged into the columnar base.
///
/// Appends land in the delta region in O(batch units); reads pay one
/// extra segment per item until the delta is folded back into the
/// contiguous base by an O(total units) compaction. The policy bounds
/// that read amortization: a compaction triggers automatically at the
/// end of any `Append` that leaves more than `max_delta_ratio` delta
/// units per base unit (once at least `min_delta_units` have
/// accumulated, so tiny databases don't thrash).
struct CompactionPolicy {
  /// Delta/base unit ratio above which Append compacts (strictly
  /// greater triggers). Any value <= 0 — 0 is the idiomatic spelling —
  /// means "always contiguous": compact on every append that leaves
  /// anything in the delta (the "always rebuild" reference point of the
  /// differential harness and the streaming bench).
  double max_delta_ratio = 0.25;
  /// Appends never compact before this many delta units accumulate
  /// (ignored when max_delta_ratio <= 0: always-contiguous mode
  /// compacts regardless of the gate).
  std::size_t min_delta_units = 1024;

  /// True when the stream must compact: `delta_units` probabilistic
  /// units across `delta_txns` appended transactions over a base of
  /// `base_units`. In always-contiguous mode (max_delta_ratio <= 0) the
  /// decision keys on `delta_txns`, not units — a unit-less delta of
  /// only empty transactions still folds, so the rebuild reference
  /// really is the from-scratch layout.
  bool ShouldCompact(std::size_t base_units, std::size_t delta_units,
                     std::size_t delta_txns) const {
    if (max_delta_ratio <= 0.0) return delta_txns > 0;
    if (delta_units == 0 || delta_units < min_delta_units) return false;
    return static_cast<double>(delta_units) >
           max_delta_ratio * static_cast<double>(base_units);
  }
};

/// A frozen, self-contained snapshot of a `StreamingFlatView` at one
/// storage generation, produced by `StreamingFlatView::Snapshot()`.
///
/// `view()` is a full `FlatView` over the stream's contents as of the
/// snapshot: it stays valid — and mines bit-identically to mining that
/// generation quiesced — across every subsequent `Append`/`Compact` on
/// the source, with no coordination (the handle owns frozen storage
/// that shares the immutable compacted base and deep-copies only the
/// delta and moment arrays, so taking one is O(delta + num_items), not
/// O(total)). Any number of threads may read one handle concurrently;
/// handles are cheap to copy and keep their storage alive
/// independently of the source view's lifetime.
class StreamingSnapshot {
 public:
  /// Empty snapshot (an empty stream at generation 0).
  StreamingSnapshot() = default;

  /// The frozen full view. Free-threaded: never stale, never mutated.
  const FlatView& view() const { return view_; }

  /// Storage generation the snapshot captured.
  std::uint64_t generation() const { return generation_; }

  /// Transactions in the stream when the snapshot was taken
  /// (== view().num_transactions(); the stream's watermark).
  std::size_t watermark() const { return watermark_; }

 private:
  friend class StreamingFlatView;

  FlatView view_;
  std::uint64_t generation_ = 0;
  std::size_t watermark_ = 0;
};

/// Incrementally maintained columnar storage: the streaming counterpart
/// of building a `FlatView` per batch.
///
/// `Append(transactions)` assigns the next transaction ids and writes
/// the new postings into a per-item *delta* region (horizontal CSR tail
/// plus per-item posting tail vectors) in O(batch units) — no O(total
/// units) rebuild. Because appended tids are strictly greater than every
/// existing tid, each item's logical posting list is its base segment
/// followed by its delta segment, and every `FlatView` accessor and join
/// kernel walks that segment list transparently (see
/// `FlatView::PostingSegments`). `Compact()` merges the delta back into
/// the contiguous base; the policy above triggers it automatically.
///
/// **Equivalence contract.** At any point of the stream, `View()` is
/// *bit-identical* in mining behaviour to `FlatView(db)` over the same
/// transactions built from scratch: posting contents, cached per-item
/// moments (the Kahan accumulators persist across appends and
/// compactions, so they equal a from-scratch accumulation), join batch
/// boundaries, and float evaluation order all match. The randomized
/// streaming differential harness (tests/testing/stream_harness.h)
/// enforces this across append/compact/mine schedules.
///
/// **View validity.** `View()` (and any slice or copy of it) reads the
/// *live* storage: `Append`, `Compact` and `RollbackAppend` invalidate
/// every previously obtained live view. That invalidation is no longer
/// silent — each mutation bumps the storage generation, and in
/// debug/sanitizer builds a stale view's next accessor aborts with a
/// clear message (see `FlatView`'s storage-generations section). Code
/// that must read *across* mutations takes a `Snapshot()` instead: the
/// returned handle freezes the current contents (sharing the immutable
/// compacted base, copying only the policy-bounded delta and moment
/// arrays) and stays valid — and bit-identical in mining behaviour —
/// through any number of subsequent appends and compactions.
/// `Compact` cooperates by *copy-on-compact*: it builds the merged base
/// into fresh storage and publishes that, leaving the retired
/// generation's arrays untouched for whoever still holds them.
///
/// **Single-writer contract (annotated).** At most one thread at a time
/// — the serialized writer — may call `Append` / `Compact` / the
/// `BeginAppend`/`CommitAppend`/`RollbackAppend` transaction protocol,
/// or take a `Snapshot()`. The contract covers *mutators and snapshot
/// acquisition only*: reading through a `StreamingSnapshot` handle
/// needs no coordination with the writer at all (the handle's storage
/// is frozen), which is what lets long-running mines overlap ingestion.
/// Reading a live `View()` remains valid only until the next mutation.
/// The contract is machine-checked by the `-Wthread-safety` CI leg:
/// each mutator requires the `writer_role_` capability, which a caller
/// claims via `AssertSoleWriter()` exactly where its own serialization
/// argument holds (e.g. `DeltaMiner` claims it under its write mutex).
/// A mutation call path with no claim fails the build.
class StreamingFlatView {
 public:
  explicit StreamingFlatView(CompactionPolicy policy = {});

  /// Seeds the base with `db` (equivalent to appending its transactions
  /// to an empty view and compacting).
  explicit StreamingFlatView(const UncertainDatabase& db,
                             CompactionPolicy policy = {});

  std::size_t num_transactions() const { return storage_->full_size; }
  std::size_t num_items() const { return storage_->num_items; }
  std::size_t num_units() const {
    return storage_->base->units.size() + storage_->delta_units.size();
  }

  /// Transactions currently in the delta region.
  std::size_t delta_transactions() const {
    return storage_->full_size - storage_->base_size;
  }
  std::size_t delta_units() const { return storage_->delta_units.size(); }
  bool has_delta() const { return delta_transactions() > 0; }

  /// Compactions run so far (automatic + explicit).
  std::size_t compactions() const { return compactions_; }

  /// Current storage generation: bumped by every mutation (Append of a
  /// non-empty batch, RollbackAppend, Compact — which also advances to
  /// freshly published storage). Monotonically increasing over the
  /// stream's life; views and snapshots taken at an older generation
  /// are stale / frozen respectively.
  std::uint64_t generation() const {
    return storage_->generation.load(std::memory_order_relaxed);
  }

  const CompactionPolicy& policy() const { return policy_; }

  /// Appends `batch` as transactions [num_transactions(),
  /// num_transactions() + batch.size()), growing the item universe when
  /// a transaction introduces a previously-unseen item. O(batch units)
  /// plus any triggered compaction. Invalidates existing views. Returns
  /// true when the policy compacted.
  bool Append(std::span<const Transaction> batch)
      UFIM_REQUIRES(writer_role_);

  /// Merges the delta into the contiguous base (O(total units)); no-op
  /// without a delta. Invalidates existing views. Mining results are
  /// unaffected — compaction changes the physical layout only. Must not
  /// be called inside an open append transaction.
  void Compact() UFIM_REQUIRES(writer_role_);

  /// Transactional append protocol, used by `DeltaMiner` to make a
  /// failed mine-over-append recoverable. Between `BeginAppend()` and
  /// `CommitAppend()`, `Append` writes into the delta as usual but
  /// records an O(batch-distinct-items) undo log and defers any policy
  /// compaction (a compaction would fold the uncommitted rows into the
  /// base, where they could no longer be cheaply removed).
  /// `RollbackAppend()` restores the exact pre-BeginAppend state —
  /// posting tails, CSR tails, item universe and the persistent Kahan
  /// moment accumulators are all bit-identical to before, so the
  /// equivalence contract above keeps holding after a rollback.
  /// `CommitAppend()` drops the undo log and runs the deferred
  /// compaction check; like `Append` it returns true when it compacted.
  /// Both close the transaction; both invalidate existing views.
  void BeginAppend() UFIM_REQUIRES(writer_role_);
  bool CommitAppend() UFIM_REQUIRES(writer_role_);
  void RollbackAppend() UFIM_REQUIRES(writer_role_);

  /// Claims the writer role to the thread-safety analysis (no runtime
  /// effect). Call it at the point where the caller's own serialization
  /// argument makes it the sole writer with no outstanding readers —
  /// see the single-writer contract in the class comment.
  void AssertSoleWriter() const UFIM_ASSERT_CAPABILITY(writer_role_) {}

  /// True between BeginAppend and Commit/RollbackAppend. Part of the
  /// writer protocol (it reads the undo log), so writer-gated too.
  bool in_append_txn() const UFIM_REQUIRES(writer_role_) {
    return txn_.has_value();
  }

  /// Full *live* view over everything appended so far. Valid until the
  /// next Append/Compact/RollbackAppend; after that, any accessor on it
  /// aborts in debug/sanitizer builds (stale-view check). To read
  /// across mutations, take a Snapshot() instead.
  [[nodiscard]] FlatView View() const {
    return FlatView(storage_, 0, storage_->full_size,
                    storage_->generation.load(std::memory_order_relaxed));
  }

  /// Freezes the current contents into a self-contained handle (see
  /// `StreamingSnapshot`). O(delta + num_items): shares the immutable
  /// compacted base, deep-copies the delta region and moment arrays.
  /// Part of the writer protocol — snapshot *acquisition* observes the
  /// delta mid-construction if it raced a mutator, so it is serialized
  /// with mutations; the returned handle itself is free-threaded.
  /// Must not be called inside an open append transaction.
  [[nodiscard]] StreamingSnapshot Snapshot() const
      UFIM_REQUIRES(writer_role_);

 private:
  /// Undo log for one open append transaction: the scalar watermarks plus
  /// a pre-touch snapshot of every item the appends dirtied (posting-tail
  /// length and the three moment cells, including the Kahan compensation
  /// term — restoring the accumulator object restores the exact bits).
  struct AppendTxn {
    std::size_t full_size = 0;
    std::size_t num_items = 0;
    std::size_t delta_units = 0;
    std::size_t delta_txn_offsets = 0;
    struct ItemSnapshot {
      ItemId item = 0;
      std::size_t delta_len = 0;
      KahanSum esup_acc;
      double esup = 0.0;
      double sq_sum = 0.0;
    };
    std::vector<ItemSnapshot> items;
  };

  /// Records `item`'s pre-append state in the open transaction's undo
  /// log, once per distinct item.
  void SnapshotForTxn(ItemId item) UFIM_REQUIRES(writer_role_);

  /// Runs the policy check against the current delta and compacts when
  /// it says so; returns true when it compacted. The single home of the
  /// automatic-compaction decision (Append and CommitAppend both defer
  /// here).
  bool MaybeCompact() UFIM_REQUIRES(writer_role_);

  std::shared_ptr<FlatView::Storage> storage_;
  CompactionPolicy policy_;
  std::size_t compactions_ = 0;
  /// Open-transaction undo log; touched only through the writer-gated
  /// transaction protocol above.
  std::optional<AppendTxn> txn_ UFIM_GUARDED_BY(writer_role_);

  /// The "I am the one serialized writer" capability (see class comment).
  Role writer_role_;
};

}  // namespace ufim

#endif  // UFIM_CORE_STREAMING_FLAT_VIEW_H_
