#ifndef UFIM_CORE_SHARDED_MINER_H_
#define UFIM_CORE_SHARDED_MINER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "core/miner.h"

namespace ufim {

/// Phase 2 of the SON (partition) drivers: exact recount of a candidate
/// union over the full view. `singles` and `larger` are canonically
/// sorted, deduplicated candidate itemsets of size 1 / >= 2. Singletons
/// come straight off the view's cached moments; larger sets are posting
/// joins partitioned by candidate, so the ascending-tid Kahan
/// accumulation is the sequential one regardless of thread count.
/// Appends itemsets with expected support >= `threshold` (absolute) to
/// `result` with their exact full-view moments, and bumps its counters
/// (one database scan, one generated candidate each). Shared by
/// `ShardedMiner` (static shards) and `DeltaMiner` (streaming suffix
/// shards) so the two merge paths can never diverge. `context` (optional)
/// is polled once per size->=2 candidate join; a tripped token unwinds
/// with RunAbortedError, which the calling miner's guarded facade
/// converts to a Status.
void RecountExpectedCandidates(const FlatView& view,
                               const std::vector<Itemset>& singles,
                               const std::vector<Itemset>& larger,
                               double threshold, std::size_t num_threads,
                               MiningResult& result,
                               const RunContext* context = nullptr);

/// Shard-partitioned execution driver: runs any expected-support miner
/// per contiguous transaction shard and merges to the *exact* global
/// answer — the classic SON (partition) scheme, carried by FlatView's
/// O(1) `Slice` views instead of data copies.
///
/// Phase 1 mines every shard independently (in parallel, up to
/// `num_threads` shards in flight) with the same min_esup *ratio*; the
/// shard thresholds ratio * |shard| sum to the global threshold, so by
/// pigeonhole every globally frequent itemset is locally frequent in at
/// least one shard — the union of shard results is a complete candidate
/// superset. Phase 2 recounts that union over the full view (cached
/// item moments for singletons, the parallel counting kernels for
/// larger sets) and keeps exactly the itemsets meeting the global
/// threshold, with their exact full-database moments: no approximation
/// enters at any point, whatever the shard count.
///
/// Determinism: shard boundaries depend only on (view size, num_shards),
/// the candidate union is canonically sorted before recounting, and the
/// recount is partitioned by candidate — so for a fixed shard count the
/// result is bit-identical across thread counts and across runs. Against
/// the unsharded run of the same miner, the recount's ascending-tid
/// posting joins can differ from a probe-sweep accumulation in the final
/// ulp; the reported itemset set matches unless an expected support sits
/// exactly on the threshold at that last ulp.
///
/// Only expected-support tasks are supported: expected support is
/// additive across shards, which is what makes the local-threshold
/// union argument sound. Probabilistic frequentness is not additive —
/// a probabilistic task is rejected as InvalidArgument rather than
/// answered approximately.
class ShardedMiner final : public Miner {
 public:
  /// Wraps `inner` (an expected-support miner; typically registry-made).
  /// `num_shards` contiguous transaction shards (clamped to the view
  /// size; <= 1 degenerates to a plain delegated run). `num_threads` as
  /// in MinerOptions: concurrency for shard mining and the recount, 0
  /// meaning all hardware threads.
  ShardedMiner(std::unique_ptr<Miner> inner, std::size_t num_shards,
               std::size_t num_threads = 1);

  /// "Sharded(<inner name>)".
  std::string_view name() const override { return name_; }

  bool Supports(const MiningTask& task) const override;

  /// The merge is exact, so exactness is the inner miner's.
  bool is_exact() const override { return inner_->is_exact(); }

  Result<MiningResult> Mine(const FlatView& view,
                            const MiningTask& task) const override;
  using Miner::Mine;

  /// Propagates the token to the inner miner, so cancellation observed at
  /// the driver's phase boundaries also stops the per-shard mining.
  /// Config-phase only, like the base: the override claims the inner
  /// miner's config role before forwarding (see miner.h).
  void set_run_context(RunContext context) override
      UFIM_REQUIRES(config_role_);

  std::size_t num_shards() const { return num_shards_; }

 private:
  std::unique_ptr<Miner> inner_;
  std::string name_;
  std::size_t num_shards_;
  std::size_t num_threads_;
};

}  // namespace ufim

#endif  // UFIM_CORE_SHARDED_MINER_H_
