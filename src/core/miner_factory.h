#ifndef UFIM_CORE_MINER_FACTORY_H_
#define UFIM_CORE_MINER_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/miner.h"

namespace ufim {

/// The three expected-support-based algorithms of the paper's §3.1
/// (+ the exhaustive reference used by tests).
enum class ExpectedAlgorithm {
  kUApriori,
  kUFPGrowth,
  kUHMine,
  kBruteForce,
};

/// The exact (§3.2) and approximate (§3.3) probabilistic algorithms.
/// DP/DC come in with-/without-Chernoff-pruning flavours, matching the
/// paper's DPB/DPNB/DCB/DCNB experimental arms.
enum class ProbabilisticAlgorithm {
  kDPNB,
  kDPB,
  kDCNB,
  kDCB,
  kPDUApriori,
  kNDUApriori,
  kNDUHMine,
  kMCSampling,  ///< possible-world sampling (paper's reference [11])
  kBruteForce,
};

/// Tuning knobs shared across factories. Defaults mirror the optimized
/// configurations the paper's study used.
struct MinerOptions {
  /// UApriori/PDUApriori: enable mid-scan decremental pruning [17, 18].
  bool decremental_pruning = true;
  /// DC: operand size above which the conquer step uses FFT convolution.
  std::size_t dc_fft_threshold = 64;
  /// MCSampling: possible worlds sampled per candidate.
  std::size_t mc_samples = 1024;
  /// MCSampling: RNG seed (results are deterministic in it).
  std::uint64_t mc_seed = 0xC0FFEE;
};

/// Constructs a miner; never fails (the enums are closed).
std::unique_ptr<ExpectedSupportMiner> CreateExpectedSupportMiner(
    ExpectedAlgorithm algorithm, const MinerOptions& options = {});
std::unique_ptr<ProbabilisticMiner> CreateProbabilisticMiner(
    ProbabilisticAlgorithm algorithm, const MinerOptions& options = {});

/// Display names matching the paper's figures.
std::string_view ToString(ExpectedAlgorithm algorithm);
std::string_view ToString(ProbabilisticAlgorithm algorithm);

/// Enumeration helpers for the benchmark sweeps (production algorithms
/// only — brute force excluded).
std::vector<ExpectedAlgorithm> AllExpectedAlgorithms();
std::vector<ProbabilisticAlgorithm> AllExactProbabilisticAlgorithms();
std::vector<ProbabilisticAlgorithm> AllApproximateProbabilisticAlgorithms();

}  // namespace ufim

#endif  // UFIM_CORE_MINER_FACTORY_H_
