#ifndef UFIM_CORE_MINER_FACTORY_H_
#define UFIM_CORE_MINER_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/miner.h"
#include "core/miner_registry.h"

namespace ufim {

/// Enum-keyed convenience layer over `MinerRegistry` for callers that
/// want a closed algorithm list (benches, tests reproducing the paper's
/// fixed experimental arms). New algorithms register themselves with the
/// registry (see miner_registry.h) and need no edits here; the enums
/// exist purely to spell the paper's arms in code.

/// The three expected-support-based algorithms of the paper's §3.1
/// (+ the exhaustive reference used by tests).
enum class ExpectedAlgorithm {
  kUApriori,
  kUFPGrowth,
  kUHMine,
  kBruteForce,
};

/// The exact (§3.2) and approximate (§3.3) probabilistic algorithms.
/// DP/DC come in with-/without-Chernoff-pruning flavours, matching the
/// paper's DPB/DPNB/DCB/DCNB experimental arms.
enum class ProbabilisticAlgorithm {
  kDPNB,
  kDPB,
  kDCNB,
  kDCB,
  kPDUApriori,
  kNDUApriori,
  kNDUHMine,
  kMCSampling,  ///< possible-world sampling (paper's reference [11])
  kBruteForce,
};

/// Constructs a miner via the registry; never fails (the enums are
/// closed and every named algorithm self-registers).
std::unique_ptr<ExpectedSupportMiner> CreateExpectedSupportMiner(
    ExpectedAlgorithm algorithm, const MinerOptions& options = {});
std::unique_ptr<ProbabilisticMiner> CreateProbabilisticMiner(
    ProbabilisticAlgorithm algorithm, const MinerOptions& options = {});

/// Display names matching the paper's figures (and the registry keys).
std::string_view ToString(ExpectedAlgorithm algorithm);
std::string_view ToString(ProbabilisticAlgorithm algorithm);

/// Enumeration helpers for the benchmark sweeps (production algorithms
/// only — brute force excluded).
std::vector<ExpectedAlgorithm> AllExpectedAlgorithms();
std::vector<ProbabilisticAlgorithm> AllExactProbabilisticAlgorithms();
std::vector<ProbabilisticAlgorithm> AllApproximateProbabilisticAlgorithms();

}  // namespace ufim

#endif  // UFIM_CORE_MINER_FACTORY_H_
