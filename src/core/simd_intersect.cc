#include "core/simd_intersect.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(UFIM_ENABLE_SIMD) && defined(__x86_64__) && defined(__SSE2__)
#define UFIM_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ufim {

namespace {

/// Branchy two-pointer merge from the given cursors — the scalar kernel
/// body, and the tail the vector kernels fall into when fewer than one
/// block remains. `n` is the match count accumulated so far.
std::size_t ScalarMergeFrom(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::size_t i, std::size_t j, std::size_t n,
                            std::uint32_t* out_a, std::uint32_t* out_b) {
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out_a[n] = static_cast<std::uint32_t>(i);
      out_b[n] = static_cast<std::uint32_t>(j);
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// First index >= `from` with arr[index] >= key, by exponential probing
/// from `from` followed by binary search inside the bracketed range —
/// O(log distance) instead of O(log n), which is what makes repeated
/// searches from a monotone cursor cheap.
std::size_t GallopLowerBound(const std::uint32_t* arr, std::size_t n,
                             std::size_t from, std::uint32_t key) {
  if (from >= n || arr[from] >= key) return from;
  // Invariant: arr[lo] < key.
  std::size_t lo = from;
  std::size_t step = 1;
  while (lo + step < n && arr[lo + step] < key) {
    lo += step;
    step <<= 1;
  }
  std::size_t hi = std::min(lo + step, n);
  ++lo;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (arr[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

#ifdef UFIM_SIMD_X86

/// SSE baseline (x86-64 guarantees SSE2): each a-element is compared
/// against 4 b-elements at once; b-blocks wholly below a[i] are skipped
/// 4 at a time. Values are unique per list, so a block holds at most
/// one match and the movemask identifies its lane directly.
std::size_t IntersectSse(const std::uint32_t* a, std::size_t na,
                         const std::uint32_t* b, std::size_t nb,
                         std::uint32_t* out_a, std::uint32_t* out_b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < na && j + 4 <= nb) {
    if (b[j + 3] < a[i]) {
      j += 4;
      continue;
    }
    const __m128i va = _mm_set1_epi32(static_cast<int>(a[i]));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
    if (mask != 0) {
      out_a[n] = static_cast<std::uint32_t>(i);
      out_b[n] = static_cast<std::uint32_t>(
          j + static_cast<unsigned>(__builtin_ctz(static_cast<unsigned>(mask))));
      ++n;
    }
    ++i;
  }
  return ScalarMergeFrom(a, na, b, nb, i, j, n, out_a, out_b);
}

/// AVX2 variant of the same blocked compare, 8 lanes per instruction.
/// The target attribute keeps the rest of the build at the baseline ISA;
/// callers must check CpuHasAvx2() first.
__attribute__((target("avx2"))) std::size_t IntersectAvx2(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::uint32_t* out_a, std::uint32_t* out_b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < na && j + 8 <= nb) {
    if (b[j + 7] < a[i]) {
      j += 8;
      continue;
    }
    const __m256i va = _mm256_set1_epi32(static_cast<int>(a[i]));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
    if (mask != 0) {
      out_a[n] = static_cast<std::uint32_t>(i);
      out_b[n] = static_cast<std::uint32_t>(
          j + static_cast<unsigned>(__builtin_ctz(static_cast<unsigned>(mask))));
      ++n;
    }
    ++i;
  }
  return ScalarMergeFrom(a, na, b, nb, i, j, n, out_a, out_b);
}

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // UFIM_SIMD_X86

/// Forced-kernel state. -1 = not yet initialized; the first read seeds
/// it from UFIM_INTERSECT (by CAS, so it can never overwrite an
/// explicit SetIntersectKernel) and a forced path needs no code change.
std::atomic<int> g_forced_kernel{-1};

/// Length ratios beyond which galloping wins: the short side pays
/// O(log skip) per element instead of scanning. Against the scalar
/// merge that pays off early; the SIMD blocked compare skips the long
/// side 8 lanes per cycle with sequential prefetch, so its measured
/// crossover (bench_join_kernels) sits near three orders of magnitude.
constexpr std::size_t kGallopSkewScalar = 32;
constexpr std::size_t kGallopSkewSimd = 1024;
/// Below this length the blocked-compare setup is not worth it.
constexpr std::size_t kSimdMinLength = 16;

}  // namespace

std::size_t IntersectIndicesScalar(const std::uint32_t* a, std::size_t na,
                                   const std::uint32_t* b, std::size_t nb,
                                   std::uint32_t* out_a, std::uint32_t* out_b) {
  return ScalarMergeFrom(a, na, b, nb, 0, 0, 0, out_a, out_b);
}

std::size_t IntersectIndicesGallop(const std::uint32_t* a, std::size_t na,
                                   const std::uint32_t* b, std::size_t nb,
                                   std::uint32_t* out_a, std::uint32_t* out_b) {
  std::size_t n = 0;
  if (na <= nb) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < na && j < nb; ++i) {
      j = GallopLowerBound(b, nb, j, a[i]);
      if (j < nb && b[j] == a[i]) {
        out_a[n] = static_cast<std::uint32_t>(i);
        out_b[n] = static_cast<std::uint32_t>(j);
        ++n;
        ++j;
      }
    }
  } else {
    std::size_t i = 0;
    for (std::size_t j = 0; j < nb && i < na; ++j) {
      i = GallopLowerBound(a, na, i, b[j]);
      if (i < na && a[i] == b[j]) {
        out_a[n] = static_cast<std::uint32_t>(i);
        out_b[n] = static_cast<std::uint32_t>(j);
        ++n;
        ++i;
      }
    }
  }
  return n;
}

std::size_t IntersectIndicesSimd(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out_a, std::uint32_t* out_b) {
#ifdef UFIM_SIMD_X86
  // The blocked compare walks b vector-wide; keep the longer list on
  // that side so the wide instructions do the bulk of the work.
  if (na <= nb) {
    return CpuHasAvx2() ? IntersectAvx2(a, na, b, nb, out_a, out_b)
                        : IntersectSse(a, na, b, nb, out_a, out_b);
  }
  const std::size_t n = CpuHasAvx2()
                            ? IntersectAvx2(b, nb, a, na, out_b, out_a)
                            : IntersectSse(b, nb, a, na, out_b, out_a);
  return n;
#else
  return IntersectIndicesScalar(a, na, b, nb, out_a, out_b);
#endif
}

std::size_t IntersectIndices(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out_a, std::uint32_t* out_b) {
  switch (ForcedIntersectKernel()) {
    case IntersectKernel::kScalar:
      return IntersectIndicesScalar(a, na, b, nb, out_a, out_b);
    case IntersectKernel::kGallop:
      return IntersectIndicesGallop(a, na, b, nb, out_a, out_b);
    case IntersectKernel::kSimd:
      return IntersectIndicesSimd(a, na, b, nb, out_a, out_b);
    case IntersectKernel::kAuto:
      break;
  }
  if (na == 0 || nb == 0) return 0;
  const std::size_t shorter = std::min(na, nb);
  const std::size_t longer = std::max(na, nb);
  const bool simd = SimdIntersectAvailable();
  if (longer >= (simd ? kGallopSkewSimd : kGallopSkewScalar) * shorter) {
    return IntersectIndicesGallop(a, na, b, nb, out_a, out_b);
  }
  if (simd && longer >= kSimdMinLength) {
    return IntersectIndicesSimd(a, na, b, nb, out_a, out_b);
  }
  return IntersectIndicesScalar(a, na, b, nb, out_a, out_b);
}

bool SimdIntersectAvailable() {
#ifdef UFIM_SIMD_X86
  return true;  // the SSE baseline is part of x86-64
#else
  return false;
#endif
}

void SetIntersectKernel(IntersectKernel kernel) {
  g_forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

IntersectKernel ForcedIntersectKernel() {
  int v = g_forced_kernel.load(std::memory_order_relaxed);
  if (v < 0) {
    IntersectKernel seeded = IntersectKernel::kAuto;
    if (const char* env = std::getenv("UFIM_INTERSECT")) {
      ParseIntersectKernel(env, &seeded);
    }
    int expected = -1;
    // CAS so an explicit SetIntersectKernel that lands mid-seed wins
    // over the env default instead of being clobbered.
    if (g_forced_kernel.compare_exchange_strong(expected,
                                                static_cast<int>(seeded),
                                                std::memory_order_relaxed)) {
      v = static_cast<int>(seeded);
    } else {
      v = expected;
    }
  }
  return static_cast<IntersectKernel>(v);
}

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kAuto:
      return "auto";
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kGallop:
      return "gallop";
    case IntersectKernel::kSimd:
      return "simd";
  }
  return "auto";
}

bool ParseIntersectKernel(std::string_view name, IntersectKernel* out) {
  if (name == "auto") {
    *out = IntersectKernel::kAuto;
  } else if (name == "scalar") {
    *out = IntersectKernel::kScalar;
  } else if (name == "gallop") {
    *out = IntersectKernel::kGallop;
  } else if (name == "simd") {
    *out = IntersectKernel::kSimd;
  } else {
    return false;
  }
  return true;
}

}  // namespace ufim
