#include "core/miner.h"

#include <cmath>
#include <string>

namespace ufim {

Status ExpectedSupportParams::Validate() const {
  if (!(min_esup > 0.0) || min_esup > 1.0) {
    return Status::InvalidArgument("min_esup must be in (0, 1]");
  }
  return Status::OK();
}

Status ProbabilisticParams::Validate() const {
  if (!(min_sup > 0.0) || min_sup > 1.0) {
    return Status::InvalidArgument("min_sup must be in (0, 1]");
  }
  if (pft < 0.0 || pft >= 1.0) {
    return Status::InvalidArgument("pft must be in [0, 1)");
  }
  return Status::OK();
}

std::size_t ProbabilisticParams::MinSupportCount(
    std::size_t num_transactions) const {
  double raw = std::ceil(static_cast<double>(num_transactions) * min_sup);
  std::size_t msc = static_cast<std::size_t>(raw);
  if (msc < 1) msc = 1;
  if (msc > num_transactions) msc = num_transactions;
  return msc;
}

Status TopKParams::Validate() const {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  return Status::OK();
}

bool ParsePrefilterMode(std::string_view text, PrefilterMode* mode) {
  if (text == "off") {
    *mode = PrefilterMode::kOff;
    return true;
  }
  if (text == "bounds") {
    *mode = PrefilterMode::kBounds;
    return true;
  }
  return false;
}

std::string_view PrefilterModeName(PrefilterMode mode) {
  return mode == PrefilterMode::kBounds ? "bounds" : "off";
}

std::string_view TaskKindName(const MiningTask& task) {
  if (std::holds_alternative<ExpectedSupportParams>(task)) {
    return "expected-support";
  }
  if (std::holds_alternative<ProbabilisticParams>(task)) {
    return "probabilistic";
  }
  return "top-k";
}

Result<MiningResult> Miner::Mine(const UncertainDatabase& db,
                                 const MiningTask& task) const {
  return Mine(FlatView(db), task);
}

namespace {

Status UnsupportedTask(const Miner& miner, const MiningTask& task) {
  return Status::InvalidArgument(std::string(miner.name()) +
                                 " does not support " +
                                 std::string(TaskKindName(task)) + " tasks");
}

}  // namespace

Result<MiningResult> ExpectedSupportMiner::Mine(const FlatView& view,
                                                const MiningTask& task) const {
  if (const auto* params = std::get_if<ExpectedSupportParams>(&task)) {
    return Mine(view, *params);  // guarded typed entry point
  }
  return UnsupportedTask(*this, task);
}

Result<MiningResult> ProbabilisticMiner::Mine(const FlatView& view,
                                              const MiningTask& task) const {
  if (const auto* params = std::get_if<ProbabilisticParams>(&task)) {
    return Mine(view, *params);  // guarded typed entry point
  }
  return UnsupportedTask(*this, task);
}

}  // namespace ufim
