#include "core/miner.h"

#include <cmath>

namespace ufim {

Status ExpectedSupportParams::Validate() const {
  if (!(min_esup > 0.0) || min_esup > 1.0) {
    return Status::InvalidArgument("min_esup must be in (0, 1]");
  }
  return Status::OK();
}

Status ProbabilisticParams::Validate() const {
  if (!(min_sup > 0.0) || min_sup > 1.0) {
    return Status::InvalidArgument("min_sup must be in (0, 1]");
  }
  if (pft < 0.0 || pft >= 1.0) {
    return Status::InvalidArgument("pft must be in [0, 1)");
  }
  return Status::OK();
}

std::size_t ProbabilisticParams::MinSupportCount(
    std::size_t num_transactions) const {
  double raw = std::ceil(static_cast<double>(num_transactions) * min_sup);
  std::size_t msc = static_cast<std::size_t>(raw);
  if (msc < 1) msc = 1;
  if (msc > num_transactions) msc = num_transactions;
  return msc;
}

}  // namespace ufim
