#include "core/itemset.h"

#include <algorithm>
#include <cassert>

namespace ufim {

Itemset::Itemset(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<ItemId> items)
    : Itemset(std::vector<ItemId>(items)) {}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::ContainsAll(const Itemset& other) const {
  return std::includes(items_.begin(), items_.end(), other.items_.begin(),
                       other.items_.end());
}

Itemset Itemset::Union(ItemId item) const {
  assert(!Contains(item));
  Itemset out;
  out.items_.reserve(items_.size() + 1);
  auto pos = std::lower_bound(items_.begin(), items_.end(), item);
  out.items_.insert(out.items_.end(), items_.begin(), pos);
  out.items_.push_back(item);
  out.items_.insert(out.items_.end(), pos, items_.end());
  return out;
}

Itemset Itemset::WithoutIndex(std::size_t pos) const {
  assert(pos < items_.size());
  Itemset out;
  out.items_.reserve(items_.size() - 1);
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i != pos) out.items_.push_back(items_[i]);
  }
  return out;
}

std::vector<Itemset> Itemset::AllSubsetsMissingOne() const {
  std::vector<Itemset> out;
  out.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    out.push_back(WithoutIndex(i));
  }
  return out;
}

bool Itemset::SharesPrefix(const Itemset& a, const Itemset& b) {
  if (a.size() != b.size() || a.empty()) return false;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "}";
  return out;
}

std::size_t ItemsetHash::operator()(const Itemset& s) const {
  // FNV-1a over the item ids; good enough for candidate hash tables.
  std::size_t h = 1469598103934665603ULL;
  for (ItemId id : s.items()) {
    h ^= static_cast<std::size_t>(id);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ufim
