#include "core/uncertain_database.h"

#include <algorithm>

#include "common/math_util.h"

namespace ufim {

UncertainDatabase::UncertainDatabase(std::vector<Transaction> transactions)
    : transactions_(std::move(transactions)) {
  for (const Transaction& t : transactions_) NoteTransaction(t);
}

void UncertainDatabase::Add(Transaction t) {
  NoteTransaction(t);
  transactions_.push_back(std::move(t));
}

void UncertainDatabase::Append(std::span<const Transaction> batch) {
  transactions_.reserve(transactions_.size() + batch.size());
  for (const Transaction& t : batch) {
    NoteTransaction(t);
    transactions_.push_back(t);
  }
}

void UncertainDatabase::NoteTransaction(const Transaction& t) {
  if (!t.empty()) {
    // Units are sorted, so back() is the transaction's largest item.
    num_items_ = std::max(num_items_,
                          static_cast<std::size_t>(t.units().back().item) + 1);
  }
}

DatabaseStats UncertainDatabase::ComputeStats() const {
  DatabaseStats s;
  s.num_transactions = transactions_.size();
  s.num_items = num_items();
  std::size_t total_units = 0;
  KahanSum prob_sum;
  for (const Transaction& t : transactions_) {
    total_units += t.size();
    for (const ProbItem& u : t) prob_sum.Add(u.prob);
  }
  if (s.num_transactions > 0) {
    s.avg_length = static_cast<double>(total_units) /
                   static_cast<double>(s.num_transactions);
  }
  if (s.num_items > 0) {
    s.density = s.avg_length / static_cast<double>(s.num_items);
  }
  if (total_units > 0) {
    s.mean_probability = prob_sum.value() / static_cast<double>(total_units);
  }
  return s;
}

double UncertainDatabase::ItemExpectedSupport(ItemId item) const {
  KahanSum sum;
  for (const Transaction& t : transactions_) sum.Add(t.ProbabilityOf(item));
  return sum.value();
}

double UncertainDatabase::ExpectedSupport(const Itemset& itemset) const {
  KahanSum sum;
  for (const Transaction& t : transactions_) {
    sum.Add(t.ItemsetProbability(itemset));
  }
  return sum.value();
}

std::vector<double> UncertainDatabase::ContainmentProbabilities(
    const Itemset& itemset) const {
  std::vector<double> probs;
  for (const Transaction& t : transactions_) {
    double p = t.ItemsetProbability(itemset);
    if (p > 0.0) probs.push_back(p);
  }
  return probs;
}

UncertainDatabase UncertainDatabase::Prefix(std::size_t n) const {
  n = std::min(n, transactions_.size());
  return UncertainDatabase(
      std::vector<Transaction>(transactions_.begin(), transactions_.begin() + n));
}

Status UncertainDatabase::Validate() const {
  for (std::size_t ti = 0; ti < transactions_.size(); ++ti) {
    const Transaction& t = transactions_[ti];
    for (std::size_t i = 0; i < t.size(); ++i) {
      const ProbItem& u = t[i];
      if (u.prob <= 0.0 || u.prob > 1.0) {
        return Status::InvalidArgument(
            "transaction " + std::to_string(ti) + ": probability out of (0,1]");
      }
      if (i > 0 && t[i - 1].item >= u.item) {
        return Status::Internal(
            "transaction " + std::to_string(ti) + ": units not strictly sorted");
      }
    }
  }
  return Status::OK();
}

}  // namespace ufim
