#ifndef UFIM_CORE_MINER_H_
#define UFIM_CORE_MINER_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <string_view>
#include <variant>

#include "common/result.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/flat_view.h"
#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Parameters for the first problem definition (Definition 2):
/// an itemset X is frequent iff esup(X) >= N * min_esup.
struct ExpectedSupportParams {
  /// Minimum expected support as a ratio of the database size, in (0, 1].
  double min_esup = 0.5;

  /// Checks the parameter ranges.
  Status Validate() const;
};

/// Parameters for the second problem definition (Definition 4):
/// X is frequent iff Pr(sup(X) >= N * min_sup) > pft.
struct ProbabilisticParams {
  /// Minimum support as a ratio of the database size, in (0, 1].
  double min_sup = 0.5;
  /// Probabilistic frequentness threshold, in [0, 1).
  double pft = 0.9;

  Status Validate() const;

  /// The absolute minimum support count msc = ceil(N * min_sup), at
  /// least 1. All probability computations use this integer threshold.
  std::size_t MinSupportCount(std::size_t num_transactions) const;
};

/// Parameters of threshold-free top-k mining: the k itemsets with the
/// highest expected support (no frequency threshold to tune).
struct TopKParams {
  /// Number of itemsets to return, >= 1.
  std::size_t k = 10;

  Status Validate() const;
};

/// One mining request: the paper's two problem definitions plus the
/// threshold-free top-k variant. The unified `Miner` facade dispatches
/// on the active alternative, so drivers (CLI, experiment runner,
/// benches) need a single code path.
using MiningTask =
    std::variant<ExpectedSupportParams, ProbabilisticParams, TopKParams>;

/// "expected-support", "probabilistic" or "top-k" — for diagnostics.
std::string_view TaskKindName(const MiningTask& task);

/// Candidate-level screening applied before the exact tail evaluation of
/// the probabilistic apriori family (DP, DC, MCSampling).
enum class PrefilterMode {
  /// No screening beyond what the algorithm's own definition prescribes.
  kOff,
  /// Two-sided bound cascade (Chernoff + Cantelli + Berry-Esseen-certified
  /// normal envelope): candidates whose certified interval excludes the
  /// pft threshold skip the exact tail. Result sets and reported
  /// probabilities are identical to kOff by construction.
  kBounds,
};

/// Parses "off" / "bounds"; returns false on any other spelling.
bool ParsePrefilterMode(std::string_view text, PrefilterMode* mode);

/// Canonical spelling of a mode ("off", "bounds").
std::string_view PrefilterModeName(PrefilterMode mode);

/// Tuning knobs shared across miners. Defaults mirror the optimized
/// configurations the paper's study used.
struct MinerOptions {
  /// Worker threads for the parallel mining paths: 1 (the default) is
  /// the sequential baseline, 0 means all hardware threads. The apriori
  /// family parallelizes candidate counting (and tail evaluations), the
  /// pattern-growth miners (UFP-growth, UH-Mine, NDUH-Mine) their
  /// top-level header ranks; results are bit-identical at every setting
  /// (deterministic partitioning, per-task state, fixed merge orders).
  /// TopK and the brute-force oracles still ignore the knob and run
  /// sequentially.
  std::size_t num_threads = 1;
  /// Pattern-growth miners: recursive task-splitting budget for dominant
  /// conditional subtrees. 0 (default) = automatic threshold, 1 = never
  /// split (top-level rank tasks only, PR 4's granularity), larger
  /// values split more aggressively (a subtree splits when its estimated
  /// work is >= 1/split_budget of the whole database's). Results are
  /// bit-identical at every setting.
  std::size_t split_budget = 0;
  /// UApriori/PDUApriori: enable mid-scan decremental pruning [17, 18].
  bool decremental_pruning = true;
  /// DC: operand size above which the conquer step uses FFT convolution.
  std::size_t dc_fft_threshold = 64;
  /// MCSampling: possible worlds sampled per candidate.
  std::size_t mc_samples = 1024;
  /// MCSampling: RNG seed (results are deterministic in it).
  std::uint64_t mc_seed = 0xC0FFEE;
  /// Probabilistic apriori family: bound-cascade prefilter (--prefilter).
  PrefilterMode prefilter = PrefilterMode::kOff;
  /// Cooperative cancellation / deadline / memory-budget token, polled at
  /// the miners' checkpoint sites and observed by the execution layer
  /// between tasks. Copies share state: keep a handle to `Cancel()` or arm
  /// limits on while a mine runs. The default is live but unconstrained.
  RunContext run_context;
};

/// The unified mining interface: every algorithm in the repo — the three
/// expected-support miners, the exact DP/DC family, the approximate
/// probabilistic miners and the brute-force oracles — is a `Miner` that
/// consumes a columnar `FlatView` and a `MiningTask`.
///
/// Implementations are stateless across calls: `Mine` may be invoked
/// repeatedly with different views.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Algorithm name as used in the paper ("UApriori", "DCB", ...).
  virtual std::string_view name() const = 0;

  /// True when this miner can execute the active alternative of `task`.
  virtual bool Supports(const MiningTask& task) const = 0;

  /// True for algorithms whose reported frequentness is exact under the
  /// task they support (all expected-support miners; DP/DC among the
  /// probabilistic ones).
  virtual bool is_exact() const = 0;

  /// Runs the task over a prebuilt columnar view. Returns
  /// InvalidArgument when `Supports(task)` is false; kCancelled /
  /// kDeadlineExceeded / kResourceExhausted when the miner's `RunContext`
  /// trips mid-run (the view, scratch pools, and the thread pool stay
  /// valid and reusable — see common/run_context.h).
  virtual Result<MiningResult> Mine(const FlatView& view,
                                    const MiningTask& task) const = 0;

  /// Convenience: builds the FlatView internally. Prefer the view
  /// overload when mining the same database repeatedly.
  Result<MiningResult> Mine(const UncertainDatabase& db,
                            const MiningTask& task) const;

  /// Attaches the cooperative cancellation / deadline / budget token this
  /// miner polls at its checkpoint sites. `MinerRegistry::Create` forwards
  /// `MinerOptions::run_context` automatically; direct constructions keep
  /// a live but unconstrained default. Copies share state, so callers keep
  /// their own handle to `Cancel()` a running mine. Virtual so wrapper
  /// miners (ShardedMiner; DeltaMiner wraps without inheriting) can
  /// propagate the token to their inner miner — overrides must claim the
  /// inner miner's config phase (`inner->AssertConfigPhase()`) before
  /// forwarding, which is how the thread-safety analysis checks the
  /// propagation chain end to end.
  ///
  /// Config-phase only (annotated): `Mine` reads `run_context_` without a
  /// lock, so swapping the token while a mine is running on another
  /// thread would race. Call sites claim the no-mine-in-flight window via
  /// `AssertConfigPhase()`.
  virtual void set_run_context(RunContext context)
      UFIM_REQUIRES(config_role_) {
    run_context_ = std::move(context);
  }
  const RunContext& run_context() const { return run_context_; }

  /// Claims (to the thread-safety analysis; no runtime effect) that no
  /// `Mine` call is in flight on this miner — the precondition of
  /// `set_run_context`. See its comment.
  void AssertConfigPhase() const UFIM_ASSERT_CAPABILITY(config_role_) {}

 protected:
  // Deliberately not GUARDED_BY(config_role_): `Mine` bodies read the
  // handle concurrently without the role (reads are safe — the handle is
  // only swapped during the config phase the setter's REQUIRES pins).
  RunContext run_context_;

  /// The "no mine in flight; I am wiring up this miner" role.
  Role config_role_;
};

namespace internal {

/// Facade boundary of the no-exceptions-cross-the-public-API convention:
/// runs `fn` and converts the internal abort unwind (`RunAbortedError`,
/// thrown at RunContext checkpoints) and allocation failure into clean
/// error Statuses. Every `Miner::Mine` entry point funnels through this.
template <typename Fn>
Result<MiningResult> GuardMine(Fn&& fn) {
  try {
    return fn();
  } catch (const RunAbortedError& aborted) {
    return aborted.status();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failed during mining");
  }
}

}  // namespace internal

/// Adapter base of the expected-support-based miners (UApriori,
/// UFP-growth, UH-Mine, brute force). Subclasses implement
/// `MineExpected`; the `MiningTask` dispatch and the typed convenience
/// overloads live here.
class ExpectedSupportMiner : public Miner {
 public:
  bool Supports(const MiningTask& task) const final {
    return std::holds_alternative<ExpectedSupportParams>(task);
  }
  bool is_exact() const override { return true; }

  Result<MiningResult> Mine(const FlatView& view,
                            const MiningTask& task) const final;
  using Miner::Mine;

  /// Typed entry points (tests and legacy call sites). Guarded like the
  /// variant dispatch: a checkpoint abort surfaces as a Status here too.
  Result<MiningResult> Mine(const FlatView& view,
                            const ExpectedSupportParams& params) const {
    return internal::GuardMine([&] { return MineExpected(view, params); });
  }
  Result<MiningResult> Mine(const UncertainDatabase& db,
                            const ExpectedSupportParams& params) const {
    return internal::GuardMine(
        [&] { return MineExpected(FlatView(db), params); });
  }

  /// Finds all itemsets with esup(X) >= N * params.min_esup. Every
  /// returned itemset carries (expected_support, variance); variance is
  /// reported because it is free to accumulate and is exactly what turns
  /// these miners into approximate probabilistic miners (§3.3).
  virtual Result<MiningResult> MineExpected(
      const FlatView& view, const ExpectedSupportParams& params) const = 0;
};

/// Adapter base of the probabilistic miners — exact (DP, DC) and
/// approximate (PDUApriori, NDUApriori, NDUH-Mine, MCSampling).
class ProbabilisticMiner : public Miner {
 public:
  bool Supports(const MiningTask& task) const final {
    return std::holds_alternative<ProbabilisticParams>(task);
  }

  /// True for DP/DC (exact frequent probabilities), false for the
  /// distribution-approximation algorithms.
  bool is_exact() const override = 0;

  Result<MiningResult> Mine(const FlatView& view,
                            const MiningTask& task) const final;
  using Miner::Mine;

  Result<MiningResult> Mine(const FlatView& view,
                            const ProbabilisticParams& params) const {
    return internal::GuardMine(
        [&] { return MineProbabilistic(view, params); });
  }
  Result<MiningResult> Mine(const UncertainDatabase& db,
                            const ProbabilisticParams& params) const {
    return internal::GuardMine(
        [&] { return MineProbabilistic(FlatView(db), params); });
  }

  /// Finds all itemsets with Pr(sup(X) >= N*min_sup) > pft.
  virtual Result<MiningResult> MineProbabilistic(
      const FlatView& view, const ProbabilisticParams& params) const = 0;
};

}  // namespace ufim

#endif  // UFIM_CORE_MINER_H_
