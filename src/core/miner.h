#ifndef UFIM_CORE_MINER_H_
#define UFIM_CORE_MINER_H_

#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Parameters for the first problem definition (Definition 2):
/// an itemset X is frequent iff esup(X) >= N * min_esup.
struct ExpectedSupportParams {
  /// Minimum expected support as a ratio of the database size, in (0, 1].
  double min_esup = 0.5;

  /// Checks the parameter ranges.
  Status Validate() const;
};

/// Parameters for the second problem definition (Definition 4):
/// X is frequent iff Pr(sup(X) >= N * min_sup) > pft.
struct ProbabilisticParams {
  /// Minimum support as a ratio of the database size, in (0, 1].
  double min_sup = 0.5;
  /// Probabilistic frequentness threshold, in [0, 1).
  double pft = 0.9;

  Status Validate() const;

  /// The absolute minimum support count msc = ceil(N * min_sup), at
  /// least 1. All probability computations use this integer threshold.
  std::size_t MinSupportCount(std::size_t num_transactions) const;
};

/// Interface of the expected-support-based miners (UApriori, UFP-growth,
/// UH-Mine). Implementations are stateless across calls: `Mine` may be
/// invoked repeatedly with different databases.
class ExpectedSupportMiner {
 public:
  virtual ~ExpectedSupportMiner() = default;

  /// Algorithm name as used in the paper ("UApriori", ...).
  virtual std::string_view name() const = 0;

  /// Finds all itemsets with esup(X) >= N * params.min_esup. Every
  /// returned itemset carries (expected_support, variance); variance is
  /// reported because it is free to accumulate and is exactly what turns
  /// these miners into approximate probabilistic miners (§3.3).
  virtual Result<MiningResult> Mine(const UncertainDatabase& db,
                                    const ExpectedSupportParams& params) const = 0;
};

/// Interface of the probabilistic miners — exact (DP, DC) and approximate
/// (PDUApriori, NDUApriori, NDUH-Mine).
class ProbabilisticMiner {
 public:
  virtual ~ProbabilisticMiner() = default;

  virtual std::string_view name() const = 0;

  /// True for DP/DC (exact frequent probabilities), false for the
  /// distribution-approximation algorithms.
  virtual bool is_exact() const = 0;

  /// Finds all itemsets with Pr(sup(X) >= N*min_sup) > pft.
  virtual Result<MiningResult> Mine(const UncertainDatabase& db,
                                    const ProbabilisticParams& params) const = 0;
};

}  // namespace ufim

#endif  // UFIM_CORE_MINER_H_
