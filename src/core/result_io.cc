#include "core/result_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ufim {

std::string FormatResultLine(const FrequentItemset& fi) {
  std::string out;
  for (std::size_t i = 0; i < fi.itemset.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(fi.itemset[i]);
  }
  char buf[80];
  std::snprintf(buf, sizeof(buf), " %.17g %.17g", fi.expected_support,
                fi.variance);
  out += buf;
  if (fi.frequent_probability.has_value()) {
    std::snprintf(buf, sizeof(buf), " %.17g", *fi.frequent_probability);
    out += buf;
  }
  return out;
}

Result<FrequentItemset> ParseResultLine(const std::string& line) {
  std::istringstream in(line);
  std::string items_token;
  if (!(in >> items_token)) {
    return Status::InvalidArgument("empty result line");
  }
  std::vector<ItemId> items;
  const char* p = items_token.c_str();
  while (*p != '\0') {
    errno = 0;
    char* end = nullptr;
    const unsigned long id = std::strtoul(p, &end, 10);
    if (errno != 0 || end == p) {
      return Status::InvalidArgument("malformed item list '" + items_token + "'");
    }
    items.push_back(static_cast<ItemId>(id));
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') {
      return Status::InvalidArgument("malformed item list '" + items_token + "'");
    }
  }
  FrequentItemset fi;
  fi.itemset = Itemset(std::move(items));
  if (!(in >> fi.expected_support >> fi.variance)) {
    return Status::InvalidArgument("missing esup/variance in '" + line + "'");
  }
  double freq_prob = 0.0;
  if (in >> freq_prob) {
    fi.frequent_probability = freq_prob;
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing token '" + trailing + "'");
  }
  return fi;
}

Status WriteResult(const MiningResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# ufim mining result: " << result.size() << " itemsets\n";
  for (const FrequentItemset& fi : result.itemsets()) {
    out << FormatResultLine(fi) << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<MiningResult> ReadResult(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  MiningResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Result<FrequentItemset> fi = ParseResultLine(line);
    if (!fi.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     fi.status().message());
    }
    result.Add(std::move(fi).value());
  }
  return result;
}

}  // namespace ufim
