#include "core/transaction.h"

#include <algorithm>

namespace ufim {

Transaction::Transaction(std::vector<ProbItem> units) : units_(std::move(units)) {
  std::stable_sort(units_.begin(), units_.end(),
                   [](const ProbItem& a, const ProbItem& b) { return a.item < b.item; });
  // Deduplicate by item, keeping the last occurrence, dropping p <= 0.
  std::vector<ProbItem> cleaned;
  cleaned.reserve(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (i + 1 < units_.size() && units_[i + 1].item == units_[i].item) continue;
    ProbItem u = units_[i];
    if (u.prob <= 0.0) continue;
    if (u.prob > 1.0) u.prob = 1.0;
    cleaned.push_back(u);
  }
  units_ = std::move(cleaned);
}

double Transaction::ProbabilityOf(ItemId item) const {
  auto it = std::lower_bound(
      units_.begin(), units_.end(), item,
      [](const ProbItem& u, ItemId id) { return u.item < id; });
  if (it == units_.end() || it->item != item) return 0.0;
  return it->prob;
}

double Transaction::ItemsetProbability(const Itemset& itemset) const {
  // Merge walk: both sequences are sorted by item id.
  double prod = 1.0;
  auto ui = units_.begin();
  for (ItemId want : itemset) {
    while (ui != units_.end() && ui->item < want) ++ui;
    if (ui == units_.end() || ui->item != want) return 0.0;
    prod *= ui->prob;
    ++ui;
  }
  return itemset.empty() ? 0.0 : prod;
}

}  // namespace ufim
