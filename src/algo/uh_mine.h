#ifndef UFIM_ALGO_UH_MINE_H_
#define UFIM_ALGO_UH_MINE_H_

#include "core/miner.h"

namespace ufim {

/// UH-Mine (Aggarwal et al., KDD'09; paper §3.1.3): depth-first prefix
/// growth over the UH-Struct with recursively built head tables. The
/// paper's finding: the best expected-support miner on sparse data or at
/// low min_esup, with smoothly growing memory.
class UHMine final : public ExpectedSupportMiner {
 public:
  UHMine() = default;

  std::string_view name() const override { return "UH-Mine"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UH_MINE_H_
