#ifndef UFIM_ALGO_UH_MINE_H_
#define UFIM_ALGO_UH_MINE_H_

#include "core/miner.h"

namespace ufim {

/// UH-Mine (Aggarwal et al., KDD'09; paper §3.1.3): depth-first prefix
/// growth over the UH-Struct with recursively built head tables. The
/// paper's finding: the best expected-support miner on sparse data or at
/// low min_esup, with smoothly growing memory. Top-level prefix subtrees
/// mine in parallel through the shared UHStructEngine, with dominant
/// subtrees recursively split under the split-budget heuristic; results
/// are bit-identical at every thread count and budget.
class UHMine final : public ExpectedSupportMiner {
 public:
  /// `num_threads`: workers for the per-rank mining tasks; 1 (default)
  /// is the sequential baseline, 0 means all hardware threads.
  /// `split_budget`: recursive-splitting budget forwarded to
  /// UHStructEngine::Mine (0 = auto, 1 = off).
  explicit UHMine(std::size_t num_threads = 1, std::size_t split_budget = 0)
      : num_threads_(num_threads), split_budget_(split_budget) {}

  std::string_view name() const override { return "UH-Mine"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;

 private:
  std::size_t num_threads_;
  std::size_t split_budget_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UH_MINE_H_
