#ifndef UFIM_ALGO_NDU_APRIORI_H_
#define UFIM_ALGO_NDU_APRIORI_H_

#include "core/miner.h"

namespace ufim {

/// NDUApriori (Calders, Garboni & Goethals, ICDM'10; paper §3.3.2):
/// Normal-approximate probabilistic frequent itemset mining.
///
/// By the Lyapunov CLT the Poisson-binomial support converges to
/// Normal(esup, var); the frequent probability is evaluated with the
/// continuity-corrected Φ formula at O(N) per itemset (one scan yields
/// both moments). Unlike PDUApriori it reports the (approximate)
/// frequent probability of every result.
class NDUApriori final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes candidate counting (see
  /// MinerOptions::num_threads); results are bit-identical.
  explicit NDUApriori(std::size_t num_threads = 1)
      : num_threads_(num_threads) {}

  std::string_view name() const override { return "NDUApriori"; }
  bool is_exact() const override { return false; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  std::size_t num_threads_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_NDU_APRIORI_H_
