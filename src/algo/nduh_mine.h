#ifndef UFIM_ALGO_NDUH_MINE_H_
#define UFIM_ALGO_NDUH_MINE_H_

#include "core/miner.h"

namespace ufim {

/// NDUH-Mine — the algorithm proposed by the paper itself (§3.3.3):
/// UH-Mine's depth-first framework with the Normal-distribution
/// approximation of the frequent probability. The UH-Struct already
/// yields Σp per prefix; accumulating Σp² alongside is free, and the two
/// moments feed the continuity-corrected Φ test. Designed to win on
/// large sparse uncertain databases, where the Apriori-framework
/// approximations (PDUApriori/NDUApriori) degrade.
class NDUHMine final : public ProbabilisticMiner {
 public:
  /// `num_threads`: workers for the per-rank mining tasks of the shared
  /// UHStructEngine; 1 (default) is the sequential baseline, 0 means all
  /// hardware threads. `split_budget`: recursive-splitting budget
  /// forwarded to UHStructEngine::Mine (0 = auto, 1 = off). Results are
  /// bit-identical at every setting.
  explicit NDUHMine(std::size_t num_threads = 1, std::size_t split_budget = 0)
      : num_threads_(num_threads), split_budget_(split_budget) {}

  std::string_view name() const override { return "NDUH-Mine"; }
  bool is_exact() const override { return false; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  std::size_t num_threads_;
  std::size_t split_budget_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_NDUH_MINE_H_
