#ifndef UFIM_ALGO_EXACT_DP_H_
#define UFIM_ALGO_EXACT_DP_H_

#include "core/miner.h"

namespace ufim {

/// DP — dynamic-programming exact probabilistic miner (Bernecker et al.,
/// KDD'09; paper §3.2.1). Apriori framework; per candidate the exact
/// frequent probability Pr(sup >= msc) is computed by the O(N * msc)
/// support-probability dynamic program.
///
/// `use_chernoff_pruning` selects between the paper's DPB (with the
/// Chernoff-bound filter of Lemma 1) and DPNB (without).
class ExactDP final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes both candidate counting and the
  /// per-candidate DP tail evaluations (the dominant cost); results are
  /// bit-identical (see MinerOptions::num_threads).
  ///
  /// `prefilter` == kBounds enables the bound cascade
  /// (ProbabilisticLoopOptions::prefilter) plus a certified mid-DP early
  /// reject inside each tail evaluation; reported results are identical
  /// to kOff. Independent of the knob, the DP row is kept in per-worker
  /// scratch reused across every candidate of every level.
  explicit ExactDP(bool use_chernoff_pruning, std::size_t num_threads = 1,
                   PrefilterMode prefilter = PrefilterMode::kOff)
      : use_chernoff_(use_chernoff_pruning),
        num_threads_(num_threads),
        prefilter_(prefilter) {}

  std::string_view name() const override { return use_chernoff_ ? "DPB" : "DPNB"; }
  bool is_exact() const override { return true; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  bool use_chernoff_;
  std::size_t num_threads_;
  PrefilterMode prefilter_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_EXACT_DP_H_
