#include "algo/apriori_framework.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "prob/bound_cascade.h"
#include "prob/chernoff.h"

namespace ufim {

std::vector<ItemStats> CollectItemStats(const FlatView& view) {
  const std::size_t n_items = view.num_items();
  std::vector<ItemStats> out;
  out.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const double esup = view.ItemExpectedSupport(item);
    if (esup > 0.0) {
      out.push_back(ItemStats{item, esup, view.ItemSquaredSum(item)});
    }
  }
  return out;
}

std::vector<ItemStats> CollectItemStats(const UncertainDatabase& db) {
  // Direct row pass — building a FlatView just to read its caches would
  // cost more than this single scan.
  const std::size_t n_items = db.num_items();
  std::vector<double> esup(n_items, 0.0), sq(n_items, 0.0);
  for (const Transaction& t : db) {
    for (const ProbItem& u : t) {
      esup[u.item] += u.prob;
      sq[u.item] += u.prob * u.prob;
    }
  }
  std::vector<ItemStats> out;
  out.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    if (esup[i] > 0.0) {
      out.push_back(ItemStats{static_cast<ItemId>(i), esup[i], sq[i]});
    }
  }
  return out;
}

std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent_k,
                                        std::uint64_t* pruned) {
  std::vector<Itemset> candidates;
  if (frequent_k.empty()) return candidates;
  // Membership set for the subset-pruning step (lookup only, never
  // iterated — named so the unordered-iteration lint can tell it apart
  // from the ordered result vectors).
  std::unordered_set<Itemset, ItemsetHash> frequent_lookup(frequent_k.begin(),
                                                           frequent_k.end());
  for (std::size_t i = 0; i < frequent_k.size(); ++i) {
    // frequent_k is sorted, so all joins of i share a contiguous range of
    // prefix-compatible partners directly after i.
    for (std::size_t j = i + 1; j < frequent_k.size(); ++j) {
      if (!Itemset::SharesPrefix(frequent_k[i], frequent_k[j])) break;
      Itemset joined = frequent_k[i].Union(frequent_k[j].items().back());
      // Downward closure: every k-subset must be frequent. The two join
      // parents are subsets by construction; check the remaining k-1.
      bool ok = true;
      for (std::size_t drop = 0; drop + 2 < joined.size() && ok; ++drop) {
        if (frequent_lookup.find(joined.WithoutIndex(drop)) ==
            frequent_lookup.end()) {
          ok = false;
        }
      }
      if (ok) {
        candidates.push_back(std::move(joined));
      } else if (pruned != nullptr) {
        ++*pruned;
      }
    }
  }
  return candidates;
}

namespace {

/// Joins one candidate's posting arrays through the shared FlatView
/// batch kernel, filling `stats` with esup / Σp² (+ probs when
/// requested). `decremental_threshold >= 0` abandons the join, at batch
/// granularity, once even one unit of probability per remaining driver
/// posting cannot reach the threshold — the batch boundaries are a pure
/// function of the driver length, so the abandonment schedule (and with
/// it the partial sums of abandoned candidates) is identical at every
/// thread count and under every intersect kernel.
void JoinCandidate(const FlatView& view, const Itemset& candidate,
                   bool collect_probs, double decremental_threshold,
                   JoinScratch& scratch, CandidateStats& stats) {
  const bool decremental = decremental_threshold >= 0.0;

  KahanSum esup;
  bool reserved = false;
  view.JoinPostingsBatched(candidate, scratch, [&](const JoinBatch& batch) {
    if (collect_probs && !reserved) {
      // The join emits at most one probability per driver (shortest
      // member) posting; reserving that upper bound on the first batch
      // kills the push_back reallocation churn of the exact-algorithm
      // levels.
      stats.probs.reserve(batch.driver_len);
      reserved = true;
    }
    for (const double prod : batch.prods) {
      esup.Add(prod);
      stats.sq_sum += prod * prod;
    }
    if (collect_probs) {
      stats.probs.insert(stats.probs.end(), batch.prods.begin(),
                         batch.prods.end());
    }
    if (decremental && batch.driver_done < batch.driver_len) {
      // Each remaining driver posting contributes at most 1 to esup.
      const double optimistic =
          esup.value() +
          static_cast<double>(batch.driver_len - batch.driver_done);
      if (optimistic < decremental_threshold) return false;
    }
    return true;
  });
  stats.esup = esup.value();
  // The driver-length reserve is an upper bound; on sparse joins most
  // of it goes unused, and stats outlives the join inside the caller's
  // whole result vector — trim badly over-reserved candidates so the
  // retained footprint tracks actual matches.
  if (collect_probs && stats.probs.capacity() > 2 * stats.probs.size()) {
    stats.probs.shrink_to_fit();
  }
}

/// Reusable scratch of one in-flight probe-sweep shard. Dense arrays are
/// allocated once per wave slot and reset sparsely (via the touched
/// list) after each merge, so per-shard cost scales with the shard's
/// actual contributions, not with the candidate count.
struct SweepSlot {
  std::vector<KahanSum> esup;               ///< dense, n_cands
  std::vector<double> sq_sum;               ///< dense, n_cands
  std::vector<std::vector<double>> probs;   ///< dense when collecting
  std::vector<char> seen;                   ///< dense touched marker
  std::vector<std::uint32_t> touched;       ///< candidates hit, unsorted
  std::vector<double> probe;                ///< dense, n_items

  SweepSlot(std::size_t n_cands, std::size_t n_items, bool collect_probs)
      : esup(n_cands), sq_sum(n_cands, 0.0), seen(n_cands, 0),
        probe(n_items, 0.0) {
    if (collect_probs) probs.resize(n_cands);
  }
};

/// One probe-sweep shard: evaluates every still-active candidate over
/// the view's transactions [lo, hi) (view-relative offsets) into
/// `slot`, recording which candidates were touched. Identical inner
/// loop to the row-scan baseline, but every read is sequential over
/// FlatView storage.
/// First-item candidate buckets in CSR layout: candidates whose first
/// member is item i live in cands[offsets[i] .. offsets[i+1]). One flat
/// array keeps the per-unit probe loop walking contiguous memory
/// instead of chasing a vector-of-vectors indirection per transaction
/// unit.
struct CandidateBuckets {
  std::vector<std::uint32_t> offsets;  ///< size n_items + 1
  std::vector<std::uint32_t> cands;    ///< candidate ids, ascending per bucket

  CandidateBuckets(const std::vector<Itemset>& candidates,
                   std::size_t n_items) {
    offsets.assign(n_items + 1, 0);
    for (const Itemset& c : candidates) ++offsets[c.items().front() + 1];
    for (std::size_t i = 0; i < n_items; ++i) offsets[i + 1] += offsets[i];
    cands.resize(candidates.size());
    std::vector<std::uint32_t> fill(offsets.begin(), offsets.end() - 1);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      cands[fill[candidates[c].items().front()]++] =
          static_cast<std::uint32_t>(c);
    }
  }
};

void SweepShard(const FlatView& view, const std::vector<Itemset>& candidates,
                const CandidateBuckets& buckets,
                const std::vector<char>& active, bool collect_probs,
                std::size_t lo, std::size_t hi, SweepSlot& slot) {
  const TransactionId first = view.begin_tid();
  for (std::size_t ti = lo; ti < hi; ++ti) {
    const TransactionId tid = first + static_cast<TransactionId>(ti);
    const std::span<const ProbItem> units = view.TransactionUnits(tid);
    for (const ProbItem& u : units) slot.probe[u.item] = u.prob;
    for (const ProbItem& u : units) {
      const std::uint32_t bucket_end = buckets.offsets[u.item + 1];
      for (std::uint32_t bi = buckets.offsets[u.item]; bi < bucket_end; ++bi) {
        const std::uint32_t c = buckets.cands[bi];
        if (!active[c]) continue;
        double prod = u.prob;
        const std::vector<ItemId>& members = candidates[c].items();
        for (std::size_t k = 1; k < members.size(); ++k) {
          const double p = slot.probe[members[k]];
          if (p == 0.0) {
            prod = 0.0;
            break;
          }
          prod *= p;
        }
        if (prod > 0.0) {
          if (!slot.seen[c]) {
            slot.seen[c] = 1;
            slot.touched.push_back(c);
          }
          slot.esup[c].Add(prod);
          slot.sq_sum[c] += prod * prod;
          if (collect_probs) slot.probs[c].push_back(prod);
        }
      }
    }
    for (const ProbItem& u : units) slot.probe[u.item] = 0.0;
  }
}

/// Probe sweep over the view's flat horizontal arrays: candidates
/// bucketed by first item and probed against a dense per-transaction
/// probability array, one shard of transactions at a time. Wins over
/// per-candidate joins when the candidate set is dense (level 2 of a
/// low-threshold run).
///
/// The shard decomposition is a pure function of the view size — never
/// of `num_threads` — and per-candidate shard partials are merged in
/// ascending shard order, so the result is bit-identical at every
/// thread count. Threads only decide how many shards of one wave are in
/// flight at once (which also bounds the transient partial-stats
/// buffers to one wave's worth).
std::vector<CandidateStats> ProbeSweep(const FlatView& view,
                                       const std::vector<Itemset>& candidates,
                                       bool collect_probs,
                                       double decremental_threshold,
                                       std::size_t num_threads,
                                       const RunContext* context) {
  const std::size_t n_items = view.num_items();
  const std::size_t n_cands = candidates.size();
  std::vector<CandidateStats> stats(n_cands);

  const CandidateBuckets buckets(candidates, n_items);

  // Fixed-size transaction shards. Up to kMaxShards * kShardTxns
  // transactions, shards hold ~kShardTxns transactions (the ceiling
  // division spreads the remainder), so the single-thread wave checks
  // decremental pruning at roughly the old sequential sweep's
  // every-512-txn cadence; beyond that the kMaxShards clamp (which
  // keeps the per-candidate merge fan-in bounded) grows the shards, and
  // with them the interval between decremental checks — a work
  // trade-off only, never a correctness one.
  constexpr std::size_t kShardTxns = 512;
  constexpr std::size_t kMaxShards = 256;
  const std::size_t n_txn = view.num_transactions();
  const std::size_t num_shards =
      std::clamp<std::size_t>((n_txn + kShardTxns - 1) / kShardTxns, 1,
                              kMaxShards);

  std::vector<KahanSum> esup(n_cands);
  std::vector<char> active(n_cands, 1);
  const bool decremental = decremental_threshold >= 0.0;

  const std::size_t wave =
      std::max<std::size_t>(std::min(num_threads, num_shards), 1);
  std::vector<SweepSlot> slots;
  slots.reserve(wave);
  for (std::size_t j = 0; j < wave; ++j) {
    slots.emplace_back(n_cands, n_items, collect_probs);
  }
  for (std::size_t base = 0; base < num_shards; base += wave) {
    const std::size_t batch = std::min(wave, num_shards - base);
    ParallelFor(
        batch, num_threads,
        [&](std::size_t j) {
          PollRunContext(context);  // checkpoint: one per sweep shard
          const std::size_t s = base + j;
          SweepShard(view, candidates, buckets, active, collect_probs,
                     s * n_txn / num_shards, (s + 1) * n_txn / num_shards,
                     slots[j]);
        },
        context);
    // Ordered merge: shard s is always folded in before shard s+1, in
    // ascending candidate order, and only candidates the shard actually
    // touched are folded (a pure function of the data) — so the
    // floating-point op sequence per candidate is shard-structured and
    // thread-count-independent. A sparse shard merges via its sorted
    // touched list; a dense one scans the flags directly (sorting a
    // touched list that covers most candidates costs more than the
    // scan). Either walk folds the same set in the same ascending
    // order, and the density cutoff depends only on the data, so the
    // choice never perturbs results. Resetting entries as they merge
    // keeps slot reuse allocation-free.
    for (std::size_t j = 0; j < batch; ++j) {
      SweepSlot& slot = slots[j];
      auto fold = [&](std::size_t c) {
        esup[c].Add(slot.esup[c].value());
        stats[c].sq_sum += slot.sq_sum[c];
        slot.esup[c] = KahanSum();
        slot.sq_sum[c] = 0.0;
        slot.seen[c] = 0;
        if (collect_probs) {
          stats[c].probs.insert(stats[c].probs.end(), slot.probs[c].begin(),
                                slot.probs[c].end());
          slot.probs[c].clear();
        }
      };
      if (slot.touched.size() * 8 < n_cands) {
        std::sort(slot.touched.begin(), slot.touched.end());
        for (std::uint32_t c : slot.touched) fold(c);
      } else {
        for (std::size_t c = 0; c < n_cands; ++c) {
          if (slot.seen[c]) fold(c);
        }
      }
      slot.touched.clear();
    }
    // Decremental deactivation between waves. The check granularity (and
    // with it the partial sums of *abandoned* candidates) coarsens with
    // the wave width; candidates that reach the threshold are never
    // abandoned and accumulate over every shard identically.
    if (decremental && base + batch < num_shards) {
      const std::size_t done = (base + batch) * n_txn / num_shards;
      const double remaining = static_cast<double>(n_txn - done);
      for (std::size_t c = 0; c < n_cands; ++c) {
        if (active[c] && esup[c].value() + remaining < decremental_threshold) {
          active[c] = 0;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n_cands; ++c) stats[c].esup = esup[c].value();
  return stats;
}

}  // namespace

std::vector<CandidateStats> EvaluateCandidates(const FlatView& view,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold,
                                               std::size_t num_threads,
                                               const RunContext* context) {
  if (candidates.empty()) return {};
  if (num_threads == 0) num_threads = HardwareThreads();

  // Strategy selection by estimated work. A posting join touches the
  // driver (shortest) posting list per candidate, with a binary-search
  // constant on the other members; the probe sweep touches the first
  // item's postings per candidate plus one pass over all units. Joins
  // win for small or selective candidate sets (deep levels); the sweep
  // wins for the dense pair level of a low-threshold run.
  // The estimate is sampled (deterministic stride) so the strategy pick
  // stays O(1)-ish even with hundreds of thousands of pair candidates.
  constexpr double kSearchOverhead = 4.0;
  constexpr std::size_t kCostSamples = 512;
  const std::size_t stride = std::max<std::size_t>(candidates.size() / kCostSamples, 1);
  double join_cost = 0.0;
  double sweep_cost = 0.0;
  std::size_t sampled = 0;
  for (std::size_t c = 0; c < candidates.size(); c += stride, ++sampled) {
    const std::vector<ItemId>& items = candidates[c].items();
    // Logical posting counts (base + streaming delta), so the strategy
    // pick — and with it the whole evaluation — is a pure function of
    // the viewed data, never of its physical segmentation.
    const std::size_t first_len = view.PostingCount(items[0]);
    std::size_t shortest = first_len;
    for (std::size_t k = 1; k < items.size(); ++k) {
      shortest = std::min(shortest, view.PostingCount(items[k]));
    }
    join_cost += kSearchOverhead * static_cast<double>(shortest);
    sweep_cost += static_cast<double>(first_len);
  }
  const double scale =
      static_cast<double>(candidates.size()) / static_cast<double>(sampled);
  join_cost *= scale;
  sweep_cost = sweep_cost * scale + static_cast<double>(view.num_units());
  if (join_cost >= sweep_cost) {
    return ProbeSweep(view, candidates, collect_probs, decremental_threshold,
                      num_threads, context);
  }

  // Posting-join path: partitioned by candidate — each candidate's join
  // runs whole on one worker, so per-candidate accumulation (and the
  // decremental abandonment schedule) is exactly the sequential one at
  // every thread count. Workers are dealt contiguous candidate chunks
  // so each can reuse one JoinScratch across its whole share (the batch
  // kernel allocates nothing after the first join).
  std::vector<CandidateStats> stats(candidates.size());
  std::vector<JoinScratch> scratches(
      ParallelChunkCount(candidates.size(), num_threads));
  ParallelForChunks(
      candidates.size(), num_threads,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        JoinScratch& scratch = scratches[chunk];
        for (std::size_t c = lo; c < hi; ++c) {
          PollRunContext(context);  // checkpoint: one per candidate join
          JoinCandidate(view, candidates[c], collect_probs,
                        decremental_threshold, scratch, stats[c]);
        }
      },
      context);
  return stats;
}

std::vector<CandidateStats> EvaluateCandidates(const UncertainDatabase& db,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold) {
  // One-shot row-oriented callers get the single-pass scan; rebuilding
  // the columnar index per call would dominate the counting itself.
  // Miners that amortize the index use the FlatView overload.
  return EvaluateCandidatesRowScan(db, candidates, collect_probs,
                                   decremental_threshold);
}

std::vector<CandidateStats> EvaluateCandidatesRowScan(
    const UncertainDatabase& db, const std::vector<Itemset>& candidates,
    bool collect_probs, double decremental_threshold) {
  const std::size_t n_items = db.num_items();
  const std::size_t n_cands = candidates.size();
  std::vector<CandidateStats> stats(n_cands);
  if (n_cands == 0) return stats;

  // Bucket candidates by first item: a candidate is only probed against
  // transactions containing that item.
  std::vector<std::vector<std::uint32_t>> buckets(n_items);
  for (std::size_t c = 0; c < n_cands; ++c) {
    buckets[candidates[c].items().front()].push_back(
        static_cast<std::uint32_t>(c));
  }

  std::vector<KahanSum> esup(n_cands);
  std::vector<char> active(n_cands, 1);
  const bool decremental = decremental_threshold >= 0.0;
  constexpr std::size_t kSweepPeriod = 512;

  // Dense per-transaction probability probe, reset via a touched list.
  std::vector<double> probe(n_items, 0.0);
  std::vector<ItemId> touched;
  touched.reserve(256);

  const std::size_t n_txn = db.size();
  for (std::size_t ti = 0; ti < n_txn; ++ti) {
    const Transaction& t = db[ti];
    touched.clear();
    for (const ProbItem& u : t) {
      probe[u.item] = u.prob;
      touched.push_back(u.item);
    }
    for (const ProbItem& u : t) {
      for (std::uint32_t c : buckets[u.item]) {
        if (!active[c]) continue;
        double prod = u.prob;
        const std::vector<ItemId>& items = candidates[c].items();
        for (std::size_t k = 1; k < items.size(); ++k) {
          const double p = probe[items[k]];
          if (p == 0.0) {
            prod = 0.0;
            break;
          }
          prod *= p;
        }
        if (prod > 0.0) {
          esup[c].Add(prod);
          stats[c].sq_sum += prod * prod;
          if (collect_probs) stats[c].probs.push_back(prod);
        }
      }
    }
    for (ItemId id : touched) probe[id] = 0.0;

    if (decremental && (ti + 1) % kSweepPeriod == 0) {
      const double remaining = static_cast<double>(n_txn - ti - 1);
      for (std::size_t c = 0; c < n_cands; ++c) {
        if (active[c] && esup[c].value() + remaining < decremental_threshold) {
          active[c] = 0;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n_cands; ++c) stats[c].esup = esup[c].value();
  return stats;
}

namespace {

/// Verdict of the per-candidate frequency judge, with the counter deltas
/// it incurred. Counters are carried out-of-band (instead of mutated
/// inside the judge) so judging can run in parallel and still aggregate
/// deterministically in candidate order.
struct JudgeOutcome {
  std::optional<FrequentItemset> fi;
  bool bound_rejected = false;
  bool bound_accepted = false;
  bool exact_evaluated = false;
};

/// The third argument is the candidate's stable ordinal in generation
/// order across the whole run (see TailFn in the header).
using JudgeFn = std::function<JudgeOutcome(const Itemset&, CandidateStats&,
                                           std::size_t ordinal)>;

/// Applies `judge` to every candidate; candidate c carries the stable
/// ordinal `ordinal_base + c`. With `judge_threads > 1` the calls run
/// via ParallelFor — each candidate judged whole on one thread and
/// written to its own slot, so the outcome vector is identical to the
/// serial pass for any thread-safe judge.
std::vector<JudgeOutcome> JudgeAll(const std::vector<Itemset>& candidates,
                                   std::vector<CandidateStats>& stats,
                                   const JudgeFn& judge,
                                   std::size_t judge_threads,
                                   std::size_t ordinal_base,
                                   const RunContext* context) {
  std::vector<JudgeOutcome> outcomes(candidates.size());
  ParallelFor(
      candidates.size(), judge_threads,
      [&](std::size_t c) {
        PollRunContext(context);  // checkpoint: one per judged candidate
        outcomes[c] = judge(candidates[c], stats[c], ordinal_base + c);
      },
      context);
  return outcomes;
}

/// Shared level-wise loop. `judge` decides frequency and produces the
/// result annotation for one candidate given its scan statistics; an
/// empty outcome marks the candidate infrequent. `num_threads`
/// parallelizes support counting, `judge_threads` the judging (> 1 only
/// for thread-safe judges).
std::vector<FrequentItemset> LevelWiseLoop(
    const FlatView& view, const JudgeFn& judge, bool collect_probs,
    double decremental_threshold, MiningCounters* counters,
    std::size_t num_threads, std::size_t judge_threads,
    const RunContext* context) {
  std::vector<FrequentItemset> results;
  PollRunContext(context);  // checkpoint: run entry

  // Level 1: items, straight off the view's cached moments; the per-item
  // posting arrays already hold the per-transaction probabilities.
  std::vector<ItemStats> item_stats = CollectItemStats(view);
  if (counters != nullptr) {
    ++counters->database_scans;
    counters->candidates_generated += item_stats.size();
  }
  std::vector<Itemset> level;
  {
    std::vector<Itemset> singles;
    std::vector<CandidateStats> stats;
    singles.reserve(item_stats.size());
    stats.reserve(item_stats.size());
    for (const ItemStats& is : item_stats) {
      singles.push_back(Itemset{is.item});
      CandidateStats cs;
      cs.esup = is.esup;
      cs.sq_sum = is.sq_sum;
      if (collect_probs) {
        // Segment-aware (not PostingProbs) so the exact probabilistic
        // algorithms run unchanged on streaming views.
        view.AppendPostingProbs(is.item, cs.probs);
      }
      stats.push_back(std::move(cs));
    }
    std::vector<JudgeOutcome> outcomes = JudgeAll(
        singles, stats, judge, judge_threads, /*ordinal_base=*/0, context);
    for (std::size_t c = 0; c < singles.size(); ++c) {
      if (counters != nullptr) {
        counters->candidates_rejected_bound += outcomes[c].bound_rejected;
        counters->candidates_accepted_bound += outcomes[c].bound_accepted;
        counters->exact_tail_evals += outcomes[c].exact_evaluated;
      }
      if (outcomes[c].fi.has_value()) {
        level.push_back(singles[c]);
        results.push_back(std::move(*outcomes[c].fi));
      }
    }
  }
  std::sort(level.begin(), level.end());

  // Stable candidate numbering in generation order: level 1 used
  // [0, #items); each later level's candidates follow contiguously. The
  // numbering is a pure function of the database and parameters — never
  // of thread count — which is what makes ordinal-derived RNG streams
  // deterministic.
  std::size_t ordinal_base = item_stats.size();

  // Levels k >= 2.
  while (!level.empty()) {
    PollRunContext(context);  // checkpoint: one per level
    std::uint64_t pruned = 0;
    std::vector<Itemset> candidates = GenerateCandidates(level, &pruned);
    if (counters != nullptr) {
      counters->candidates_pruned_apriori += pruned;
    }
    if (candidates.empty()) break;
    if (counters != nullptr) {
      ++counters->database_scans;
      counters->candidates_generated += candidates.size();
    }
    std::vector<CandidateStats> stats =
        EvaluateCandidates(view, candidates, collect_probs,
                           decremental_threshold, num_threads, context);
    std::vector<JudgeOutcome> outcomes = JudgeAll(
        candidates, stats, judge, judge_threads, ordinal_base, context);
    ordinal_base += candidates.size();
    std::vector<Itemset> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counters != nullptr) {
        counters->candidates_rejected_bound += outcomes[c].bound_rejected;
        counters->candidates_accepted_bound += outcomes[c].bound_accepted;
        counters->exact_tail_evals += outcomes[c].exact_evaluated;
      }
      if (outcomes[c].fi.has_value()) {
        next.push_back(candidates[c]);
        results.push_back(std::move(*outcomes[c].fi));
      }
    }
    std::sort(next.begin(), next.end());
    level = std::move(next);
  }
  return results;
}

}  // namespace

std::vector<FrequentItemset> MineAprioriGeneric(const FlatView& view,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters,
                                                std::size_t num_threads,
                                                const RunContext* context) {
  auto judge = [&callbacks](const Itemset& itemset, CandidateStats& cs,
                            std::size_t /*ordinal*/) -> JudgeOutcome {
    JudgeOutcome out;
    if (!callbacks.is_frequent(cs.esup, cs.sq_sum)) return out;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    if (callbacks.frequent_probability) {
      fi.frequent_probability = callbacks.frequent_probability(cs.esup, cs.sq_sum);
    }
    out.fi = std::move(fi);
    return out;
  };
  // Judging stays on the calling thread: AprioriCallbacks carry no
  // thread-safety contract, and the predicates are O(1) anyway.
  return LevelWiseLoop(view, judge, /*collect_probs=*/false, decremental_threshold,
                       counters, num_threads, /*judge_threads=*/1, context);
}

std::vector<FrequentItemset> MineAprioriGeneric(const UncertainDatabase& db,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters,
                                                std::size_t num_threads,
                                                const RunContext* context) {
  return MineAprioriGeneric(FlatView(db), callbacks, decremental_threshold,
                            counters, num_threads, context);
}

std::vector<FrequentItemset> MineProbabilisticApriori(
    const FlatView& view, std::size_t msc, double pft, const TailFn& tail_fn,
    const ProbabilisticLoopOptions& options, MiningCounters* counters) {
  const bool cascade = options.prefilter == PrefilterMode::kBounds &&
                       options.certified_tail;
  auto judge = [&](const Itemset& itemset, CandidateStats& cs,
                   std::size_t ordinal) -> JudgeOutcome {
    JudgeOutcome out;
    if (options.use_chernoff && ChernoffCertifiesInfrequent(cs.esup, msc, pft)) {
      out.bound_rejected = true;
      return out;
    }
    bool accept_certified = false;
    if (cascade) {
      const TailInterval interval =
          CertifiedTailInterval(cs.esup, cs.esup - cs.sq_sum, msc);
      switch (ClassifyTail(interval, pft)) {
        case BoundDecision::kReject:
          // Certified Pr(sup >= msc) <= pft: the exact tail could only
          // confirm infrequency, so skip it — the one place the cascade
          // saves the expensive evaluation.
          out.bound_rejected = true;
          return out;
        case BoundDecision::kAccept:
          // Certified frequent — but the reported annotation must stay
          // the exact tail value (identical output with the prefilter
          // off), so fall through to the evaluation and only count it.
          accept_certified = true;
          break;
        case BoundDecision::kUndecided:
          break;
      }
    }
    out.exact_evaluated = true;
    out.bound_accepted = accept_certified;
    const double tail = tail_fn(cs.probs, msc, ordinal);
    if (!(tail > pft)) return out;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    fi.frequent_probability = tail;
    out.fi = std::move(fi);
    return out;
  };
  return LevelWiseLoop(
      view, judge, /*collect_probs=*/true,
      /*decremental_threshold=*/-1.0, counters, options.num_threads,
      /*judge_threads=*/options.parallel_tails ? options.num_threads : 1,
      options.context);
}

std::vector<FrequentItemset> MineProbabilisticApriori(
    const UncertainDatabase& db, std::size_t msc, double pft,
    const TailFn& tail_fn, const ProbabilisticLoopOptions& options,
    MiningCounters* counters) {
  return MineProbabilisticApriori(FlatView(db), msc, pft, tail_fn, options,
                                  counters);
}

}  // namespace ufim
