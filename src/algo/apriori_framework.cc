#include "algo/apriori_framework.h"

#include <algorithm>
#include <unordered_set>

#include "common/math_util.h"
#include "prob/chernoff.h"

namespace ufim {

std::vector<ItemStats> CollectItemStats(const FlatView& view) {
  const std::size_t n_items = view.num_items();
  std::vector<ItemStats> out;
  out.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const double esup = view.ItemExpectedSupport(item);
    if (esup > 0.0) {
      out.push_back(ItemStats{item, esup, view.ItemSquaredSum(item)});
    }
  }
  return out;
}

std::vector<ItemStats> CollectItemStats(const UncertainDatabase& db) {
  // Direct row pass — building a FlatView just to read its caches would
  // cost more than this single scan.
  const std::size_t n_items = db.num_items();
  std::vector<double> esup(n_items, 0.0), sq(n_items, 0.0);
  for (const Transaction& t : db) {
    for (const ProbItem& u : t) {
      esup[u.item] += u.prob;
      sq[u.item] += u.prob * u.prob;
    }
  }
  std::vector<ItemStats> out;
  out.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    if (esup[i] > 0.0) {
      out.push_back(ItemStats{static_cast<ItemId>(i), esup[i], sq[i]});
    }
  }
  return out;
}

std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent_k,
                                        std::uint64_t* pruned) {
  std::vector<Itemset> candidates;
  if (frequent_k.empty()) return candidates;
  // Membership set for the subset-pruning step.
  std::unordered_set<Itemset, ItemsetHash> frequent(frequent_k.begin(),
                                                    frequent_k.end());
  for (std::size_t i = 0; i < frequent_k.size(); ++i) {
    // frequent_k is sorted, so all joins of i share a contiguous range of
    // prefix-compatible partners directly after i.
    for (std::size_t j = i + 1; j < frequent_k.size(); ++j) {
      if (!Itemset::SharesPrefix(frequent_k[i], frequent_k[j])) break;
      Itemset joined = frequent_k[i].Union(frequent_k[j].items().back());
      // Downward closure: every k-subset must be frequent. The two join
      // parents are subsets by construction; check the remaining k-1.
      bool ok = true;
      for (std::size_t drop = 0; drop + 2 < joined.size() && ok; ++drop) {
        if (frequent.find(joined.WithoutIndex(drop)) == frequent.end()) {
          ok = false;
        }
      }
      if (ok) {
        candidates.push_back(std::move(joined));
      } else if (pruned != nullptr) {
        ++*pruned;
      }
    }
  }
  return candidates;
}

namespace {

/// Joins one candidate's posting arrays through the shared FlatView
/// kernel, filling `stats` with esup / Σp² (+ probs when requested).
/// `decremental_threshold >= 0` abandons the join once even one unit of
/// probability per remaining driver posting cannot reach the threshold.
void JoinCandidate(const FlatView& view, const Itemset& candidate,
                   bool collect_probs, double decremental_threshold,
                   CandidateStats& stats) {
  const bool decremental = decremental_threshold >= 0.0;
  constexpr std::size_t kSweepPeriod = 256;

  KahanSum esup;
  std::size_t last_check = 0;
  view.JoinPostings(candidate, [&](std::size_t driver_pos,
                                   std::size_t driver_len, TransactionId,
                                   double prod) {
    if (decremental && driver_pos - last_check >= kSweepPeriod) {
      last_check = driver_pos;
      // Each remaining driver posting contributes at most 1 to esup.
      const double optimistic =
          esup.value() + static_cast<double>(driver_len - driver_pos);
      if (optimistic < decremental_threshold) return false;
    }
    esup.Add(prod);
    stats.sq_sum += prod * prod;
    if (collect_probs) stats.probs.push_back(prod);
    return true;
  });
  stats.esup = esup.value();
}

/// Probe sweep over the view's flat horizontal arrays: one pass through
/// the contiguous unit arrays, candidates bucketed by first item and
/// probed against a dense per-transaction probability array. Same
/// algorithm as the row-scan baseline, but every read is sequential over
/// FlatView storage instead of chasing per-Transaction vectors. Wins
/// when the candidate set is dense (level 2 of a low-threshold run).
std::vector<CandidateStats> ProbeSweep(const FlatView& view,
                                       const std::vector<Itemset>& candidates,
                                       bool collect_probs,
                                       double decremental_threshold) {
  const std::size_t n_items = view.num_items();
  const std::size_t n_cands = candidates.size();
  std::vector<CandidateStats> stats(n_cands);

  std::vector<std::vector<std::uint32_t>> buckets(n_items);
  for (std::size_t c = 0; c < n_cands; ++c) {
    buckets[candidates[c].items().front()].push_back(
        static_cast<std::uint32_t>(c));
  }

  std::vector<KahanSum> esup(n_cands);
  std::vector<char> active(n_cands, 1);
  const bool decremental = decremental_threshold >= 0.0;
  constexpr std::size_t kSweepPeriod = 512;

  std::vector<double> probe(n_items, 0.0);

  const std::size_t n_txn = view.num_transactions();
  for (std::size_t ti = 0; ti < n_txn; ++ti) {
    const TransactionId tid = static_cast<TransactionId>(ti);
    const std::span<const ProbItem> units = view.TransactionUnits(tid);
    for (const ProbItem& u : units) probe[u.item] = u.prob;
    for (const ProbItem& u : units) {
      for (std::uint32_t c : buckets[u.item]) {
        if (!active[c]) continue;
        double prod = u.prob;
        const std::vector<ItemId>& members = candidates[c].items();
        for (std::size_t k = 1; k < members.size(); ++k) {
          const double p = probe[members[k]];
          if (p == 0.0) {
            prod = 0.0;
            break;
          }
          prod *= p;
        }
        if (prod > 0.0) {
          esup[c].Add(prod);
          stats[c].sq_sum += prod * prod;
          if (collect_probs) stats[c].probs.push_back(prod);
        }
      }
    }
    for (const ProbItem& u : units) probe[u.item] = 0.0;

    if (decremental && (ti + 1) % kSweepPeriod == 0) {
      const double remaining = static_cast<double>(n_txn - ti - 1);
      for (std::size_t c = 0; c < n_cands; ++c) {
        if (active[c] && esup[c].value() + remaining < decremental_threshold) {
          active[c] = 0;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n_cands; ++c) stats[c].esup = esup[c].value();
  return stats;
}

}  // namespace

std::vector<CandidateStats> EvaluateCandidates(const FlatView& view,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold) {
  if (candidates.empty()) return {};

  // Strategy selection by estimated work. A posting join touches the
  // driver (shortest) posting list per candidate, with a binary-search
  // constant on the other members; the probe sweep touches the first
  // item's postings per candidate plus one pass over all units. Joins
  // win for small or selective candidate sets (deep levels); the sweep
  // wins for the dense pair level of a low-threshold run.
  // The estimate is sampled (deterministic stride) so the strategy pick
  // stays O(1)-ish even with hundreds of thousands of pair candidates.
  constexpr double kSearchOverhead = 4.0;
  constexpr std::size_t kCostSamples = 512;
  const std::size_t stride = std::max<std::size_t>(candidates.size() / kCostSamples, 1);
  double join_cost = 0.0;
  double sweep_cost = 0.0;
  std::size_t sampled = 0;
  for (std::size_t c = 0; c < candidates.size(); c += stride, ++sampled) {
    const std::vector<ItemId>& items = candidates[c].items();
    std::size_t shortest = view.PostingTids(items[0]).size();
    for (std::size_t k = 1; k < items.size(); ++k) {
      shortest = std::min(shortest, view.PostingTids(items[k]).size());
    }
    join_cost += kSearchOverhead * static_cast<double>(shortest);
    sweep_cost += static_cast<double>(view.PostingTids(items[0]).size());
  }
  const double scale =
      static_cast<double>(candidates.size()) / static_cast<double>(sampled);
  join_cost *= scale;
  sweep_cost = sweep_cost * scale + static_cast<double>(view.num_units());
  if (join_cost >= sweep_cost) {
    return ProbeSweep(view, candidates, collect_probs, decremental_threshold);
  }

  std::vector<CandidateStats> stats(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    JoinCandidate(view, candidates[c], collect_probs, decremental_threshold,
                  stats[c]);
  }
  return stats;
}

std::vector<CandidateStats> EvaluateCandidates(const UncertainDatabase& db,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold) {
  // One-shot row-oriented callers get the single-pass scan; rebuilding
  // the columnar index per call would dominate the counting itself.
  // Miners that amortize the index use the FlatView overload.
  return EvaluateCandidatesRowScan(db, candidates, collect_probs,
                                   decremental_threshold);
}

std::vector<CandidateStats> EvaluateCandidatesRowScan(
    const UncertainDatabase& db, const std::vector<Itemset>& candidates,
    bool collect_probs, double decremental_threshold) {
  const std::size_t n_items = db.num_items();
  const std::size_t n_cands = candidates.size();
  std::vector<CandidateStats> stats(n_cands);
  if (n_cands == 0) return stats;

  // Bucket candidates by first item: a candidate is only probed against
  // transactions containing that item.
  std::vector<std::vector<std::uint32_t>> buckets(n_items);
  for (std::size_t c = 0; c < n_cands; ++c) {
    buckets[candidates[c].items().front()].push_back(
        static_cast<std::uint32_t>(c));
  }

  std::vector<KahanSum> esup(n_cands);
  std::vector<char> active(n_cands, 1);
  const bool decremental = decremental_threshold >= 0.0;
  constexpr std::size_t kSweepPeriod = 512;

  // Dense per-transaction probability probe, reset via a touched list.
  std::vector<double> probe(n_items, 0.0);
  std::vector<ItemId> touched;
  touched.reserve(256);

  const std::size_t n_txn = db.size();
  for (std::size_t ti = 0; ti < n_txn; ++ti) {
    const Transaction& t = db[ti];
    touched.clear();
    for (const ProbItem& u : t) {
      probe[u.item] = u.prob;
      touched.push_back(u.item);
    }
    for (const ProbItem& u : t) {
      for (std::uint32_t c : buckets[u.item]) {
        if (!active[c]) continue;
        double prod = u.prob;
        const std::vector<ItemId>& items = candidates[c].items();
        for (std::size_t k = 1; k < items.size(); ++k) {
          const double p = probe[items[k]];
          if (p == 0.0) {
            prod = 0.0;
            break;
          }
          prod *= p;
        }
        if (prod > 0.0) {
          esup[c].Add(prod);
          stats[c].sq_sum += prod * prod;
          if (collect_probs) stats[c].probs.push_back(prod);
        }
      }
    }
    for (ItemId id : touched) probe[id] = 0.0;

    if (decremental && (ti + 1) % kSweepPeriod == 0) {
      const double remaining = static_cast<double>(n_txn - ti - 1);
      for (std::size_t c = 0; c < n_cands; ++c) {
        if (active[c] && esup[c].value() + remaining < decremental_threshold) {
          active[c] = 0;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n_cands; ++c) stats[c].esup = esup[c].value();
  return stats;
}

namespace {

/// Shared level-wise loop. `judge` decides frequency and produces the
/// result annotation for one candidate given its scan statistics;
/// returning nullopt marks the candidate infrequent.
std::vector<FrequentItemset> LevelWiseLoop(
    const FlatView& view,
    const std::function<std::optional<FrequentItemset>(const Itemset&, CandidateStats&)>& judge,
    bool collect_probs, double decremental_threshold, MiningCounters* counters) {
  std::vector<FrequentItemset> results;

  // Level 1: items, straight off the view's cached moments; the per-item
  // posting arrays already hold the per-transaction probabilities.
  std::vector<ItemStats> item_stats = CollectItemStats(view);
  if (counters != nullptr) {
    ++counters->database_scans;
    counters->candidates_generated += item_stats.size();
  }
  std::vector<Itemset> level;
  for (const ItemStats& is : item_stats) {
    Itemset single{is.item};
    CandidateStats cs;
    cs.esup = is.esup;
    cs.sq_sum = is.sq_sum;
    if (collect_probs) {
      const std::span<const double> probs = view.PostingProbs(is.item);
      cs.probs.assign(probs.begin(), probs.end());
    }
    std::optional<FrequentItemset> fi = judge(single, cs);
    if (fi.has_value()) {
      level.push_back(single);
      results.push_back(std::move(*fi));
    }
  }
  std::sort(level.begin(), level.end());

  // Levels k >= 2.
  while (!level.empty()) {
    std::uint64_t pruned = 0;
    std::vector<Itemset> candidates = GenerateCandidates(level, &pruned);
    if (counters != nullptr) {
      counters->candidates_pruned_apriori += pruned;
    }
    if (candidates.empty()) break;
    if (counters != nullptr) {
      ++counters->database_scans;
      counters->candidates_generated += candidates.size();
    }
    std::vector<CandidateStats> stats =
        EvaluateCandidates(view, candidates, collect_probs, decremental_threshold);
    std::vector<Itemset> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::optional<FrequentItemset> fi = judge(candidates[c], stats[c]);
      if (fi.has_value()) {
        next.push_back(candidates[c]);
        results.push_back(std::move(*fi));
      }
    }
    std::sort(next.begin(), next.end());
    level = std::move(next);
  }
  return results;
}

}  // namespace

std::vector<FrequentItemset> MineAprioriGeneric(const FlatView& view,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters) {
  auto judge = [&callbacks](const Itemset& itemset,
                            CandidateStats& cs) -> std::optional<FrequentItemset> {
    if (!callbacks.is_frequent(cs.esup, cs.sq_sum)) return std::nullopt;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    if (callbacks.frequent_probability) {
      fi.frequent_probability = callbacks.frequent_probability(cs.esup, cs.sq_sum);
    }
    return fi;
  };
  return LevelWiseLoop(view, judge, /*collect_probs=*/false, decremental_threshold,
                       counters);
}

std::vector<FrequentItemset> MineAprioriGeneric(const UncertainDatabase& db,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters) {
  return MineAprioriGeneric(FlatView(db), callbacks, decremental_threshold,
                            counters);
}

std::vector<FrequentItemset> MineProbabilisticApriori(
    const FlatView& view, std::size_t msc, double pft,
    const std::function<double(const std::vector<double>&, std::size_t)>& tail_fn,
    bool use_chernoff, MiningCounters* counters) {
  auto judge = [&](const Itemset& itemset,
                   CandidateStats& cs) -> std::optional<FrequentItemset> {
    if (use_chernoff && ChernoffCertifiesInfrequent(cs.esup, msc, pft)) {
      if (counters != nullptr) ++counters->candidates_pruned_chernoff;
      return std::nullopt;
    }
    if (counters != nullptr) ++counters->exact_probability_evaluations;
    const double tail = tail_fn(cs.probs, msc);
    if (!(tail > pft)) return std::nullopt;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    fi.frequent_probability = tail;
    return fi;
  };
  return LevelWiseLoop(view, judge, /*collect_probs=*/true,
                       /*decremental_threshold=*/-1.0, counters);
}

std::vector<FrequentItemset> MineProbabilisticApriori(
    const UncertainDatabase& db, std::size_t msc, double pft,
    const std::function<double(const std::vector<double>&, std::size_t)>& tail_fn,
    bool use_chernoff, MiningCounters* counters) {
  return MineProbabilisticApriori(FlatView(db), msc, pft, tail_fn, use_chernoff,
                                  counters);
}

}  // namespace ufim
