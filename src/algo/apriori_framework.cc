#include "algo/apriori_framework.h"

#include <algorithm>
#include <unordered_set>

#include "common/math_util.h"
#include "prob/chernoff.h"

namespace ufim {

std::vector<ItemStats> CollectItemStats(const UncertainDatabase& db) {
  const std::size_t n_items = db.num_items();
  std::vector<double> esup(n_items, 0.0), sq(n_items, 0.0);
  for (const Transaction& t : db) {
    for (const ProbItem& u : t) {
      esup[u.item] += u.prob;
      sq[u.item] += u.prob * u.prob;
    }
  }
  std::vector<ItemStats> out;
  out.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    if (esup[i] > 0.0) {
      out.push_back(ItemStats{static_cast<ItemId>(i), esup[i], sq[i]});
    }
  }
  return out;
}

std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent_k,
                                        std::uint64_t* pruned) {
  std::vector<Itemset> candidates;
  if (frequent_k.empty()) return candidates;
  // Membership set for the subset-pruning step.
  std::unordered_set<Itemset, ItemsetHash> frequent(frequent_k.begin(),
                                                    frequent_k.end());
  for (std::size_t i = 0; i < frequent_k.size(); ++i) {
    // frequent_k is sorted, so all joins of i share a contiguous range of
    // prefix-compatible partners directly after i.
    for (std::size_t j = i + 1; j < frequent_k.size(); ++j) {
      if (!Itemset::SharesPrefix(frequent_k[i], frequent_k[j])) break;
      Itemset joined = frequent_k[i].Union(frequent_k[j].items().back());
      // Downward closure: every k-subset must be frequent. The two join
      // parents are subsets by construction; check the remaining k-1.
      bool ok = true;
      for (std::size_t drop = 0; drop + 2 < joined.size() && ok; ++drop) {
        if (frequent.find(joined.WithoutIndex(drop)) == frequent.end()) {
          ok = false;
        }
      }
      if (ok) {
        candidates.push_back(std::move(joined));
      } else if (pruned != nullptr) {
        ++*pruned;
      }
    }
  }
  return candidates;
}

std::vector<CandidateStats> EvaluateCandidates(const UncertainDatabase& db,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold) {
  const std::size_t n_items = db.num_items();
  const std::size_t n_cands = candidates.size();
  std::vector<CandidateStats> stats(n_cands);
  if (n_cands == 0) return stats;

  // Bucket candidates by first item: a candidate is only probed against
  // transactions containing that item.
  std::vector<std::vector<std::uint32_t>> buckets(n_items);
  for (std::size_t c = 0; c < n_cands; ++c) {
    buckets[candidates[c].items().front()].push_back(
        static_cast<std::uint32_t>(c));
  }

  std::vector<KahanSum> esup(n_cands);
  std::vector<char> active(n_cands, 1);
  const bool decremental = decremental_threshold >= 0.0;
  constexpr std::size_t kSweepPeriod = 512;

  // Dense per-transaction probability probe, reset via a touched list.
  std::vector<double> probe(n_items, 0.0);
  std::vector<ItemId> touched;
  touched.reserve(256);

  const std::size_t n_txn = db.size();
  for (std::size_t ti = 0; ti < n_txn; ++ti) {
    const Transaction& t = db[ti];
    touched.clear();
    for (const ProbItem& u : t) {
      probe[u.item] = u.prob;
      touched.push_back(u.item);
    }
    for (const ProbItem& u : t) {
      for (std::uint32_t c : buckets[u.item]) {
        if (!active[c]) continue;
        double prod = u.prob;
        const std::vector<ItemId>& items = candidates[c].items();
        for (std::size_t k = 1; k < items.size(); ++k) {
          const double p = probe[items[k]];
          if (p == 0.0) {
            prod = 0.0;
            break;
          }
          prod *= p;
        }
        if (prod > 0.0) {
          esup[c].Add(prod);
          stats[c].sq_sum += prod * prod;
          if (collect_probs) stats[c].probs.push_back(prod);
        }
      }
    }
    for (ItemId id : touched) probe[id] = 0.0;

    if (decremental && (ti + 1) % kSweepPeriod == 0) {
      const double remaining = static_cast<double>(n_txn - ti - 1);
      for (std::size_t c = 0; c < n_cands; ++c) {
        if (active[c] && esup[c].value() + remaining < decremental_threshold) {
          active[c] = 0;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n_cands; ++c) stats[c].esup = esup[c].value();
  return stats;
}

namespace {

/// Shared level-wise loop. `judge` decides frequency and produces the
/// result annotation for one candidate given its scan statistics;
/// returning nullopt marks the candidate infrequent.
std::vector<FrequentItemset> LevelWiseLoop(
    const UncertainDatabase& db,
    const std::function<std::optional<FrequentItemset>(const Itemset&, CandidateStats&)>& judge,
    bool collect_probs, double decremental_threshold, MiningCounters* counters) {
  std::vector<FrequentItemset> results;

  // Level 1: items.
  std::vector<ItemStats> item_stats = CollectItemStats(db);
  if (counters != nullptr) {
    ++counters->database_scans;
    counters->candidates_generated += item_stats.size();
  }
  // When the judge needs per-transaction probabilities, gather them for
  // every item in one database pass.
  std::vector<std::vector<double>> item_probs;
  if (collect_probs) {
    item_probs.resize(db.num_items());
    for (const Transaction& t : db) {
      for (const ProbItem& u : t) item_probs[u.item].push_back(u.prob);
    }
  }
  std::vector<Itemset> level;
  for (const ItemStats& is : item_stats) {
    Itemset single{is.item};
    CandidateStats cs;
    cs.esup = is.esup;
    cs.sq_sum = is.sq_sum;
    if (collect_probs) {
      cs.probs = std::move(item_probs[is.item]);
    }
    std::optional<FrequentItemset> fi = judge(single, cs);
    if (fi.has_value()) {
      level.push_back(single);
      results.push_back(std::move(*fi));
    }
  }
  std::sort(level.begin(), level.end());

  // Levels k >= 2.
  while (!level.empty()) {
    std::uint64_t pruned = 0;
    std::vector<Itemset> candidates = GenerateCandidates(level, &pruned);
    if (counters != nullptr) {
      counters->candidates_pruned_apriori += pruned;
    }
    if (candidates.empty()) break;
    if (counters != nullptr) {
      ++counters->database_scans;
      counters->candidates_generated += candidates.size();
    }
    std::vector<CandidateStats> stats =
        EvaluateCandidates(db, candidates, collect_probs, decremental_threshold);
    std::vector<Itemset> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::optional<FrequentItemset> fi = judge(candidates[c], stats[c]);
      if (fi.has_value()) {
        next.push_back(candidates[c]);
        results.push_back(std::move(*fi));
      }
    }
    std::sort(next.begin(), next.end());
    level = std::move(next);
  }
  return results;
}

}  // namespace

std::vector<FrequentItemset> MineAprioriGeneric(const UncertainDatabase& db,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters) {
  auto judge = [&callbacks](const Itemset& itemset,
                            CandidateStats& cs) -> std::optional<FrequentItemset> {
    if (!callbacks.is_frequent(cs.esup, cs.sq_sum)) return std::nullopt;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    if (callbacks.frequent_probability) {
      fi.frequent_probability = callbacks.frequent_probability(cs.esup, cs.sq_sum);
    }
    return fi;
  };
  return LevelWiseLoop(db, judge, /*collect_probs=*/false, decremental_threshold,
                       counters);
}

std::vector<FrequentItemset> MineProbabilisticApriori(
    const UncertainDatabase& db, std::size_t msc, double pft,
    const std::function<double(const std::vector<double>&, std::size_t)>& tail_fn,
    bool use_chernoff, MiningCounters* counters) {
  auto judge = [&](const Itemset& itemset,
                   CandidateStats& cs) -> std::optional<FrequentItemset> {
    if (use_chernoff && ChernoffCertifiesInfrequent(cs.esup, msc, pft)) {
      if (counters != nullptr) ++counters->candidates_pruned_chernoff;
      return std::nullopt;
    }
    if (counters != nullptr) ++counters->exact_probability_evaluations;
    const double tail = tail_fn(cs.probs, msc);
    if (!(tail > pft)) return std::nullopt;
    FrequentItemset fi;
    fi.itemset = itemset;
    fi.expected_support = cs.esup;
    fi.variance = cs.esup - cs.sq_sum;
    fi.frequent_probability = tail;
    return fi;
  };
  return LevelWiseLoop(db, judge, /*collect_probs=*/true,
                       /*decremental_threshold=*/-1.0, counters);
}

}  // namespace ufim
