#ifndef UFIM_ALGO_APRIORI_FRAMEWORK_H_
#define UFIM_ALGO_APRIORI_FRAMEWORK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Shared machinery of every generate-and-test (breadth-first) miner in
/// the paper: UApriori, PDUApriori, NDUApriori and the exact DP/DC
/// algorithms all instantiate this framework with different frequency
/// predicates. Keeping one audited implementation of candidate
/// generation and support counting is exactly the "common subroutines"
/// uniformity the paper's experimental methodology demands (§4.1).

/// Accumulated statistics for one candidate after a database scan.
struct CandidateStats {
  double esup = 0.0;    ///< Σ_t Pr(X ⊆ T_t)       — expected support
  double sq_sum = 0.0;  ///< Σ_t Pr(X ⊆ T_t)²      — gives Var = esup - sq_sum
  std::vector<double> probs;  ///< nonzero containment probs (optional)
};

/// Per-item statistics from the initial scan.
struct ItemStats {
  ItemId item = 0;
  double esup = 0.0;
  double sq_sum = 0.0;
};

/// One pass over the database accumulating esup and Σp² per item.
std::vector<ItemStats> CollectItemStats(const UncertainDatabase& db);

/// Classic Apriori candidate generation: joins lexicographically sorted
/// frequent k-itemsets sharing a (k-1)-prefix and prunes joins that have
/// an infrequent k-subset (downward closure). `pruned` (optional) counts
/// the subset-pruned candidates.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent_k,
                                        std::uint64_t* pruned);

/// Evaluates all `candidates` (any mixture of sizes >= 2) in one database
/// scan. Candidates are bucketed by their first item and probed against a
/// dense per-transaction probability array, so each candidate is touched
/// only for transactions containing its first item.
///
/// `collect_probs` stores the nonzero per-transaction probabilities
/// (needed by the exact probabilistic algorithms).
///
/// `decremental_threshold`, when >= 0, enables UApriori's decremental
/// pruning: periodically during the scan, a candidate whose optimistic
/// bound esup_so_far + (transactions remaining) can no longer reach the
/// threshold is deactivated. Deactivated candidates report whatever they
/// accumulated; they are guaranteed infrequent.
std::vector<CandidateStats> EvaluateCandidates(const UncertainDatabase& db,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold = -1.0);

/// Hooks instantiating the framework for a concrete algorithm.
struct AprioriCallbacks {
  /// Frequency predicate over the accumulated (esup, Σp²). Must be
  /// anti-monotone in the itemset for the Apriori pruning to be exact
  /// (true for every instantiation in the paper).
  std::function<bool(double esup, double sq_sum)> is_frequent;

  /// Optional annotation: the frequent probability to record on results
  /// (approximate algorithms), or nullopt (expected-support algorithms).
  std::function<std::optional<double>(double esup, double sq_sum)> frequent_probability;
};

/// Runs the level-wise mining loop with the given hooks. Results carry
/// esup/variance (+ optional frequent probability) and are canonically
/// sorted by the caller if needed. `decremental_threshold` as above
/// (only meaningful when the predicate is an esup threshold).
std::vector<FrequentItemset> MineAprioriGeneric(const UncertainDatabase& db,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters);

/// The exact probabilistic variant: per candidate, first the O(1)
/// Chernoff test on esup (when `use_chernoff`), then the exact tail
/// Pr(sup >= msc) via `tail_fn` (DP or DC). Frequent iff tail > pft.
std::vector<FrequentItemset> MineProbabilisticApriori(
    const UncertainDatabase& db, std::size_t msc, double pft,
    const std::function<double(const std::vector<double>&, std::size_t)>& tail_fn,
    bool use_chernoff, MiningCounters* counters);

}  // namespace ufim

#endif  // UFIM_ALGO_APRIORI_FRAMEWORK_H_
