#ifndef UFIM_ALGO_APRIORI_FRAMEWORK_H_
#define UFIM_ALGO_APRIORI_FRAMEWORK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/flat_view.h"
#include "core/miner.h"
#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Shared machinery of every generate-and-test (breadth-first) miner in
/// the paper: UApriori, PDUApriori, NDUApriori and the exact DP/DC
/// algorithms all instantiate this framework with different frequency
/// predicates. Keeping one audited implementation of candidate
/// generation and support counting is exactly the "common subroutines"
/// uniformity the paper's experimental methodology demands (§4.1).
///
/// Support counting runs over the columnar `FlatView`: each candidate's
/// containment probabilities come from a merge-join of its members'
/// posting arrays (ascending-tid index joins over contiguous memory),
/// replacing the row-oriented probe-array scan. The row scan survives as
/// `EvaluateCandidatesRowScan` — the baseline the equivalence tests and
/// the FlatView bench compare against.
///
/// Counting is parallel when `num_threads > 1`, and deterministically so:
/// the posting-join path partitions by candidate (each candidate's join
/// runs whole on one thread), the probe sweep partitions transactions
/// into *fixed* shards — a function of the view size, never of the
/// thread count — whose per-candidate partials are merged in ascending
/// shard order. Results are therefore bit-identical at every thread
/// count, including the `num_threads = 1` sequential fallback.

/// Accumulated statistics for one candidate after a database scan.
struct CandidateStats {
  double esup = 0.0;    ///< Σ_t Pr(X ⊆ T_t)       — expected support
  double sq_sum = 0.0;  ///< Σ_t Pr(X ⊆ T_t)²      — gives Var = esup - sq_sum
  std::vector<double> probs;  ///< nonzero containment probs (optional)
};

/// Per-item statistics from the initial scan.
struct ItemStats {
  ItemId item = 0;
  double esup = 0.0;
  double sq_sum = 0.0;
};

/// Item-level moments from the view's cached per-item arrays (items with
/// zero support omitted). O(num_items) on a full view.
std::vector<ItemStats> CollectItemStats(const FlatView& view);

/// Row-oriented variant: one pass over the transactions (no index
/// build). Same contents as the view overload.
std::vector<ItemStats> CollectItemStats(const UncertainDatabase& db);

/// Classic Apriori candidate generation: joins lexicographically sorted
/// frequent k-itemsets sharing a (k-1)-prefix and prunes joins that have
/// an infrequent k-subset (downward closure). `pruned` (optional) counts
/// the subset-pruned candidates.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent_k,
                                        std::uint64_t* pruned);

/// Evaluates all `candidates` (any mixture of sizes >= 2) over the
/// columnar view, choosing per call between two strategies by estimated
/// work: posting-list merge-joins (each candidate driven from its
/// shortest member posting array, the other members' cursors advanced
/// monotonically) for small or selective candidate sets, and a bucketed
/// probe sweep over the view's contiguous horizontal arrays for dense
/// candidate sets such as the pair level of a low-threshold run.
///
/// `collect_probs` stores the nonzero per-transaction probabilities in
/// ascending transaction order (needed by the exact probabilistic
/// algorithms).
///
/// `decremental_threshold`, when >= 0, enables UApriori's decremental
/// pruning: periodically during the join (or between probe-sweep
/// shards), a candidate whose optimistic bound esup_so_far + (transactions
/// remaining) can no longer reach the threshold is abandoned. Abandoned
/// candidates report whatever they accumulated; they are guaranteed
/// infrequent. In the sweep, the deactivation schedule coarsens with the
/// thread count, so only abandoned (infrequent) candidates may report
/// thread-count-dependent partial sums — candidates that reach the
/// threshold are never abandoned and stay bit-identical.
///
/// `num_threads`: 0 means all hardware threads, 1 (the default) the
/// sequential baseline.
///
/// `context`, when non-null, is polled once per candidate join (or per
/// sweep shard); a trip unwinds with RunAbortedError.
std::vector<CandidateStats> EvaluateCandidates(const FlatView& view,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold = -1.0,
                                               std::size_t num_threads = 1,
                                               const RunContext* context = nullptr);

/// Row-oriented convenience overload for one-shot callers: delegates to
/// the row-scan baseline rather than paying a full index build per call.
std::vector<CandidateStats> EvaluateCandidates(const UncertainDatabase& db,
                                               const std::vector<Itemset>& candidates,
                                               bool collect_probs,
                                               double decremental_threshold = -1.0);

/// The pre-columnar implementation: one pass over row-oriented
/// transactions probing a dense per-transaction probability array.
/// Kept as the reference baseline for equivalence tests and the
/// FlatView-vs-row-scan bench; production miners use the view overload.
std::vector<CandidateStats> EvaluateCandidatesRowScan(
    const UncertainDatabase& db, const std::vector<Itemset>& candidates,
    bool collect_probs, double decremental_threshold = -1.0);

/// Hooks instantiating the framework for a concrete algorithm.
struct AprioriCallbacks {
  /// Frequency predicate over the accumulated (esup, Σp²). Must be
  /// anti-monotone in the itemset for the Apriori pruning to be exact
  /// (true for every instantiation in the paper).
  std::function<bool(double esup, double sq_sum)> is_frequent;

  /// Optional annotation: the frequent probability to record on results
  /// (approximate algorithms), or nullopt (expected-support algorithms).
  std::function<std::optional<double>(double esup, double sq_sum)> frequent_probability;
};

/// Runs the level-wise mining loop with the given hooks. Results carry
/// esup/variance (+ optional frequent probability) and are canonically
/// sorted by the caller if needed. `decremental_threshold` as above
/// (only meaningful when the predicate is an esup threshold).
/// `num_threads` parallelizes candidate counting; the callbacks are
/// always invoked from the calling thread, so they need not be
/// thread-safe. `context`, when non-null, is polled per level, per
/// candidate evaluation and per judged candidate; a trip unwinds with
/// RunAbortedError (the Miner facade converts it to a Status).
std::vector<FrequentItemset> MineAprioriGeneric(const FlatView& view,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters,
                                                std::size_t num_threads = 1,
                                                const RunContext* context = nullptr);
std::vector<FrequentItemset> MineAprioriGeneric(const UncertainDatabase& db,
                                                const AprioriCallbacks& callbacks,
                                                double decremental_threshold,
                                                MiningCounters* counters,
                                                std::size_t num_threads = 1,
                                                const RunContext* context = nullptr);

/// Tail evaluator of the probabilistic apriori loop: Pr(sup >= msc) from
/// a candidate's nonzero containment probabilities. `candidate_ordinal`
/// is the candidate's stable index in generation order across the whole
/// run — a pure function of the database and parameters, identical at
/// every thread count — so estimators that need randomness can derive a
/// counter-based per-candidate RNG stream from it (DeriveStreamSeed)
/// instead of consuming a shared sequential stream. Pure evaluators (DP,
/// DC) simply ignore it.
using TailFn = std::function<double(const std::vector<double>& probs,
                                    std::size_t msc,
                                    std::size_t candidate_ordinal)>;

/// Execution options of the probabilistic level-wise loop.
struct ProbabilisticLoopOptions {
  /// Per-candidate O(1) Chernoff test on esup before the tail (part of
  /// the bounded algorithm variants DPB/DCB and of MCSampling's
  /// definition; counted under candidates_rejected_bound).
  bool use_chernoff = false;
  /// Bound-cascade prefilter (kBounds): candidates whose certified
  /// two-sided interval (prob/bound_cascade.h) excludes pft skip the
  /// tail. Applies only when `certified_tail` is also true.
  PrefilterMode prefilter = PrefilterMode::kOff;
  /// True when `tail_fn` computes the true tail (DP/DC), so a certified
  /// analytic bound may overrule it. False for estimators (MCSampling):
  /// the cascade could contradict the estimate and change the reported
  /// result set, so the framework never applies it there.
  bool certified_tail = true;
  /// Worker threads for candidate counting (0 = all hardware threads).
  std::size_t num_threads = 1;
  /// Also parallelize per-candidate tail evaluations. Only safe for a
  /// `tail_fn` that is a pure function of its arguments — including
  /// `candidate_ordinal`, which is how MCSampling's sampler qualifies
  /// since its per-candidate RNG streams are derived, not shared.
  bool parallel_tails = false;
  /// Cancellation/deadline/budget token, polled per level, per candidate
  /// evaluation and per judged candidate; nullptr = unconstrained.
  const RunContext* context = nullptr;
};

/// The probabilistic variant of the level-wise loop: per candidate, the
/// O(1) screens above (Chernoff, bound cascade), then the tail
/// Pr(sup >= msc) via `tail_fn` (DP, DC or an estimator). Frequent iff
/// tail > pft; the reported frequent_probability is always the tail_fn
/// value, never a bound, so the prefilter cannot change reported results
/// — certified *rejects* skip the tail, certified *accepts* are counted
/// (candidates_accepted_bound) but still evaluated for the annotation.
std::vector<FrequentItemset> MineProbabilisticApriori(
    const FlatView& view, std::size_t msc, double pft, const TailFn& tail_fn,
    const ProbabilisticLoopOptions& options, MiningCounters* counters);
std::vector<FrequentItemset> MineProbabilisticApriori(
    const UncertainDatabase& db, std::size_t msc, double pft,
    const TailFn& tail_fn, const ProbabilisticLoopOptions& options,
    MiningCounters* counters);

}  // namespace ufim

#endif  // UFIM_ALGO_APRIORI_FRAMEWORK_H_
