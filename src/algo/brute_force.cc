#include "algo/brute_force.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/math_util.h"
#include "core/miner_registry.h"

namespace ufim {

namespace {

/// Sparse containment of a prefix itemset: the transactions where it has
/// nonzero probability, with those probabilities.
struct Containment {
  std::vector<TransactionId> tids;
  std::vector<double> probs;

  double Esup() const {
    KahanSum s;
    for (double p : probs) s.Add(p);
    return s.value();
  }

  double SqSum() const {
    KahanSum s;
    for (double p : probs) s.Add(p * p);
    return s.value();
  }
};

/// Extends `base` with `item` via the shared list×postings batch join:
/// keeps transactions where `item` also occurs, multiplying
/// probabilities. `scratch` is reused across the whole DFS; the matches
/// are materialized into the returned containment before the caller
/// joins again.
Containment Extend(const FlatView& view, const Containment& base, ItemId item,
                   JoinScratch& scratch) {
  const FlatView::ListMatches matches =
      view.JoinWithPostings(base.tids, item, scratch);
  Containment out;
  out.tids.reserve(matches.size());
  out.probs.reserve(matches.size());
  for (std::size_t k = 0; k < matches.size(); ++k) {
    const std::size_t i = matches.seq_indices[k];
    out.tids.push_back(base.tids[i]);
    out.probs.push_back(base.probs[i] * matches.probs[k]);
  }
  return out;
}

Containment SingleItem(const FlatView& view, ItemId item) {
  Containment out;
  view.CopyPostings(item, out.tids, out.probs);
  return out;
}

/// Full support pmf by sequential Bernoulli convolution — O(n²), written
/// independently of the prob/ module so brute force is a real oracle.
std::vector<double> FullPmf(const std::vector<double>& probs) {
  std::vector<double> pmf{1.0};
  for (double p : probs) {
    std::vector<double> next(pmf.size() + 1, 0.0);
    for (std::size_t j = 0; j < pmf.size(); ++j) {
      next[j] += pmf[j] * (1.0 - p);
      next[j + 1] += pmf[j] * p;
    }
    pmf = std::move(next);
  }
  return pmf;
}

double TailFromPmf(const std::vector<double>& pmf, std::size_t k) {
  double tail = 0.0;
  for (std::size_t j = pmf.size(); j-- > k;) tail += pmf[j];
  return k == 0 ? 1.0 : tail;
}

}  // namespace

Result<MiningResult> BruteForceExpected::MineExpected(
    const FlatView& view, const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold =
      params.min_esup * static_cast<double>(view.num_transactions());
  const std::size_t n_items = view.num_items();
  MiningResult result;

  // DFS over itemsets in lexicographic order; expected support is
  // anti-monotone so pruning is exact.
  struct Frame {
    Itemset itemset;
    Containment cont;
  };
  JoinScratch scratch;
  auto dfs = [&](auto&& self, const Frame& frame) -> void {
    for (ItemId next = frame.itemset.empty() ? 0 : frame.itemset.items().back() + 1;
         next < n_items; ++next) {
      // Checkpoint: one per enumerated candidate (the guarded facade
      // converts the throw into a Status).
      PollRunContext(&run_context());
      result.counters().candidates_generated++;
      Containment ext = frame.itemset.empty()
                            ? SingleItem(view, next)
                            : Extend(view, frame.cont, next, scratch);
      const double esup = ext.Esup();
      if (esup < threshold) continue;
      Frame child{frame.itemset.empty() ? Itemset{next}
                                        : frame.itemset.Union(next),
                  std::move(ext)};
      FrequentItemset fi;
      fi.itemset = child.itemset;
      fi.expected_support = esup;
      fi.variance = esup - child.cont.SqSum();
      result.Add(std::move(fi));
      self(self, child);
    }
  };
  dfs(dfs, Frame{});
  result.SortCanonical();
  return result;
}

Result<MiningResult> BruteForceProbabilistic::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const std::size_t n_items = view.num_items();
  MiningResult result;

  struct Frame {
    Itemset itemset;
    Containment cont;
  };
  JoinScratch scratch;
  auto dfs = [&](auto&& self, const Frame& frame) -> void {
    for (ItemId next = frame.itemset.empty() ? 0 : frame.itemset.items().back() + 1;
         next < n_items; ++next) {
      // Checkpoint: one per enumerated candidate (the guarded facade
      // converts the throw into a Status).
      PollRunContext(&run_context());
      result.counters().candidates_generated++;
      Containment ext = frame.itemset.empty()
                            ? SingleItem(view, next)
                            : Extend(view, frame.cont, next, scratch);
      if (ext.probs.size() < msc) continue;  // support can never reach msc
      result.counters().exact_tail_evals++;
      const double tail = TailFromPmf(FullPmf(ext.probs), msc);
      if (!(tail > params.pft)) continue;
      Frame child{frame.itemset.empty() ? Itemset{next}
                                        : frame.itemset.Union(next),
                  std::move(ext)};
      FrequentItemset fi;
      fi.itemset = child.itemset;
      fi.expected_support = child.cont.Esup();
      fi.variance = fi.expected_support - child.cont.SqSum();
      fi.frequent_probability = tail;
      result.Add(std::move(fi));
      self(self, child);
    }
  };
  dfs(dfs, Frame{});
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("BruteForceExpected", TaskFamily::kExpectedSupport,
                    /*production=*/false,
                    [](const MinerOptions&) {
                      return std::make_unique<BruteForceExpected>();
                    })

UFIM_REGISTER_MINER("BruteForceProbabilistic", TaskFamily::kProbabilistic,
                    /*production=*/false,
                    [](const MinerOptions&) {
                      return std::make_unique<BruteForceProbabilistic>();
                    })

}  // namespace ufim
