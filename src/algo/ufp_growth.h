#ifndef UFIM_ALGO_UFP_GROWTH_H_
#define UFIM_ALGO_UFP_GROWTH_H_

#include "core/miner.h"

namespace ufim {

/// UFP-growth (Leung, Mateo & Brajczuk, PAKDD'08; paper §3.1.2):
/// FP-growth extended to uncertain data. Builds the UFP-tree, then
/// recursively projects conditional subtrees per extension item.
///
/// Because nodes are shared only on (item, probability) equality, the
/// compression of the FP-tree largely evaporates under uncertainty; the
/// paper consistently measures UFP-growth as the slowest and most
/// memory-hungry of the three expected-support miners, and this
/// implementation reproduces that regime faithfully (exact mining over
/// the weighted tree, no candidate-verification rescan needed).
class UFPGrowth final : public ExpectedSupportMiner {
 public:
  UFPGrowth() = default;

  std::string_view name() const override { return "UFP-growth"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UFP_GROWTH_H_
