#ifndef UFIM_ALGO_UFP_GROWTH_H_
#define UFIM_ALGO_UFP_GROWTH_H_

#include "core/miner.h"

namespace ufim {

/// UFP-growth (Leung, Mateo & Brajczuk, PAKDD'08; paper §3.1.2):
/// FP-growth extended to uncertain data. Builds the UFP-tree, then
/// recursively projects conditional subtrees per extension item.
///
/// Because nodes are shared only on (item, probability) equality, the
/// compression of the FP-tree largely evaporates under uncertainty; the
/// paper consistently measures UFP-growth as the slowest and most
/// memory-hungry of the three expected-support miners, and this
/// implementation reproduces that regime faithfully (exact mining over
/// the weighted tree, no candidate-verification rescan needed).
///
/// Mining is task-parallel over the top-level header ranks of the global
/// tree (each rank's conditional projection chain is an independent
/// subproblem), and a dominant rank's conditional tree is recursively
/// split into per-extension child tasks under a work-budget heuristic;
/// outputs and counters are merged in fixed rank order at every level,
/// so results are bit-identical at every `num_threads` / `split_budget`.
class UFPGrowth final : public ExpectedSupportMiner {
 public:
  /// `num_threads`: workers for the per-rank mining tasks; 1 (default)
  /// is the sequential baseline, 0 means all hardware threads.
  /// `split_budget` tunes recursive splitting of dominant conditional
  /// trees: 0 (default) picks an automatic threshold, 1 disables
  /// splitting, larger values split more aggressively (a tree splits
  /// when it holds >= global_nodes / split_budget nodes).
  explicit UFPGrowth(std::size_t num_threads = 1, std::size_t split_budget = 0)
      : num_threads_(num_threads), split_budget_(split_budget) {}

  std::string_view name() const override { return "UFP-growth"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;

 private:
  std::size_t num_threads_;
  std::size_t split_budget_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UFP_GROWTH_H_
