#include "algo/pdu_apriori.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"
#include "prob/poisson.h"

namespace ufim {

Result<MiningResult> PDUApriori::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const double lambda_star = PoissonLambdaForTail(msc, params.pft);

  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [lambda_star](double esup, double) {
    return esup >= lambda_star;
  };
  std::vector<FrequentItemset> found = MineAprioriGeneric(
      view, callbacks, /*decremental_threshold=*/lambda_star,
      &result.counters(), num_threads_, &run_context());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("PDUApriori", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<PDUApriori>(options.num_threads);
                    })

}  // namespace ufim
