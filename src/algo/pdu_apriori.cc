#include "algo/pdu_apriori.h"

#include "algo/apriori_framework.h"
#include "prob/poisson.h"

namespace ufim {

Result<MiningResult> PDUApriori::Mine(const UncertainDatabase& db,
                                      const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(db.size());
  const double lambda_star = PoissonLambdaForTail(msc, params.pft);

  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [lambda_star](double esup, double) {
    return esup >= lambda_star;
  };
  std::vector<FrequentItemset> found = MineAprioriGeneric(
      db, callbacks, /*decremental_threshold=*/lambda_star, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
