#ifndef UFIM_ALGO_UAPRIORI_H_
#define UFIM_ALGO_UAPRIORI_H_

#include "core/miner.h"

namespace ufim {

/// UApriori (Chui, Kao & Hung, PAKDD'07/'08; paper §3.1.1): the uncertain
/// extension of Apriori. Breadth-first generate-and-test with downward-
/// closure pruning; optionally the decremental pruning of [17, 18]
/// (mid-scan deactivation of candidates whose optimistic expected-support
/// bound falls below the threshold).
///
/// The paper's finding: despite Apriori being outclassed in deterministic
/// mining, UApriori is usually the fastest expected-support miner on
/// dense data with high min_esup.
class UApriori final : public ExpectedSupportMiner {
 public:
  /// `decremental_pruning` mirrors the optimized implementation used in
  /// the paper's study; disable it for ablation. `num_threads`
  /// parallelizes candidate counting (see MinerOptions::num_threads);
  /// results are bit-identical at every setting.
  explicit UApriori(bool decremental_pruning = true,
                    std::size_t num_threads = 1)
      : decremental_pruning_(decremental_pruning),
        num_threads_(num_threads) {}

  std::string_view name() const override { return "UApriori"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;

 private:
  bool decremental_pruning_;
  std::size_t num_threads_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UAPRIORI_H_
