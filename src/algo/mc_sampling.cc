#include "algo/mc_sampling.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "common/rng.h"
#include "core/miner_registry.h"

namespace ufim {

Result<MiningResult> MCSampling::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  if (num_samples_ == 0) {
    return Status::InvalidArgument("MCSampling requires num_samples > 0");
  }
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const std::size_t samples = num_samples_;

  MiningResult result;
  const std::uint64_t seed = seed_;
  // Counter-based RNG splitting: every candidate samples from its own
  // stream, seeded off (seed, candidate ordinal). The ordinal is stable
  // across thread counts, so the estimate per candidate — and therefore
  // the whole result — is bit-identical whether tails are evaluated
  // sequentially or in parallel.
  // Bounds mode: stop a candidate's sampling once even an all-hit run of
  // the remaining samples could not lift the estimate above pft. The
  // returned ceiling is <= pft by the very comparison that triggered the
  // exit, and the full run's estimate can only be smaller, so the
  // frequent/infrequent decision — and because infrequent estimates are
  // never reported, the entire result — is identical to a full run.
  // Per-candidate RNG streams make the shortcut invisible to every other
  // candidate.
  const bool early_exit = prefilter_ == PrefilterMode::kBounds;
  const double pft = params.pft;
  auto tail_estimator = [samples, seed, early_exit,
                         pft](const std::vector<double>& probs, std::size_t k,
                              std::size_t ordinal) {
    if (k == 0) return 1.0;
    if (probs.size() < k) return 0.0;
    Rng rng(DeriveStreamSeed(seed, ordinal));
    std::size_t hits = 0;
    for (std::size_t s = 0; s < samples; ++s) {
      // Sample one possible world of this itemset's containments; stop
      // counting as soon as the threshold is reached, and abort when it
      // has become unreachable.
      std::size_t count = 0;
      std::size_t remaining = probs.size();
      for (double p : probs) {
        if (count + remaining < k) break;
        if (rng.Bernoulli(p)) {
          if (++count >= k) break;
        }
        --remaining;
      }
      if (count >= k) ++hits;
      if (early_exit) {
        const double ceiling =
            static_cast<double>(hits + (samples - s - 1)) /
            static_cast<double>(samples);
        if (ceiling <= pft) return ceiling;
      }
    }
    return static_cast<double>(hits) / static_cast<double>(samples);
  };
  ProbabilisticLoopOptions loop;
  loop.use_chernoff = true;  // part of the algorithm in both modes
  loop.prefilter = prefilter_;
  loop.certified_tail = false;  // estimator: bounds may not overrule it
  loop.num_threads = num_threads_;
  loop.parallel_tails = true;
  loop.context = &run_context();
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      view, msc, params.pft, tail_estimator, loop, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("MCSampling", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<MCSampling>(
                          options.mc_samples, options.mc_seed,
                          options.num_threads, options.prefilter);
                    })

}  // namespace ufim
