#include "algo/mc_sampling.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "common/rng.h"
#include "core/miner_registry.h"

namespace ufim {

Result<MiningResult> MCSampling::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  if (num_samples_ == 0) {
    return Status::InvalidArgument("MCSampling requires num_samples > 0");
  }
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const std::size_t samples = num_samples_;

  MiningResult result;
  const std::uint64_t seed = seed_;
  // Counter-based RNG splitting: every candidate samples from its own
  // stream, seeded off (seed, candidate ordinal). The ordinal is stable
  // across thread counts, so the estimate per candidate — and therefore
  // the whole result — is bit-identical whether tails are evaluated
  // sequentially or in parallel.
  auto tail_estimator = [samples, seed](const std::vector<double>& probs,
                                        std::size_t k, std::size_t ordinal) {
    if (k == 0) return 1.0;
    if (probs.size() < k) return 0.0;
    Rng rng(DeriveStreamSeed(seed, ordinal));
    std::size_t hits = 0;
    for (std::size_t s = 0; s < samples; ++s) {
      // Sample one possible world of this itemset's containments; stop
      // counting as soon as the threshold is reached, and abort when it
      // has become unreachable.
      std::size_t count = 0;
      std::size_t remaining = probs.size();
      for (double p : probs) {
        if (count + remaining < k) break;
        if (rng.Bernoulli(p)) {
          if (++count >= k) break;
        }
        --remaining;
      }
      if (count >= k) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(samples);
  };
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      view, msc, params.pft, tail_estimator,
      /*use_chernoff=*/true, &result.counters(), num_threads_,
      /*parallel_tails=*/true);
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("MCSampling", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<MCSampling>(
                          options.mc_samples, options.mc_seed,
                          options.num_threads);
                    })

}  // namespace ufim
