#ifndef UFIM_ALGO_UFP_TREE_H_
#define UFIM_ALGO_UFP_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ufim {

/// The UFP-tree of Leung et al. (PAKDD'08; paper §3.1.2).
///
/// Like an FP-tree, but under uncertainty two transactions may share a
/// node only when both the item *and* its appearance probability are
/// equal (paper, Fig. 1 discussion). With continuous probability
/// assignments almost nothing is shared, which is precisely why the
/// paper finds UFP-growth slow and memory-hungry — this implementation
/// deliberately preserves that structural behaviour.
///
/// Nodes carry aggregated path weights rather than raw counts so that
/// conditional trees stay *exact* (no upper-bound candidates + rescan):
///   w_sum  = Σ over grouped transactions of Pr(prefix-so-far ⊆ T)
///   w2_sum = Σ of the squares (for variance tracking).
/// For the global tree, prefix-so-far is empty: w_sum = transaction
/// count, w2_sum likewise.
///
/// Thread safety: the tree is build-then-read. `InsertPath` requires
/// exclusive access; once construction is done, every const member
/// (`nodes`, `header`, `AncestorPath`, ...) only reads immutable state —
/// there are no lazy caches — so any number of threads may mine a fully
/// built tree concurrently. The parallel pattern-growth driver leans on
/// this: per-rank tasks share the global tree read-only and build their
/// conditional trees task-locally.
class UFPTree {
 public:
  struct Node {
    std::uint32_t rank = 0;  ///< item rank in descending-esup order
    double prob = 0.0;       ///< appearance probability at this node
    double w_sum = 0.0;
    double w2_sum = 0.0;
    std::uint32_t parent = 0;  ///< node index; 0 is the root sentinel
  };

  /// One (rank, probability) step of an insertion path.
  struct PathUnit {
    std::uint32_t rank;
    double prob;
  };

  /// Creates an empty tree over `num_ranks` item ranks.
  explicit UFPTree(std::size_t num_ranks);

  /// Inserts `path` (sorted by ascending rank) carrying aggregate weight
  /// `w` and squared weight `w2`. Every node along the path accumulates
  /// both. Empty paths are ignored.
  void InsertPath(const std::vector<PathUnit>& path, double w, double w2);

  /// Node arena; index 0 is the root sentinel.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Header list: indices of all nodes labelled with `rank`.
  const std::vector<std::uint32_t>& header(std::uint32_t rank) const {
    return headers_[rank];
  }

  std::size_t num_ranks() const { return headers_.size(); }

  /// Total node count excluding the root (a memory-pressure proxy used
  /// by tests to verify the limited-sharing property).
  std::size_t num_nodes() const { return nodes_.size() - 1; }

  /// Reconstructs the ancestor path of `node` (excluding the node itself
  /// and the root), ordered root-first, i.e. ascending rank.
  std::vector<PathUnit> AncestorPath(std::uint32_t node) const;

  /// Allocation-free variant: clears `out` and fills it with the ancestor
  /// path of `node`, root-first. The mining inner loop reuses one buffer
  /// per task instead of allocating per header node.
  void AncestorPathInto(std::uint32_t node, std::vector<PathUnit>& out) const;

 private:
  struct ChildKey {
    std::uint32_t rank;
    std::uint64_t prob_bits;
    friend bool operator==(const ChildKey& a, const ChildKey& b) {
      return a.rank == b.rank && a.prob_bits == b.prob_bits;
    }
  };
  struct ChildKeyHash {
    std::size_t operator()(const ChildKey& k) const {
      std::uint64_t h = k.prob_bits * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(k.rank) + 0x9E3779B9ULL) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  std::vector<Node> nodes_;
  /// children_[n]: map from (rank, prob) to the child node index of n.
  std::vector<std::unordered_map<ChildKey, std::uint32_t, ChildKeyHash>> children_;
  std::vector<std::vector<std::uint32_t>> headers_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_UFP_TREE_H_
