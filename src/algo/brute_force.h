#ifndef UFIM_ALGO_BRUTE_FORCE_H_
#define UFIM_ALGO_BRUTE_FORCE_H_

#include "core/miner.h"

namespace ufim {

/// Depth-first exhaustive reference miners used as ground truth by the
/// test suite. They share no code with the production algorithms beyond
/// the data model, making cross-checks meaningful:
/// support probabilities come from Transaction::ItemsetProbability and
/// tails from the naive O(n²) convolution path rather than the DP/DC/FFT
/// machinery.

/// Exhaustive expected-support miner. The DFS prunes on the (exact)
/// anti-monotonicity of expected support, so it is complete.
class BruteForceExpected final : public ExpectedSupportMiner {
 public:
  BruteForceExpected() = default;

  std::string_view name() const override { return "BruteForceExpected"; }

  Result<MiningResult> MineExpected(
      const FlatView& view,
      const ExpectedSupportParams& params) const override;
};

/// Exhaustive exact probabilistic miner. Per itemset, the support pmf is
/// built by incrementally convolving Bernoulli factors (naive path);
/// pruning uses the anti-monotonicity of the frequent probability.
class BruteForceProbabilistic final : public ProbabilisticMiner {
 public:
  BruteForceProbabilistic() = default;

  std::string_view name() const override { return "BruteForceProbabilistic"; }
  bool is_exact() const override { return true; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;
};

}  // namespace ufim

#endif  // UFIM_ALGO_BRUTE_FORCE_H_
