#include "algo/top_k.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <string>

#include "algo/apriori_framework.h"
#include "common/math_util.h"
#include "core/miner_registry.h"

namespace ufim {

namespace {

/// Sparse containment of the current prefix (transaction ids implicit:
/// tids[i] holds probs[i]).
struct Containment {
  std::vector<TransactionId> tids;
  std::vector<double> probs;
};

struct HeapEntry {
  double esup;
  double sq_sum;
  Itemset itemset;
  // Min-heap on esup so top() is the current k-th best.
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.esup > b.esup;
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

struct SearchContext {
  const FlatView* view = nullptr;
  const RunContext* run = nullptr;
  std::size_t k = 0;
  /// Items in descending expected-support order (exploration order).
  std::vector<ItemId> order;
  /// position of item in `order` — extensions use order positions so the
  /// strongest items are tried first.
  std::vector<std::uint32_t> pos_of;
  MinHeap heap;
  MiningCounters counters;
  /// Shared by every extension join in the DFS: the batch kernel's
  /// buffers grow once and are reused down the whole search.
  JoinScratch scratch;
};

void Offer(SearchContext& ctx, Itemset itemset, double esup, double sq_sum) {
  if (ctx.heap.size() < ctx.k) {
    ctx.heap.push(HeapEntry{esup, sq_sum, std::move(itemset)});
  } else if (esup > ctx.heap.top().esup) {
    ctx.heap.pop();
    ctx.heap.push(HeapEntry{esup, sq_sum, std::move(itemset)});
  }
}

double Bound(const SearchContext& ctx) {
  return ctx.heap.size() < ctx.k ? -1.0 : ctx.heap.top().esup;
}

/// Extends `prefix` (whose containment is given) with every item at an
/// order-position greater than `last_pos`. Extension containments come
/// from merge-joining the prefix tids with the item's posting arrays.
void Dfs(SearchContext& ctx, const Itemset& prefix, const Containment& cont,
         std::uint32_t last_pos) {
  const FlatView& view = *ctx.view;
  for (std::uint32_t p = last_pos + 1; p < ctx.order.size(); ++p) {
    // Checkpoint: one per attempted DFS extension. The search is serial
    // and every container is owned by this call chain, so an abort here
    // unwinds cleanly.
    PollRunContext(ctx.run);
    const ItemId item = ctx.order[p];
    ++ctx.counters.candidates_generated;
    // Batch join: one vectorized intersection, then a gather over the
    // match columns (materialized into `ext` before the recursion below
    // reuses the scratch).
    const FlatView::ListMatches matches =
        view.JoinWithPostings(cont.tids, item, ctx.scratch);
    // Itemsets that never co-occur are not results.
    if (matches.size() == 0) continue;
    Containment ext;
    ext.tids.reserve(matches.size());
    ext.probs.reserve(matches.size());
    KahanSum esup;
    double sq_sum = 0.0;
    for (std::size_t k = 0; k < matches.size(); ++k) {
      const std::size_t i = matches.seq_indices[k];
      const double joint = cont.probs[i] * matches.probs[k];
      ext.tids.push_back(cont.tids[i]);
      ext.probs.push_back(joint);
      esup.Add(joint);
      sq_sum += joint * joint;
    }
    // Anti-monotonicity: nothing below this node can beat the bound.
    if (esup.value() <= Bound(ctx)) continue;
    Itemset extended = prefix.Union(item);
    Offer(ctx, extended, esup.value(), sq_sum);
    Dfs(ctx, extended, ext, p);
  }
}

}  // namespace

Result<MiningResult> MineTopKExpected(const FlatView& view, std::size_t k,
                                      const RunContext* context) {
  if (k == 0) return Status::InvalidArgument("top-k mining requires k > 0");
  SearchContext ctx;
  ctx.view = &view;
  ctx.run = context;
  ctx.k = k;

  std::vector<ItemStats> stats = CollectItemStats(view);
  std::sort(stats.begin(), stats.end(), [](const ItemStats& a, const ItemStats& b) {
    if (a.esup != b.esup) return a.esup > b.esup;
    return a.item < b.item;
  });
  ctx.order.reserve(stats.size());
  for (const ItemStats& is : stats) ctx.order.push_back(is.item);

  // Seed the heap with the items themselves (tightens the bound before
  // any pair is evaluated), then run the guided DFS per starting item.
  for (const ItemStats& is : stats) {
    ++ctx.counters.candidates_generated;
    Offer(ctx, Itemset{is.item}, is.esup, is.sq_sum);
  }
  for (std::uint32_t p = 0; p < ctx.order.size(); ++p) {
    PollRunContext(ctx.run);  // checkpoint: one per starting item
    const ItemId item = ctx.order[p];
    if (stats[p].esup <= Bound(ctx)) continue;  // no extension can qualify
    Containment cont;
    view.CopyPostings(item, cont.tids, cont.probs);
    Dfs(ctx, Itemset{item}, cont, p);
  }

  // Drain the heap into descending order.
  std::vector<HeapEntry> ranked;
  while (!ctx.heap.empty()) {
    ranked.push_back(ctx.heap.top());
    ctx.heap.pop();
  }
  std::reverse(ranked.begin(), ranked.end());
  MiningResult result;
  result.counters() = ctx.counters;
  for (HeapEntry& e : ranked) {
    FrequentItemset fi;
    fi.itemset = std::move(e.itemset);
    fi.expected_support = e.esup;
    fi.variance = e.esup - e.sq_sum;
    result.Add(std::move(fi));
  }
  return result;
}

Result<MiningResult> MineTopKExpected(const UncertainDatabase& db,
                                      std::size_t k,
                                      const RunContext* context) {
  return MineTopKExpected(FlatView(db), k, context);
}

Result<MiningResult> TopKMiner::Mine(const FlatView& view,
                                     const MiningTask& task) const {
  const auto* params = std::get_if<TopKParams>(&task);
  if (params == nullptr) {
    return Status::InvalidArgument("TopK does not support " +
                                   std::string(TaskKindName(task)) + " tasks");
  }
  UFIM_RETURN_IF_ERROR(params->Validate());
  // Overrides the variant dispatcher directly, so it needs its own abort
  // guard (the typed entry points' guards never run for this miner).
  return internal::GuardMine(
      [&] { return MineTopKExpected(view, params->k, &run_context()); });
}

UFIM_REGISTER_MINER("TopK", TaskFamily::kTopK,
                    /*production=*/true,
                    [](const MinerOptions&) {
                      return std::make_unique<TopKMiner>();
                    })

}  // namespace ufim
