#include "algo/uh_mine.h"

#include "algo/uh_struct.h"

namespace ufim {

Result<MiningResult> UHMine::Mine(const UncertainDatabase& db,
                                  const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold = params.min_esup * static_cast<double>(db.size());
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [threshold](double esup, double) {
    return esup >= threshold;
  };
  UHStructEngine engine(db, std::move(hooks));
  MiningResult result;
  std::vector<FrequentItemset> found = engine.Mine(&result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
