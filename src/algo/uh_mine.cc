#include "algo/uh_mine.h"

#include <memory>

#include "algo/uh_struct.h"
#include "core/miner_registry.h"

namespace ufim {

Result<MiningResult> UHMine::MineExpected(
    const FlatView& view, const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold =
      params.min_esup * static_cast<double>(view.num_transactions());
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [threshold](double esup, double) {
    return esup >= threshold;
  };
  UHStructEngine engine(view, std::move(hooks));
  MiningResult result;
  std::vector<FrequentItemset> found =
      engine.Mine(&result.counters(), num_threads_, split_budget_,
                  &run_context());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("UH-Mine", TaskFamily::kExpectedSupport,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<UHMine>(options.num_threads,
                                                      options.split_budget);
                    })

}  // namespace ufim
