#include "algo/nduh_mine.h"

#include "algo/uh_struct.h"
#include "prob/normal.h"

namespace ufim {

Result<MiningResult> NDUHMine::Mine(const UncertainDatabase& db,
                                    const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(db.size());
  const double pft = params.pft;
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [msc, pft](double esup, double sq_sum) {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc) > pft;
  };
  hooks.frequent_probability = [msc](double esup,
                                     double sq_sum) -> std::optional<double> {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc);
  };
  UHStructEngine engine(db, std::move(hooks));
  MiningResult result;
  std::vector<FrequentItemset> found = engine.Mine(&result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
