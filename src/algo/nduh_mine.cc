#include "algo/nduh_mine.h"

#include <memory>

#include "algo/uh_struct.h"
#include "core/miner_registry.h"
#include "prob/normal.h"

namespace ufim {

Result<MiningResult> NDUHMine::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const double pft = params.pft;
  UHStructEngine::Hooks hooks;
  hooks.is_frequent = [msc, pft](double esup, double sq_sum) {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc) > pft;
  };
  hooks.frequent_probability = [msc](double esup,
                                     double sq_sum) -> std::optional<double> {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc);
  };
  UHStructEngine engine(view, std::move(hooks));
  MiningResult result;
  std::vector<FrequentItemset> found =
      engine.Mine(&result.counters(), num_threads_, split_budget_,
                  &run_context());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("NDUH-Mine", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<NDUHMine>(options.num_threads,
                                                        options.split_budget);
                    })

}  // namespace ufim
