#ifndef UFIM_ALGO_TOP_K_H_
#define UFIM_ALGO_TOP_K_H_

#include <cstddef>

#include "core/flat_view.h"
#include "core/miner.h"

namespace ufim {

/// Threshold-free mining: the k itemsets with the highest expected
/// support. Practitioners rarely know a good min_esup up front (the
/// paper's sweeps exist precisely because results are threshold-
/// sensitive); top-k inverts the contract.
///
/// Depth-first search with a dynamic bound: the k-th best expected
/// support seen so far prunes subtrees, which is exact because expected
/// support is anti-monotone. Items are explored in descending expected-
/// support order so the bound tightens early.
///
/// Returns fewer than k itemsets only when fewer exist. Results carry
/// (esup, variance) like every other miner and are sorted by descending
/// expected support. `context` (optional) is polled once per DFS
/// extension; a tripped token unwinds with RunAbortedError (callers going
/// through `TopKMiner` get it converted to a Status).
Result<MiningResult> MineTopKExpected(const FlatView& view, std::size_t k,
                                      const RunContext* context = nullptr);

/// Convenience overload that builds a FlatView first.
Result<MiningResult> MineTopKExpected(const UncertainDatabase& db,
                                      std::size_t k,
                                      const RunContext* context = nullptr);

/// The `Miner` facade over MineTopKExpected: answers `TopKParams` tasks,
/// registered as "TopK" so the CLI, experiment runner and benches reach
/// threshold-free mining through the same registry path as every other
/// algorithm.
class TopKMiner final : public Miner {
 public:
  TopKMiner() = default;

  std::string_view name() const override { return "TopK"; }
  bool Supports(const MiningTask& task) const override {
    return std::holds_alternative<TopKParams>(task);
  }
  /// Exact: the dynamic bound prunes only subtrees that provably cannot
  /// enter the top k.
  bool is_exact() const override { return true; }

  Result<MiningResult> Mine(const FlatView& view,
                            const MiningTask& task) const override;
  using Miner::Mine;
};

}  // namespace ufim

#endif  // UFIM_ALGO_TOP_K_H_
