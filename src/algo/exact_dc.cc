#include "algo/exact_dc.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"
#include "prob/poisson_binomial.h"

namespace ufim {

Result<MiningResult> ExactDC::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const std::size_t fft_threshold = fft_threshold_;
  MiningResult result;
  ProbabilisticLoopOptions loop;
  loop.use_chernoff = use_chernoff_;
  loop.prefilter = prefilter_;
  loop.num_threads = num_threads_;
  loop.parallel_tails = true;
  loop.context = &run_context();
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      view, msc, params.pft,
      [fft_threshold](const std::vector<double>& probs, std::size_t k,
                      std::size_t /*ordinal*/) {
        return PoissonBinomialTailDC(probs, k, fft_threshold);
      },
      loop, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("DCNB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDC>(
                          /*use_chernoff_pruning=*/false,
                          options.dc_fft_threshold, options.num_threads,
                          options.prefilter);
                    })

UFIM_REGISTER_MINER("DCB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDC>(
                          /*use_chernoff_pruning=*/true,
                          options.dc_fft_threshold, options.num_threads,
                          options.prefilter);
                    })

}  // namespace ufim
