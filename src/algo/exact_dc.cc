#include "algo/exact_dc.h"

#include "algo/apriori_framework.h"
#include "prob/poisson_binomial.h"

namespace ufim {

Result<MiningResult> ExactDC::Mine(const UncertainDatabase& db,
                                   const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(db.size());
  const std::size_t fft_threshold = fft_threshold_;
  MiningResult result;
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      db, msc, params.pft,
      [fft_threshold](const std::vector<double>& probs, std::size_t k) {
        return PoissonBinomialTailDC(probs, k, fft_threshold);
      },
      use_chernoff_, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
