#include "algo/ufp_tree.h"

#include <algorithm>
#include <bit>

namespace ufim {

UFPTree::UFPTree(std::size_t num_ranks) : headers_(num_ranks) {
  nodes_.push_back(Node{});      // root sentinel at index 0
  children_.emplace_back();      // root's child map
}

void UFPTree::InsertPath(const std::vector<PathUnit>& path, double w, double w2) {
  std::uint32_t cur = 0;
  for (const PathUnit& unit : path) {
    const ChildKey key{unit.rank, std::bit_cast<std::uint64_t>(unit.prob)};
    auto it = children_[cur].find(key);
    std::uint32_t next;
    if (it == children_[cur].end()) {
      next = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{unit.rank, unit.prob, 0.0, 0.0, cur});
      children_.emplace_back();
      children_[cur].emplace(key, next);
      headers_[unit.rank].push_back(next);
    } else {
      next = it->second;
    }
    nodes_[next].w_sum += w;
    nodes_[next].w2_sum += w2;
    cur = next;
  }
}

std::vector<UFPTree::PathUnit> UFPTree::AncestorPath(std::uint32_t node) const {
  std::vector<PathUnit> path;
  AncestorPathInto(node, path);
  return path;
}

void UFPTree::AncestorPathInto(std::uint32_t node,
                               std::vector<PathUnit>& out) const {
  out.clear();
  for (std::uint32_t cur = nodes_[node].parent; cur != 0;
       cur = nodes_[cur].parent) {
    out.push_back(PathUnit{nodes_[cur].rank, nodes_[cur].prob});
  }
  std::reverse(out.begin(), out.end());
}

}  // namespace ufim
