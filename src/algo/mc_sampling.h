#ifndef UFIM_ALGO_MC_SAMPLING_H_
#define UFIM_ALGO_MC_SAMPLING_H_

#include <cstdint>

#include "core/miner.h"

namespace ufim {

/// Monte-Carlo sampling miner (Calders, Garboni & Goethals, PAKDD'10 —
/// the paper's reference [11]): estimates the frequent probability of
/// each candidate by sampling possible worlds of its containment-
/// probability vector. An unbiased estimator with standard error
/// <= 1/(2*sqrt(num_samples)); with the default 1024 samples the
/// estimate is within ~±0.03 at 95% confidence.
///
/// Included as the fourth approximate method the paper's taxonomy
/// mentions but does not benchmark; `bench/ablation_sampling`
/// contrasts it with the moment-based approximations.
class MCSampling final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes candidate counting *and* the tail
  /// sampling itself: each candidate draws from a private RNG stream
  /// derived from (seed, stable candidate ordinal) — see
  /// DeriveStreamSeed — so concurrent evaluation consumes no shared
  /// state and results are bit-identical at every thread count.
  explicit MCSampling(std::size_t num_samples = 1024,
                      std::uint64_t seed = 0xC0FFEE,
                      std::size_t num_threads = 1)
      : num_samples_(num_samples), seed_(seed), num_threads_(num_threads) {}

  std::string_view name() const override { return "MCSampling"; }
  bool is_exact() const override { return false; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  std::size_t num_samples_;
  std::uint64_t seed_;
  std::size_t num_threads_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_MC_SAMPLING_H_
