#ifndef UFIM_ALGO_MC_SAMPLING_H_
#define UFIM_ALGO_MC_SAMPLING_H_

#include <cstdint>

#include "core/miner.h"

namespace ufim {

/// Monte-Carlo sampling miner (Calders, Garboni & Goethals, PAKDD'10 —
/// the paper's reference [11]): estimates the frequent probability of
/// each candidate by sampling possible worlds of its containment-
/// probability vector. An unbiased estimator with standard error
/// <= 1/(2*sqrt(num_samples)); with the default 1024 samples the
/// estimate is within ~±0.03 at 95% confidence.
///
/// Included as the fourth approximate method the paper's taxonomy
/// mentions but does not benchmark; `bench/ablation_sampling`
/// contrasts it with the moment-based approximations.
class MCSampling final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes candidate counting *and* the tail
  /// sampling itself: each candidate draws from a private RNG stream
  /// derived from (seed, stable candidate ordinal) — see
  /// DeriveStreamSeed — so concurrent evaluation consumes no shared
  /// state and results are bit-identical at every thread count.
  /// `prefilter` == kBounds: because the tail is an *estimate*, analytic
  /// bounds on the true tail may not overrule it (they could disagree
  /// with the estimator and change the result set), so the framework
  /// cascade stays off. Instead the sampler stops early once the
  /// remaining samples can no longer lift the estimate above pft — a
  /// decision-identical shortcut, so results still match kOff exactly.
  explicit MCSampling(std::size_t num_samples = 1024,
                      std::uint64_t seed = 0xC0FFEE,
                      std::size_t num_threads = 1,
                      PrefilterMode prefilter = PrefilterMode::kOff)
      : num_samples_(num_samples),
        seed_(seed),
        num_threads_(num_threads),
        prefilter_(prefilter) {}

  std::string_view name() const override { return "MCSampling"; }
  bool is_exact() const override { return false; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  std::size_t num_samples_;
  std::uint64_t seed_;
  std::size_t num_threads_;
  PrefilterMode prefilter_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_MC_SAMPLING_H_
