#include "algo/uh_struct.h"

#include <algorithm>

#include "algo/apriori_framework.h"

namespace ufim {

UHStructEngine::UHStructEngine(const FlatView& view, Hooks hooks)
    : hooks_(std::move(hooks)) {
  // Item-level pass: moments off the view's cached arrays, filter by the
  // predicate, order by descending expected support (the paper's
  // head-table order).
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<ItemStats> kept;
  kept.reserve(stats.size());
  for (const ItemStats& is : stats) {
    if (hooks_.is_frequent(is.esup, is.sq_sum)) kept.push_back(is);
  }
  std::sort(kept.begin(), kept.end(), [](const ItemStats& a, const ItemStats& b) {
    if (a.esup != b.esup) return a.esup > b.esup;
    return a.item < b.item;
  });
  std::vector<std::uint32_t> item_to_rank(view.num_items(), UINT32_MAX);
  rank_to_item_.reserve(kept.size());
  for (std::size_t r = 0; r < kept.size(); ++r) {
    rank_to_item_.push_back(kept[r].item);
    item_to_rank[kept[r].item] = static_cast<std::uint32_t>(r);
  }

  // Project transactions onto the kept items, re-labelled by rank and
  // sorted by rank (so "extensions after position" enumerates each
  // itemset exactly once). Reads the view's flat horizontal arrays.
  txn_offsets_.push_back(0);
  std::vector<Unit> scratch;
  for (TransactionId ti = view.begin_tid(); ti < view.end_tid(); ++ti) {
    scratch.clear();
    for (const ProbItem& u : view.TransactionUnits(ti)) {
      const std::uint32_t rank = item_to_rank[u.item];
      if (rank != UINT32_MAX) scratch.push_back(Unit{rank, u.prob});
    }
    if (scratch.empty()) continue;  // contributes to no frequent itemset
    std::sort(scratch.begin(), scratch.end(),
              [](const Unit& a, const Unit& b) { return a.rank < b.rank; });
    units_.insert(units_.end(), scratch.begin(), scratch.end());
    txn_offsets_.push_back(static_cast<std::uint32_t>(units_.size()));
  }

  esup_acc_.assign(rank_to_item_.size(), 0.0);
  sq_acc_.assign(rank_to_item_.size(), 0.0);
  slot_of_.assign(rank_to_item_.size(), UINT32_MAX);
}

UHStructEngine::UHStructEngine(const UncertainDatabase& db, Hooks hooks)
    : UHStructEngine(FlatView(db), std::move(hooks)) {}

FrequentItemset UHStructEngine::MakeResult(
    const std::vector<std::uint32_t>& prefix_ranks, double esup,
    double sq_sum) const {
  std::vector<ItemId> ids;
  ids.reserve(prefix_ranks.size());
  for (std::uint32_t r : prefix_ranks) ids.push_back(rank_to_item_[r]);
  FrequentItemset fi;
  fi.itemset = Itemset(std::move(ids));
  fi.expected_support = esup;
  fi.variance = esup - sq_sum;
  if (hooks_.frequent_probability) {
    fi.frequent_probability = hooks_.frequent_probability(esup, sq_sum);
  }
  return fi;
}

std::vector<FrequentItemset> UHStructEngine::Mine(MiningCounters* counters) {
  std::vector<FrequentItemset> out;
  if (counters != nullptr) ++counters->database_scans;

  // Level-1 results and the root occurrences (whole projected database).
  const std::size_t n_ranks = rank_to_item_.size();
  if (n_ranks == 0) return out;

  // Item-level moments per rank (recomputed from the projection — cheap
  // and keeps the engine self-contained).
  for (std::size_t t = 0; t + 1 < txn_offsets_.size(); ++t) {
    for (std::uint32_t u = txn_offsets_[t]; u < txn_offsets_[t + 1]; ++u) {
      esup_acc_[units_[u].rank] += units_[u].prob;
      sq_acc_[units_[u].rank] += units_[u].prob * units_[u].prob;
    }
  }
  std::vector<std::pair<double, double>> item_moments(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    item_moments[r] = {esup_acc_[r], sq_acc_[r]};
    esup_acc_[r] = 0.0;
    sq_acc_[r] = 0.0;
  }

  // For each frequent item (every rank, by construction), emit and grow.
  std::vector<std::uint32_t> prefix;
  for (std::uint32_t r = 0; r < n_ranks; ++r) {
    if (counters != nullptr) ++counters->candidates_generated;
    prefix.assign(1, r);
    out.push_back(MakeResult(prefix, item_moments[r].first, item_moments[r].second));
    // Occurrences of {r}: every transaction containing rank r.
    std::vector<Occurrence> occurrences;
    for (std::size_t t = 0; t + 1 < txn_offsets_.size(); ++t) {
      for (std::uint32_t u = txn_offsets_[t]; u < txn_offsets_[t + 1]; ++u) {
        if (units_[u].rank == r) {
          occurrences.push_back(Occurrence{static_cast<std::uint32_t>(t), u + 1,
                                           units_[u].prob});
          break;
        }
        if (units_[u].rank > r) break;  // ranks are sorted within a txn
      }
    }
    Recurse(prefix, occurrences, out, counters);
  }
  return out;
}

void UHStructEngine::Recurse(std::vector<std::uint32_t>& prefix_ranks,
                             const std::vector<Occurrence>& occurrences,
                             std::vector<FrequentItemset>& out,
                             MiningCounters* counters) {
  // Pass 1: head-table moments for every extension rank.
  std::vector<std::uint32_t> touched;
  for (const Occurrence& occ : occurrences) {
    const std::uint32_t end = txn_offsets_[occ.txn + 1];
    for (std::uint32_t u = occ.next_start; u < end; ++u) {
      const std::uint32_t rank = units_[u].rank;
      const double p = occ.prob * units_[u].prob;
      if (esup_acc_[rank] == 0.0 && sq_acc_[rank] == 0.0) touched.push_back(rank);
      esup_acc_[rank] += p;
      sq_acc_[rank] += p * p;
    }
  }
  // Collect frequent extensions, then reset the scratch accumulators
  // before recursing (they are shared across levels).
  struct Extension {
    std::uint32_t rank;
    double esup;
    double sq_sum;
    std::vector<Occurrence> occurrences;
  };
  std::vector<Extension> frequent;
  for (std::uint32_t rank : touched) {
    if (counters != nullptr) ++counters->candidates_generated;
    if (hooks_.is_frequent(esup_acc_[rank], sq_acc_[rank])) {
      frequent.push_back(Extension{rank, esup_acc_[rank], sq_acc_[rank], {}});
    }
    esup_acc_[rank] = 0.0;
    sq_acc_[rank] = 0.0;
  }
  if (frequent.empty()) return;
  std::sort(frequent.begin(), frequent.end(),
            [](const Extension& a, const Extension& b) { return a.rank < b.rank; });

  // Pass 2: one more walk builds the head-table occurrence lists for all
  // frequent extensions simultaneously (H-Mine's head table). `slot_of_`
  // maps rank -> index into `frequent`, UINT32_MAX elsewhere.
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    slot_of_[frequent[i].rank] = static_cast<std::uint32_t>(i);
  }
  for (const Occurrence& occ : occurrences) {
    const std::uint32_t end = txn_offsets_[occ.txn + 1];
    for (std::uint32_t u = occ.next_start; u < end; ++u) {
      const std::uint32_t slot = slot_of_[units_[u].rank];
      if (slot == UINT32_MAX) continue;
      frequent[slot].occurrences.push_back(
          Occurrence{occ.txn, u + 1, occ.prob * units_[u].prob});
    }
  }
  for (const Extension& ext : frequent) slot_of_[ext.rank] = UINT32_MAX;

  for (Extension& ext : frequent) {
    prefix_ranks.push_back(ext.rank);
    out.push_back(MakeResult(prefix_ranks, ext.esup, ext.sq_sum));
    Recurse(prefix_ranks, ext.occurrences, out, counters);
    // Release this branch's head table before moving to the next sibling
    // (H-Mine keeps memory proportional to the recursion path).
    ext.occurrences.clear();
    ext.occurrences.shrink_to_fit();
    prefix_ranks.pop_back();
  }
}

}  // namespace ufim
