#include "algo/uh_struct.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "algo/apriori_framework.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace ufim {

/// Shared (per Mine call) state for recursive task splitting: the split
/// policy plus a pool of Scratch instances for split-off child tasks.
/// Scratch is expensive relative to a small subtree (three rank-sized
/// arrays), so children lease a clean instance from the pool and return
/// it instead of allocating their own; Recurse restores clean state
/// before returning, which is exactly the invariant the pool needs.
struct UHStructEngine::MineState {
  std::size_t max_workers = 0;      ///< participation cap per nested group
  std::size_t min_split_units = 0;  ///< head-table units to justify a split
  std::size_t num_ranks = 0;

  /// Guards the scratch free list — the only state split-off child
  /// tasks share (each leased Scratch is thread-private while out).
  Mutex mu;
  std::vector<std::unique_ptr<Scratch>> pool UFIM_GUARDED_BY(mu);

  std::unique_ptr<Scratch> AcquireScratch() {
    {
      MutexLock lock(mu);
      if (!pool.empty()) {
        std::unique_ptr<Scratch> scratch = std::move(pool.back());
        pool.pop_back();
        return scratch;
      }
    }
    return std::make_unique<Scratch>(num_ranks);
  }

  void ReleaseScratch(std::unique_ptr<Scratch> scratch) {
    MutexLock lock(mu);
    pool.push_back(std::move(scratch));
  }
};

UHStructEngine::UHStructEngine(const FlatView& view, Hooks hooks)
    : hooks_(std::move(hooks)) {
  // Item-level pass: moments off the view's cached arrays, filter by the
  // predicate, order by descending expected support (the paper's
  // head-table order).
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<ItemStats> kept;
  kept.reserve(stats.size());
  for (const ItemStats& is : stats) {
    if (hooks_.is_frequent(is.esup, is.sq_sum)) kept.push_back(is);
  }
  std::sort(kept.begin(), kept.end(), [](const ItemStats& a, const ItemStats& b) {
    if (a.esup != b.esup) return a.esup > b.esup;
    return a.item < b.item;
  });
  rank_to_item_.reserve(kept.size());
  for (const ItemStats& is : kept) rank_to_item_.push_back(is.item);

  // Project transactions onto the kept items, re-labelled by rank and
  // ascending by rank (so "extensions after position" enumerates each
  // itemset exactly once). Built vertically off the kept items' posting
  // arrays — reads only the kept units and needs no per-row sort.
  // Transactions with no kept unit keep an empty row; they contribute
  // to no prefix and cost nothing to skip.
  FlatView::RankProjection projection = view.ProjectOntoRanks(rank_to_item_);
  txn_offsets_ = std::move(projection.txn_offsets);
  units_ = std::move(projection.units);
}

UHStructEngine::UHStructEngine(const UncertainDatabase& db, Hooks hooks)
    : UHStructEngine(FlatView(db), std::move(hooks)) {}

FrequentItemset UHStructEngine::MakeResult(
    const std::vector<std::uint32_t>& prefix_ranks, double esup,
    double sq_sum) const {
  std::vector<ItemId> ids;
  ids.reserve(prefix_ranks.size());
  for (std::uint32_t r : prefix_ranks) ids.push_back(rank_to_item_[r]);
  FrequentItemset fi;
  fi.itemset = Itemset(std::move(ids));
  fi.expected_support = esup;
  fi.variance = esup - sq_sum;
  if (hooks_.frequent_probability) {
    fi.frequent_probability = hooks_.frequent_probability(esup, sq_sum);
  }
  return fi;
}

std::vector<FrequentItemset> UHStructEngine::Mine(
    MiningCounters* counters, std::size_t num_threads,
    std::size_t split_budget, const RunContext* context) const {
  std::vector<FrequentItemset> out;
  if (counters != nullptr) ++counters->database_scans;

  // Level-1 results and the root occurrences (whole projected database).
  const std::size_t n_ranks = rank_to_item_.size();
  if (n_ranks == 0) return out;

  // Item-level moments per rank (recomputed from the projection — cheap
  // and keeps the engine self-contained).
  std::vector<std::pair<double, double>> item_moments(n_ranks, {0.0, 0.0});
  for (std::size_t t = 0; t + 1 < txn_offsets_.size(); ++t) {
    for (std::uint32_t u = txn_offsets_[t]; u < txn_offsets_[t + 1]; ++u) {
      item_moments[units_[u].rank].first += units_[u].prob;
      item_moments[units_[u].rank].second += units_[u].prob * units_[u].prob;
    }
  }

  // Root head table for every rank in one batched pass over the
  // projection (the old shape rescanned every transaction once per
  // rank — O(ranks × units)). A rank occurs at most once per
  // transaction, so each unit is the root occurrence of its own rank.
  // Kept as a CSR of unit *positions* (4 bytes per unit, vs a
  // materialized Occurrence table at 16) so the peak stays close to
  // the projection itself; each rank's occurrence list is expanded
  // just before its recursion and freed right after. Positions ascend
  // within a bucket, so every expanded list ascends by transaction.
  std::vector<std::uint32_t> root_offsets(n_ranks + 1, 0);
  for (const Unit& u : units_) ++root_offsets[u.rank + 1];
  for (std::size_t r = 0; r < n_ranks; ++r) root_offsets[r + 1] += root_offsets[r];
  std::vector<std::uint32_t> root_pos(units_.size());
  {
    std::vector<std::uint32_t> fill(root_offsets.begin(),
                                    root_offsets.end() - 1);
    for (std::uint32_t u = 0; u < units_.size(); ++u) {
      root_pos[fill[units_[u].rank]++] = u;
    }
  }
  // Row of unit `u`: the last row starting at or before it (empty rows
  // share offsets; upper_bound skips past the ties).
  auto txn_of = [this](std::uint32_t u) {
    return static_cast<std::uint32_t>(
        std::upper_bound(txn_offsets_.begin(), txn_offsets_.end(), u) -
        txn_offsets_.begin() - 1);
  };

  // For each frequent item (every rank, by construction), emit and grow —
  // one dynamically-claimed task per top-level rank (prefix subtree costs
  // are skewed, so static chunks would convoy behind the deep ranks).
  // Tasks write only their own per-rank output/counter slots and carry
  // per-worker scratch; the merge below walks ascending rank — the
  // sequential loop's order — so results and counters are bit-identical
  // at every thread count.
  const std::size_t workers = ParallelWorkerCount(n_ranks, num_threads);
  std::vector<Scratch> scratch(workers, Scratch(n_ranks));
  std::vector<std::vector<FrequentItemset>> per_rank(n_ranks);
  std::vector<MiningCounters> per_rank_counters(n_ranks);
  // Split policy: 0 = auto (divisor 32, floored so shallow subtrees
  // never pay the spawn + prefix-copy overhead), 1 = off, B > 1 = split
  // exactly when a prefix's head table holds >= units / B occurrence
  // entries (an explicit budget is a request for that aggressiveness,
  // so no floor).
  const std::size_t threads =
      num_threads == 0 ? HardwareThreads() : num_threads;
  MineState state;
  MineState* split = nullptr;
  if (threads > 1 && split_budget != 1) {
    constexpr std::size_t kMinSplitUnitsFloor = 256;
    state.max_workers = threads;
    state.min_split_units =
        split_budget == 0
            ? std::max(kMinSplitUnitsFloor, units_.size() / 32)
            : std::max<std::size_t>(1, units_.size() / split_budget);
    state.num_ranks = n_ranks;
    split = &state;
  }
  ParallelForDynamic(
      n_ranks, num_threads, [&](std::size_t rank, std::size_t worker) {
        const std::uint32_t r = static_cast<std::uint32_t>(rank);
        std::vector<FrequentItemset>& rank_out = per_rank[r];
        MiningCounters& rank_counters = per_rank_counters[r];
        ++rank_counters.candidates_generated;
        std::vector<std::uint32_t> prefix(1, r);
        rank_out.push_back(
            MakeResult(prefix, item_moments[r].first, item_moments[r].second));
        std::vector<Occurrence> occurrences;
        occurrences.reserve(root_offsets[r + 1] - root_offsets[r]);
        for (std::uint32_t k = root_offsets[r]; k < root_offsets[r + 1]; ++k) {
          const std::uint32_t u = root_pos[k];
          occurrences.push_back(Occurrence{txn_of(u), u + 1, units_[u].prob});
        }
        Recurse(prefix, occurrences, scratch[worker], rank_out,
                &rank_counters, split, context);
      },
      context);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    if (counters != nullptr) *counters += per_rank_counters[r];
    out.insert(out.end(), std::make_move_iterator(per_rank[r].begin()),
               std::make_move_iterator(per_rank[r].end()));
  }
  return out;
}

void UHStructEngine::Recurse(std::vector<std::uint32_t>& prefix_ranks,
                             const std::vector<Occurrence>& occurrences,
                             Scratch& scratch,
                             std::vector<FrequentItemset>& out,
                             MiningCounters* counters, MineState* state,
                             const RunContext* context) const {
  // Checkpoint: one per prefix subtree. Entry is a scratch-clean point
  // (the caller resets accumulators and restores the slot map before
  // every recursive call), so an abort here unwinds without leaving a
  // dirty Scratch behind for the pool.
  PollRunContext(context);
  // Pass 1: head-table moments for every extension rank.
  std::vector<std::uint32_t> touched;
  for (const Occurrence& occ : occurrences) {
    const std::uint32_t end = txn_offsets_[occ.txn + 1];
    for (std::uint32_t u = occ.next_start; u < end; ++u) {
      const std::uint32_t rank = units_[u].rank;
      const double p = occ.prob * units_[u].prob;
      if (scratch.esup_acc[rank] == 0.0 && scratch.sq_acc[rank] == 0.0) {
        touched.push_back(rank);
      }
      scratch.esup_acc[rank] += p;
      scratch.sq_acc[rank] += p * p;
    }
  }
  // Collect frequent extensions, then reset the scratch accumulators
  // before recursing (they are shared across levels of this task).
  struct Extension {
    std::uint32_t rank;
    double esup;
    double sq_sum;
    std::vector<Occurrence> occurrences;
  };
  std::vector<Extension> frequent;
  for (std::uint32_t rank : touched) {
    if (counters != nullptr) ++counters->candidates_generated;
    if (hooks_.is_frequent(scratch.esup_acc[rank], scratch.sq_acc[rank])) {
      frequent.push_back(
          Extension{rank, scratch.esup_acc[rank], scratch.sq_acc[rank], {}});
    }
    scratch.esup_acc[rank] = 0.0;
    scratch.sq_acc[rank] = 0.0;
  }
  if (frequent.empty()) return;
  std::sort(frequent.begin(), frequent.end(),
            [](const Extension& a, const Extension& b) { return a.rank < b.rank; });

  // Pass 2: one more walk builds the head-table occurrence lists for all
  // frequent extensions simultaneously (H-Mine's head table).
  // `scratch.slot_of` maps rank -> index into `frequent`, UINT32_MAX
  // elsewhere.
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    scratch.slot_of[frequent[i].rank] = static_cast<std::uint32_t>(i);
  }
  for (const Occurrence& occ : occurrences) {
    const std::uint32_t end = txn_offsets_[occ.txn + 1];
    for (std::uint32_t u = occ.next_start; u < end; ++u) {
      const std::uint32_t slot = scratch.slot_of[units_[u].rank];
      if (slot == UINT32_MAX) continue;
      frequent[slot].occurrences.push_back(
          Occurrence{occ.txn, u + 1, occ.prob * units_[u].prob});
    }
  }
  for (const Extension& ext : frequent) scratch.slot_of[ext.rank] = UINT32_MAX;

  // Work-budget heuristic: a dominant head table (measured by its total
  // occurrence-list size, the cost driver of everything below) is worth
  // splitting its sibling extensions into child tasks; small ones stay
  // on the serial path. Each child emits into a pre-indexed slot with
  // its own prefix copy, leased scratch and private counters, and the
  // merge walks ascending extension order — exactly the serial sibling
  // loop's emission order — so results and counters are bit-identical
  // to the serial run at every thread count and budget.
  std::size_t head_units = 0;
  for (const Extension& ext : frequent) head_units += ext.occurrences.size();
  if (state != nullptr && frequent.size() > 1 &&
      head_units >= state->min_split_units) {
    const std::size_t n_ext = frequent.size();
    std::vector<std::vector<FrequentItemset>> child_out(n_ext);
    std::vector<MiningCounters> child_counters(n_ext);
    TaskGroup group(state->max_workers, context);
    for (std::size_t e = 0; e < n_ext; ++e) {
      group.Spawn([this, &frequent, &prefix_ranks, &child_out, &child_counters,
                   state, context, e] {
        Extension& ext = frequent[e];
        std::vector<std::uint32_t> prefix = prefix_ranks;
        prefix.push_back(ext.rank);
        std::vector<FrequentItemset>& ext_out = child_out[e];
        ext_out.push_back(MakeResult(prefix, ext.esup, ext.sq_sum));
        std::unique_ptr<Scratch> leased = state->AcquireScratch();
        Recurse(prefix, ext.occurrences, *leased, ext_out, &child_counters[e],
                state, context);
        state->ReleaseScratch(std::move(leased));
        ext.occurrences.clear();
        ext.occurrences.shrink_to_fit();
      });
    }
    group.Wait();
    // Wait rethrows from tasks that ran; the poll covers siblings the
    // tripped token made the group skip outright.
    PollRunContext(context);
    for (std::size_t e = 0; e < n_ext; ++e) {
      if (counters != nullptr) *counters += child_counters[e];
      out.insert(out.end(), std::make_move_iterator(child_out[e].begin()),
                 std::make_move_iterator(child_out[e].end()));
    }
    return;
  }

  for (Extension& ext : frequent) {
    prefix_ranks.push_back(ext.rank);
    out.push_back(MakeResult(prefix_ranks, ext.esup, ext.sq_sum));
    Recurse(prefix_ranks, ext.occurrences, scratch, out, counters, state,
            context);
    // Release this branch's head table before moving to the next sibling
    // (H-Mine keeps memory proportional to the recursion path).
    ext.occurrences.clear();
    ext.occurrences.shrink_to_fit();
    prefix_ranks.pop_back();
  }
}

}  // namespace ufim
