#ifndef UFIM_ALGO_EXACT_DC_H_
#define UFIM_ALGO_EXACT_DC_H_

#include <cstddef>

#include "core/miner.h"

namespace ufim {

/// DC — divide-and-conquer exact probabilistic miner (Sun et al.,
/// KDD'10; paper §3.2.2). Apriori framework; per candidate the exact
/// support pmf is assembled by recursively splitting the containment-
/// probability vector and convolving the halves (FFT above
/// `fft_threshold` coefficients), for O(N log N) per itemset against the
/// DP algorithm's O(N * msc).
///
/// `use_chernoff_pruning` selects between DCB and DCNB.
class ExactDC final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes both candidate counting and the
  /// per-candidate DC tail evaluations (the dominant cost); results are
  /// bit-identical (see MinerOptions::num_threads).
  /// `prefilter` == kBounds screens candidates with the certified bound
  /// cascade before the DC evaluation; results are identical to kOff.
  explicit ExactDC(bool use_chernoff_pruning, std::size_t fft_threshold = 64,
                   std::size_t num_threads = 1,
                   PrefilterMode prefilter = PrefilterMode::kOff)
      : use_chernoff_(use_chernoff_pruning),
        fft_threshold_(fft_threshold),
        num_threads_(num_threads),
        prefilter_(prefilter) {}

  std::string_view name() const override { return use_chernoff_ ? "DCB" : "DCNB"; }
  bool is_exact() const override { return true; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  bool use_chernoff_;
  std::size_t fft_threshold_;
  std::size_t num_threads_;
  PrefilterMode prefilter_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_EXACT_DC_H_
