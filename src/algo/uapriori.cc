#include "algo/uapriori.h"

#include "algo/apriori_framework.h"

namespace ufim {

Result<MiningResult> UApriori::Mine(const UncertainDatabase& db,
                                    const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold = params.min_esup * static_cast<double>(db.size());
  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [threshold](double esup, double) {
    return esup >= threshold;
  };
  std::vector<FrequentItemset> found =
      MineAprioriGeneric(db, callbacks,
                         decremental_pruning_ ? threshold : -1.0,
                         &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
