#include "algo/uapriori.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"

namespace ufim {

Result<MiningResult> UApriori::MineExpected(
    const FlatView& view, const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold =
      params.min_esup * static_cast<double>(view.num_transactions());
  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [threshold](double esup, double) {
    return esup >= threshold;
  };
  std::vector<FrequentItemset> found =
      MineAprioriGeneric(view, callbacks,
                         decremental_pruning_ ? threshold : -1.0,
                         &result.counters(), num_threads_, &run_context());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("UApriori", TaskFamily::kExpectedSupport,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<UApriori>(
                          options.decremental_pruning, options.num_threads);
                    })

}  // namespace ufim
