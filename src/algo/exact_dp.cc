#include "algo/exact_dp.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"
#include "prob/poisson_binomial.h"

namespace ufim {

Result<MiningResult> ExactDP::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  MiningResult result;
  // With the prefilter on, candidates the DP cannot lift above pft are
  // abandoned mid-evaluation (certified: the early exit only fires when
  // the completed DP would also land <= pft). The scratch row lives per
  // worker thread, so the O(msc) pmf allocation is paid once per worker
  // for the whole run instead of once per tail evaluation.
  const double reject_threshold =
      prefilter_ == PrefilterMode::kBounds ? params.pft : -1.0;
  ProbabilisticLoopOptions loop;
  loop.use_chernoff = use_chernoff_;
  loop.prefilter = prefilter_;
  loop.num_threads = num_threads_;
  loop.parallel_tails = true;
  loop.context = &run_context();
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      view, msc, params.pft,
      [reject_threshold](const std::vector<double>& probs, std::size_t k,
                         std::size_t /*ordinal*/) {
        thread_local DpScratch scratch;
        return PoissonBinomialTailDP(probs, k, reject_threshold, scratch);
      },
      loop, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("DPNB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDP>(
                          /*use_chernoff_pruning=*/false,
                          options.num_threads, options.prefilter);
                    })

UFIM_REGISTER_MINER("DPB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDP>(
                          /*use_chernoff_pruning=*/true,
                          options.num_threads, options.prefilter);
                    })

}  // namespace ufim
