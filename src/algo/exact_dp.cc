#include "algo/exact_dp.h"

#include "algo/apriori_framework.h"
#include "prob/poisson_binomial.h"

namespace ufim {

Result<MiningResult> ExactDP::Mine(const UncertainDatabase& db,
                                   const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(db.size());
  MiningResult result;
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      db, msc, params.pft,
      [](const std::vector<double>& probs, std::size_t k) {
        return PoissonBinomialTailDP(probs, k);
      },
      use_chernoff_, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
