#include "algo/exact_dp.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"
#include "prob/poisson_binomial.h"

namespace ufim {

Result<MiningResult> ExactDP::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  MiningResult result;
  std::vector<FrequentItemset> found = MineProbabilisticApriori(
      view, msc, params.pft,
      [](const std::vector<double>& probs, std::size_t k,
         std::size_t /*ordinal*/) { return PoissonBinomialTailDP(probs, k); },
      use_chernoff_, &result.counters(), num_threads_,
      /*parallel_tails=*/true);
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("DPNB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDP>(
                          /*use_chernoff_pruning=*/false,
                          options.num_threads);
                    })

UFIM_REGISTER_MINER("DPB", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<ExactDP>(
                          /*use_chernoff_pruning=*/true,
                          options.num_threads);
                    })

}  // namespace ufim
