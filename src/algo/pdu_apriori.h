#ifndef UFIM_ALGO_PDU_APRIORI_H_
#define UFIM_ALGO_PDU_APRIORI_H_

#include "core/miner.h"

namespace ufim {

/// PDUApriori (Wang et al., CIKM'10; paper §3.3.1): Poisson-approximate
/// probabilistic frequent itemset mining.
///
/// The support of an itemset is Poisson-binomial; Le Cam's theorem lets
/// it be approximated by Poisson(λ = esup). Because the Poisson tail
/// Pr(X >= msc) is strictly increasing in λ, the probabilistic test
/// "tail > pft" is equivalent to "esup >= λ*" for a fixed λ* — so the
/// whole algorithm is UApriori run at the translated expected-support
/// threshold λ*. Faithful to the paper, results carry no frequent
/// probability values ("it cannot return the frequent probability").
class PDUApriori final : public ProbabilisticMiner {
 public:
  /// `num_threads` parallelizes candidate counting (see
  /// MinerOptions::num_threads); results are bit-identical.
  explicit PDUApriori(std::size_t num_threads = 1)
      : num_threads_(num_threads) {}

  std::string_view name() const override { return "PDUApriori"; }
  bool is_exact() const override { return false; }

  Result<MiningResult> MineProbabilistic(
      const FlatView& view,
      const ProbabilisticParams& params) const override;

 private:
  std::size_t num_threads_;
};

}  // namespace ufim

#endif  // UFIM_ALGO_PDU_APRIORI_H_
