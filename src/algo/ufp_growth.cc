#include "algo/ufp_growth.h"

#include <algorithm>
#include <memory>

#include "algo/apriori_framework.h"
#include "algo/ufp_tree.h"
#include "common/thread_pool.h"
#include "core/miner_registry.h"

namespace ufim {

namespace {

/// Split policy for recursive task decomposition, shared (read-only)
/// across all mining tasks of one MineExpected call. Null policy (or
/// `min_split_nodes` past any real tree) means "never split".
struct SplitPolicy {
  /// Participation cap for each nested TaskGroup (resolved, >= 2).
  std::size_t max_workers = 0;
  /// A conditional tree this many nodes or larger is mined by spawning
  /// one child task per extension rank instead of the serial loop. The
  /// node count is the natural work proxy here: projection cost is
  /// linear in it, and it is already computed when the decision is made.
  std::size_t min_split_nodes = 0;
};

/// Recursive mining context shared down the projection chain. In the
/// parallel driver each top-level rank task owns its own context
/// (private `out` and `counters` slots); only the immutable
/// `rank_to_item` table and the split policy are shared.
struct MineContext {
  double threshold = 0.0;
  const std::vector<ItemId>* rank_to_item = nullptr;
  std::vector<FrequentItemset>* out = nullptr;
  MiningCounters* counters = nullptr;
  const SplitPolicy* split = nullptr;
  const RunContext* run = nullptr;
};

FrequentItemset EmitResult(const MineContext& ctx,
                           const std::vector<std::uint32_t>& prefix_ranks,
                           double esup, double sq_sum) {
  std::vector<ItemId> ids;
  ids.reserve(prefix_ranks.size());
  for (std::uint32_t r : prefix_ranks) ids.push_back((*ctx.rank_to_item)[r]);
  FrequentItemset fi;
  fi.itemset = Itemset(std::move(ids));
  fi.expected_support = esup;
  fi.variance = esup - sq_sum;
  return fi;
}

void MineTree(const UFPTree& tree, std::vector<std::uint32_t>& prefix_ranks,
              const MineContext& ctx);
void MineTreeParallel(const UFPTree& tree,
                      const std::vector<std::uint32_t>& prefix_ranks,
                      const MineContext& ctx);

/// Mines one extension rank of `tree`: emits the grown pattern if
/// frequent, builds the conditional pattern base and tree, and recurses.
/// Self-contained per (tree, rank) — the unit of parallelism at the top
/// level, where `tree` is the shared read-only global tree.
void MineRank(const UFPTree& tree, std::uint32_t rank,
              std::vector<std::uint32_t>& prefix_ranks,
              const MineContext& ctx) {
  // Checkpoint at entry: local scratch is still clean here, so the
  // unwind leaves nothing half-built (prefix_ranks push/pop below is
  // bracketed — a throw between them only abandons a task-local vector).
  PollRunContext(ctx.run);
  const std::vector<std::uint32_t>& header = tree.header(rank);
  if (header.empty()) return;
  if (ctx.counters != nullptr) ++ctx.counters->candidates_generated;

  double esup = 0.0, sq_sum = 0.0;
  for (std::uint32_t n : header) {
    const UFPTree::Node& node = tree.nodes()[n];
    esup += node.w_sum * node.prob;
    sq_sum += node.w2_sum * node.prob * node.prob;
  }
  if (esup < ctx.threshold) return;

  prefix_ranks.push_back(rank);
  ctx.out->push_back(EmitResult(ctx, prefix_ranks, esup, sq_sum));

  // Conditional pattern base of `rank`: ancestor paths with carried
  // aggregates (w, w2) scaled by this node's probability. Paths live
  // concatenated in one arena (`base_units`) — one allocation per base,
  // not one per header node.
  struct BaseEntry {
    std::uint32_t begin;  ///< [begin, end) into base_units
    std::uint32_t end;
    double w;
    double w2;
  };
  std::vector<BaseEntry> base;
  base.reserve(header.size());
  std::vector<UFPTree::PathUnit> base_units;
  std::vector<double> cond_esup(tree.num_ranks(), 0.0);
  std::vector<UFPTree::PathUnit> path;
  for (std::uint32_t n : header) {
    const UFPTree::Node& node = tree.nodes()[n];
    tree.AncestorPathInto(n, path);
    if (path.empty()) continue;
    BaseEntry entry;
    entry.begin = static_cast<std::uint32_t>(base_units.size());
    base_units.insert(base_units.end(), path.begin(), path.end());
    entry.end = static_cast<std::uint32_t>(base_units.size());
    entry.w = node.w_sum * node.prob;
    entry.w2 = node.w2_sum * node.prob * node.prob;
    for (const UFPTree::PathUnit& u : path) {
      cond_esup[u.rank] += entry.w * u.prob;
    }
    base.push_back(entry);
  }

  // Keep only locally frequent ancestor ranks, then build and recurse
  // into the conditional tree.
  bool any_frequent = false;
  for (std::uint32_t r = 0; r < tree.num_ranks(); ++r) {
    if (cond_esup[r] >= ctx.threshold) {
      any_frequent = true;
      break;
    }
  }
  if (any_frequent) {
    UFPTree cond(tree.num_ranks());
    std::vector<UFPTree::PathUnit> filtered;
    for (const BaseEntry& entry : base) {
      filtered.clear();
      for (std::uint32_t i = entry.begin; i != entry.end; ++i) {
        const UFPTree::PathUnit& u = base_units[i];
        if (cond_esup[u.rank] >= ctx.threshold) filtered.push_back(u);
      }
      if (!filtered.empty()) cond.InsertPath(filtered, entry.w, entry.w2);
    }
    // Work-budget heuristic: a dominant conditional tree is worth the
    // task-spawn overhead; small ones are mined inline.
    if (ctx.split != nullptr && cond.num_nodes() >= ctx.split->min_split_nodes) {
      MineTreeParallel(cond, prefix_ranks, ctx);
    } else {
      MineTree(cond, prefix_ranks, ctx);
    }
  }
  prefix_ranks.pop_back();
}

/// Mines one (conditional) UFP-tree. `prefix_ranks` is the suffix pattern
/// this tree is conditioned on.
void MineTree(const UFPTree& tree, std::vector<std::uint32_t>& prefix_ranks,
              const MineContext& ctx) {
  // Iterate extension ranks from least to most frequent (classic
  // FP-growth order; any order is correct).
  for (std::uint32_t rank = static_cast<std::uint32_t>(tree.num_ranks());
       rank-- > 0;) {
    MineRank(tree, rank, prefix_ranks, ctx);
  }
}

/// Parallel MineTree: one child task per extension rank of `tree`,
/// spawned into a nested TaskGroup (children may split again). Each
/// child works against the parent's conditional tree read-only — the
/// parent blocks in Wait, so no copy is needed — with its own prefix
/// copy and pre-indexed output/counter slots; the parent then merges in
/// the serial descending-rank order. Per-rank floating-point work is
/// exactly the serial MineRank's, so results and counters stay
/// bit-identical to MineTree at every thread count and split budget.
void MineTreeParallel(const UFPTree& tree,
                      const std::vector<std::uint32_t>& prefix_ranks,
                      const MineContext& ctx) {
  const std::size_t n_ranks = tree.num_ranks();
  std::vector<std::vector<FrequentItemset>> child_out(n_ranks);
  std::vector<MiningCounters> child_counters(n_ranks);
  TaskGroup group(ctx.split->max_workers, ctx.run);
  for (std::uint32_t rank = static_cast<std::uint32_t>(n_ranks); rank-- > 0;) {
    group.Spawn([&tree, &prefix_ranks, &ctx, &child_out, &child_counters,
                 rank] {
      std::vector<std::uint32_t> prefix = prefix_ranks;
      MineContext child = ctx;
      child.out = &child_out[rank];
      child.counters = &child_counters[rank];
      MineRank(tree, rank, prefix, child);
    });
  }
  group.Wait();
  // Wait's error rethrow covers tasks that started; the poll covers
  // tasks the tripped token made the group skip entirely.
  PollRunContext(ctx.run);
  for (std::uint32_t rank = static_cast<std::uint32_t>(n_ranks); rank-- > 0;) {
    if (ctx.counters != nullptr) *ctx.counters += child_counters[rank];
    ctx.out->insert(ctx.out->end(),
                    std::make_move_iterator(child_out[rank].begin()),
                    std::make_move_iterator(child_out[rank].end()));
  }
}

}  // namespace

Result<MiningResult> UFPGrowth::MineExpected(
    const FlatView& view, const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  PollRunContext(&run_context());  // checkpoint: run entry
  const double threshold =
      params.min_esup * static_cast<double>(view.num_transactions());
  MiningResult result;
  ++result.counters().database_scans;

  // Pass 1: frequent items, ordered by descending expected support
  // (straight off the view's cached per-item moments).
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<ItemStats> kept;
  for (const ItemStats& is : stats) {
    ++result.counters().candidates_generated;
    if (is.esup >= threshold) kept.push_back(is);
  }
  std::sort(kept.begin(), kept.end(), [](const ItemStats& a, const ItemStats& b) {
    if (a.esup != b.esup) return a.esup > b.esup;
    return a.item < b.item;
  });
  std::vector<ItemId> rank_to_item;
  rank_to_item.reserve(kept.size());
  // 1-itemset results are emitted by MineRank from the global tree
  // (whose per-rank moments equal the item-level moments exactly).
  for (const ItemStats& is : kept) rank_to_item.push_back(is.item);

  // Pass 2: build the global UFP-tree over the frequent items from the
  // view's vertical rank projection — reads only the kept items'
  // posting arrays, and rows arrive rank-sorted, so insertion needs no
  // per-transaction filter or sort.
  ++result.counters().database_scans;
  const FlatView::RankProjection projection =
      view.ProjectOntoRanks(rank_to_item);
  UFPTree tree(rank_to_item.size());
  std::vector<UFPTree::PathUnit> path;
  for (std::size_t t = 0; t + 1 < projection.txn_offsets.size(); ++t) {
    const std::uint32_t end = projection.txn_offsets[t + 1];
    std::uint32_t u = projection.txn_offsets[t];
    if (u == end) continue;
    path.clear();
    for (; u < end; ++u) {
      path.push_back(
          UFPTree::PathUnit{projection.units[u].rank, projection.units[u].prob});
    }
    tree.InsertPath(path, 1.0, 1.0);
  }

  // Recursive projection, task-parallel over the top-level header ranks
  // of the (now frozen, read-only) global tree. Each rank's conditional
  // subproblem is independent; per-rank subtree costs are wildly skewed,
  // so tasks are claimed dynamically — and a dominant rank's conditional
  // tree splits recursively into child tasks under the split-budget
  // heuristic, so one whale subtree no longer serializes on one worker.
  // Every task writes only its own output/counter slots, and the
  // per-rank arithmetic is exactly the serial MineTree iteration's, so
  // results and counters are bit-identical at every thread count and
  // split budget.
  const std::size_t threads =
      num_threads_ == 0 ? HardwareThreads() : num_threads_;
  SplitPolicy policy;
  SplitPolicy* split = nullptr;
  if (threads > 1 && split_budget_ != 1) {
    // Budget semantics: 0 = auto (divisor 32, floored so trivial trees
    // never pay the spawn + prefix-copy overhead), 1 = off, B > 1 =
    // split exactly when a conditional tree holds >= global_nodes / B
    // nodes (an explicit budget is a request for that aggressiveness,
    // so no floor).
    constexpr std::size_t kMinSplitNodesFloor = 128;
    policy.max_workers = threads;
    policy.min_split_nodes =
        split_budget_ == 0
            ? std::max(kMinSplitNodesFloor, tree.num_nodes() / 32)
            : std::max<std::size_t>(1, tree.num_nodes() / split_budget_);
    split = &policy;
  }
  const std::size_t n_ranks = rank_to_item.size();
  std::vector<std::vector<FrequentItemset>> per_rank(n_ranks);
  std::vector<MiningCounters> per_rank_counters(n_ranks);
  ParallelForDynamic(
      n_ranks, num_threads_,
      [&](std::size_t rank, std::size_t /*worker*/) {
        std::vector<std::uint32_t> prefix;
        MineContext ctx;
        ctx.threshold = threshold;
        ctx.rank_to_item = &rank_to_item;
        ctx.out = &per_rank[rank];
        ctx.counters = &per_rank_counters[rank];
        ctx.split = split;
        ctx.run = &run_context();
        MineRank(tree, static_cast<std::uint32_t>(rank), prefix, ctx);
      },
      &run_context());
  // Merge in fixed descending-rank order — the serial MineTree order —
  // regardless of which worker mined which rank.
  for (std::uint32_t rank = static_cast<std::uint32_t>(n_ranks); rank-- > 0;) {
    result.counters() += per_rank_counters[rank];
    for (FrequentItemset& fi : per_rank[rank]) result.Add(std::move(fi));
  }
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("UFP-growth", TaskFamily::kExpectedSupport,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<UFPGrowth>(options.num_threads,
                                                         options.split_budget);
                    })

}  // namespace ufim
