#include "algo/ufp_growth.h"

#include <algorithm>
#include <memory>

#include "algo/apriori_framework.h"
#include "algo/ufp_tree.h"
#include "core/miner_registry.h"

namespace ufim {

namespace {

/// Recursive mining context shared down the projection chain.
struct MineContext {
  double threshold = 0.0;
  const std::vector<ItemId>* rank_to_item = nullptr;
  std::vector<FrequentItemset>* out = nullptr;
  MiningCounters* counters = nullptr;
};

FrequentItemset EmitResult(const MineContext& ctx,
                           const std::vector<std::uint32_t>& prefix_ranks,
                           double esup, double sq_sum) {
  std::vector<ItemId> ids;
  ids.reserve(prefix_ranks.size());
  for (std::uint32_t r : prefix_ranks) ids.push_back((*ctx.rank_to_item)[r]);
  FrequentItemset fi;
  fi.itemset = Itemset(std::move(ids));
  fi.expected_support = esup;
  fi.variance = esup - sq_sum;
  return fi;
}

/// Mines one (conditional) UFP-tree. `prefix_ranks` is the suffix pattern
/// this tree is conditioned on.
void MineTree(const UFPTree& tree, std::vector<std::uint32_t>& prefix_ranks,
              const MineContext& ctx) {
  // Iterate extension ranks from least to most frequent (classic
  // FP-growth order; any order is correct).
  for (std::uint32_t rank = static_cast<std::uint32_t>(tree.num_ranks());
       rank-- > 0;) {
    const std::vector<std::uint32_t>& header = tree.header(rank);
    if (header.empty()) continue;
    if (ctx.counters != nullptr) ++ctx.counters->candidates_generated;

    double esup = 0.0, sq_sum = 0.0;
    for (std::uint32_t n : header) {
      const UFPTree::Node& node = tree.nodes()[n];
      esup += node.w_sum * node.prob;
      sq_sum += node.w2_sum * node.prob * node.prob;
    }
    if (esup < ctx.threshold) continue;

    prefix_ranks.push_back(rank);
    ctx.out->push_back(EmitResult(ctx, prefix_ranks, esup, sq_sum));

    // Conditional pattern base of `rank`: ancestor paths with carried
    // aggregates (w, w2) scaled by this node's probability.
    struct BaseEntry {
      std::vector<UFPTree::PathUnit> path;
      double w;
      double w2;
    };
    std::vector<BaseEntry> base;
    base.reserve(header.size());
    std::vector<double> cond_esup(tree.num_ranks(), 0.0);
    for (std::uint32_t n : header) {
      const UFPTree::Node& node = tree.nodes()[n];
      BaseEntry entry;
      entry.path = tree.AncestorPath(n);
      if (entry.path.empty()) continue;
      entry.w = node.w_sum * node.prob;
      entry.w2 = node.w2_sum * node.prob * node.prob;
      for (const UFPTree::PathUnit& u : entry.path) {
        cond_esup[u.rank] += entry.w * u.prob;
      }
      base.push_back(std::move(entry));
    }

    // Keep only locally frequent ancestor ranks, then build and recurse
    // into the conditional tree.
    bool any_frequent = false;
    for (std::uint32_t r = 0; r < tree.num_ranks(); ++r) {
      if (cond_esup[r] >= ctx.threshold) {
        any_frequent = true;
        break;
      }
    }
    if (any_frequent) {
      UFPTree cond(tree.num_ranks());
      std::vector<UFPTree::PathUnit> filtered;
      for (const BaseEntry& entry : base) {
        filtered.clear();
        for (const UFPTree::PathUnit& u : entry.path) {
          if (cond_esup[u.rank] >= ctx.threshold) filtered.push_back(u);
        }
        if (!filtered.empty()) cond.InsertPath(filtered, entry.w, entry.w2);
      }
      MineTree(cond, prefix_ranks, ctx);
    }
    prefix_ranks.pop_back();
  }
}

}  // namespace

Result<MiningResult> UFPGrowth::MineExpected(
    const FlatView& view, const ExpectedSupportParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const double threshold =
      params.min_esup * static_cast<double>(view.num_transactions());
  MiningResult result;
  ++result.counters().database_scans;

  // Pass 1: frequent items, ordered by descending expected support
  // (straight off the view's cached per-item moments).
  std::vector<ItemStats> stats = CollectItemStats(view);
  std::vector<ItemStats> kept;
  for (const ItemStats& is : stats) {
    ++result.counters().candidates_generated;
    if (is.esup >= threshold) kept.push_back(is);
  }
  std::sort(kept.begin(), kept.end(), [](const ItemStats& a, const ItemStats& b) {
    if (a.esup != b.esup) return a.esup > b.esup;
    return a.item < b.item;
  });
  std::vector<ItemId> rank_to_item;
  rank_to_item.reserve(kept.size());
  // 1-itemset results are emitted by MineTree from the global tree
  // (whose per-rank moments equal the item-level moments exactly).
  for (const ItemStats& is : kept) rank_to_item.push_back(is.item);

  // Pass 2: build the global UFP-tree over the frequent items from the
  // view's vertical rank projection — reads only the kept items'
  // posting arrays, and rows arrive rank-sorted, so insertion needs no
  // per-transaction filter or sort.
  ++result.counters().database_scans;
  const FlatView::RankProjection projection =
      view.ProjectOntoRanks(rank_to_item);
  UFPTree tree(rank_to_item.size());
  std::vector<UFPTree::PathUnit> path;
  for (std::size_t t = 0; t + 1 < projection.txn_offsets.size(); ++t) {
    const std::uint32_t end = projection.txn_offsets[t + 1];
    std::uint32_t u = projection.txn_offsets[t];
    if (u == end) continue;
    path.clear();
    for (; u < end; ++u) {
      path.push_back(
          UFPTree::PathUnit{projection.units[u].rank, projection.units[u].prob});
    }
    tree.InsertPath(path, 1.0, 1.0);
  }

  // Recursive projection.
  std::vector<FrequentItemset> grown;
  std::vector<std::uint32_t> prefix;
  MineContext ctx;
  ctx.threshold = threshold;
  ctx.rank_to_item = &rank_to_item;
  ctx.out = &grown;
  ctx.counters = &result.counters();
  MineTree(tree, prefix, ctx);
  for (FrequentItemset& fi : grown) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("UFP-growth", TaskFamily::kExpectedSupport,
                    /*production=*/true,
                    [](const MinerOptions&) {
                      return std::make_unique<UFPGrowth>();
                    })

}  // namespace ufim
