#include "algo/ndu_apriori.h"

#include "algo/apriori_framework.h"
#include "prob/normal.h"

namespace ufim {

Result<MiningResult> NDUApriori::Mine(const UncertainDatabase& db,
                                      const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(db.size());
  const double pft = params.pft;

  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [msc, pft](double esup, double sq_sum) {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc) > pft;
  };
  callbacks.frequent_probability = [msc](double esup,
                                         double sq_sum) -> std::optional<double> {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc);
  };
  std::vector<FrequentItemset> found = MineAprioriGeneric(
      db, callbacks, /*decremental_threshold=*/-1.0, &result.counters());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

}  // namespace ufim
