#include "algo/ndu_apriori.h"

#include <memory>

#include "algo/apriori_framework.h"
#include "core/miner_registry.h"
#include "prob/normal.h"

namespace ufim {

Result<MiningResult> NDUApriori::MineProbabilistic(
    const FlatView& view, const ProbabilisticParams& params) const {
  UFIM_RETURN_IF_ERROR(params.Validate());
  const std::size_t msc = params.MinSupportCount(view.num_transactions());
  const double pft = params.pft;

  MiningResult result;
  AprioriCallbacks callbacks;
  callbacks.is_frequent = [msc, pft](double esup, double sq_sum) {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc) > pft;
  };
  callbacks.frequent_probability = [msc](double esup,
                                         double sq_sum) -> std::optional<double> {
    return NormalApproxFrequentProbability(esup, esup - sq_sum, msc);
  };
  std::vector<FrequentItemset> found = MineAprioriGeneric(
      view, callbacks, /*decremental_threshold=*/-1.0, &result.counters(),
      num_threads_, &run_context());
  for (FrequentItemset& fi : found) result.Add(std::move(fi));
  result.SortCanonical();
  return result;
}

UFIM_REGISTER_MINER("NDUApriori", TaskFamily::kProbabilistic,
                    /*production=*/true,
                    [](const MinerOptions& options) {
                      return std::make_unique<NDUApriori>(options.num_threads);
                    })

}  // namespace ufim
