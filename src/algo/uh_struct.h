#ifndef UFIM_ALGO_UH_STRUCT_H_
#define UFIM_ALGO_UH_STRUCT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/run_context.h"
#include "core/flat_view.h"
#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// The UH-Struct + recursive head-table engine behind UH-Mine (Aggarwal
/// et al., KDD'09; paper §3.1.3) — and, with a different frequency
/// predicate, behind NDUH-Mine (§3.3.3).
///
/// Construction projects the database onto the items accepted by the
/// level-1 predicate, re-labels them in descending expected-support
/// order, and lays the projected transactions out contiguously. Mining
/// is H-Mine's depth-first prefix growth: for a prefix X, a head table
/// maps every extension item to the list of (transaction, position,
/// Pr(X ⊆ T)·p) occurrences after X's last position; frequent extensions
/// recurse.
///
/// The engine accumulates both Σp and Σp² per prefix, so the same code
/// path yields expected supports (UH-Mine) and Normal-approximation
/// moments (NDUH-Mine) — the paper's "win-win" combination.
///
/// Mining is task-parallel over the top-level ranks: each rank's prefix
/// subtree is explored by one dynamically-scheduled task carrying its own
/// scratch (accumulators + slot map), and a dominant subtree recursively
/// splits its sibling extensions into child tasks under a work-budget
/// heuristic, with outputs and counters merged in ascending rank order at
/// every level — results are bit-identical at every thread count and
/// split budget. After construction the engine is immutable; `Mine` is
/// const and safe to call concurrently.
class UHStructEngine {
 public:
  /// Decides whether a prefix with the given moments is frequent and, if
  /// so, what annotation to attach. Must be anti-monotone for the
  /// depth-first pruning to be exact.
  struct Hooks {
    std::function<bool(double esup, double sq_sum)> is_frequent;
    std::function<std::optional<double>(double esup, double sq_sum)>
        frequent_probability;  ///< may be null
  };

  /// Builds the UH-Struct over the columnar view, keeping only items
  /// accepted by `hooks.is_frequent` on their item-level moments (read
  /// off the view's cached per-item arrays).
  UHStructEngine(const FlatView& view, Hooks hooks);

  /// Convenience overload that builds a FlatView first.
  UHStructEngine(const UncertainDatabase& db, Hooks hooks);

  /// Runs the depth-first mining and returns all frequent itemsets
  /// (unsorted; caller normalizes). `counters` may be null. The
  /// top-level ranks are mined by up to `num_threads` workers (1 =
  /// sequential baseline, 0 = all hardware threads), and a dominant
  /// prefix subtree recursively splits its sibling extensions into
  /// child tasks under the split-budget heuristic (`split_budget`: 0 =
  /// auto threshold, 1 = off, larger = more aggressive); results and
  /// counters are identical at every setting. The hooks must be safe to
  /// call concurrently when `num_threads` != 1 (the stateless predicate
  /// closures every caller in this repo uses qualify).
  ///
  /// `context` (optional) is polled at every `Recurse` entry — a
  /// scratch-clean point, so a tripped token unwinds with RunAbortedError
  /// without corrupting pooled scratch — and propagated into the nested
  /// split task groups so cancelled subtrees stop claiming work.
  std::vector<FrequentItemset> Mine(MiningCounters* counters,
                                    std::size_t num_threads = 1,
                                    std::size_t split_budget = 0,
                                    const RunContext* context = nullptr) const;

  /// Number of items retained in the head table (for tests).
  std::size_t num_frequent_items() const { return rank_to_item_.size(); }

 private:
  /// One projected unit: item rank (descending-esup order) + probability.
  /// The projection comes straight from FlatView's vertical rank
  /// projection, arrays adopted without conversion.
  using Unit = FlatView::RankUnit;

  /// One occurrence of the current prefix inside a projected transaction.
  struct Occurrence {
    std::uint32_t txn;         ///< projected transaction index
    std::uint32_t next_start;  ///< first unit index eligible as extension
    double prob;               ///< Pr(prefix ⊆ T)
  };

  /// Per-task mining scratch, reused across recursion levels. Each
  /// top-level rank task owns one instance (workers reuse theirs across
  /// the ranks they claim), so concurrent tasks never share accumulators.
  struct Scratch {
    /// Moment accumulators indexed by rank.
    std::vector<double> esup_acc;
    std::vector<double> sq_acc;
    /// Rank -> head-table slot map (UINT32_MAX = not a frequent extension
    /// of the current prefix); restored after each use.
    std::vector<std::uint32_t> slot_of;

    explicit Scratch(std::size_t num_ranks)
        : esup_acc(num_ranks, 0.0),
          sq_acc(num_ranks, 0.0),
          slot_of(num_ranks, UINT32_MAX) {}
  };

  /// Per-Mine-call parallel state: the split policy plus a pool of
  /// clean Scratch instances leased by split-off child tasks (defined in
  /// the .cc). Null means "never split" (serial runs, budget 1).
  struct MineState;

  void Recurse(std::vector<std::uint32_t>& prefix_ranks,
               const std::vector<Occurrence>& occurrences, Scratch& scratch,
               std::vector<FrequentItemset>& out, MiningCounters* counters,
               MineState* state, const RunContext* context) const;

  FrequentItemset MakeResult(const std::vector<std::uint32_t>& prefix_ranks,
                             double esup, double sq_sum) const;

  Hooks hooks_;
  std::vector<ItemId> rank_to_item_;      ///< rank -> original item id
  std::vector<Unit> units_;               ///< all projected transactions, flattened
  std::vector<std::uint32_t> txn_offsets_;  ///< size = #txns + 1
};

}  // namespace ufim

#endif  // UFIM_ALGO_UH_STRUCT_H_
