#ifndef UFIM_COMMON_RUN_CONTEXT_H_
#define UFIM_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ufim {

/// Internal exception used to unwind a mine out of deep recursive or
/// vector-returning code once a `RunContext` trips. It never crosses the
/// public API: the `Miner` facades catch it and convert it back into the
/// `Status` it carries. RAII unwinding is what keeps storage and scratch
/// pools valid through a cancelled run.
class RunAbortedError : public std::runtime_error {
 public:
  explicit RunAbortedError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Shared cancellation token + soft deadline + memory budget for one run.
///
/// `RunContext` is a cheap copyable handle; copies share the same state, so
/// a controller thread can `Cancel()` the handle it kept while workers poll
/// their copies via `CheckPoint()`. A default-constructed context is live
/// (never null) and unconstrained: polling it costs one relaxed atomic load
/// on the fast path, with the deadline clock read only ~every 32nd call per
/// thread.
///
/// Cleanup contract: mining code polls `CheckPoint()` at checkpoint sites
/// and unwinds via `RunAbortedError`; the facade converts that into a clean
/// error `Status`. All storage, scratch pools, and the `ThreadPool` stay
/// valid and reusable — a subsequent run on the same objects with a fresh
/// (or `Reset()`) context is bit-identical to a run that was never
/// cancelled.
class RunContext {
 public:
  RunContext() : state_(std::make_shared<State>()) {}

  // --- control plane ------------------------------------------------------

  /// Trips the token with kCancelled. Idempotent; the first trip wins.
  void Cancel() const { Trip(StatusCode::kCancelled); }

  /// Arms a soft deadline `budget` from now (steady clock). Polling after
  /// the deadline trips the token with kDeadlineExceeded.
  void SetDeadlineAfter(std::chrono::nanoseconds budget) const;
  void SetDeadlineAfterMillis(std::int64_t ms) const {
    SetDeadlineAfter(std::chrono::milliseconds(ms));
  }

  /// Arms a memory budget: if tracked allocation (`eval/memory_tracker`)
  /// grows by more than `bytes` over the baseline captured *now*, polling
  /// trips the token with kResourceExhausted. Inert unless the alloc hooks
  /// object library is linked into the binary.
  void SetMemoryBudgetBytes(std::size_t bytes) const;

  /// Returns the context to a fresh, unconstrained state: clears the trip,
  /// the deadline, the memory budget, the fault trigger, and the checkpoint
  /// counter. Lets a caller retry on the same objects after an aborted run.
  ///
  /// Quiescence required (annotated): unlike `Cancel`/`SetDeadlineAfter`,
  /// which any thread may call against a live run, `Reset` (and the fault
  /// trigger below) only make sense *between* runs — a worker polling
  /// mid-run could otherwise observe the cleared-then-rearmed state as a
  /// spurious pass or double-count checkpoints. Callers claim that
  /// between-runs window via `AssertQuiescent()`.
  void Reset() const UFIM_REQUIRES(controller_role_);

  // --- data plane ---------------------------------------------------------

  /// Cheap cooperative poll. OK on the fast path; once tripped, every
  /// subsequent call returns the same error code.
  Status CheckPoint() const {
    State* s = state_.get();
    if (s->counting.load(std::memory_order_relaxed)) return CountedCheck();
    const int code = s->tripped.load(std::memory_order_relaxed);
    if (code != 0) return TrippedStatus(code);
    thread_local std::uint32_t poll_tick = 0;
    if (((++poll_tick) & 31u) != 0) return Status::OK();
    return PollLimits();
  }

  /// `CheckPoint()`, but unwinds with `RunAbortedError` on failure — the
  /// form used inside deep mining code.
  void PollOrThrow() const {
    Status s = CheckPoint();
    if (!s.ok()) throw RunAbortedError(std::move(s));
  }

  /// Status view that does not count as a checkpoint and never reads the
  /// clock: OK while untripped.
  Status status() const {
    const int code = state_->tripped.load(std::memory_order_acquire);
    return code == 0 ? Status::OK() : TrippedStatus(code);
  }

  /// True once the token has tripped for any reason.
  bool aborted() const {
    return state_->tripped.load(std::memory_order_relaxed) != 0;
  }

  // --- deterministic fault injection (tests) ------------------------------

  /// Arms a deterministic fault: the first `CheckPoint()` at or past the
  /// `nth` poll (1-based, counted across all threads) trips the token with
  /// `code`. Arming also switches `CheckPoint()` into counting mode so
  /// `checkpoints()` becomes exact; arming with a huge `nth` is the idiom
  /// for counting a run's checkpoints without faulting it.
  void ArmFaultAtCheckpoint(std::uint64_t nth, StatusCode code) const
      UFIM_REQUIRES(controller_role_);

  /// Claims (to the thread-safety analysis; no runtime effect) that no
  /// run is currently polling this context — the precondition of
  /// `Reset` and `ArmFaultAtCheckpoint`. See Reset's comment.
  void AssertQuiescent() const UFIM_ASSERT_CAPABILITY(controller_role_) {}

  /// Checkpoints observed since construction / `Reset()`. Exact only while
  /// a fault trigger is armed (counting mode); otherwise stays 0.
  std::uint64_t checkpoints() const {
    return state_->checkpoints.load(std::memory_order_relaxed);
  }

 private:
  struct State {
    std::atomic<int> tripped{0};  // 0 = live, else the StatusCode
    std::atomic<bool> counting{false};
    std::atomic<std::int64_t> deadline_ns{kNoDeadline};
    std::atomic<std::size_t> budget_bytes{0};  // 0 = no budget
    std::atomic<std::size_t> budget_baseline{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> fault_at{0};  // 0 = unarmed
    std::atomic<int> fault_code{0};
  };

  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  void Trip(StatusCode code) const;
  Status PollLimits() const;    // deadline + budget check; trips on breach
  Status CountedCheck() const;  // counting-mode CheckPoint body
  static Status TrippedStatus(int code);

  std::shared_ptr<State> state_;

  /// The "no run is polling; I am reconfiguring between runs" role
  /// (per-handle; claiming it on one copy does not leak to others).
  Role controller_role_;
};

/// Polls `ctx` if non-null, unwinding with `RunAbortedError` when tripped.
/// The nullptr form keeps execution-layer plumbing zero-cost when no
/// context is attached.
inline void PollRunContext(const RunContext* ctx) {
  if (ctx != nullptr) ctx->PollOrThrow();
}

}  // namespace ufim

#endif  // UFIM_COMMON_RUN_CONTEXT_H_
