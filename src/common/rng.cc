#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ufim {

std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 (Steele, Lea & Flood): one finalizer round is enough to
  // decorrelate consecutive counter values into mt19937_64 seeds.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::Uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

unsigned Rng::Poisson(double mean) {
  return std::poisson_distribution<unsigned>(mean)(engine_);
}

std::uint64_t Rng::Zipf(std::uint64_t n, double skew) {
  // Exact inverse-CDF sampling over the (bounded) rank support. The
  // cumulative table is rebuilt only when (n, skew) changes, so the
  // common pattern — millions of draws with fixed parameters — costs
  // O(log n) per draw after one O(n) setup.
  if (n <= 1) return 1;
  if (skew <= 0.0) return UniformInt(1, n);
  if (n != zipf_n_ || skew != zipf_skew_) {
    zipf_n_ = n;
    zipf_skew_ = skew;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      acc += std::pow(static_cast<double>(k), -skew);
      zipf_cdf_[k - 1] = acc;
    }
  }
  const double u = Uniform01() * zipf_cdf_.back();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint64_t>(it - zipf_cdf_.begin()) + 1;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

std::vector<std::uint64_t> SampleWithoutReplacement(Rng& rng, std::uint64_t n,
                                                    std::uint64_t k) {
  // Floyd's algorithm: k iterations, O(k) memory, uniform over subsets.
  std::vector<std::uint64_t> out;
  out.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = rng.UniformInt(0, j);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace ufim
