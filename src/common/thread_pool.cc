#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

namespace ufim {

namespace {

/// Set while a ThreadPool worker is running its loop (lets callers ask
/// ThreadPool::InWorker, e.g. to avoid blocking a worker on IO).
thread_local bool t_in_worker = false;

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

}  // namespace

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace internal {

// ---------------------------------------------------------------------------
// Chase-Lev deque.

struct TaskDeque::Buffer {
  explicit Buffer(std::int64_t cap)
      : capacity(cap), slots(new std::atomic<void*>[cap]) {}

  void* Get(std::int64_t i) const {
    return slots[i & (capacity - 1)].load(std::memory_order_relaxed);
  }
  void Put(std::int64_t i, void* task) {
    slots[i & (capacity - 1)].store(task, std::memory_order_relaxed);
  }

  const std::int64_t capacity;  ///< power of two
  std::unique_ptr<std::atomic<void*>[]> slots;
};

TaskDeque::TaskDeque() {
  auto initial = std::make_unique<Buffer>(64);
  buffer_.store(initial.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(initial));
}

TaskDeque::~TaskDeque() = default;

void TaskDeque::Grow(std::int64_t top, std::int64_t bottom) {
  Buffer* old = buffer_.load(std::memory_order_relaxed);
  auto grown = std::make_unique<Buffer>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) grown->Put(i, old->Get(i));
  // Thieves may still hold the old buffer pointer; the release store
  // publishes the copied contents, and the old buffer stays alive in
  // retired_ until destruction, so a stale read is merely a read of the
  // same element (the CAS on top_ then decides ownership).
  buffer_.store(grown.get(), std::memory_order_release);
  retired_.push_back(std::move(grown));
}

void TaskDeque::Push(void* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* a = buffer_.load(std::memory_order_relaxed);
  if (b - t > a->capacity - 1) {
    Grow(t, b);
    a = buffer_.load(std::memory_order_relaxed);
  }
  a->Put(b, task);
  // seq_cst (not just release): Pop's bottom_ decrement and Steal's
  // top_/bottom_ reads reason about a single total order of these
  // stores; operation-level orderings keep the algorithm fence-free.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

void* TaskDeque::Pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* a = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  void* result = nullptr;
  if (t <= b) {
    result = a->Get(b);
    if (t == b) {
      // Last element: race the thieves for it via top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        result = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return result;
}

void* TaskDeque::Steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* a = buffer_.load(std::memory_order_acquire);
  void* result = a->Get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race; the caller rescans
  }
  return result;
}

// ---------------------------------------------------------------------------
// Task groups.

class TaskGroupImpl {
 public:
  struct Task {
    std::function<void()> fn;
    std::size_t index;
  };

  explicit TaskGroupImpl(std::size_t num_slots)
      : num_slots_(num_slots), slot_taken_(num_slots, false) {
    deques_.reserve(num_slots);
    for (std::size_t s = 0; s < num_slots; ++s) {
      deques_.push_back(std::make_unique<TaskDeque>());
    }
  }

  std::size_t num_slots() const { return num_slots_; }

  /// Registers and publishes a task; returns its spawn index. Pushes to
  /// the calling thread's deque when it holds a slot of this group,
  /// otherwise to the mutex-guarded overflow list (spawns from threads
  /// outside the group).
  std::size_t Spawn(std::function<void()> fn);

  /// Owner loop: run/steal group tasks until none are pending. The
  /// short timed wait covers transient steal races; completion of the
  /// last task notifies immediately.
  void WaitAll(std::size_t slot);

  /// Helper loop: run/steal until a full scan finds nothing, then
  /// return (helpers never block — the spawn-side token policy recruits
  /// replacements if more work appears).
  void DrainAsHelper(std::size_t slot);

  /// The recorded exception of the lowest-spawn-index failing task, or
  /// nullptr. Clears the error list.
  std::exception_ptr TakeFirstError();

  std::size_t TryAcquireSlot();
  void ReleaseSlot(std::size_t slot);

  /// Token accounting: true when another helper should be recruited
  /// (engaged count — helpers active plus tokens in flight — is below
  /// num_slots - 1); increments the count when so.
  bool ShouldPostToken();
  void TokenDone() { helpers_engaged_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  Task* FindWork(std::size_t slot);
  void RunTask(Task* task);

  const std::size_t num_slots_;
  /// Handle copy of the attached cancellation token (nullopt = none); a
  /// copy, not a pointer, so late help-token arrivals can never touch a
  /// dead context. Written once in the TaskGroup constructor, before
  /// any other thread can see the group; read-only afterwards.
  std::optional<RunContext> ctx_;
  std::vector<std::unique_ptr<TaskDeque>> deques_;  ///< one per slot
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_index_{0};
  std::atomic<std::size_t> helpers_engaged_{0};

  /// Guards the slot table, the overflow list and the error slots —
  /// the group's coarse-grained shared state (the deques are lock-free
  /// and carry their own owner-role annotations).
  Mutex mu_;
  std::condition_variable done_cv_;
  std::vector<bool> slot_taken_ UFIM_GUARDED_BY(mu_);
  std::deque<Task*> overflow_ UFIM_GUARDED_BY(mu_);
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_
      UFIM_GUARDED_BY(mu_);

  friend class ::ufim::TaskGroup;
};

namespace {

/// The groups this thread currently participates in (owner or helper),
/// innermost last. Spawn targets the calling thread's deque of the
/// spawned-into group; nesting keeps one entry per active group.
struct Participation {
  TaskGroupImpl* group;
  std::size_t slot;
};
thread_local std::vector<Participation> t_participation;

std::size_t SlotOnThisThread(const TaskGroupImpl* group) {
  for (auto it = t_participation.rbegin(); it != t_participation.rend(); ++it) {
    if (it->group == group) return it->slot;
  }
  return kNoSlot;
}

}  // namespace

std::size_t TaskGroupImpl::Spawn(std::function<void()> fn) {
  const std::size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
  Task* task = new Task{std::move(fn), index};
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t slot = SlotOnThisThread(this);
  if (slot != kNoSlot) {
    // The participation stack just proved this thread holds `slot`, and
    // a slot has exactly one holder — so this thread is the deque owner.
    deques_[slot]->AssertOwner();
    deques_[slot]->Push(task);
  } else {
    MutexLock lock(mu_);
    overflow_.push_back(task);
  }
  return index;
}

TaskGroupImpl::Task* TaskGroupImpl::FindWork(std::size_t slot) {
  // `slot` is the caller's own slot (WaitAll / DrainAsHelper run on the
  // thread that acquired it), so the caller owns this deque's bottom end.
  deques_[slot]->AssertOwner();
  if (void* task = deques_[slot]->Pop()) return static_cast<Task*>(task);
  for (std::size_t i = 1; i < num_slots_; ++i) {
    const std::size_t victim = (slot + i) % num_slots_;
    if (void* task = deques_[victim]->Steal()) return static_cast<Task*>(task);
  }
  MutexLock lock(mu_);
  if (!overflow_.empty()) {
    Task* task = overflow_.front();
    overflow_.pop_front();
    return task;
  }
  return nullptr;
}

void TaskGroupImpl::RunTask(Task* task) {
  try {
    // Observe the cancellation token between tasks: once it trips,
    // not-yet-started tasks are skipped (their accounting below still
    // runs, so WaitAll sees exact completion). In-flight tasks drain via
    // their own body checkpoints.
    if (!ctx_ || !ctx_->aborted()) task->fn();
  } catch (...) {
    MutexLock lock(mu_);
    errors_.emplace_back(task->index, std::current_exception());
  }
  delete task;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Serialize with the owner's pending check so the notification can
    // never slip between its re-check and its wait.
    MutexLock lock(mu_);
    done_cv_.notify_all();
  }
}

void TaskGroupImpl::WaitAll(std::size_t slot) {
  for (;;) {
    if (Task* task = FindWork(slot)) {
      RunTask(task);
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0) return;
    MutexLock lock(mu_);
    if (pending_.load(std::memory_order_acquire) == 0) return;
    if (!overflow_.empty()) continue;
    // Remaining tasks are running on other threads (their completion
    // notifies) or were hidden by a transient steal race (the timeout
    // rescans).
    done_cv_.wait_for(lock.native_lock(), std::chrono::microseconds(200));
  }
}

void TaskGroupImpl::DrainAsHelper(std::size_t slot) {
  while (Task* task = FindWork(slot)) RunTask(task);
}

std::exception_ptr TaskGroupImpl::TakeFirstError() {
  MutexLock lock(mu_);
  if (errors_.empty()) return nullptr;
  auto lowest = std::min_element(
      errors_.begin(), errors_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr error = lowest->second;
  errors_.clear();
  return error;
}

std::size_t TaskGroupImpl::TryAcquireSlot() {
  MutexLock lock(mu_);
  // Slot 0 is reserved for the owner.
  for (std::size_t s = 1; s < num_slots_; ++s) {
    if (!slot_taken_[s]) {
      slot_taken_[s] = true;
      return s;
    }
  }
  return kNoSlot;
}

void TaskGroupImpl::ReleaseSlot(std::size_t slot) {
  MutexLock lock(mu_);
  slot_taken_[slot] = false;
}

bool TaskGroupImpl::ShouldPostToken() {
  std::size_t engaged = helpers_engaged_.load(std::memory_order_relaxed);
  while (engaged + 1 < num_slots_) {
    if (helpers_engaged_.compare_exchange_weak(engaged, engaged + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// ThreadPool.

struct ThreadPool::Injected {
  std::packaged_task<void()> task;                    ///< legacy Submit
  std::shared_ptr<internal::TaskGroupImpl> help;      ///< help token
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    MutexLock lock(mu_);
    queue_.push_back(Injected{std::move(task), nullptr});
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::PostHelpToken(
    std::shared_ptr<internal::TaskGroupImpl> group) {
  {
    MutexLock lock(mu_);
    queue_.push_back(Injected{{}, std::move(group)});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    Injected item;
    {
      MutexLock lock(mu_);
      // Plain wait loop (not the predicate overload): the thread-safety
      // analysis checks the guarded reads here, in a scope it can see
      // holds mu_ — it cannot look inside a predicate lambda.
      while (!stop_ && queue_.empty()) cv_.wait(lock.native_lock());
      // Drain the queue before honoring stop_ so ~ThreadPool never
      // abandons a future (or a group needing help) someone waits on.
      if (queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (item.task.valid()) {
      item.task();  // packaged_task stores any exception in the future
    } else if (item.help != nullptr) {
      internal::TaskGroupImpl& group = *item.help;
      const std::size_t slot = group.TryAcquireSlot();
      if (slot != kNoSlot) {
        internal::t_participation.push_back({&group, slot});
        group.DrainAsHelper(slot);
        internal::t_participation.pop_back();
        group.ReleaseSlot(slot);
      }
      group.TokenDone();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must outlive every static whose
  // destructor might still submit, and process exit reclaims them.
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

bool ThreadPool::InWorker() { return t_in_worker; }

// ---------------------------------------------------------------------------
// TaskGroup.

TaskGroup::TaskGroup(std::size_t max_workers, const RunContext* context,
                     ThreadPool& pool)
    : pool_(pool),
      impl_(std::make_shared<internal::TaskGroupImpl>(std::max<std::size_t>(
          max_workers == 0 ? HardwareThreads() : max_workers, 1))) {
  if (context != nullptr) impl_->ctx_ = *context;
  {
    MutexLock lock(impl_->mu_);
    impl_->slot_taken_[0] = true;  // the owner occupies slot 0 for life
  }
  internal::t_participation.push_back({impl_.get(), 0});
}

TaskGroup::~TaskGroup() {
  impl_->WaitAll(0);  // never abandon spawned tasks
  (void)impl_->TakeFirstError();
  // Groups are scoped fork-join objects, but tolerate out-of-order
  // destruction of siblings by erasing this group's entry wherever it
  // sits on the participation stack.
  auto& stack = internal::t_participation;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->group == impl_.get()) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  impl_->ReleaseSlot(0);
}

std::size_t TaskGroup::Spawn(std::function<void()> fn) {
  const std::size_t index = impl_->Spawn(std::move(fn));
  if (impl_->num_slots() > 1 && impl_->ShouldPostToken()) {
    try {
      pool_.PostHelpToken(impl_);
    } catch (...) {
      impl_->TokenDone();
      throw;
    }
  }
  return index;
}

void TaskGroup::Wait() {
  impl_->WaitAll(0);
  if (std::exception_ptr error = impl_->TakeFirstError()) {
    std::rethrow_exception(error);
  }
}

// ---------------------------------------------------------------------------
// Parallel loop helpers.

void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t)>& body,
                 const RunContext* context) {
  if (num_threads == 0) num_threads = HardwareThreads();
  const std::size_t chunks = std::min(num_threads, n);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (context != nullptr && context->aborted()) break;
      body(i);
    }
    PollRunContext(context);
    return;
  }

  // Per-chunk error slots: a throwing chunk stops at the bad index, the
  // other chunks still run whole, and the lowest-numbered failing chunk
  // is the one rethrown (chunk 0 — the caller's — is the lowest).
  std::vector<std::exception_ptr> chunk_errors(chunks);
  TaskGroup group(chunks, context);
  std::exception_ptr early_error;
  try {
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = c * n / chunks;
      const std::size_t hi = (c + 1) * n / chunks;
      group.Spawn([&body, &chunk_errors, context, c, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) {
            if (context != nullptr && context->aborted()) break;
            body(i);
          }
        } catch (...) {
          chunk_errors[c] = std::current_exception();
        }
      });
    }
    const std::size_t hi0 = n / chunks;
    for (std::size_t i = 0; i < hi0; ++i) {
      if (context != nullptr && context->aborted()) break;
      body(i);
    }
  } catch (...) {
    // Spawn itself (allocation) or the caller's chunk threw; every
    // spawned chunk still runs to completion below.
    early_error = std::current_exception();
  }
  group.Wait();  // task bodies never throw (errors captured per chunk)
  if (early_error) std::rethrow_exception(early_error);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (chunk_errors[c]) std::rethrow_exception(chunk_errors[c]);
  }
  // A tripped context may have made workers skip indices silently; the
  // poll turns that into an unwind the caller cannot miss.
  PollRunContext(context);
}

std::size_t ParallelWorkerCount(std::size_t n, std::size_t num_threads) {
  // Same policy as the chunk count on purpose: one worker per would-be
  // chunk. Delegating keeps the two from drifting apart — callers size
  // per-worker scratch off this and ParallelForDynamic hands out ids
  // below it.
  return ParallelChunkCount(n, num_threads);
}

void ParallelForDynamic(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body,
    const RunContext* context) {
  const std::size_t workers = ParallelWorkerCount(n, num_threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (context != nullptr && context->aborted()) break;
      body(i, 0);
    }
    PollRunContext(context);
    return;
  }

  // Per-index error slots (not per-worker): the rethrow choice must not
  // depend on which worker happened to claim the failing index.
  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(n);
  auto drain = [&cursor, &errors, &body, context, n](std::size_t worker) {
    for (;;) {
      // Stop claiming work once the token trips; the index in flight
      // drains via its own body checkpoints.
      if (context != nullptr && context->aborted()) return;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i, worker);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  TaskGroup group(workers, context);
  std::exception_ptr spawn_error;
  try {
    for (std::size_t w = 1; w < workers; ++w) {
      group.Spawn([&drain, w] { drain(w); });
    }
  } catch (...) {
    spawn_error = std::current_exception();
  }
  // The caller's drain claims every index no helper takes — including
  // all of them when spawning failed — so every index is attempted.
  drain(0);
  group.Wait();  // drain() never throws
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  if (spawn_error) std::rethrow_exception(spawn_error);
  // Unclaimed indices after a trip must surface as an abort, never as a
  // silently-shortened loop.
  PollRunContext(context);
}

std::size_t ParallelChunkCount(std::size_t n, std::size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  return std::min(std::max<std::size_t>(num_threads, 1), n);
}

void ParallelForChunks(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const RunContext* context) {
  const std::size_t k = ParallelChunkCount(n, num_threads);
  if (k == 0) return;
  ParallelFor(
      k, num_threads,
      [&body, n, k](std::size_t chunk) {
        body(chunk, chunk * n / k, (chunk + 1) * n / k);
      },
      context);
}

}  // namespace ufim
