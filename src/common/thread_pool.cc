#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace ufim {

namespace {

/// Set while a ThreadPool worker is running its loop; lets ParallelFor
/// detect nested invocations and fall back to serial execution.
thread_local bool t_in_worker = false;

}  // namespace

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honoring stop_ so ~ThreadPool never
      // abandons a future someone is waiting on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task stores any exception in the future
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must outlive every static whose
  // destructor might still submit, and process exit reclaims them.
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t)>& body) {
  if (num_threads == 0) num_threads = HardwareThreads();
  const std::size_t chunks = std::min(num_threads, n);
  if (chunks <= 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::future<void>> pending;
  pending.reserve(chunks - 1);
  std::exception_ptr first_error;
  // Submission itself can throw (allocation); from here to the drain
  // loop nothing may leave this frame while a submitted chunk might
  // still touch `body`.
  try {
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = c * n / chunks;
      const std::size_t hi = (c + 1) * n / chunks;
      pending.push_back(pool.Submit([&body, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }));
    }
    const std::size_t hi0 = n / chunks;
    for (std::size_t i = 0; i < hi0; ++i) body(i);
  } catch (...) {
    first_error = std::current_exception();
  }
  // Wait for every submitted chunk before rethrowing: `body` and its
  // captures must stay alive until no worker can touch them.
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ParallelWorkerCount(std::size_t n, std::size_t num_threads) {
  // Same policy as the chunk count on purpose: one worker per would-be
  // chunk. Delegating keeps the two from drifting apart — callers size
  // per-worker scratch off this and ParallelForDynamic hands out ids
  // below it.
  return ParallelChunkCount(n, num_threads);
}

void ParallelForDynamic(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t workers = ParallelWorkerCount(n, num_threads);
  if (workers <= 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  // Per-index error slots (not per-worker): the rethrow choice must not
  // depend on which worker happened to claim the failing index.
  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(n);
  auto drain = [&cursor, &errors, &body, n](std::size_t worker) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i, worker);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::future<void>> pending;
  pending.reserve(workers - 1);
  std::exception_ptr submit_error;
  try {
    for (std::size_t w = 1; w < workers; ++w) {
      pending.push_back(pool.Submit([&drain, w] { drain(w); }));
    }
    drain(0);
  } catch (...) {
    // Submission failed (allocation); the caller thread still drains the
    // remaining indices below via the started workers' futures.
    submit_error = std::current_exception();
  }
  for (std::future<void>& f : pending) f.get();  // drain() never throws
  if (submit_error) {
    // Any indices no worker claimed have not run; finish them serially
    // so the "every index attempted" contract holds.
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < n; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      try {
        body(i, 0);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  if (submit_error) std::rethrow_exception(submit_error);
}

std::size_t ParallelChunkCount(std::size_t n, std::size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  return std::min(std::max<std::size_t>(num_threads, 1), n);
}

void ParallelForChunks(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t k = ParallelChunkCount(n, num_threads);
  if (k == 0) return;
  ParallelFor(k, num_threads, [&body, n, k](std::size_t chunk) {
    body(chunk, chunk * n / k, (chunk + 1) * n / k);
  });
}

}  // namespace ufim
