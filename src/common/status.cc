#include "common/status.h"

namespace ufim {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool StatusCodeFromString(std::string_view name, StatusCode* code) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,         StatusCode::kInvalidArgument,
      StatusCode::kNotFound,   StatusCode::kOutOfRange,
      StatusCode::kIOError,    StatusCode::kInternal,
      StatusCode::kCancelled,  StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
  };
  for (StatusCode c : kAll) {
    if (StatusCodeToString(c) == name) {
      *code = c;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ufim
