#include "common/cli_args.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace ufim::cli {

namespace {

bool Contains(const std::vector<std::string_view>& haystack,
              std::string_view needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

}  // namespace

// GCC 12 raises -Wrestrict false positives on the std::string flag-map
// assignments once inlined (GCC bug 105329).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
std::optional<Args> Args::Parse(int argc, const char* const* argv,
                                const std::vector<std::string_view>& switches,
                                std::string* error) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key(arg.substr(2));
      if (Contains(switches, key)) {
        out.flags[key] = "1";
      } else if (i + 1 < argc) {
        out.flags[key] = argv[++i];
      } else {
        if (error != nullptr) *error = "missing value for --" + key;
        return std::nullopt;
      }
    } else {
      out.positional.emplace_back(arg);
    }
  }
  return out;
}
#pragma GCC diagnostic pop

bool Args::Validate(const FlagSpec& spec, std::string* error) const {
  for (const auto& [key, value] : flags) {
    if (Contains(spec.value_flags, key) || Contains(spec.switches, key)) {
      continue;
    }
    if (error != nullptr) *error = "unknown flag --" + key;
    return false;
  }
  return true;
}

const char* Args::Get(const std::string& key) const {
  auto it = flags.find(key);
  return it == flags.end() ? nullptr : it->second.c_str();
}

bool Args::GetSize(const std::string& key, std::size_t fallback,
                   std::size_t* out, std::string* error) const {
  const char* v = Get(key);
  if (v == nullptr) {
    *out = fallback;
    return true;
  }
  const std::string_view token = v;
  const bool all_digits =
      !token.empty() &&
      std::all_of(token.begin(), token.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = all_digits ? std::strtoull(v, &end, 10) : 0;
  if (!all_digits || end != v + token.size() || errno == ERANGE ||
      parsed > static_cast<unsigned long long>(SIZE_MAX)) {
    if (error != nullptr) {
      *error = "bad --" + key + " '" + std::string(token) +
               "': expected a non-negative integer";
    }
    return false;
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

bool Args::GetDouble(const std::string& key, double fallback, double* out,
                     std::string* error) const {
  const char* v = Get(key);
  if (v == nullptr) {
    *out = fallback;
    return true;
  }
  const std::string_view token = v;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (token.empty() || end != v + token.size() || errno == ERANGE ||
      !std::isfinite(parsed)) {
    if (error != nullptr) {
      *error = "bad --" + key + " '" + std::string(token) +
               "': expected a finite number";
    }
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace ufim::cli
