#ifndef UFIM_COMMON_THREAD_ANNOTATIONS_H_
#define UFIM_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These wrap the `capability`-based attributes so the concurrency
/// contracts that PRs 2-8 state in comments — who may touch the
/// injection queue, which thread owns a Chase-Lev deque's bottom end,
/// who is allowed to mutate a `StreamingFlatView` — become
/// machine-checked at compile time. The dedicated CI leg builds the
/// tree with `clang++ -Wthread-safety -Werror=thread-safety`; on GCC
/// (and on Clang without the flag) every macro expands to nothing, so
/// the annotations are free documentation everywhere else.
///
/// Two kinds of capability appear in this codebase:
///
///  * **Mutexes** (`common/mutex.h`): the classic `GUARDED_BY(mu_)` /
///    lock-held analysis. `std::mutex` in libstdc++ carries no
///    annotations, so annotated code must use `ufim::Mutex` (enforced
///    by `ufim_lint`'s raw-mutex rule).
///
///  * **Roles**: lock-free or externally-synchronized protocols where
///    "holding the capability" means "being the one thread the
///    protocol designates" — the deque owner, the streaming writer,
///    the quiescent RunContext controller. Roles have no runtime
///    representation; a caller claims one through an
///    `ASSERT_CAPABILITY` helper (e.g. `AssertOwner()`), which is the
///    annotated equivalent of the prose "caller must be X" contract:
///    the claim point is explicit and greppable, and any call path
///    that reaches a `REQUIRES(role)` method without one fails the
///    thread-safety build.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define UFIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define UFIM_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (a lockable, or a pure role).
#define UFIM_CAPABILITY(name) UFIM_THREAD_ANNOTATION_(capability(name))

/// Declares an RAII class that acquires a capability at construction
/// and releases it at destruction.
#define UFIM_SCOPED_CAPABILITY UFIM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define UFIM_GUARDED_BY(x) UFIM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define UFIM_PT_GUARDED_BY(x) UFIM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities exclusively.
#define UFIM_REQUIRES(...) \
  UFIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities shared (read-side).
#define UFIM_REQUIRES_SHARED(...) \
  UFIM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define UFIM_ACQUIRE(...) \
  UFIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define UFIM_RELEASE(...) \
  UFIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities.
#define UFIM_EXCLUDES(...) UFIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis, with no runtime effect) that the calling
/// thread holds the capability — the claim point of role capabilities.
#define UFIM_ASSERT_CAPABILITY(x) \
  UFIM_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability protecting its result.
#define UFIM_RETURN_CAPABILITY(x) UFIM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol is beyond the analysis.
#define UFIM_NO_THREAD_SAFETY_ANALYSIS \
  UFIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ufim {

/// A zero-size pure-role capability (see the header comment): a
/// protocol-designated privilege like "deque owner" or "streaming
/// writer". Declare a member of this type, name the contract in the
/// template-argument-free way via UFIM_CAPABILITY on the member's
/// wrapper class, and gate privileged methods with
/// UFIM_REQUIRES(role_member_).
/// Copyable and zero-state on purpose: embedding a Role must not change
/// the enclosing class's copy/move semantics (the capability names the
/// *contract*, it is not a runtime token).
class UFIM_CAPABILITY("role") Role {};

}  // namespace ufim

#endif  // UFIM_COMMON_THREAD_ANNOTATIONS_H_
