#ifndef UFIM_COMMON_THREAD_POOL_H_
#define UFIM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ufim {

/// Number of hardware threads, clamped to at least 1 (the standard
/// permits std::thread::hardware_concurrency() == 0).
std::size_t HardwareThreads();

/// A fixed-size pool of worker threads draining one shared FIFO queue.
/// Deliberately work-stealing-free: the mining workloads it serves are
/// pre-partitioned into a handful of coarse contiguous chunks, so a
/// single locked queue is contention-free in practice and keeps the
/// execution order easy to reason about (determinism of the parallel
/// counting paths is argued from the partitioning, not the scheduler).
///
/// Tasks must not block on other tasks of the same pool; `ParallelFor`
/// preserves that invariant by running nested invocations inline on the
/// calling worker instead of re-submitting (see below).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the future observes completion and rethrows any
  /// exception the task raised. Safe to call from inside a task (the
  /// nested task is queued normally; nothing in the pool ever waits on
  /// another task, so this cannot deadlock).
  std::future<void> Submit(std::function<void()> fn);

  /// The process-wide pool, sized to HardwareThreads(), created on first
  /// use and kept alive for the process lifetime. All `ParallelFor`
  /// calls share it; per-call `num_threads` caps how many of its workers
  /// one call occupies.
  static ThreadPool& Global();

  /// True when the calling thread is a worker of any ThreadPool.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs body(i) for every i in [0, n), partitioned into at most
/// `num_threads` contiguous chunks (chunk c covers [c*n/k, (c+1)*n/k)).
/// The calling thread executes the first chunk itself; the rest run on
/// the global pool. Blocks until every index completed.
///
/// Determinism: the chunk decomposition is a pure function of (n,
/// num_threads) and every index is executed by exactly one thread, so
/// any per-index state is computed exactly as in the serial loop. The
/// parallel counting kernels get bit-identical results by partitioning
/// work so that no floating-point reduction crosses a chunk boundary.
///
/// num_threads == 0 means HardwareThreads(). num_threads <= 1, n <= 1,
/// or a call from inside a pool worker (a nested ParallelFor) all run
/// the plain serial loop — nested parallelism degrades to sequential
/// execution instead of deadlocking on a saturated pool.
///
/// If one or more bodies throw, the remaining chunks still run to
/// completion and the exception of the lowest-numbered failing chunk is
/// rethrown in the caller.
void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t)>& body);

/// Number of chunks `ParallelForChunks` decomposes [0, n) into:
/// min(num_threads, n), with num_threads == 0 meaning HardwareThreads().
/// Callers size per-chunk scratch with this.
std::size_t ParallelChunkCount(std::size_t n, std::size_t num_threads);

/// Chunk-granular ParallelFor: partitions [0, n) into
/// `ParallelChunkCount(n, num_threads)` contiguous chunks (chunk c
/// covers [c*n/k, (c+1)*n/k), the same decomposition ParallelFor uses
/// internally) and runs body(chunk, lo, hi) once per chunk — the shape
/// for workers that carry per-chunk scratch across a contiguous range
/// of items. This is the single home of the boundary math that the
/// bit-identical-results arguments lean on; per-item results must not
/// depend on the chunking.
void ParallelForChunks(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t chunk, std::size_t lo,
                             std::size_t hi)>& body);

/// Number of worker slots `ParallelForDynamic` uses for a given (n,
/// num_threads): min(num_threads, n), with num_threads == 0 meaning
/// HardwareThreads(). Callers size per-worker scratch with this.
std::size_t ParallelWorkerCount(std::size_t n, std::size_t num_threads);

/// Dynamically-scheduled counterpart of ParallelFor for *skewed*
/// workloads: runs body(i, worker) for every i in [0, n), with indices
/// claimed one at a time from a shared atomic cursor by
/// `ParallelWorkerCount(n, num_threads)` workers (the calling thread is
/// worker 0). A worker that draws a heavy index no longer stalls a whole
/// contiguous chunk behind it — this is the scheduler the pattern-growth
/// miners use for their top-level header ranks, whose per-rank subtree
/// costs differ by orders of magnitude.
///
/// Determinism: every index is executed exactly once, whole, by one
/// worker. Which worker runs it (and in what real-time order) is
/// scheduling-dependent, so bodies must confine writes to per-index
/// slots and per-worker scratch (`worker` < ParallelWorkerCount(n,
/// num_threads) identifies a private scratch slot); callers merge per-index
/// results in a fixed order afterwards. Under that discipline results
/// are bit-identical at every thread count, including the serial
/// fallback.
///
/// num_threads == 0 means HardwareThreads(). num_threads <= 1, n <= 1,
/// or a call from inside a pool worker (nesting) all run the plain
/// serial loop with worker == 0.
///
/// If bodies throw, every index is still attempted and the exception of
/// the lowest-numbered failing index is rethrown in the caller.
void ParallelForDynamic(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t index, std::size_t worker)>& body);

}  // namespace ufim

#endif  // UFIM_COMMON_THREAD_POOL_H_
